#!/usr/bin/env python3
"""Validate a Prometheus text-exposition (format 0.0.4) file.

Dependency-free checker used by CI against `perflow-cli --prom-out`:

* every non-comment line parses as `name[{labels}] value`;
* metric and label names match the Prometheus grammar, label values
  are well-escaped;
* every sample is preceded by a `# TYPE` declaration for its family;
* counters end in `_total`;
* histogram `_bucket` series are cumulative in `le` order and end with
  an `le="+Inf"` bucket matching `_count`.

Usage: check_prometheus.py FILE
Exits 0 when the file is well-formed, 1 with a message otherwise.
"""

import re
import sys

METRIC_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$")
LABELS_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def fail(lineno, msg):
    print(f"check_prometheus: line {lineno}: {msg}", file=sys.stderr)
    sys.exit(1)


def base_family(name):
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def main(path):
    types = {}  # family -> declared type
    # (family, non-le labels) -> list of (le, cumulative count)
    buckets = {}
    counts = {}

    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()

    samples = 0
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("TYPE", "HELP"):
                if not METRIC_RE.match(parts[2]):
                    fail(lineno, f"bad metric name in comment: {parts[2]!r}")
                if parts[1] == "TYPE":
                    if len(parts) != 4 or parts[3] not in (
                        "counter", "gauge", "histogram", "summary", "untyped",
                    ):
                        fail(lineno, f"bad TYPE line: {line!r}")
                    types[parts[2]] = parts[3]
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            fail(lineno, f"unparseable sample: {line!r}")
        name, labelstr, value = m.groups()
        samples += 1

        try:
            val = float(value)
        except ValueError:
            fail(lineno, f"bad sample value: {value!r}")

        family = base_family(name)
        declared = types.get(family) or types.get(name)
        if declared is None:
            fail(lineno, f"sample {name!r} has no preceding # TYPE")
        if declared == "counter" and not name.endswith("_total"):
            fail(lineno, f"counter {name!r} must end in _total")

        labels = {}
        if labelstr:
            body = labelstr[1:-1]
            consumed = LABELS_RE.sub("", body).strip(", \t")
            if consumed:
                fail(lineno, f"malformed labels: {labelstr!r}")
            for lm in LABELS_RE.finditer(body):
                key, raw = lm.group(1), lm.group(2)
                if not LABEL_RE.match(key):
                    fail(lineno, f"bad label name {key!r}")
                if re.search(r'\\(?![\\n"])', raw):
                    fail(lineno, f"bad escape in label value {raw!r}")
                labels[key] = raw

        if declared == "histogram" and name.endswith("_bucket"):
            le = labels.get("le")
            if le is None:
                fail(lineno, f"histogram bucket without le label: {line!r}")
            rest = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            buckets.setdefault((family, rest), []).append((lineno, le, val))
        if declared == "histogram" and name.endswith("_count"):
            rest = tuple(sorted(labels.items()))
            counts[(family, rest)] = (lineno, val)

    for (family, rest), series in buckets.items():
        prev = -1.0
        saw_inf = False
        for lineno, le, val in series:
            if val < prev:
                fail(lineno, f"{family} buckets not cumulative ({val} < {prev})")
            prev = val
            if le == "+Inf":
                saw_inf = True
                total = counts.get((family, rest))
                if total is not None and total[1] != val:
                    fail(lineno, f"{family} +Inf bucket {val} != _count {total[1]}")
        if not saw_inf:
            fail(series[-1][0], f"{family} histogram missing le=\"+Inf\" bucket")

    if samples == 0:
        print("check_prometheus: no samples found", file=sys.stderr)
        sys.exit(1)
    print(f"check_prometheus: OK ({samples} samples, {len(types)} families)")


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    main(sys.argv[1])
