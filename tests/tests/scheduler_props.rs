//! Property-based tests of the event-driven PerFlowGraph scheduler:
//! random DAGs must produce identical values and trails no matter how
//! many workers execute them, and the pass-result cache must replay
//! those exact results.

use perflow::pass::FnPass;
use perflow::{NodeId, PassCache, PerFlowGraph, Value};
use proptest::prelude::*;

/// A random DAG description: node `i`'s inputs are drawn from nodes
/// `< i`, so the graph is acyclic by construction. `preds[i]` holds the
/// chosen predecessor of each input port (empty → source node).
#[derive(Debug, Clone)]
struct RandDag {
    preds: Vec<Vec<usize>>,
    seeds: Vec<u32>,
}

fn rand_dag_strategy() -> impl Strategy<Value = RandDag> {
    (2usize..=14, any::<u64>()).prop_map(|(n, mix)| {
        // Deterministic expansion of `mix` into a wiring plan: node 0 is
        // always a source; later nodes take 0..=3 inputs from earlier
        // nodes (0 inputs → another source).
        let mut preds = Vec::with_capacity(n);
        let mut state = mix;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for i in 0..n {
            if i == 0 {
                preds.push(Vec::new());
                continue;
            }
            let fan_in = next() % 4.min(i + 1);
            preds.push((0..fan_in).map(|_| next() % i).collect());
        }
        let seeds = (0..n).map(|i| (i as u32) * 31 + 7).collect();
        RandDag { preds, seeds }
    })
}

/// Materialize a [`RandDag`] as a PerFlowGraph of deterministic numeric
/// passes. Returns the graph and its node ids.
fn build(dag: &RandDag) -> (PerFlowGraph, Vec<NodeId>) {
    let mut g = PerFlowGraph::new();
    let mut nodes = Vec::with_capacity(dag.preds.len());
    for (i, preds) in dag.preds.iter().enumerate() {
        let seed = dag.seeds[i] as f64;
        let arity = preds.len();
        let id = g.add_pass(FnPass::new(
            format!("n{i}"),
            arity,
            move |inp: &[Value]| {
                let mut acc = seed;
                for (k, v) in inp.iter().enumerate() {
                    acc += (k as f64 + 1.0) * v.as_num().unwrap();
                }
                Ok(vec![Value::Num(acc), Value::Num(-acc)])
            },
        ));
        for (port, &p) in preds.iter().enumerate() {
            // Alternate output ports so multi-port wiring is exercised.
            g.connect(nodes[p], port % 2, id, port).unwrap();
        }
        nodes.push(id);
    }
    (g, nodes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Serial (1 worker) and parallel (2, 4, 8 workers) execution of a
    /// random DAG agree on every node's values and on the trail.
    #[test]
    fn scheduler_equivalence_serial_vs_parallel(dag in rand_dag_strategy()) {
        let (g, nodes) = build(&dag);
        let serial = g.execute_with_workers(1).unwrap();
        for workers in [2usize, 4, 8] {
            let par = g.execute_with_workers(workers).unwrap();
            for &id in &nodes {
                let a: Vec<Option<f64>> = serial.of(id).iter().map(Value::as_num).collect();
                let b: Vec<Option<f64>> = par.of(id).iter().map(Value::as_num).collect();
                prop_assert_eq!(a, b, "node {:?} differs at {} workers", id, workers);
            }
            // The trail is canonical (topological) and must match as a
            // sequence — and therefore also as a set.
            prop_assert_eq!(&serial.trail, &par.trail);
            let mut sa = serial.trail.clone();
            let mut sb = par.trail.clone();
            sa.sort();
            sb.sort();
            prop_assert_eq!(sa, sb);
        }
    }

    /// Re-executing an unchanged random DAG against one cache misses
    /// exactly once per node, then hits exactly once per node, with
    /// identical values both times.
    #[test]
    fn cache_hit_miss_determinism(dag in rand_dag_strategy()) {
        let (g, nodes) = build(&dag);
        let n = nodes.len() as u64;
        let cache = PassCache::new();
        let cold = g.execute_with_cache(&cache).unwrap();
        prop_assert_eq!(cache.stats().misses, n);
        prop_assert_eq!(cache.stats().hits, 0);
        let warm = g.execute_with_cache(&cache).unwrap();
        prop_assert_eq!(cache.stats().misses, n, "warm run must not miss");
        prop_assert_eq!(cache.stats().hits, n, "warm run must hit every node");
        for &id in &nodes {
            let a: Vec<Option<f64>> = cold.of(id).iter().map(Value::as_num).collect();
            let b: Vec<Option<f64>> = warm.of(id).iter().map(Value::as_num).collect();
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(cold.trail, warm.trail);
    }
}
