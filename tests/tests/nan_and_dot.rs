//! Regression tests for the NaN-ordering and DOT-escaping bugfix sweep:
//!
//! * `VertexSet::sort_by`/`top` must be total (never panic) and
//!   deterministic when metrics are NaN — exercised end-to-end through a
//!   fault-injected profiling run whose corrupted PMU data yields 0/0
//!   derived scores;
//! * `graphalgo::hottest_differences` and `critical_path` must degrade
//!   the same way;
//! * property test: `sort_by` is a total, deterministic descending order
//!   over arbitrary `f64` scores including NaN and ±inf;
//! * DOT export escapes quotes, backslashes and newlines losslessly in
//!   both `pag::dot::to_dot` and `perflow::PerFlowGraph::to_dot` (the
//!   old code mangled `"` to `'` and `\` to `/`).

use pag::dot::{to_dot, DotOptions};
use pag::{escape_dot, keys, EdgeLabel, Pag, VertexId, VertexLabel, ViewKind};
use perflow::pass::FnPass;
use perflow::{GraphRef, PerFlow, PerFlowGraph, RunHandleExt, Value};
use proptest::prelude::*;
use simrt::{FaultPlan, RunConfig};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// End-to-end: corrupted PMU data → NaN derived metric → sort_by/top survive.
// ---------------------------------------------------------------------------

#[test]
fn nan_scores_from_corrupted_pmu_sort_without_panicking() {
    let pflow = PerFlow::new();
    let prog = workloads::cg();
    // Discard every PMU reading: pmu-instructions and pmu-cycles are
    // absent everywhere, so the derived instructions-per-cycle score is
    // 0/0 = NaN on every vertex.
    let cfg = RunConfig::new(4).with_faults(FaultPlan::new().with_pmu_corruption(1.0));
    let run = pflow.run(&prog, &cfg).expect("degraded run must succeed");

    let mut set = run.vertices();
    for v in set.ids.clone() {
        let ins = set.metric(v, keys::PMU_INSTRUCTIONS);
        let cyc = set.metric(v, keys::PMU_CYCLES);
        set = set.with_score(v, ins / cyc); // NaN wherever cyc == 0
    }
    assert!(
        set.ids.iter().any(|&v| set.metric(v, "score").is_nan()),
        "fault plan should have produced at least one NaN score"
    );

    // The old sort_by used `partial_cmp(..).unwrap()` and panicked here.
    let sorted = set.sort_by("score");
    assert_eq!(sorted.ids.len(), set.ids.len());
    let hot = sorted.top(5);
    assert!(hot.ids.len() <= 5);

    // NaN entries all come after every non-NaN entry.
    let scores: Vec<f64> = sorted
        .ids
        .iter()
        .map(|&v| sorted.metric(v, "score"))
        .collect();
    if let Some(first_nan) = scores.iter().position(|s| s.is_nan()) {
        assert!(
            scores[first_nan..].iter().all(|s| s.is_nan()),
            "NaN scores must be contiguous at the tail: {scores:?}"
        );
    }
    // Deterministic: a second sort yields the identical order.
    assert_eq!(sorted.sort_by("score").ids, sorted.ids);
}

#[test]
fn mixed_nan_and_finite_scores_rank_finite_first() {
    let pflow = PerFlow::new();
    let prog = workloads::cg();
    // Clean run: compute vertices have PMU estimates, comm vertices do
    // not — so ins/cyc is finite on some vertices and NaN on others.
    let run = pflow.run(&prog, &RunConfig::new(4)).unwrap();
    let mut set = run.vertices();
    for v in set.ids.clone() {
        let ins = set.metric(v, keys::PMU_INSTRUCTIONS);
        let cyc = set.metric(v, keys::PMU_CYCLES);
        set = set.with_score(v, ins / cyc);
    }
    let has_nan = set.ids.iter().any(|&v| set.metric(v, "score").is_nan());
    let has_finite = set.ids.iter().any(|&v| set.metric(v, "score").is_finite());
    assert!(
        has_nan && has_finite,
        "expected a mixed NaN/finite score set"
    );

    let sorted = set.sort_by("score");
    let scores: Vec<f64> = sorted
        .ids
        .iter()
        .map(|&v| sorted.metric(v, "score"))
        .collect();
    let first_nan = scores.iter().position(|s| s.is_nan()).unwrap();
    assert!(scores[..first_nan].iter().all(|s| !s.is_nan()));
    assert!(scores[first_nan..].iter().all(|s| s.is_nan()));
    // top(n) over the mixed set keeps the finite head.
    let n = first_nan.min(3);
    let top = sorted.top(n);
    assert!(top.ids.iter().all(|&v| !top.metric(v, "score").is_nan()));
}

// ---------------------------------------------------------------------------
// graphalgo: hottest_differences and critical_path under NaN metrics.
// ---------------------------------------------------------------------------

fn chain_pag(times: &[f64]) -> Pag {
    let mut g = Pag::new(ViewKind::TopDown, "chain");
    for (i, t) in times.iter().enumerate() {
        let v = g.add_vertex(VertexLabel::Compute, format!("f{i}"));
        g.set_vprop(v, keys::TIME, *t);
        if i > 0 {
            g.add_edge(VertexId(i as u32 - 1), v, EdgeLabel::IntraProc);
        }
    }
    g
}

#[test]
fn hottest_differences_with_nan_operand_sorts_nan_last() {
    // A NaN `time` on the left propagates through the subtraction into
    // the diff graph (NaN - x = NaN).
    let left = chain_pag(&[10.0, f64::NAN, 30.0, 5.0]);
    let right = chain_pag(&[1.0, 2.0, 3.0, 4.0]);
    let diff = graphalgo::graph_difference(&left, &right, &[keys::TIME]).unwrap();
    let hot = graphalgo::hottest_differences(&diff, keys::TIME, 10);
    assert_eq!(hot.len(), 4);
    assert_eq!(hot[0].0, VertexId(2), "30-3 is the hottest finite diff");
    assert!(hot[3].1.is_nan(), "NaN diff sorts last, not first");
    // Deterministic across repeated calls (compare NaN by bit pattern).
    let again = graphalgo::hottest_differences(&diff, keys::TIME, 10);
    let bits = |v: &[(VertexId, f64)]| -> Vec<(VertexId, u64)> {
        v.iter().map(|&(id, x)| (id, x.to_bits())).collect()
    };
    assert_eq!(bits(&again), bits(&hot));
}

#[test]
fn critical_path_ignores_nan_weighted_endpoints() {
    let g = chain_pag(&[1.0, f64::NAN, 2.0]);
    let cp = graphalgo::critical_path(
        &g,
        |_| true,
        |v| g.metric(v, pag::mkeys::TIME).unwrap_or(0.0),
    )
    .expect("NaN weights must not make critical_path fail");
    // The NaN vertex poisons paths through it; the best clean endpoint
    // wins and the search never panics.
    assert!(!cp.weight.is_nan());
    assert!((cp.weight - 2.0).abs() < 1e-9);
}

// ---------------------------------------------------------------------------
// Property: sort_by is a total deterministic descending order on any f64.
// ---------------------------------------------------------------------------

fn arb_score() -> impl Strategy<Value = f64> {
    (0u32..6, -1e6f64..1e6f64).prop_map(|(k, x)| match k {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        4 => -0.0,
        _ => x,
    })
}

fn scored_set(scores: &[f64]) -> perflow::VertexSet {
    let mut g = Pag::new(ViewKind::TopDown, "prop");
    for i in 0..scores.len() {
        g.add_vertex(VertexLabel::Compute, format!("v{i}"));
    }
    let gref = GraphRef::Detached(Arc::new(g));
    let mut set = gref.all_vertices();
    for (i, &s) in scores.iter().enumerate() {
        set = set.with_score(VertexId(i as u32), s);
    }
    set
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sort_by_is_total_and_deterministic(
        scores in proptest::collection::vec(arb_score(), 1..24)
    ) {
        let set = scored_set(&scores);
        let sorted = set.sort_by("score"); // must not panic

        // Permutation of the input ids.
        let mut ids = sorted.ids.clone();
        ids.sort();
        prop_assert_eq!(ids, set.ids.clone());

        // Descending among non-NaN entries; NaN contiguous at the tail.
        let out: Vec<f64> = sorted.ids.iter().map(|&v| sorted.metric(v, "score")).collect();
        for w in out.windows(2) {
            if !w[0].is_nan() && !w[1].is_nan() {
                prop_assert!(w[0] >= w[1], "not descending: {} then {}", w[0], w[1]);
            }
            prop_assert!(
                !w[0].is_nan() || w[1].is_nan(),
                "non-NaN after NaN: {:?}", out
            );
        }

        // Deterministic and order-independent: sorting the reversed set
        // yields the identical sequence, and sorting is idempotent.
        let mut reversed = set.clone();
        reversed.ids.reverse();
        prop_assert_eq!(reversed.sort_by("score").ids.clone(), sorted.ids.clone());
        prop_assert_eq!(sorted.sort_by("score").ids.clone(), sorted.ids.clone());

        // top() never exceeds the set and keeps scores only for kept ids.
        let top = sorted.top(3);
        prop_assert!(top.ids.len() <= 3.min(scores.len()));
    }
}

// ---------------------------------------------------------------------------
// DOT escaping: lossless round-trip, shared helper in pag and core.
// ---------------------------------------------------------------------------

/// Inverse of [`pag::escape_dot`] for round-trip checking.
fn unescape_dot(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(ch) = it.next() {
        if ch != '\\' {
            out.push(ch);
            continue;
        }
        match it.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

const EVIL_NAMES: &[&str] = &[
    r#"he said "hi""#,
    r"C:\path\to\file",
    "line1\nline2",
    r#"quote\" and backslash"#,
];

#[test]
fn escape_dot_round_trips_evil_strings() {
    for name in EVIL_NAMES {
        let escaped = escape_dot(name);
        assert_eq!(&unescape_dot(&escaped), name, "round trip of {name:?}");
        // Escaped text never contains a raw quote or newline that would
        // terminate the DOT string literal early.
        assert!(!escaped.contains('\n'));
        let bytes = escaped.as_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'"' {
                assert!(
                    i > 0 && bytes[i - 1] == b'\\',
                    "unescaped quote in {escaped:?}"
                );
            }
        }
    }
}

#[test]
fn pag_to_dot_escapes_vertex_names_losslessly() {
    let mut g = Pag::new(ViewKind::TopDown, r#"graph "with" quotes"#);
    for name in EVIL_NAMES {
        g.add_vertex(VertexLabel::Compute, *name);
    }
    let dot = to_dot(&g, &DotOptions::default());
    for name in EVIL_NAMES {
        assert!(
            dot.contains(&escape_dot(name)),
            "missing escaped form of {name:?}"
        );
    }
    // The old lossy code replaced `"` with `'` and `\` with `/`.
    assert!(
        !dot.contains("he said 'hi'"),
        "quotes were mangled to apostrophes"
    );
    assert!(
        !dot.contains("C:/path/to/file"),
        "backslashes were mangled to slashes"
    );
    assert!(dot.contains(r#"digraph "graph \"with\" quotes""#));
}

#[test]
fn perflow_graph_to_dot_uses_same_escaping() {
    let mut g = PerFlowGraph::new();
    let s = g.add_source(1.0);
    let evil = r#"pass "x" over C:\data"#;
    let p = g.add_pass(FnPass::new(evil, 1, |i: &[Value]| Ok(vec![i[0].clone()])));
    g.pipe(s, p).unwrap();
    let dot = g.to_dot(r#"title "t""#);
    assert!(
        dot.contains(&escape_dot(evil)),
        "core must share pag::escape_dot"
    );
    assert!(dot.contains(r#"digraph "title \"t\"""#));
    assert!(!dot.contains("'x'"), "quotes were mangled to apostrophes");
    assert!(
        !dot.contains("C:/data"),
        "backslashes were mangled to slashes"
    );
    assert_eq!(&unescape_dot(&escape_dot(evil)), evil);
}
