//! End-to-end integration: program model → simulation → PAG construction
//! → PerFlow analysis, across all crates.

use perflow::{PerFlow, RunHandleExt};
use progmodel::{c, nranks, rank, ProgramBuilder};
use simrt::RunConfig;

fn ring_program() -> progmodel::Program {
    let mut pb = ProgramBuilder::new("e2e-ring");
    let main = pb.declare("main", "ring.c");
    let exchange = pb.declare("exchange", "ring.c");
    pb.define(exchange, |f| {
        f.irecv((rank() + nranks() - 1.0).rem(nranks()), c(4096.0), 0);
        f.isend((rank() + 1.0).rem(nranks()), c(4096.0), 0);
        f.waitall();
    });
    pb.define(main, |f| {
        f.loop_("step", c(50.0), |b| {
            b.compute(
                "stencil",
                (rank() + 1.0) * c(300.0) * progmodel::noise(0.05, 5),
            );
            b.call(exchange);
            b.allreduce(c(8.0));
        });
    });
    pb.build(main)
}

#[test]
fn full_pipeline_produces_consistent_views() {
    let pflow = PerFlow::new();
    let run = pflow.run(&ring_program(), &RunConfig::new(8)).unwrap();

    let td = run.topdown();
    // Top-down view is a tree.
    assert_eq!(td.num_edges(), td.num_vertices() - 1);
    assert_eq!(td.view(), pag::ViewKind::TopDown);

    let pv = run.parallel();
    // Both views are internally consistent.
    assert!(td.validate().is_empty(), "{:?}", td.validate());
    assert!(pv.validate().is_empty(), "{:?}", pv.validate());
    // Parallel view: |V| = |V_td| × P (+ thread flows, none here).
    assert_eq!(pv.num_vertices(), td.num_vertices() * 8);
    // Flows are chains: (|V_td|-1) intra edges per rank, plus cross edges.
    let intra = pv
        .edge_ids()
        .filter(|&e| pv.edge(e).label == pag::EdgeLabel::IntraProc)
        .count();
    assert_eq!(intra, (td.num_vertices() - 1) * 8);
    assert!(pv.num_edges() > intra, "cross edges must exist");
}

#[test]
fn sampled_times_are_close_to_exact_elapsed() {
    let pflow = PerFlow::new();
    let run = pflow.run(&ring_program(), &RunConfig::new(4)).unwrap();
    // The root carries exact elapsed; the sum of sampled leaf self-times
    // should approximate the aggregate elapsed within sampling error.
    let total_exact: f64 = run.data().elapsed.iter().sum();
    let total_sampled: f64 = run
        .topdown()
        .vertex_ids()
        .map(|v| run.topdown().metric_f64(v, pag::mkeys::SELF_TIME))
        .sum();
    let rel = (total_sampled - total_exact).abs() / total_exact;
    assert!(rel < 0.05, "sampling error too large: {rel}");
}

#[test]
fn serialization_roundtrips_profiled_pags() {
    let pflow = PerFlow::new();
    let run = pflow.run(&ring_program(), &RunConfig::new(4)).unwrap();
    let bytes = pag::serialize::encode(run.topdown());
    let back = pag::serialize::decode(&bytes).unwrap();
    assert!(back.validate().is_empty());
    assert_eq!(back.num_vertices(), run.topdown().num_vertices());
    assert_eq!(back.num_edges(), run.topdown().num_edges());
    // Spot-check a property-laden vertex.
    let ar = back.find_by_name("MPI_Allreduce");
    assert_eq!(ar.len(), 1);
    assert!(back.vstr(ar[0], pag::keys::COMM_INFO).is_some());

    // The parallel view also roundtrips.
    let pv_bytes = pag::serialize::encode(run.parallel());
    let pv_back = pag::serialize::decode(&pv_bytes).unwrap();
    assert_eq!(pv_back.num_vertices(), run.parallel().num_vertices());
    assert_eq!(pv_back.view(), pag::ViewKind::Parallel);
}

#[test]
fn dataflow_graph_equals_direct_api() {
    use perflow::passes::{FilterPass, HotspotPass};
    use perflow::GraphBuilder;

    let pflow = PerFlow::new();
    let run = pflow.run(&ring_program(), &RunConfig::new(4)).unwrap();

    // Direct API.
    let direct = pflow.hotspot_detection(&pflow.filter(&run.vertices(), "MPI_*"), 3);

    // Same analysis as a PerFlowGraph, wired with the fluent builder.
    let b = GraphBuilder::new();
    let hot = b
        .source(run.vertices())
        .then(FilterPass::name("MPI_*"))
        .then(HotspotPass::by_time(3));
    let g = b.finish().unwrap();
    let out = g.execute().unwrap();
    let via_graph = out.vertices(hot.id()).unwrap();

    assert_eq!(direct.ids, via_graph.ids);
}

#[test]
fn deterministic_end_to_end() {
    let pflow = PerFlow::new();
    let cfg = RunConfig::new(8).with_seed(1234);
    let a = pflow.run(&ring_program(), &cfg).unwrap();
    let b = pflow.run(&ring_program(), &cfg).unwrap();
    assert_eq!(a.data().total_time, b.data().total_time);
    assert_eq!(
        pag::serialize::encode(a.topdown()),
        pag::serialize::encode(b.topdown())
    );
}

#[test]
fn deadlocking_program_surfaces_error_through_api() {
    let mut pb = ProgramBuilder::new("dl");
    let main = pb.declare("main", "d.c");
    pb.define(main, |f| {
        f.recv((rank() + 1.0).rem(nranks()), c(8.0), 0);
        f.send((rank() + 1.0).rem(nranks()), c(8.0), 0);
    });
    let prog = pb.build(main);
    let pflow = PerFlow::new();
    match pflow.run(&prog, &RunConfig::new(2)) {
        Err(perflow::PerFlowError::Sim(simrt::SimError::Deadlock { .. })) => {}
        other => panic!("expected deadlock error, got {other:?}"),
    }
}
