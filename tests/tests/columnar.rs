//! Columnar-storage compatibility suite (ISSUE 7): PAG1 → PAG2 wire
//! round-trips under hostile inputs, the checked-in legacy fixture,
//! shim-vs-typed write identity, and the serial-vs-parallel identity of
//! the graph algorithms on a real workload PAG.

use proptest::prelude::*;

use pag::serialize::{decode, encode, encode_v1, DecodeError};
use pag::{keys, mkeys, EdgeLabel, Pag, VertexId, VertexLabel, ViewKind};
use perflow::PerFlow;
use simrt::RunConfig;

/// A legacy PAG1 snapshot checked in before the columnar migration.
/// Readers must keep accepting it forever.
const PAG1_FIXTURE: &[u8] = include_bytes!("../fixtures/sample_pag1.bin");

// --------------------------------------------------------------- proptests

/// Vertex names the wire format must survive: empty, quoted, unicode,
/// whitespace-laden, and plain identifier-ish ones.
fn arb_name() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        Just("with \"quotes\" and \\escapes".to_string()),
        Just("λ→graph ∀v".to_string()),
        Just("tab\there\nnewline".to_string()),
        "[a-zA-Z_][a-zA-Z0-9_.:]{0,12}",
    ]
}

/// Metric values including the non-finite corners.
fn arb_metric() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(0.0),
        0.0..1e7f64,
    ]
}

type VertexSpec = (String, Option<f64>, Option<i64>, Option<Vec<f64>>);

#[derive(Debug, Clone)]
struct GraphSpec {
    vertices: Vec<VertexSpec>,
    edges: Vec<(usize, usize)>,
}

fn arb_graph() -> impl Strategy<Value = GraphSpec> {
    let vertex = (
        arb_name(),
        prop::option::of(arb_metric()),
        prop::option::of(0i64..1_000_000),
        prop::option::of(prop::collection::vec(arb_metric(), 1..5)),
    );
    prop::collection::vec(vertex, 1..16).prop_flat_map(|vertices| {
        let n = vertices.len();
        (Just(vertices), prop::collection::vec((0..n, 0..n), 0..24))
            .prop_map(|(vertices, edges)| GraphSpec { vertices, edges })
    })
}

fn build(spec: &GraphSpec) -> Pag {
    let mut g = Pag::new(ViewKind::Parallel, "columnar-prop");
    for (name, time, count, vec) in &spec.vertices {
        let v = g.add_vertex(VertexLabel::Compute, name.as_str());
        if let Some(t) = time {
            g.set_metric(v, mkeys::TIME, *t);
        }
        if let Some(c) = count {
            g.set_metric_i64(v, mkeys::COUNT, *c);
        }
        if let Some(xs) = vec {
            g.set_metric_vec(v, mkeys::TIME_PER_PROC, xs.clone());
        }
    }
    for (a, b) in &spec.edges {
        g.add_edge(
            VertexId(*a as u32),
            VertexId(*b as u32),
            EdgeLabel::IntraProc,
        );
    }
    g
}

/// Bit-exact metric comparison (NaN-aware).
fn same_bits(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// PAG1 → decode → PAG2 → decode preserves the graph exactly, even
    /// with hostile names, NaN/±inf metrics and absent columns.
    #[test]
    fn pag1_to_pag2_roundtrip(spec in arb_graph()) {
        let g = build(&spec);
        let v1 = encode_v1(&g);
        let d1 = decode(&v1).unwrap();
        // The legacy encoding of the decoded graph is byte-stable.
        prop_assert_eq!(encode_v1(&d1), v1);

        let v2 = encode(&d1);
        let d2 = decode(&v2).unwrap();
        prop_assert_eq!(encode(&d2), v2);

        prop_assert_eq!(d2.num_vertices(), g.num_vertices());
        prop_assert_eq!(d2.num_edges(), g.num_edges());
        for v in g.vertex_ids() {
            prop_assert_eq!(d2.vertex_name(v), g.vertex_name(v));
            prop_assert!(same_bits(
                d2.metric_f64(v, mkeys::TIME),
                g.metric_f64(v, mkeys::TIME)
            ));
            prop_assert_eq!(
                d2.metric_i64(v, mkeys::COUNT),
                g.metric_i64(v, mkeys::COUNT)
            );
            let a = g.metric_vec(v, mkeys::TIME_PER_PROC);
            let b = d2.metric_vec(v, mkeys::TIME_PER_PROC);
            match (a, b) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    prop_assert_eq!(a.len(), b.len());
                    for (x, y) in a.iter().zip(b) {
                        prop_assert!(same_bits(*x, *y));
                    }
                }
                _ => prop_assert!(false, "vector column presence changed"),
            }
        }
    }

    /// The string-keyed shim and the typed accessors address one store:
    /// writing the same logical graph through either API yields
    /// byte-identical encodings in both wire formats.
    #[test]
    fn shim_and_typed_writes_are_one_store(spec in arb_graph()) {
        let typed = build(&spec);
        let mut shim = Pag::new(ViewKind::Parallel, "columnar-prop");
        for (name, time, count, vec) in &spec.vertices {
            let v = shim.add_vertex(VertexLabel::Compute, name.as_str());
            if let Some(t) = time {
                shim.set_vprop(v, keys::TIME, *t);
            }
            if let Some(c) = count {
                shim.set_vprop(v, keys::COUNT, *c);
            }
            if let Some(xs) = vec {
                shim.set_vprop(v, keys::TIME_PER_PROC, xs.clone());
            }
        }
        for (a, b) in &spec.edges {
            shim.add_edge(
                VertexId(*a as u32),
                VertexId(*b as u32),
                EdgeLabel::IntraProc,
            );
        }
        prop_assert_eq!(encode(&shim), encode(&typed));
        prop_assert_eq!(encode_v1(&shim), encode_v1(&typed));
        for v in typed.vertex_ids() {
            // Reads agree in both directions too.
            let via_shim = shim.metric_f64(v, mkeys::TIME);
            let via_typed = typed
                .vprop(v, keys::TIME)
                .and_then(|p| p.as_f64())
                .unwrap_or(0.0);
            prop_assert!(same_bits(via_shim, via_typed));
        }
    }
}

// ---------------------------------------------------------------- fixture

#[test]
fn pag1_fixture_still_decodes() {
    let g = decode(PAG1_FIXTURE).expect("legacy PAG1 snapshot must stay readable");
    assert!(g.num_vertices() > 0, "fixture is not empty");
    // Its metrics landed in the columnar store.
    let total: f64 = g.vertex_ids().map(|v| g.metric_f64(v, mkeys::TIME)).sum();
    assert!(total > 0.0, "fixture carries time metrics");
    // Decode → legacy re-encode reproduces the snapshot byte for byte.
    assert_eq!(
        encode_v1(&g),
        PAG1_FIXTURE,
        "encode_v1 must stay byte-identical to the pre-columnar encoder"
    );
    // And the modern format round-trips the same graph.
    let d2 = decode(&encode(&g)).unwrap();
    assert_eq!(encode_v1(&d2), PAG1_FIXTURE);
}

#[test]
fn pag1_fixture_with_trailing_bytes_is_rejected() {
    let mut padded = PAG1_FIXTURE.to_vec();
    padded.push(0);
    match decode(&padded) {
        Err(DecodeError::TrailingBytes) => {}
        other => panic!("expected TrailingBytes, got {other:?}"),
    }
}

// ------------------------------------------- parallel identity (workload)

fn chain_pattern() -> graphalgo::Pattern {
    let mut p = graphalgo::Pattern::new();
    let x = p.add_vertex(graphalgo::PatternVertex::any());
    let y = p.add_vertex(graphalgo::PatternVertex::any());
    let z = p.add_vertex(graphalgo::PatternVertex::any());
    p.add_edge(x, y, None);
    p.add_edge(y, z, None);
    p
}

/// On a real workload's parallel view, every parallel algorithm is
/// bit-identical to its serial form for any worker count.
#[test]
fn parallel_algorithms_match_serial_on_workload_pag() {
    let pflow = PerFlow::new();
    let run = pflow
        .run(&workloads::cg(), &RunConfig::new(8).with_seed(7))
        .expect("run failed");
    let g = run.parallel();

    // Louvain's identity contract is parallel(w) == parallel(1): the
    // workload's parallel view has one component per rank, and sharded
    // clustering uses per-component edge mass (see louvain_parallel docs),
    // so the serial whole-graph result may legitimately differ here.
    let baseline = graphalgo::louvain_parallel(g, 1);
    assert!(baseline.count > 1, "workload PAG clusters into communities");
    for w in [2usize, 4, 9] {
        let par = graphalgo::louvain_parallel(g, w);
        assert_eq!(par.assignment, baseline.assignment, "louvain w={w}");
        assert_eq!(par.count, baseline.count);
        assert!(same_bits(par.modularity, baseline.modularity));
    }

    let pattern = chain_pattern();
    let serial = graphalgo::match_subgraph(g, &pattern, None, 0);
    assert!(!serial.is_empty(), "chain pattern matches the workload PAG");
    for w in [1usize, 2, 4, 9] {
        let par = graphalgo::match_subgraph_parallel(g, &pattern, None, 0, w);
        assert_eq!(par, serial, "subgraph w={w}");
    }
    // Capped matching returns the serial prefix.
    let cap = serial.len().min(5);
    let capped = graphalgo::match_subgraph_parallel(g, &pattern, None, cap, 3);
    assert_eq!(capped, serial[..cap].to_vec());

    // Differential analysis against a perturbed twin of the same run.
    let mut twin = g.clone();
    for v in twin.vertex_ids().collect::<Vec<_>>() {
        let t = twin.metric_f64(v, mkeys::TIME);
        twin.set_metric(v, mkeys::TIME, t * 1.07);
    }
    let metrics = [keys::TIME, keys::SELF_TIME, keys::WAIT_TIME];
    let serial = graphalgo::graph_difference(g, &twin, &metrics).unwrap();
    for w in [1usize, 2, 4, 9] {
        let par = graphalgo::graph_difference_parallel(g, &twin, &metrics, w).unwrap();
        assert_eq!(encode(&par), encode(&serial), "diff w={w}");
    }
}
