//! Failure-injection integration tests: plant a fault with the
//! simulator's injection hooks and verify PerFlow's analyses *find* it.

use perflow::{InteractiveSession, PerFlow, PerFlowError, RunHandleExt, Suggestion};
use progmodel::{c, nranks, rank, ProgramBuilder};
use simrt::{FaultPlan, RankStatus, RunConfig, SimError};

/// A perfectly balanced program: any detected imbalance must come from
/// the injected fault.
fn balanced_prog() -> progmodel::Program {
    let mut pb = ProgramBuilder::new("balanced");
    let main = pb.declare("main", "b.c");
    let halo = pb.declare("halo_exchange", "b.c");
    pb.define(halo, |f| {
        f.irecv((rank() + nranks() - 1.0).rem(nranks()), c(2048.0), 0);
        f.isend((rank() + 1.0).rem(nranks()), c(2048.0), 0);
        f.waitall();
    });
    pb.define(main, |f| {
        f.loop_("step", c(100.0), |b| {
            b.compute("stencil", c(400.0) * progmodel::noise(0.02, 17));
            b.call(halo);
            b.allreduce(c(8.0));
        });
    });
    pb.build(main)
}

#[test]
fn healthy_run_reports_no_imbalance() {
    let pflow = PerFlow::new();
    let run = pflow.run(&balanced_prog(), &RunConfig::new(8)).unwrap();
    let imb = pflow.imbalance_analysis(&run.vertices(), 0.25);
    // The stencil itself is balanced (±2 % noise) — only wait-dominated
    // comm vertices may show up; the compute must not.
    let names: Vec<&str> = imb
        .ids
        .iter()
        .map(|&v| imb.graph.pag().vertex_name(v))
        .collect();
    assert!(
        !names.contains(&"stencil"),
        "balanced stencil flagged: {names:?}"
    );
}

#[test]
fn degraded_node_is_located_by_imbalance_analysis() {
    let pflow = PerFlow::new();
    let cfg = RunConfig::new(8).with_slow_rank(5, 2.5);
    let run = pflow.run(&balanced_prog(), &cfg).unwrap();

    // Top-down: the stencil kernel is now imbalanced.
    let imb = pflow.imbalance_analysis(&run.vertices(), 0.25);
    let names: Vec<&str> = imb
        .ids
        .iter()
        .map(|&v| imb.graph.pag().vertex_name(v))
        .collect();
    assert!(names.contains(&"stencil"), "stencil not flagged: {names:?}");

    // Parallel view: the lagging replica is on the injected rank.
    let pv = run.parallel_vertices().filter_name("stencil");
    let lagging = pflow.imbalance_analysis(&pv, 0.25);
    assert_eq!(lagging.len(), 1);
    let proc = lagging
        .graph
        .pag()
        .vprop(lagging.ids[0], pag::keys::PROC)
        .and_then(|p| p.as_i64());
    assert_eq!(proc, Some(5), "wrong straggler located");
}

#[test]
fn interactive_session_walks_to_the_injected_fault() {
    let pflow = PerFlow::new();
    let cfg = RunConfig::new(8).with_slow_rank(3, 3.0);
    let run = pflow.run(&balanced_prog(), &cfg).unwrap();
    let mut s = InteractiveSession::new(&run);
    assert_eq!(s.suggest(), Suggestion::Hotspot);
    s.hotspot(8);
    s.imbalance(0.25);
    assert!(!s.current().is_empty());
    let report = s.report(&["name", "debug-info", "score"]);
    assert!(report.render().contains("imbalance_analysis"));
}

#[test]
fn breakdown_attributes_injected_fault_waits() {
    let pflow = PerFlow::new();
    let cfg = RunConfig::new(8).with_slow_rank(0, 4.0);
    let run = pflow.run(&balanced_prog(), &cfg).unwrap();
    let comm = pflow.filter(&run.vertices(), "MPI_Allreduce");
    let (_causes, report) = pflow.breakdown_analysis(&comm);
    // The allreduce waits trace back to imbalance before the comm.
    assert!(
        report.render().contains("load-imbalance-before-comm")
            || report.render().contains("imbalanced-communication"),
        "{}",
        report.render()
    );
}

#[test]
fn crashed_rank_yields_partial_data_and_is_localized() {
    // One of eight ranks dies mid-run: the run must still return Ok with
    // data from the survivors, the PAG must carry per-rank completeness
    // metadata, and the analyses must localize the missing rank.
    let pflow = PerFlow::new();
    let cfg = RunConfig::new(8).with_faults(FaultPlan::new().crash_rank(5, 10_000.0));
    let run = pflow
        .run(&balanced_prog(), &cfg)
        .expect("crash must degrade, not fail, the run");

    // Rank statuses: 5 crashed, the rest completed (fail-fast lets the
    // survivors run to the end).
    let data = run.data();
    assert!(matches!(data.rank_status[5], RankStatus::Crashed { .. }));
    for r in [0usize, 1, 2, 3, 4, 6, 7] {
        assert!(
            data.rank_status[r].is_completed(),
            "rank {r} was {}",
            data.rank_status[r]
        );
    }
    assert!(!data.is_complete());

    // Per-rank completeness metadata on the top-down root.
    let set = run.vertices();
    let pag = set.graph.pag();
    let root_status = pag
        .vprop(run.root(), pag::keys::RANK_STATUS)
        .and_then(|p| p.as_str().map(String::from))
        .expect("degraded run must carry rank-status on the root");
    assert!(root_status.contains("rank 5 crashed"), "{root_status}");
    let per_proc = pag
        .vprop(run.root(), pag::keys::COMPLETENESS_PER_PROC)
        .and_then(|p| p.as_f64_slice().map(<[f64]>::to_vec))
        .expect("degraded run must carry per-proc completeness");
    assert_eq!(per_proc.len(), 8);

    // The planted fault is localized from the surviving ranks: the
    // balanced stencil is now imbalanced (rank 5 contributed only a
    // quarter of a run's worth of samples).
    let imb = pflow.imbalance_analysis(&run.vertices(), 0.05);
    let names: Vec<&str> = imb
        .ids
        .iter()
        .map(|&v| imb.graph.pag().vertex_name(v))
        .collect();
    assert!(names.contains(&"stencil"), "stencil not flagged: {names:?}");

    // Hotspot detection still ranks the dominant kernel.
    let hot = pflow.hotspot_detection(&run.vertices(), 4);
    let hot_names: Vec<&str> = hot
        .ids
        .iter()
        .map(|&v| hot.graph.pag().vertex_name(v))
        .collect();
    assert!(hot_names.contains(&"stencil"), "hotspots: {hot_names:?}");

    // Parallel view: the crashed rank's flow exists but is marked.
    let pv = run.parallel_vertices().filter_name("stencil");
    let marked: Vec<i64> = pv
        .ids
        .iter()
        .filter(|&&v| pv.graph.pag().vprop(v, pag::keys::RANK_STATUS).is_some())
        .filter_map(|&v| {
            pv.graph
                .pag()
                .vprop(v, pag::keys::PROC)
                .and_then(|p| p.as_i64())
        })
        .collect();
    assert_eq!(marked, vec![5], "only rank 5's flow should be marked");
}

#[test]
fn sample_loss_degrades_collection_without_touching_timing() {
    let pflow = PerFlow::new();
    let prog = balanced_prog();
    let clean = pflow.run(&prog, &RunConfig::new(8)).unwrap();
    let lossy = pflow
        .run(
            &prog,
            &RunConfig::new(8).with_faults(FaultPlan::new().with_sample_loss(0.25)),
        )
        .unwrap();

    // Sample loss is an observer fault: the application's virtual timing
    // is bit-identical with and without it.
    assert_eq!(clean.data().elapsed, lossy.data().elapsed);

    // But the collection is degraded and says so.
    assert!(clean.data().is_complete());
    assert!(!lossy.data().is_complete());
    let lost: u64 = lossy.data().dropped_samples.values().sum();
    assert!(lost > 0);
    let lossy_set = lossy.vertices();
    let pag = lossy_set.graph.pag();
    let root_compl = pag
        .vprop(lossy.root(), pag::keys::COMPLETENESS)
        .and_then(|p| p.as_f64())
        .expect("degraded run must carry root completeness");
    assert!(
        (root_compl - 0.75).abs() < 0.05,
        "expected ~75% completeness, got {root_compl}"
    );

    // The hotspot is still found despite the loss.
    let hot = pflow.hotspot_detection(&lossy.vertices(), 4);
    let names: Vec<&str> = hot
        .ids
        .iter()
        .map(|&v| hot.graph.pag().vertex_name(v))
        .collect();
    assert!(names.contains(&"stencil"), "hotspots: {names:?}");
}

#[test]
fn hung_rank_is_triaged_into_a_rich_hang_error() {
    let pflow = PerFlow::new();
    let cfg = RunConfig::new(8).with_faults(FaultPlan::new().hang_rank(2, 5_000.0));
    let err = pflow
        .run(&balanced_prog(), &cfg)
        .expect_err("a hang must not look like a successful run");
    let PerFlowError::Sim(SimError::Hang {
        hung,
        blocked,
        virtual_time_us,
    }) = err
    else {
        panic!("expected SimError::Hang, got {err}");
    };
    assert_eq!(hung.len(), 1);
    let (rank, stmt, at) = hung[0];
    assert_eq!(rank, 2);
    assert!(stmt.is_some(), "hang must record the last statement");
    assert!(at >= 5_000.0);
    assert!(virtual_time_us >= at);
    // The healthy ranks end up blocked behind the hung collective.
    assert!(!blocked.is_empty());
    assert!(blocked.iter().all(|(r, _)| *r != 2));
}

#[test]
fn fault_injection_is_deterministic_under_a_fixed_seed() {
    let prog = balanced_prog();
    let cfg = RunConfig::new(8).with_seed(42).with_faults(
        FaultPlan::new()
            .crash_rank(3, 15_000.0)
            .with_sample_loss(0.1)
            .with_message_drop(0.05, 50.0)
            .with_pmu_corruption(0.02),
    );
    let a = simrt::simulate(&prog, &cfg).unwrap();
    let b = simrt::simulate(&prog, &cfg).unwrap();
    assert_eq!(
        a.summary(),
        b.summary(),
        "identical seeds must replay identically"
    );
    // And the faults actually fired.
    assert!(matches!(a.rank_status[3], RankStatus::Crashed { .. }));
    assert!(a.summary().dropped_samples > 0);
    assert!(a.summary().retransmits > 0);
}

#[test]
fn scalability_paradigm_is_robust_to_injected_noise() {
    // The paradigm must not crash or mis-rank when one run carries an
    // injected straggler: the injected kernel dominates the diff.
    let pflow = PerFlow::new();
    let prog = balanced_prog();
    let small = pflow.run(&prog, &RunConfig::new(4)).unwrap();
    let large = pflow
        .run(&prog, &RunConfig::new(16).with_slow_rank(7, 3.0))
        .unwrap();
    let result = perflow::paradigms::scalability_analysis(&small, &large, 8, 0.25).unwrap();
    let names: Vec<&str> = result
        .root_causes
        .ids
        .iter()
        .map(|&v| result.root_causes.graph.pag().vertex_name(v))
        .collect();
    assert!(
        names.contains(&"stencil") || names.contains(&"step"),
        "injected straggler kernel not among causes: {names:?}"
    );
}
