//! Failure-injection integration tests: plant a fault with the
//! simulator's injection hooks and verify PerFlow's analyses *find* it.

use perflow::{InteractiveSession, PerFlow, RunHandleExt, Suggestion};
use progmodel::{c, nranks, rank, ProgramBuilder};
use simrt::RunConfig;

/// A perfectly balanced program: any detected imbalance must come from
/// the injected fault.
fn balanced_prog() -> progmodel::Program {
    let mut pb = ProgramBuilder::new("balanced");
    let main = pb.declare("main", "b.c");
    let halo = pb.declare("halo_exchange", "b.c");
    pb.define(halo, |f| {
        f.irecv((rank() + nranks() - 1.0).rem(nranks()), c(2048.0), 0);
        f.isend((rank() + 1.0).rem(nranks()), c(2048.0), 0);
        f.waitall();
    });
    pb.define(main, |f| {
        f.loop_("step", c(100.0), |b| {
            b.compute("stencil", c(400.0) * progmodel::noise(0.02, 17));
            b.call(halo);
            b.allreduce(c(8.0));
        });
    });
    pb.build(main)
}

#[test]
fn healthy_run_reports_no_imbalance() {
    let pflow = PerFlow::new();
    let run = pflow
        .run(&balanced_prog(), &RunConfig::new(8))
        .unwrap();
    let imb = pflow.imbalance_analysis(&run.vertices(), 0.25);
    // The stencil itself is balanced (±2 % noise) — only wait-dominated
    // comm vertices may show up; the compute must not.
    let names: Vec<&str> = imb
        .ids
        .iter()
        .map(|&v| imb.graph.pag().vertex_name(v))
        .collect();
    assert!(
        !names.contains(&"stencil"),
        "balanced stencil flagged: {names:?}"
    );
}

#[test]
fn degraded_node_is_located_by_imbalance_analysis() {
    let pflow = PerFlow::new();
    let cfg = RunConfig::new(8).with_slow_rank(5, 2.5);
    let run = pflow.run(&balanced_prog(), &cfg).unwrap();

    // Top-down: the stencil kernel is now imbalanced.
    let imb = pflow.imbalance_analysis(&run.vertices(), 0.25);
    let names: Vec<&str> = imb
        .ids
        .iter()
        .map(|&v| imb.graph.pag().vertex_name(v))
        .collect();
    assert!(names.contains(&"stencil"), "stencil not flagged: {names:?}");

    // Parallel view: the lagging replica is on the injected rank.
    let pv = run.parallel_vertices().filter_name("stencil");
    let lagging = pflow.imbalance_analysis(&pv, 0.25);
    assert_eq!(lagging.len(), 1);
    let proc = lagging
        .graph
        .pag()
        .vprop(lagging.ids[0], pag::keys::PROC)
        .and_then(|p| p.as_i64());
    assert_eq!(proc, Some(5), "wrong straggler located");
}

#[test]
fn interactive_session_walks_to_the_injected_fault() {
    let pflow = PerFlow::new();
    let cfg = RunConfig::new(8).with_slow_rank(3, 3.0);
    let run = pflow.run(&balanced_prog(), &cfg).unwrap();
    let mut s = InteractiveSession::new(&run);
    assert_eq!(s.suggest(), Suggestion::Hotspot);
    s.hotspot(8);
    s.imbalance(0.25);
    assert!(!s.current().is_empty());
    let report = s.report(&["name", "debug-info", "score"]);
    assert!(report.render().contains("imbalance_analysis"));
}

#[test]
fn breakdown_attributes_injected_fault_waits() {
    let pflow = PerFlow::new();
    let cfg = RunConfig::new(8).with_slow_rank(0, 4.0);
    let run = pflow.run(&balanced_prog(), &cfg).unwrap();
    let comm = pflow.filter(&run.vertices(), "MPI_Allreduce");
    let (_causes, report) = pflow.breakdown_analysis(&comm);
    // The allreduce waits trace back to imbalance before the comm.
    assert!(
        report.render().contains("load-imbalance-before-comm")
            || report.render().contains("imbalanced-communication"),
        "{}",
        report.render()
    );
}

#[test]
fn scalability_paradigm_is_robust_to_injected_noise() {
    // The paradigm must not crash or mis-rank when one run carries an
    // injected straggler: the injected kernel dominates the diff.
    let pflow = PerFlow::new();
    let prog = balanced_prog();
    let small = pflow.run(&prog, &RunConfig::new(4)).unwrap();
    let large = pflow
        .run(&prog, &RunConfig::new(16).with_slow_rank(7, 3.0))
        .unwrap();
    let result = perflow::paradigms::scalability_analysis(&small, &large, 8, 0.25).unwrap();
    let names: Vec<&str> = result
        .root_causes
        .ids
        .iter()
        .map(|&v| result.root_causes.graph.pag().vertex_name(v))
        .collect();
    assert!(
        names.contains(&"stencil") || names.contains(&"step"),
        "injected straggler kernel not among causes: {names:?}"
    );
}
