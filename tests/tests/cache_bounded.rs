//! Bounded pass-cache semantics under the parallel scheduler: a
//! capacity-limited, single-flight [`PassCache`] must never change
//! *what* a graph computes — only how much of it replays from memory —
//! at any worker count.

use perflow::pass::FnPass;
use perflow::{ExecOptions, PassCache, PerFlowGraph, Value};

/// A deterministic 12-node graph: 4 sources fan into chains of
/// arithmetic passes that join into one sink.
fn build_graph() -> (PerFlowGraph, perflow::NodeId) {
    let mut g = PerFlowGraph::new();
    let sources: Vec<_> = (0..4)
        .map(|i| g.add_source(Value::Num(i as f64 + 1.0)))
        .collect();
    let mut stage = Vec::new();
    for (i, &s) in sources.iter().enumerate() {
        let scale = g.add_pass(FnPass::new(
            format!("scale{i}"),
            1,
            move |inp: &[Value]| {
                let Value::Num(n) = inp[0] else {
                    unreachable!("sources emit nums")
                };
                Ok(vec![Value::Num(n * 3.0 + i as f64)])
            },
        ));
        g.pipe(s, scale).unwrap();
        stage.push(scale);
    }
    let join2 = |g: &mut PerFlowGraph, name: &str, a, b| {
        let n = g.add_pass(FnPass::new(name, 2, |inp: &[Value]| {
            let (Value::Num(x), Value::Num(y)) = (&inp[0], &inp[1]) else {
                unreachable!("joins receive nums")
            };
            Ok(vec![Value::Num(x * 7.0 + y)])
        }));
        g.connect(a, 0, n, 0).unwrap();
        g.connect(b, 0, n, 1).unwrap();
        n
    };
    let left = join2(&mut g, "joinL", stage[0], stage[1]);
    let right = join2(&mut g, "joinR", stage[2], stage[3]);
    let sink = join2(&mut g, "sink", left, right);
    (g, sink)
}

fn sink_value(out: &perflow::dataflow::Outputs, sink: perflow::NodeId) -> f64 {
    match out.of(sink) {
        [Value::Num(n)] => *n,
        other => panic!("unexpected sink output {other:?}"),
    }
}

#[test]
fn bounded_cache_is_digest_identical_at_any_worker_count() {
    let (g, sink) = build_graph();
    let baseline = sink_value(&g.execute().unwrap(), sink);
    for capacity in [1, 2, 4, 64] {
        let cache = PassCache::with_capacity(capacity);
        for workers in [1, 2, 4, 8] {
            let out = g
                .execute_with(&ExecOptions::new().with_cache(&cache).with_workers(workers))
                .unwrap();
            assert_eq!(
                sink_value(&out, sink),
                baseline,
                "cap {capacity}, {workers} workers"
            );
        }
        let stats = cache.stats();
        if capacity >= 11 {
            // The whole graph fits: the 3 re-executions replay entirely.
            assert_eq!(stats.misses, 11, "cap {capacity}: {stats:?}");
            assert_eq!(stats.hits, 3 * 11, "cap {capacity}: {stats:?}");
        } else {
            assert!(
                stats.evictions > 0,
                "an 11-pass graph must evict at cap {capacity}: {stats:?}"
            );
        }
        assert!(cache.len() <= capacity, "cache exceeded its capacity");
    }
}

#[test]
fn concurrent_executions_share_one_bounded_cache() {
    let (g, sink) = build_graph();
    let baseline = sink_value(&g.execute().unwrap(), sink);
    let cache = PassCache::with_capacity(3);
    std::thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                for workers in [1, 4] {
                    let out = g
                        .execute_with(&ExecOptions::new().with_cache(&cache).with_workers(workers))
                        .unwrap();
                    assert_eq!(sink_value(&out, sink), baseline);
                }
            });
        }
    });
    let stats = cache.stats();
    // Accounting stays coherent under contention: every probe is
    // exactly one of hit or miss (8 threads × 2 executions × 11 nodes),
    // and eviction can never exceed fills.
    assert_eq!(stats.hits + stats.misses, 8 * 2 * 11, "{stats:?}");
    assert!(
        stats.misses >= 11,
        "cold passes miss at least once: {stats:?}"
    );
    assert!(stats.evictions <= stats.misses, "{stats:?}");
    assert!(cache.len() <= 3);
}

#[test]
fn comm_session_reports_are_identical_across_cache_capacities() {
    let prog = driver::workload("cg").expect("cg workload");
    let pflow = perflow::PerFlow::new();
    let cfg = driver::AnalysisConfig {
        ranks: 4,
        small_ranks: 2,
        threads: 2,
        seed: 7,
    };
    let run = pflow
        .run(
            &prog,
            &simrt::RunConfig::new(cfg.ranks)
                .with_threads(cfg.threads)
                .with_seed(cfg.seed),
        )
        .unwrap();
    let obs = perflow::Obs::default();
    let ctx = driver::checkpoint_context("cg", &cfg, &run);

    let digest_with = |capacity: Option<usize>| {
        let res = driver::ResilienceConfig {
            cache_capacity: capacity,
            ..Default::default()
        };
        driver::comm_analysis_session(&run, &obs, &res, ctx)
            .unwrap()
            .report_digest
    };
    let baseline = digest_with(None);
    for cap in [1, 2, 8] {
        assert_eq!(
            digest_with(Some(cap)),
            baseline,
            "cache capacity {cap} changed the comm report"
        );
    }
}

#[test]
fn shared_cache_replays_a_repeated_comm_session() {
    let prog = driver::workload("cg").expect("cg workload");
    let pflow = perflow::PerFlow::new();
    let cfg = driver::AnalysisConfig {
        ranks: 4,
        small_ranks: 2,
        threads: 2,
        seed: 11,
    };
    let run = pflow
        .run(
            &prog,
            &simrt::RunConfig::new(cfg.ranks)
                .with_threads(cfg.threads)
                .with_seed(cfg.seed),
        )
        .unwrap();
    let obs = perflow::Obs::default();
    let res = driver::ResilienceConfig::default();
    let ctx = driver::checkpoint_context("cg", &cfg, &run);
    let cache = PassCache::with_capacity(64);

    let cold = driver::comm_analysis_session_with_cache(&run, &obs, &res, ctx, &cache).unwrap();
    let cold_stats = cache.stats();
    assert!(cold_stats.misses > 0);
    let warm = driver::comm_analysis_session_with_cache(&run, &obs, &res, ctx, &cache).unwrap();
    let warm_stats = cache.stats();

    assert_eq!(warm.report, cold.report, "cached replay changed the report");
    assert_eq!(warm.report_digest, cold.report_digest);
    assert!(
        warm_stats.hits > cold_stats.hits,
        "second session should replay from the shared cache: {cold_stats:?} -> {warm_stats:?}"
    );
    assert_eq!(
        warm_stats.misses, cold_stats.misses,
        "second identical session should add no misses"
    );
}
