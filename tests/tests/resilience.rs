//! Integration properties of the resilient scheduler: injected faults
//! (panics, timeouts) must produce the *same* degraded report at every
//! worker count, and a run that dies partway through must resume from
//! its checkpoint to a result indistinguishable from an uninterrupted
//! run.

use std::sync::atomic::{AtomicUsize, Ordering};

use perflow::pass::{Pass, PassCx};
use perflow::{
    CheckpointFile, CheckpointWriter, ExecOptions, ExecPolicy, NodeId, PerFlowError, PerFlowGraph,
    Value,
};
use proptest::prelude::*;

/// FNV-1a over 64-bit words — a process-independent fingerprint base.
fn fnv(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// What an [`FpPass`] does when it runs.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Behavior {
    /// Deterministic arithmetic over the inputs.
    Compute,
    /// Unwind with a recognizable payload.
    Panic,
}

/// A deterministic, *fingerprinted* numeric pass — unlike `FnPass`, its
/// results can be checkpointed and resumed. The fault behavior is part
/// of the object, not the fingerprint: an armed and a disarmed instance
/// share a checkpoint key, exactly like a re-run of a crashing pipeline
/// after the bug is fixed (the paper's resume story).
struct FpPass {
    name: String,
    arity: usize,
    seed: f64,
    behavior: Behavior,
}

impl Pass for FpPass {
    fn name(&self) -> &str {
        &self.name
    }
    fn arity(&self) -> usize {
        self.arity
    }
    fn run(&self, inputs: &[Value], _cx: &mut PassCx) -> Result<Vec<Value>, PerFlowError> {
        if self.behavior == Behavior::Panic {
            panic!("injected fault in {}", self.name);
        }
        let mut acc = self.seed;
        for (k, v) in inputs.iter().enumerate() {
            acc += (k as f64 + 1.0) * v.as_num().unwrap();
        }
        Ok(vec![Value::Num(acc), Value::Num(-acc)])
    }
    fn fingerprint(&self) -> Option<u64> {
        Some(fnv(&[self.arity as u64, self.seed.to_bits()]))
    }
}

/// A random DAG plus one designated fault node: node `i`'s inputs are
/// drawn from nodes `< i`, so the graph is acyclic by construction.
#[derive(Debug, Clone)]
struct FaultyDag {
    preds: Vec<Vec<usize>>,
    fault: usize,
}

fn faulty_dag_strategy() -> impl Strategy<Value = FaultyDag> {
    (2usize..=10, any::<u64>()).prop_map(|(n, mix)| {
        let mut preds = Vec::with_capacity(n);
        let mut state = mix;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for i in 0..n {
            if i == 0 {
                preds.push(Vec::new());
                continue;
            }
            let fan_in = next() % 4.min(i + 1);
            preds.push((0..fan_in).map(|_| next() % i).collect());
        }
        let fault = next() % n;
        FaultyDag { preds, fault }
    })
}

/// Materialize the DAG; the fault node gets `behavior`, everyone else
/// computes. Seeds are a pure function of the node index, so a disarmed
/// rebuild produces fingerprint-identical passes.
fn build(dag: &FaultyDag, behavior: Behavior) -> (PerFlowGraph, Vec<NodeId>) {
    let mut g = PerFlowGraph::new();
    let mut nodes = Vec::with_capacity(dag.preds.len());
    for (i, preds) in dag.preds.iter().enumerate() {
        let id = g.add_pass(FpPass {
            name: format!("n{i}"),
            arity: preds.len(),
            seed: (i as f64) * 31.0 + 7.0,
            behavior: if i == dag.fault {
                behavior
            } else {
                Behavior::Compute
            },
        });
        for (port, &p) in preds.iter().enumerate() {
            g.connect(nodes[p], port % 2, id, port).unwrap();
        }
        nodes.push(id);
    }
    (g, nodes)
}

/// Flatten an isolate-mode outcome into a comparable digest: surviving
/// node values, failure renderings, skipped set, warnings, and trail.
fn degraded_digest(out: &perflow::dataflow::Outputs, nodes: &[NodeId]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    for &id in nodes {
        let vals: Vec<Option<f64>> = out.of(id).iter().map(Value::as_num).collect();
        let _ = writeln!(s, "{id:?}: {vals:?}");
    }
    let _ = writeln!(
        s,
        "failures: {:?}",
        out.failures
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
    );
    let _ = writeln!(s, "skipped: {:?}", out.skipped);
    let _ = writeln!(s, "warnings: {:?}", out.warnings);
    let _ = writeln!(s, "trail: {:?}", out.trail);
    s
}

/// Unique checkpoint path per invocation (tests run concurrently).
fn temp_checkpoint() -> std::path::PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "perflow-resilience-{}-{n}.pfck",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under `Isolate`, an injected panic yields the *identical* degraded
    /// report — same failures, skipped cascade, surviving values,
    /// warnings, and trail — at 1, 2, and 8 workers.
    #[test]
    fn injected_panic_degrades_identically_across_workers(dag in faulty_dag_strategy()) {
        let (g, nodes) = build(&dag, Behavior::Panic);
        let run = |workers: usize| {
            g.execute_with(
                &ExecOptions::new()
                    .with_policy(ExecPolicy::Isolate)
                    .with_workers(workers),
            )
            .unwrap()
        };
        let serial = run(1);
        prop_assert!(serial.degraded());
        prop_assert_eq!(serial.failures.len(), 1);
        let reference = degraded_digest(&serial, &nodes);
        for workers in [2usize, 8] {
            let par = degraded_digest(&run(workers), &nodes);
            prop_assert_eq!(&reference, &par, "divergence at {} workers", workers);
        }
    }

    /// Under `FailFast`, the same injected panic surfaces as the same
    /// structured error at every worker count.
    #[test]
    fn injected_panic_failfast_error_is_stable(dag in faulty_dag_strategy()) {
        let (g, _) = build(&dag, Behavior::Panic);
        let err = |workers: usize| {
            g.execute_with(&ExecOptions::new().with_workers(workers))
                .unwrap_err()
                .to_string()
        };
        let reference = err(1);
        prop_assert!(reference.contains("panicked"), "{}", reference);
        prop_assert!(reference.contains("injected fault"), "{}", reference);
        for workers in [2usize, 8] {
            prop_assert_eq!(&reference, &err(workers));
        }
    }

    /// Kill-then-resume round trip: a run that dies on an injected panic
    /// leaves a checkpoint of every completed pass; disarming the fault
    /// and resuming replays that prefix and converges to a result
    /// identical to a run that never crashed.
    #[test]
    fn kill_then_resume_matches_uninterrupted_run(dag in faulty_dag_strategy()) {
        // Reference: the uninterrupted (disarmed) execution.
        let (clean, nodes) = build(&dag, Behavior::Compute);
        let reference = clean.execute().unwrap();

        // Doomed run: checkpoint everything that completes, then die.
        let path = temp_checkpoint();
        let writer = CheckpointWriter::create(&path, 0xC0FFEE).unwrap();
        let (armed, _) = build(&dag, Behavior::Panic);
        let crash = armed.execute_with(
            &ExecOptions::new().with_workers(2).with_checkpoint(&writer),
        );
        prop_assert!(crash.is_err());
        let recorded = writer.recorded();
        prop_assert!(writer.error().is_none());
        drop(writer);

        // Resume: the persisted prefix replays, the rest executes.
        let file = CheckpointFile::load(&path).unwrap();
        prop_assert!(!file.truncated);
        file.expect_context(0xC0FFEE).unwrap();
        prop_assert_eq!(file.len(), recorded);
        let snapshot = file.rebind(&[]);
        prop_assert_eq!(snapshot.dropped, 0);
        let resumed = clean
            .execute_with(&ExecOptions::new().with_resume(&snapshot))
            .unwrap();
        std::fs::remove_file(&path).ok();

        prop_assert_eq!(resumed.resumed, recorded, "every persisted pass must replay");
        prop_assert!(resumed.failures.is_empty());
        for &id in &nodes {
            let a: Vec<Option<f64>> = reference.of(id).iter().map(Value::as_num).collect();
            let b: Vec<Option<f64>> = resumed.of(id).iter().map(Value::as_num).collect();
            prop_assert_eq!(a, b, "node {:?} diverged after resume", id);
        }
        prop_assert_eq!(&reference.trail, &resumed.trail);
    }
}

/// A stalled pass trips the watchdog deadline and degrades identically
/// at 1, 2, and 8 workers (fixed graph: sleep is wall-clock, so this is
/// a plain test rather than a property).
#[test]
fn injected_timeout_degrades_identically_across_workers() {
    struct Stall;
    impl Pass for Stall {
        fn name(&self) -> &str {
            "stall"
        }
        fn arity(&self) -> usize {
            0
        }
        fn run(&self, _inputs: &[Value], _cx: &mut PassCx) -> Result<Vec<Value>, PerFlowError> {
            std::thread::sleep(std::time::Duration::from_millis(200));
            Ok(vec![Value::Num(1.0)])
        }
    }

    let mut g = PerFlowGraph::new();
    let stall = g.add_pass(Stall);
    let ok = g.add_pass(FpPass {
        name: "ok".into(),
        arity: 0,
        seed: 3.0,
        behavior: Behavior::Compute,
    });
    let downstream = g.add_pass(FpPass {
        name: "downstream".into(),
        arity: 1,
        seed: 5.0,
        behavior: Behavior::Compute,
    });
    g.connect(stall, 0, downstream, 0).unwrap();
    let nodes = [stall, ok, downstream];

    let run = |workers: usize| {
        g.execute_with(
            &ExecOptions::new()
                .with_policy(ExecPolicy::Isolate)
                .with_pass_timeout_ms(10)
                .with_workers(workers),
        )
        .unwrap()
    };
    let serial = run(1);
    assert!(serial.degraded());
    assert_eq!(serial.failures.len(), 1);
    assert!(
        serial.failures[0].to_string().contains("deadline"),
        "{}",
        serial.failures[0]
    );
    assert_eq!(serial.skipped, vec![downstream]);
    assert_eq!(serial.of(ok).first().and_then(Value::as_num), Some(3.0));
    let reference = degraded_digest(&serial, &nodes);
    for workers in [2usize, 8] {
        assert_eq!(
            reference,
            degraded_digest(&run(workers), &nodes),
            "divergence at {workers} workers"
        );
    }
}
