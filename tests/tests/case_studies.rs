//! Integration tests of the three paper case studies (§5.3-5.5): each
//! paradigm must locate the planted bug in the corresponding workload,
//! and fixing the bug must pay off roughly as the paper reports.

use perflow::paradigms::{contention_diagnosis, iterative_causal, scalability_analysis};
use perflow::PerFlow;
use simrt::RunConfig;

// ----------------------------------------------------------- case study A

#[test]
fn zeusmp_scalability_analysis_finds_bvald_boundary_loop() {
    let pflow = PerFlow::new();
    let prog = workloads::zeusmp();
    let small = pflow.run(&prog, &RunConfig::new(4)).unwrap();
    let large = pflow.run(&prog, &RunConfig::new(32)).unwrap();
    let result = scalability_analysis(&small, &large, 10, 0.2).unwrap();

    let pag = result.root_causes.graph.pag();
    let names: Vec<&str> = result
        .root_causes
        .ids
        .iter()
        .map(|&v| pag.vertex_name(v))
        .collect();
    assert!(
        names
            .iter()
            .any(|n| *n == "bvald_fill" || *n == "loop_10.1" || *n == "loop_10"),
        "root causes missing bvald boundary loop: {names:?}"
    );
    // The waitall chain shows in the scaling hotspots (the secondary bug).
    let hot_names: Vec<&str> = result
        .scaling_hotspots
        .ids
        .iter()
        .map(|&v| result.scaling_hotspots.graph.pag().vertex_name(v))
        .collect();
    assert!(
        hot_names
            .iter()
            .any(|n| *n == "MPI_Waitall" || *n == "MPI_Allreduce"),
        "waitall/allreduce loss not detected: {hot_names:?}"
    );
}

#[test]
fn zeusmp_fix_shape_matches_paper() {
    // Paper: speedup 72.57× → 77.71× of ideal 128× (16→2048 ranks); i.e.
    // a modest single-digit-percent gain at the largest scale. We check
    // the same *shape* at laptop scale (4 → 32 ranks).
    let pflow = PerFlow::new();
    let t_small_bug = pflow
        .run(&workloads::zeusmp(), &RunConfig::new(4))
        .unwrap()
        .data()
        .total_time;
    let t_large_bug = pflow
        .run(&workloads::zeusmp(), &RunConfig::new(32))
        .unwrap()
        .data()
        .total_time;
    let t_large_fix = pflow
        .run(&workloads::zeusmp_fixed(), &RunConfig::new(32))
        .unwrap()
        .data()
        .total_time;
    let speedup_bug = t_small_bug / t_large_bug;
    let speedup_fix = t_small_bug / t_large_fix;
    assert!(
        speedup_fix > speedup_bug,
        "fix must improve speedup: {speedup_bug} vs {speedup_fix}"
    );
    let gain = t_large_bug / t_large_fix - 1.0;
    assert!(
        gain > 0.02 && gain < 0.6,
        "gain should be modest like the paper's 6.91%: {gain}"
    );
}

// ----------------------------------------------------------- case study B

#[test]
fn lammps_iterated_causal_blames_pair_force_loop() {
    let pflow = PerFlow::new();
    let run = pflow
        .run(&workloads::lammps(), &RunConfig::new(16))
        .unwrap();
    let (causes, _) = iterative_causal(&run, "MPI_*", 8, 5).unwrap();
    let pag = causes.graph.pag();
    let names: Vec<&str> = causes.ids.iter().map(|&v| pag.vertex_name(v)).collect();
    assert!(
        names
            .iter()
            .any(|n| *n == "lj_inner" || *n == "loop_1.1" || *n == "loop_1"),
        "causes {names:?}"
    );
    // The overloaded ranks (0-2) should be among the blamed replicas.
    let procs: Vec<i64> = causes
        .ids
        .iter()
        .filter_map(|&v| pag.vprop(v, pag::keys::PROC).and_then(|p| p.as_i64()))
        .collect();
    assert!(
        procs.iter().any(|&p| p < 3),
        "blamed replicas on procs {procs:?}"
    );
}

#[test]
fn lammps_comm_share_is_significant_like_paper() {
    // Paper: total communication time up to 28.91 %.
    let pflow = PerFlow::new();
    let run = pflow
        .run(&workloads::lammps(), &RunConfig::new(16))
        .unwrap();
    let share = run.data().total_comm_time() / run.data().elapsed.iter().sum::<f64>();
    assert!(
        (0.1..0.6).contains(&share),
        "comm share {share} out of plausible band"
    );
}

// ----------------------------------------------------------- case study C

#[test]
fn vite_contention_diagnosis_finds_allocator() {
    let pflow = PerFlow::new();
    let prog = workloads::vite();
    let fast = pflow
        .run(&prog, &RunConfig::new(4).with_threads(2))
        .unwrap();
    let slow = pflow
        .run(&prog, &RunConfig::new(4).with_threads(8))
        .unwrap();
    let d = contention_diagnosis(&fast, &slow, 10).unwrap();
    assert!(!d.contention_vertices.is_empty());
    let pag = d.contention_vertices.graph.pag();
    let names: std::collections::HashSet<&str> = d
        .contention_vertices
        .ids
        .iter()
        .map(|&v| pag.vertex_name(v))
        .collect();
    assert!(
        names.contains("_M_realloc_insert") || names.contains("_M_emplace"),
        "contention names {names:?}"
    );
}

#[test]
fn vite_optimization_magnitude_matches_paper_shape() {
    // Paper: 25.29× at 8 threads; speedup(8 vs 2 threads) goes from
    // 0.56× to 1.46×. Check both shapes.
    let pflow = PerFlow::new();
    let time = |prog: &progmodel::Program, t: u32| {
        pflow
            .run(prog, &RunConfig::new(8).with_threads(t))
            .unwrap()
            .data()
            .total_time
    };
    let buggy = workloads::vite();
    let opt = workloads::vite_optimized();
    let (b2, b8) = (time(&buggy, 2), time(&buggy, 8));
    let (o2, o8) = (time(&opt, 2), time(&opt, 8));
    // Buggy: 8 threads no faster than 2.
    assert!(b8 / b2 > 0.9, "buggy speedup {:.2}", b2 / b8);
    // Optimized: 8 threads clearly faster than 2.
    assert!(o2 / o8 > 1.3, "optimized speedup {:.2}", o2 / o8);
    // Head-to-head at 8 threads: order-of-magnitude factor.
    let factor = b8 / o8;
    assert!(
        factor > 8.0,
        "optimization factor {factor:.1} (paper: 25.29)"
    );
}

// --------------------------------------------------- baselines cross-check

#[test]
fn scalana_baseline_agrees_with_perflow_paradigm() {
    let prog = workloads::zeusmp();
    let small = collect::profile(&prog, &RunConfig::new(4)).unwrap();
    let large = collect::profile(&prog, &RunConfig::new(32)).unwrap();
    let scalana = baselines::scalana_analyze(&small, &large, 6);
    assert!(!scalana.causes.is_empty());
    let names: Vec<&str> = scalana.causes.iter().map(|c| c.name.as_str()).collect();
    // The monolithic analyzer lands in the same code region.
    assert!(
        names.iter().any(|n| n.contains("bvald")
            || n.contains("loop_10")
            || n.contains("newdt")
            || n.contains("hsmoc")
            || n.contains("nudt")),
        "scalana causes {names:?}"
    );
}

#[test]
fn mpip_baseline_sees_the_waitall_but_not_the_cause() {
    let report = baselines::mpip_profile(&workloads::zeusmp(), &RunConfig::new(16)).unwrap();
    // mpiP reports MPI_Waitall / MPI_Allreduce time shares...
    assert!(report.function_pct("MPI_Waitall") > 0.0);
    assert!(report.function_pct("MPI_Allreduce") > 0.0);
    // ...but nothing in the report names the offending loop: its rows
    // only contain MPI functions.
    assert!(report.sites.iter().all(|s| s.call.starts_with("MPI_")));
}
