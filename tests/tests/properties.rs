//! Property-based tests over core invariants, spanning crates: random
//! programs are generated, simulated and analyzed; structural and timing
//! invariants must always hold.

use proptest::prelude::*;
use progmodel::{c, nranks, rank, Expr, ProgramBuilder};
use simrt::{simulate, RunConfig};

/// A tiny random program description.
#[derive(Debug, Clone)]
struct RandProgram {
    kernels: Vec<(u32, bool)>, // (cost 1..=500 µs, rank_scaled)
    iters: u32,
    use_allreduce: bool,
    use_ring: bool,
    nranks: u32,
    seed: u64,
}

fn rand_program_strategy() -> impl Strategy<Value = RandProgram> {
    (
        prop::collection::vec((1u32..=500, any::<bool>()), 1..6),
        1u32..=20,
        any::<bool>(),
        any::<bool>(),
        2u32..=8,
        any::<u64>(),
    )
        .prop_map(|(kernels, iters, use_allreduce, use_ring, nranks, seed)| RandProgram {
            kernels,
            iters,
            use_allreduce,
            use_ring,
            nranks,
            seed,
        })
}

fn build(rp: &RandProgram) -> progmodel::Program {
    let mut pb = ProgramBuilder::new("prop");
    let main = pb.declare("main", "p.c");
    let kernels = rp.kernels.clone();
    let use_allreduce = rp.use_allreduce;
    let use_ring = rp.use_ring;
    pb.define(main, |f| {
        f.loop_("it", c(rp.iters as f64), |b| {
            for (i, (cost, scaled)) in kernels.iter().enumerate() {
                let e: Expr = if *scaled {
                    (rank() + 1.0) * c(*cost as f64)
                } else {
                    c(*cost as f64)
                };
                b.compute(&format!("k{i}"), e);
            }
            if use_ring {
                b.irecv((rank() + nranks() - 1.0).rem(nranks()), c(256.0), 0);
                b.isend((rank() + 1.0).rem(nranks()), c(256.0), 0);
                b.waitall();
            }
            if use_allreduce {
                b.allreduce(c(16.0));
            }
        });
    });
    pb.build(main)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Simulation must terminate, be deterministic, and produce clocks
    /// that never run backwards.
    #[test]
    fn simulation_invariants(rp in rand_program_strategy()) {
        let prog = build(&rp);
        let cfg = RunConfig::new(rp.nranks).with_seed(rp.seed);
        let a = simulate(&prog, &cfg).unwrap();
        let b = simulate(&prog, &cfg).unwrap();
        prop_assert_eq!(a.total_time, b.total_time);
        prop_assert!(a.total_time >= 0.0);
        prop_assert_eq!(a.elapsed.len(), rp.nranks as usize);
        for r in &a.comm_records {
            prop_assert!(r.complete >= r.post, "comm record went backwards");
            prop_assert!(r.wait >= 0.0);
            prop_assert!(r.wait <= r.complete - r.post + 1e-9);
        }
        // Collectives (if present) synchronize: with an allreduce last in
        // the loop body, final clocks agree up to the per-rank sampling
        // perturbation (each rank pays its own sample-handler costs).
        if rp.use_allreduce {
            let min = a.elapsed.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = a.elapsed.iter().cloned().fold(0.0, f64::max);
            let slack = 8.0 * (1.0 + max / 5000.0); // ≤ one sample cost per period
            prop_assert!(max - min <= slack, "collective did not synchronize: spread {}", max - min);
        }
    }

    /// The PAG pipeline preserves structural invariants for any program.
    #[test]
    fn pag_invariants(rp in rand_program_strategy()) {
        let prog = build(&rp);
        let cfg = RunConfig::new(rp.nranks).with_seed(rp.seed);
        let run = collect::profile(&prog, &cfg).unwrap();
        // Top-down view is a tree rooted at main.
        prop_assert_eq!(run.pag.num_edges(), run.pag.num_vertices() - 1);
        let root = run.root;
        prop_assert_eq!(run.pag.in_degree(root), 0);
        // Every vertex is reachable from the root.
        let order = graphalgo::bfs_order(&run.pag, root);
        prop_assert_eq!(order.len(), run.pag.num_vertices());
        // Per-proc vectors have exactly nranks entries.
        for v in run.pag.vertex_ids() {
            if let Some(vec) = run.pag.vprop(v, pag::keys::TIME_PER_PROC)
                .and_then(|p| p.as_f64_slice()) {
                prop_assert_eq!(vec.len(), rp.nranks as usize);
            }
        }
        // Parallel view replicates exactly.
        let pv = collect::build_parallel_view(&run);
        prop_assert_eq!(pv.num_vertices(), run.pag.num_vertices() * rp.nranks as usize);
        // Serialization roundtrips.
        let back = pag::serialize::decode(&pag::serialize::encode(&pv)).unwrap();
        prop_assert_eq!(back.num_vertices(), pv.num_vertices());
        prop_assert_eq!(back.num_edges(), pv.num_edges());
    }

    /// Set algebra laws hold on sets derived from real runs.
    #[test]
    fn set_algebra_laws(rp in rand_program_strategy()) {
        use perflow::{PerFlow, RunHandleExt};
        let prog = build(&rp);
        let pflow = PerFlow::new();
        let run = pflow.run(&prog, &RunConfig::new(rp.nranks).with_seed(rp.seed)).unwrap();
        let all = run.vertices();
        let comm = all.filter_name("MPI_*");
        let compute = all.filter_name("k*");
        // union is commutative on membership.
        let ab = comm.union(&compute).unwrap();
        let ba = compute.union(&comm).unwrap();
        let mut a_sorted = ab.ids.clone();
        let mut b_sorted = ba.ids.clone();
        a_sorted.sort();
        b_sorted.sort();
        prop_assert_eq!(a_sorted, b_sorted);
        // intersect(x, x) == x; difference(x, x) == ∅.
        prop_assert_eq!(comm.intersect(&comm).unwrap().len(), comm.len());
        prop_assert_eq!(comm.difference(&comm).unwrap().len(), 0);
        // filter ⊆ input, top(n) ≤ n.
        prop_assert!(comm.len() <= all.len());
        prop_assert!(all.sort_by(pag::keys::TIME).top(3).len() <= 3);
        // Hotspot output is sorted descending by the metric.
        let hot = pflow.hotspot_detection(&all, all.len());
        let times: Vec<f64> = hot.ids.iter().map(|&v| hot.graph.pag().vertex_time(v)).collect();
        for w in times.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
    }
}
