//! Property-based tests over core invariants, spanning crates: random
//! programs are generated, simulated and analyzed; structural and timing
//! invariants must always hold.

use progmodel::{c, nranks, rank, Expr, ProgramBuilder};
use proptest::prelude::*;
use simrt::{simulate, RunConfig};

/// A tiny random program description.
#[derive(Debug, Clone)]
struct RandProgram {
    kernels: Vec<(u32, bool)>, // (cost 1..=500 µs, rank_scaled)
    iters: u32,
    use_allreduce: bool,
    use_ring: bool,
    nranks: u32,
    seed: u64,
}

fn rand_program_strategy() -> impl Strategy<Value = RandProgram> {
    (
        prop::collection::vec((1u32..=500, any::<bool>()), 1..6),
        1u32..=20,
        any::<bool>(),
        any::<bool>(),
        2u32..=8,
        any::<u64>(),
    )
        .prop_map(
            |(kernels, iters, use_allreduce, use_ring, nranks, seed)| RandProgram {
                kernels,
                iters,
                use_allreduce,
                use_ring,
                nranks,
                seed,
            },
        )
}

fn build(rp: &RandProgram) -> progmodel::Program {
    let mut pb = ProgramBuilder::new("prop");
    let main = pb.declare("main", "p.c");
    let kernels = rp.kernels.clone();
    let use_allreduce = rp.use_allreduce;
    let use_ring = rp.use_ring;
    pb.define(main, |f| {
        f.loop_("it", c(rp.iters as f64), |b| {
            for (i, (cost, scaled)) in kernels.iter().enumerate() {
                let e: Expr = if *scaled {
                    (rank() + 1.0) * c(*cost as f64)
                } else {
                    c(*cost as f64)
                };
                b.compute(&format!("k{i}"), e);
            }
            if use_ring {
                b.irecv((rank() + nranks() - 1.0).rem(nranks()), c(256.0), 0);
                b.isend((rank() + 1.0).rem(nranks()), c(256.0), 0);
                b.waitall();
            }
            if use_allreduce {
                b.allreduce(c(16.0));
            }
        });
    });
    pb.build(main)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Simulation must terminate, be deterministic, and produce clocks
    /// that never run backwards.
    #[test]
    fn simulation_invariants(rp in rand_program_strategy()) {
        let prog = build(&rp);
        let cfg = RunConfig::new(rp.nranks).with_seed(rp.seed);
        let a = simulate(&prog, &cfg).unwrap();
        let b = simulate(&prog, &cfg).unwrap();
        prop_assert_eq!(a.total_time, b.total_time);
        prop_assert!(a.total_time >= 0.0);
        prop_assert_eq!(a.elapsed.len(), rp.nranks as usize);
        for r in &a.comm_records {
            prop_assert!(r.complete >= r.post, "comm record went backwards");
            prop_assert!(r.wait >= 0.0);
            prop_assert!(r.wait <= r.complete - r.post + 1e-9);
        }
        // Collectives (if present) synchronize: with an allreduce last in
        // the loop body, final clocks agree up to the per-rank sampling
        // perturbation (each rank pays its own sample-handler costs).
        if rp.use_allreduce {
            let min = a.elapsed.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = a.elapsed.iter().cloned().fold(0.0, f64::max);
            let slack = 8.0 * (1.0 + max / 5000.0); // ≤ one sample cost per period
            prop_assert!(max - min <= slack, "collective did not synchronize: spread {}", max - min);
        }
    }

    /// The PAG pipeline preserves structural invariants for any program.
    #[test]
    fn pag_invariants(rp in rand_program_strategy()) {
        let prog = build(&rp);
        let cfg = RunConfig::new(rp.nranks).with_seed(rp.seed);
        let run = collect::profile(&prog, &cfg).unwrap();
        // Top-down view is a tree rooted at main.
        prop_assert_eq!(run.pag.num_edges(), run.pag.num_vertices() - 1);
        let root = run.root;
        prop_assert_eq!(run.pag.in_degree(root), 0);
        // Every vertex is reachable from the root.
        let order = graphalgo::bfs_order(&run.pag, root);
        prop_assert_eq!(order.len(), run.pag.num_vertices());
        // Per-proc vectors have exactly nranks entries.
        for v in run.pag.vertex_ids() {
            if let Some(vec) = run.pag.metric_vec(v, pag::mkeys::TIME_PER_PROC) {
                prop_assert_eq!(vec.len(), rp.nranks as usize);
            }
        }
        // Parallel view replicates exactly.
        let pv = collect::build_parallel_view(&run);
        prop_assert_eq!(pv.num_vertices(), run.pag.num_vertices() * rp.nranks as usize);
        // Serialization roundtrips.
        let back = pag::serialize::decode(&pag::serialize::encode(&pv)).unwrap();
        prop_assert_eq!(back.num_vertices(), pv.num_vertices());
        prop_assert_eq!(back.num_edges(), pv.num_edges());
    }

    /// Embedding must never panic and must conserve attributed time
    /// under arbitrary injected sample loss and call-stack truncation:
    /// every fired sample is either kept or counted as dropped, and the
    /// lost time plus the degraded PAG's attributed self time equals the
    /// clean PAG's.
    #[test]
    fn embed_survives_sample_loss_and_truncation(
        rp in rand_program_strategy(),
        loss in 0.0f64..0.95,
        depth in prop::option::of(0usize..5),
    ) {
        use simrt::FaultPlan;
        let prog = build(&rp);
        let clean_cfg = RunConfig::new(rp.nranks).with_seed(rp.seed);
        let mut faults = FaultPlan::new().with_sample_loss(loss);
        if let Some(d) = depth {
            faults = faults.with_stack_truncation(d);
        }
        let fault_cfg = clean_cfg.clone().with_faults(faults);
        let clean = collect::profile(&prog, &clean_cfg).unwrap();
        let run = collect::profile(&prog, &fault_cfg).unwrap(); // must not panic

        // Collection faults are observer-only: virtual timing identical.
        prop_assert_eq!(&run.data.elapsed, &clean.data.elapsed);

        // Sample conservation: every fired sample is kept or counted lost.
        let kept: u64 = run.data.samples.values().sum();
        let lost: u64 = run.data.dropped_samples.values().sum();
        let clean_kept: u64 = clean.data.samples.values().sum();
        prop_assert_eq!(kept + lost, clean_kept);

        // Attributed-time conservation on the PAG.
        let period = run.data.sample_period_us.unwrap();
        let sum_self = |r: &collect::ProfiledRun| -> f64 {
            r.pag
                .vertex_ids()
                .map(|v| {
                    r.pag
                        .vprop(v, pag::keys::SELF_TIME)
                        .and_then(|p| p.as_f64())
                        .unwrap_or(0.0)
                })
                .sum()
        };
        let faulted_total = sum_self(&run) + lost as f64 * period;
        let clean_total = sum_self(&clean);
        prop_assert!(
            (faulted_total - clean_total).abs() <= 1e-6 * clean_total.max(1.0),
            "attributed time not conserved: {} vs {}", faulted_total, clean_total
        );

        // Completeness metadata stays in range and appears iff degraded.
        for v in run.pag.vertex_ids() {
            if let Some(cp) = run.pag.vprop(v, pag::keys::COMPLETENESS).and_then(|p| p.as_f64()) {
                prop_assert!((0.0..=1.0).contains(&cp), "completeness {} out of range", cp);
            }
        }
        if lost > 0 {
            let root_compl = run
                .pag
                .vprop(run.root, pag::keys::COMPLETENESS)
                .and_then(|p| p.as_f64());
            prop_assert!(root_compl.is_some(), "degraded run must mark the root");
        }
    }

    /// Set algebra laws hold on sets derived from real runs.
    #[test]
    fn set_algebra_laws(rp in rand_program_strategy()) {
        use perflow::{PerFlow, RunHandleExt};
        let prog = build(&rp);
        let pflow = PerFlow::new();
        let run = pflow.run(&prog, &RunConfig::new(rp.nranks).with_seed(rp.seed)).unwrap();
        let all = run.vertices();
        let comm = all.filter_name("MPI_*");
        let compute = all.filter_name("k*");
        // union is commutative on membership.
        let ab = comm.union(&compute).unwrap();
        let ba = compute.union(&comm).unwrap();
        let mut a_sorted = ab.ids.clone();
        let mut b_sorted = ba.ids.clone();
        a_sorted.sort();
        b_sorted.sort();
        prop_assert_eq!(a_sorted, b_sorted);
        // intersect(x, x) == x; difference(x, x) == ∅.
        prop_assert_eq!(comm.intersect(&comm).unwrap().len(), comm.len());
        prop_assert_eq!(comm.difference(&comm).unwrap().len(), 0);
        // filter ⊆ input, top(n) ≤ n.
        prop_assert!(comm.len() <= all.len());
        prop_assert!(all.sort_by(pag::keys::TIME).top(3).len() <= 3);
        // Hotspot output is sorted descending by the metric.
        let hot = pflow.hotspot_detection(&all, all.len());
        let times: Vec<f64> = hot.ids.iter().map(|&v| hot.graph.pag().vertex_time(v)).collect();
        for w in times.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
    }
}
