//! End-to-end exercise of the `perflow-serve` daemon over real sockets:
//! concurrent multi-tenant submissions, quota enforcement, the
//! fingerprint-keyed report cache, and graceful drain.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use serve::json::Json;
use serve::{Server, ServerConfig};

fn http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&str>,
) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: test\r\n");
    for (k, v) in headers {
        req.push_str(&format!("{k}: {v}\r\n"));
    }
    match body {
        Some(b) => req.push_str(&format!("Content-Length: {}\r\n\r\n{b}", b.len())),
        None => req.push_str("\r\n"),
    }
    s.write_all(req.as_bytes()).unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn submit(addr: SocketAddr, key: &str, spec: &str) -> (u16, Json) {
    let (status, body) = http(addr, "POST", "/jobs", &[("X-Api-Key", key)], Some(spec));
    (status, Json::parse(&body).expect("JSON response"))
}

/// Poll `GET /jobs/:id` until it settles; panics after `secs`.
fn wait_done(addr: SocketAddr, key: &str, id: u64, secs: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        let (status, body) = http(
            addr,
            "GET",
            &format!("/jobs/{id}"),
            &[("X-Api-Key", key)],
            None,
        );
        assert_eq!(status, 200, "job {id} lookup: {body}");
        let j = Json::parse(&body).unwrap();
        match j.get("status").and_then(Json::as_str) {
            Some("done") | Some("failed") => return j,
            _ if Instant::now() > deadline => panic!("job {id} never settled: {body}"),
            _ => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

fn job_spec(workload: &str) -> String {
    format!(r#"{{"workload":"{workload}","paradigm":"hotspot","ranks":2,"threads":2,"seed":3}}"#)
}

#[test]
fn eight_concurrent_distinct_workloads_complete() {
    let server = Server::start(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let workloads = ["bt", "cg", "ep", "ft", "is", "lu", "mg", "sp"];
    let ids: Vec<(String, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = workloads
            .iter()
            .map(|w| {
                s.spawn(move || {
                    let (status, j) = submit(addr, "tenant-a", &job_spec(w));
                    assert_eq!(status, 202, "{w}: {}", j.render());
                    (w.to_string(), j.get("id").and_then(Json::as_u64).unwrap())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(ids.len(), 8);

    let mut digests = Vec::new();
    for (w, id) in &ids {
        let j = wait_done(addr, "tenant-a", *id, 60);
        assert_eq!(
            j.get("status").and_then(Json::as_str),
            Some("done"),
            "{w}: {}",
            j.render()
        );
        assert_eq!(j.get("workload").and_then(Json::as_str), Some(w.as_str()));
        let report = j.get("report").and_then(Json::as_str).unwrap();
        assert!(!report.is_empty(), "{w} produced an empty report");
        digests.push(
            j.get("report_digest")
                .and_then(Json::as_str)
                .unwrap()
                .to_string(),
        );
    }
    // Distinct workloads produce distinct reports.
    let mut unique = digests.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), digests.len(), "digest collision: {digests:?}");

    let stats = server.shutdown();
    assert_eq!(stats.completed, 8);
    assert_eq!(stats.failed, 0);
}

#[test]
fn per_tenant_quota_is_enforced() {
    // One worker + held jobs keep tenant-a's submissions active.
    let server = Server::start(ServerConfig {
        workers: 1,
        tenant_quota: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let held = r#"{"workload":"ep","paradigm":"hotspot","ranks":2,"threads":2,"hold_ms":400}"#;

    let (s1, j1) = submit(addr, "tenant-a", held);
    let (s2, _) = submit(addr, "tenant-a", held);
    assert_eq!((s1, s2), (202, 202));
    // Third active job for the same tenant trips the quota.
    let (s3, j3) = submit(addr, "tenant-a", held);
    assert_eq!(s3, 429, "{}", j3.render());
    assert_eq!(j3.get("quota").and_then(Json::as_u64), Some(2));
    // A different tenant is unaffected.
    let (s4, j4) = submit(addr, "tenant-b", &job_spec("cg"));
    assert_eq!(s4, 202, "{}", j4.render());

    // Once tenant-a's jobs settle, its quota slot frees up.
    let id1 = j1.get("id").and_then(Json::as_u64).unwrap();
    wait_done(addr, "tenant-a", id1, 60);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (s, j) = submit(addr, "tenant-a", &job_spec("is"));
        if s == 202 {
            break;
        }
        assert_eq!(s, 429, "{}", j.render());
        assert!(Instant::now() < deadline, "quota slot never freed");
        std::thread::sleep(Duration::from_millis(25));
    }
    server.shutdown();
}

#[test]
fn repeated_identical_submission_is_served_from_the_report_cache() {
    let server = Server::start(ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let spec = r#"{"workload":"cg","paradigm":"comm","ranks":4,"threads":2,"seed":9}"#;

    let (s1, j1) = submit(addr, "t", spec);
    assert_eq!(s1, 202);
    let cold = wait_done(addr, "t", j1.get("id").and_then(Json::as_u64).unwrap(), 60);
    assert_eq!(cold.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(cold.get("cached").and_then(Json::as_bool), Some(false));

    let (s2, j2) = submit(addr, "t", spec);
    assert_eq!(s2, 202);
    let warm = wait_done(addr, "t", j2.get("id").and_then(Json::as_u64).unwrap(), 60);
    assert_eq!(
        warm.get("cached").and_then(Json::as_bool),
        Some(true),
        "identical resubmission should come from the report cache: {}",
        warm.render()
    );
    // Byte-identical report, identical digest.
    assert_eq!(
        warm.get("report").and_then(Json::as_str),
        cold.get("report").and_then(Json::as_str)
    );
    assert_eq!(
        warm.get("report_digest").and_then(Json::as_str),
        cold.get("report_digest").and_then(Json::as_str)
    );

    // The hit is visible in /metrics.
    let (ms, metrics) = http(addr, "GET", "/metrics", &[], None);
    assert_eq!(ms, 200);
    let hit_line = metrics
        .lines()
        .find(|l| l.starts_with("perflow_serve_report_cache_hit_total"))
        .unwrap_or_else(|| panic!("no report-cache hit counter in:\n{metrics}"));
    let hits: f64 = hit_line.split(' ').next_back().unwrap().parse().unwrap();
    assert!(hits >= 1.0, "{hit_line}");
    assert!(metrics.contains("perflow_serve_jobs_submitted_total 2"));

    let stats = server.shutdown();
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.report_cache_hits, 1);
}

#[test]
fn query_endpoint_lints_before_enqueue_and_matches_the_paradigm() {
    let server = Server::start(ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // A typo'd metric is rejected 400 with PF03xx diagnostics before
    // anything is admitted: the lint runs pre-enqueue, so no job
    // record exists and no pass executes.
    let bad = r#"{"workload":"cg","ranks":2,"threads":2,"seed":3,
                  "query":"from vertices | filter tme > 10 | select name"}"#;
    let (s, body) = http(addr, "POST", "/query", &[("X-Api-Key", "t")], Some(bad));
    assert_eq!(s, 400, "{body}");
    let j = Json::parse(&body).expect("diagnostics body must be valid JSON");
    assert_eq!(j.get("error").and_then(Json::as_str), Some("invalid query"));
    assert!(body.contains("PF0301"), "{body}");
    assert!(body.contains("did you mean `time`"), "{body}");
    let (_, jobs) = http(addr, "GET", "/jobs", &[("X-Api-Key", "t")], None);
    assert_eq!(jobs.trim(), r#"{"jobs":[]}"#, "rejected query was enqueued");

    // The same lint gates query specs on the generic /jobs route too.
    let (s, body) = http(addr, "POST", "/jobs", &[("X-Api-Key", "t")], Some(bad));
    assert_eq!(s, 400, "{body}");
    assert!(body.contains("PF0301"), "{body}");

    // /query without a query field is a 400, not a default paradigm.
    let (s, body) = http(
        addr,
        "POST",
        "/query",
        &[("X-Api-Key", "t")],
        Some(&job_spec("cg")),
    );
    assert_eq!(s, 400, "{body}");
    assert!(
        body.contains("missing required string field `query`"),
        "{body}"
    );

    // A clean query executes and digests identically to the built-in
    // hotspot paradigm over the same run shape.
    let query_spec = r#"{"workload":"cg","ranks":2,"threads":2,"seed":3,
        "query":"from vertices | score time | sort score desc nan_last | top 15 | select name, label, debug-info, time"}"#;
    let (s, j) = http(
        addr,
        "POST",
        "/query",
        &[("X-Api-Key", "t")],
        Some(query_spec),
    );
    assert_eq!(s, 202, "{j}");
    let qid = Json::parse(&j)
        .unwrap()
        .get("id")
        .and_then(Json::as_u64)
        .unwrap();
    let qjob = wait_done(addr, "t", qid, 60);
    assert_eq!(
        qjob.get("status").and_then(Json::as_str),
        Some("done"),
        "{}",
        qjob.render()
    );
    assert_eq!(qjob.get("paradigm").and_then(Json::as_str), Some("query"));
    assert!(qjob.get("query").and_then(Json::as_str).is_some());

    let (s, j) = submit(addr, "t", &job_spec("cg"));
    assert_eq!(s, 202, "{}", j.render());
    let pid = j.get("id").and_then(Json::as_u64).unwrap();
    let pjob = wait_done(addr, "t", pid, 60);
    assert_eq!(
        qjob.get("report_digest").and_then(Json::as_str),
        pjob.get("report_digest").and_then(Json::as_str),
        "query-built hotspot must digest identically to the paradigm\nquery: {}\nparadigm: {}",
        qjob.render(),
        pjob.render()
    );

    // Resubmitting the identical query is a report-cache hit.
    let (s, j) = http(
        addr,
        "POST",
        "/query",
        &[("X-Api-Key", "t")],
        Some(query_spec),
    );
    assert_eq!(s, 202, "{j}");
    let rid = Json::parse(&j)
        .unwrap()
        .get("id")
        .and_then(Json::as_u64)
        .unwrap();
    let warm = wait_done(addr, "t", rid, 60);
    assert_eq!(warm.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(
        warm.get("report").and_then(Json::as_str),
        qjob.get("report").and_then(Json::as_str)
    );

    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_queued_and_running_jobs() {
    let server = Server::start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let held = r#"{"workload":"ep","paradigm":"hotspot","ranks":2,"threads":2,"hold_ms":150}"#;
    for _ in 0..3 {
        let (s, j) = submit(addr, "t", held);
        assert_eq!(s, 202, "{}", j.render());
    }
    let (s, j) = http(addr, "POST", "/shutdown", &[], None);
    assert_eq!(s, 202, "{j}");
    assert_eq!(
        Json::parse(&j)
            .unwrap()
            .get("status")
            .and_then(Json::as_str),
        Some("draining")
    );
    // The drain finishes every accepted job before the server exits.
    let stats = server.wait();
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.failed, 0);
    // The listener is gone afterwards.
    assert!(TcpStream::connect(addr).is_err(), "listener survived drain");
}

#[test]
fn comm_job_trace_is_one_connected_tree() {
    let server = Server::start(ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let spec = r#"{"workload":"cg","paradigm":"comm","ranks":2,"threads":2,"seed":5}"#;
    let (s, j) = submit(addr, "t", spec);
    assert_eq!(s, 202, "{}", j.render());
    let id = j.get("id").and_then(Json::as_u64).unwrap();
    let job = wait_done(addr, "t", id, 60);
    assert_eq!(job.get("status").and_then(Json::as_str), Some("done"));

    // The status JSON carries the trace id and a per-job latency block
    // whose queue wait is measured from HTTP admission.
    assert_eq!(job.get("trace").and_then(Json::as_u64), Some(id));
    let metrics = job.get("metrics").expect("terminal job has metrics");
    let queue_wait = metrics.get("queue_wait_us").and_then(Json::as_f64).unwrap();
    let exec = metrics.get("exec_us").and_then(Json::as_f64).unwrap();
    let total = metrics.get("total_us").and_then(Json::as_f64).unwrap();
    assert!(queue_wait >= 0.0 && exec >= 0.0, "{}", job.render());
    assert!(total >= queue_wait, "{}", job.render());
    // A comm job executes the observed scheduler, so its RunMetrics
    // ride along.
    let run = metrics.get("run").expect("run block");
    assert!(
        matches!(run.get("passes"), Some(Json::Arr(p)) if !p.is_empty()),
        "comm job should embed RunMetrics: {}",
        job.render()
    );

    // The trace endpoint returns valid Chrome-trace JSON where every
    // span carries the job's trace id, spanning the serve layer (HTTP
    // admission, queue wait, execution) and the core scheduler's
    // per-pass spans.
    let (ts, trace) = http(
        addr,
        "GET",
        &format!("/jobs/{id}/trace"),
        &[("X-Api-Key", "t")],
        None,
    );
    assert_eq!(ts, 200, "{trace}");
    let t = Json::parse(&trace).expect("trace must be valid JSON");
    let Some(Json::Arr(events)) = t.get("traceEvents") else {
        panic!("no traceEvents array: {trace}");
    };
    let xs: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .collect();
    assert!(!xs.is_empty(), "{trace}");
    let mut cats = Vec::new();
    let mut names = Vec::new();
    for e in &xs {
        assert_eq!(
            e.get("trace").and_then(Json::as_u64),
            Some(id),
            "span without the job's trace id: {}",
            e.render()
        );
        cats.push(e.get("cat").and_then(Json::as_str).unwrap().to_string());
        names.push(e.get("name").and_then(Json::as_str).unwrap().to_string());
    }
    for cat in ["serve", "core"] {
        assert!(cats.iter().any(|c| c == cat), "no {cat} spans in {names:?}");
    }
    for name in ["job.admit", "job.queue_wait", "job.exec", "job"] {
        assert!(names.iter().any(|n| n == name), "no {name} in {names:?}");
    }
    assert!(
        names.iter().any(|n| n.starts_with("pass:")),
        "no scheduler pass spans in {names:?}"
    );
    // The queue-wait span is non-negative and inside the whole-job span.
    let span = |name: &str| {
        xs.iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some(name))
            .unwrap()
    };
    let wait = span("job.queue_wait");
    let whole = span("job");
    let ts_of = |e: &Json| e.get("ts").and_then(Json::as_f64).unwrap();
    let dur_of = |e: &Json| e.get("dur").and_then(Json::as_f64).unwrap();
    assert!(dur_of(wait) >= 0.0);
    assert!(ts_of(wait) >= ts_of(whole) - 1e-6);
    let other = t.get("otherData").expect("otherData");
    assert_eq!(other.get("trace").and_then(Json::as_u64), Some(id));
    assert_eq!(
        other.get("spanCount").and_then(Json::as_u64),
        Some(xs.len() as u64)
    );
    let digest = other.get("traceDigest").and_then(Json::as_str).unwrap();
    assert_eq!(digest.len(), 16, "digest is 16 hex chars: {digest}");

    // Other tenants cannot see the trace (same 404 as job status).
    let (s404, _) = http(
        addr,
        "GET",
        &format!("/jobs/{id}/trace"),
        &[("X-Api-Key", "someone-else")],
        None,
    );
    assert_eq!(s404, 404);
    server.shutdown();
}

#[test]
fn identical_jobs_trace_digests_match_across_servers() {
    let spec = r#"{"workload":"ep","paradigm":"comm","ranks":2,"threads":2,"seed":11}"#;
    let digest_of = || {
        let server = Server::start(ServerConfig::default()).unwrap();
        let addr = server.local_addr();
        let (s, j) = submit(addr, "t", spec);
        assert_eq!(s, 202, "{}", j.render());
        let id = j.get("id").and_then(Json::as_u64).unwrap();
        let job = wait_done(addr, "t", id, 60);
        assert_eq!(job.get("status").and_then(Json::as_str), Some("done"));
        let (ts, trace) = http(
            addr,
            "GET",
            &format!("/jobs/{id}/trace"),
            &[("X-Api-Key", "t")],
            None,
        );
        assert_eq!(ts, 200);
        server.shutdown();
        Json::parse(&trace)
            .unwrap()
            .get("otherData")
            .and_then(|o| o.get("traceDigest"))
            .and_then(Json::as_str)
            .unwrap()
            .to_string()
    };
    // Same spec on two fresh servers executes the same span structure,
    // so the timestamp-free digests agree.
    assert_eq!(digest_of(), digest_of());
}

#[test]
fn bench_diff_endpoint_judges_snapshots() {
    let server = Server::start(ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let base = r#"{"passes":[{"name":"a","wall_us":100.0},{"name":"b","wall_us":500.0}]}"#;

    // Identical snapshots: no regression.
    let body = format!(r#"{{"baseline":{base},"current":{base}}}"#);
    let (s, out) = http(addr, "POST", "/bench-diff", &[], Some(&body));
    assert_eq!(s, 200, "{out}");
    let j = Json::parse(&out).unwrap();
    assert_eq!(j.get("regressed").and_then(Json::as_bool), Some(false));
    assert_eq!(j.get("aligned").and_then(Json::as_u64), Some(2));

    // A 3x slowdown past threshold and noise floor regresses with a
    // PF0401 verdict.
    let cur = r#"{"passes":[{"name":"a","wall_us":300.0},{"name":"b","wall_us":500.0}]}"#;
    let body =
        format!(r#"{{"baseline":{base},"current":{cur},"threshold":0.5,"noise_floor_us":10}}"#);
    let (s, out) = http(addr, "POST", "/bench-diff", &[], Some(&body));
    assert_eq!(s, 200, "{out}");
    let j = Json::parse(&out).unwrap();
    assert_eq!(j.get("regressed").and_then(Json::as_bool), Some(true));
    assert!(out.contains("PF0401"), "{out}");

    // Snapshots may also arrive as JSON-encoded strings.
    let body = format!(
        r#"{{"baseline":{},"current":{}}}"#,
        serve::json::Json::Str(base.to_string()).render(),
        serve::json::Json::Str(base.to_string()).render()
    );
    let (s, out) = http(addr, "POST", "/bench-diff", &[], Some(&body));
    assert_eq!(s, 200, "{out}");
    assert_eq!(
        Json::parse(&out)
            .unwrap()
            .get("regressed")
            .and_then(Json::as_bool),
        Some(false)
    );

    // Malformed input is a 400, not a 500.
    let (s, out) = http(addr, "POST", "/bench-diff", &[], Some(r#"{"baseline":{}}"#));
    assert_eq!(s, 400, "{out}");
    server.shutdown();
}

#[test]
fn api_keys_and_tenant_isolation() {
    let server = Server::start(ServerConfig {
        api_keys: vec!["alpha".into(), "beta".into()],
        admin_key: Some("root".into()),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    let (s, _) = http(addr, "POST", "/jobs", &[], Some(&job_spec("cg")));
    assert_eq!(s, 401, "keyless submission must be rejected");
    let (s, _) = http(
        addr,
        "POST",
        "/jobs",
        &[("X-Api-Key", "nope")],
        Some(&job_spec("cg")),
    );
    assert_eq!(s, 401);

    let (s, j) = submit(addr, "alpha", &job_spec("cg"));
    assert_eq!(s, 202, "{}", j.render());
    let id = j.get("id").and_then(Json::as_u64).unwrap();
    wait_done(addr, "alpha", id, 60);
    // Another tenant cannot even observe the job's existence.
    let (s, _) = http(
        addr,
        "GET",
        &format!("/jobs/{id}"),
        &[("X-Api-Key", "beta")],
        None,
    );
    assert_eq!(s, 404);

    // Bad submissions are rejected with a reason.
    let (s, body) = http(
        addr,
        "POST",
        "/jobs",
        &[("X-Api-Key", "alpha")],
        Some(r#"{"workload":"no-such-workload"}"#),
    );
    assert_eq!(s, 400);
    assert!(body.contains("unknown workload"), "{body}");

    // Shutdown needs the admin key.
    let (s, _) = http(addr, "POST", "/shutdown", &[("X-Api-Key", "alpha")], None);
    assert_eq!(s, 403);
    let (s, _) = http(addr, "POST", "/shutdown", &[("X-Admin-Key", "root")], None);
    assert_eq!(s, 202);
    let stats = server.wait();
    assert_eq!(stats.completed, 1);
}
