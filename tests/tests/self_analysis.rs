//! End-to-end tests of the self-analysis loop: PerFlow profiling
//! PerFlow. The engine's own `obs` trace is lifted into a PAG pair
//! (`collect::self_pag`), verified with the same `check_pag` linter used
//! on target programs, and analyzed by the built-in self-analysis
//! PerFlowGraph — plus property tests for the histogram model and a
//! `python3 -m json.tool` round-trip of every JSON exporter against
//! hostile span names.

use obs::{Histogram, Layer, Obs};
use perflow::paradigms::comm_analysis_graph;
use perflow::verify::{check_pag, Severity};
use perflow::{self_analysis, PassCache, PerFlow, RunHandleExt};
use progmodel::{c, nranks, rank, Program, ProgramBuilder};
use proptest::prelude::*;
use simrt::RunConfig;

fn workload() -> Program {
    let mut pb = ProgramBuilder::new("self-e2e");
    let main = pb.declare("main", "s.c");
    pb.define(main, |f| {
        f.loop_("iter", c(40.0), |b| {
            b.compute("kernel", (c(50.0) + rank() * c(5.0)) / nranks());
            b.allreduce(c(16.0));
        });
    });
    pb.build(main)
}

/// Run an observed profile + comm-analysis graph and hand back the
/// populated trace.
fn observed_trace() -> Obs {
    let obs = Obs::enabled();
    let pflow = PerFlow::new();
    let run = pflow
        .run(&workload(), &RunConfig::new(4).with_obs(obs.clone()))
        .expect("observed run failed");
    let (g, nodes) = comm_analysis_graph(run.vertices()).expect("graph wiring failed");
    let cache = PassCache::new();
    let out = g
        .execute_observed_with(&obs, Some(&cache), None)
        .expect("observed execution failed");
    assert!(!out.of(nodes.report).is_empty());
    obs
}

#[test]
fn self_pag_passes_verification_end_to_end() {
    let obs = observed_trace();
    let sp = collect::build_self_pag(&obs);
    for (name, pag) in [("top-down", &sp.topdown), ("parallel", &sp.parallel)] {
        let d = check_pag(pag);
        assert_eq!(
            d.count(Severity::Error),
            0,
            "self-PAG {name} view must lint clean:\n{}",
            d.render_text()
        );
    }
    // The trace covers all three engine layers, so the top-down view has
    // a layer vertex for each under the root.
    for layer in ["simrt", "collect", "core"] {
        assert!(
            !sp.topdown.find_by_name(layer).is_empty(),
            "missing layer vertex `{layer}`"
        );
    }
    assert!(
        sp.flows.len() >= 2,
        "expected multiple lanes: {:?}",
        sp.flows
    );
}

#[test]
fn self_analysis_names_hotspots_and_reports() {
    let r = self_analysis(&observed_trace()).expect("self-analysis failed");
    assert_eq!(
        r.diagnostics.count(Severity::Error),
        0,
        "{}",
        r.diagnostics.render_text()
    );
    assert!(!r.hotspots.is_empty(), "engine work must surface hotspots");
    let text = r.render();
    assert!(text.contains("hottest engine span:"), "{text}");
    assert!(
        text.contains("self analysis (PerFlow on PerFlow)"),
        "{text}"
    );
}

#[test]
fn analysis_is_digest_identical_with_observation_on_or_off() {
    let prog = workload();
    let pflow = PerFlow::new();
    let plain = pflow.run(&prog, &RunConfig::new(4)).unwrap();
    let obs = Obs::enabled();
    let watched = pflow
        .run(&prog, &RunConfig::new(4).with_obs(obs.clone()))
        .unwrap();
    assert_eq!(
        plain.data().digest(),
        watched.data().digest(),
        "observation must not perturb the run"
    );
    // The analysis result is identical too — histograms and gauges are
    // bookkeeping, not inputs.
    let report = |run: &perflow::RunHandle| {
        let hot = pflow.hotspot_detection(&run.vertices(), 10);
        pflow.report(&[&hot], &["name", "label", "time"]).render()
    };
    assert_eq!(report(&plain), report(&watched));
}

/// Feed a value set into one histogram directly and into per-chunk
/// histograms merged in the given order; both must agree bit-for-bit.
fn merged_in_order(values: &[f64], chunk: usize, reverse: bool) -> Histogram {
    let mut parts: Vec<Histogram> = values
        .chunks(chunk.max(1))
        .map(|ch| {
            let mut h = Histogram::new();
            for &v in ch {
                h.record(v);
            }
            h
        })
        .collect();
    if reverse {
        parts.reverse();
    }
    let mut acc = Histogram::new();
    for p in &parts {
        acc.merge(p);
    }
    acc
}

proptest! {
    #[test]
    fn histogram_record_is_deterministic(
        values in prop::collection::vec(
            prop_oneof![
                0.0..1e9f64,
                Just(0.0),
                Just(-1.0),
                Just(f64::NAN),
                Just(f64::INFINITY),
            ],
            0..80,
        ),
    ) {
        let build = || {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            h
        };
        let (a, b) = (build(), build());
        prop_assert_eq!(a.render_json(), b.render_json());
        prop_assert_eq!(a.count(), values.len() as u64);
    }

    #[test]
    fn histogram_merge_is_order_invariant(
        values in prop::collection::vec(0.0..1e9f64, 1..120),
        chunk in 1usize..16,
    ) {
        let mut whole = Histogram::new();
        for &v in &values {
            whole.record(v);
        }
        let fwd = merged_in_order(&values, chunk, false);
        let rev = merged_in_order(&values, chunk, true);
        prop_assert_eq!(whole.render_json(), fwd.render_json());
        prop_assert_eq!(fwd.render_json(), rev.render_json());
    }
}

/// Round-trip every JSON exporter through `python3 -m json.tool` with
/// hostile span names. Skips silently when python3 is not on PATH.
#[test]
fn json_exports_survive_python_round_trip() {
    let python_ok = std::process::Command::new("python3")
        .arg("--version")
        .output()
        .is_ok();
    if !python_ok {
        eprintln!("python3 unavailable; skipping round-trip check");
        return;
    }
    let parse = |what: &str, text: &str| {
        use std::io::Write as _;
        let mut child = std::process::Command::new("python3")
            .args(["-m", "json.tool"])
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .expect("spawn python3");
        child
            .stdin
            .take()
            .unwrap()
            .write_all(text.as_bytes())
            .unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(
            out.status.success(),
            "{what} is not valid JSON: {}\n{text}",
            String::from_utf8_lossy(&out.stderr)
        );
    };

    let obs = Obs::enabled();
    for (i, name) in [
        "quote\"backslash\\",
        "newline\nand\ttab",
        "control\u{1}\u{8}\u{c}chars",
        "unicode π µs ✓",
    ]
    .iter()
    .enumerate()
    {
        obs.record_span(Layer::Core, *name, i as u32, 1.0, 10.0, &[("k\"ey", 1.0)]);
    }
    obs.count("evil\"counter", 3);
    parse("chrome_trace", &obs.chrome_trace());

    // An observed run's --metrics-json output parses too.
    let pflow = PerFlow::new();
    let obs2 = Obs::enabled();
    let run = pflow
        .run(&workload(), &RunConfig::new(2).with_obs(obs2.clone()))
        .unwrap();
    let (g, _) = comm_analysis_graph(run.vertices()).unwrap();
    let out = g.execute_observed_with(&obs2, None, None).unwrap();
    parse("RunMetrics::render_json", &out.metrics.render_json());
    parse(
        "empty RunMetrics",
        &perflow::RunMetrics::default().render_json(),
    );
}
