//! End-to-end tests of the `obs` observability layer: span coverage
//! across all three pipeline layers, Chrome-trace export shape,
//! scheduler `RunMetrics`, and — most importantly — that observation
//! never perturbs results (digests and scheduler outputs are
//! byte-identical with the handle enabled or disabled).

use obs::{Layer, Obs};
use perflow::paradigms::comm_analysis_graph;
use perflow::{PassCache, PerFlow, RunHandleExt, Value};
use progmodel::{c, noise, nranks, rank, Program, ProgramBuilder};
use simrt::{simulate, RunConfig};

fn workload() -> Program {
    let mut pb = ProgramBuilder::new("obs-e2e");
    let main = pb.declare("main", "o.c");
    let work = pb.declare("work", "o.c");
    pb.define(work, |f| {
        f.compute(
            "kernel",
            (c(80.0) + rank() * c(10.0)) / nranks() * noise(0.05, 3),
        );
    });
    pb.define(main, |f| {
        f.loop_("iter", c(400.0), |b| {
            b.call(work);
            b.allreduce(c(16.0));
        });
    });
    pb.build(main)
}

#[test]
fn observation_does_not_perturb_simulation() {
    let prog = workload();
    let plain = simulate(&prog, &RunConfig::new(4)).unwrap();
    let obs = Obs::enabled();
    let watched = simulate(&prog, &RunConfig::new(4).with_obs(obs.clone())).unwrap();
    assert_eq!(
        plain.digest(),
        watched.digest(),
        "RunData must be byte-identical with observation on"
    );
    assert!(obs.has_layer(Layer::Simrt));
    // Serial + observed also matches.
    let obs2 = Obs::enabled();
    let serial = simulate(
        &prog,
        &RunConfig::new(4).serial_sim().with_obs(obs2.clone()),
    )
    .unwrap();
    assert_eq!(plain.digest(), serial.digest());
}

#[test]
fn trace_covers_all_three_layers() {
    let prog = workload();
    let obs = Obs::enabled();
    let pflow = PerFlow::new();
    let run = pflow
        .run(&prog, &RunConfig::new(4).with_obs(obs.clone()))
        .unwrap();
    let (g, nodes) = comm_analysis_graph(run.vertices()).unwrap();
    let out = g.execute_observed(&obs).unwrap();
    assert!(!out.of(nodes.report).is_empty());

    assert!(obs.has_layer(Layer::Simrt), "simrt phase/segment spans");
    assert!(obs.has_layer(Layer::Collect), "collect static/embed spans");
    assert!(obs.has_layer(Layer::Core), "core pass spans");

    let spans = obs.spans();
    let names: Vec<&str> = spans.iter().map(|s| s.name.as_ref()).collect();
    for expected in [
        "simulate",
        "phase",
        "segment",
        "merge_shards",
        "static_pag",
        "embed.resolve",
        "embed.rank",
        "embed.merge",
    ] {
        assert!(names.contains(&expected), "missing span `{expected}`");
    }
    assert!(
        names.iter().any(|n| n.starts_with("pass:")),
        "core layer must record pass:* spans, got {names:?}"
    );
    // Per-rank lanes: embed.rank spans cover every rank.
    let mut rank_lanes: Vec<u32> = spans
        .iter()
        .filter(|s| s.name == "embed.rank")
        .map(|s| s.lane)
        .collect();
    rank_lanes.sort_unstable();
    rank_lanes.dedup();
    assert_eq!(rank_lanes, vec![0, 1, 2, 3]);

    // Export ordering is deterministic: two exports render identically.
    assert_eq!(obs.chrome_trace(), obs.chrome_trace());
}

#[test]
fn chrome_trace_is_wellformed_json() {
    let prog = workload();
    let obs = Obs::enabled();
    let cfg = RunConfig::new(2).with_obs(obs.clone());
    simulate(&prog, &cfg).unwrap();
    let trace = obs.chrome_trace();
    assert!(trace.starts_with('{') && trace.ends_with('}'));
    assert!(trace.contains("\"traceEvents\""));
    assert!(trace.contains("\"displayTimeUnit\""));
    assert!(trace.contains("\"ph\":\"X\""));
    assert!(trace.contains("\"ph\":\"M\""), "layer metadata events");
    // Braces and brackets balance (cheap well-formedness check; CI runs a
    // real JSON parser over the CLI's --trace-out output).
    let mut depth = 0i64;
    let mut in_str = false;
    let mut esc = false;
    for ch in trace.chars() {
        if esc {
            esc = false;
            continue;
        }
        match ch {
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '{' | '[' if !in_str => depth += 1,
            '}' | ']' if !in_str => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0);
    }
    assert_eq!(depth, 0, "unbalanced braces");
    assert!(!in_str, "unterminated string");
}

#[test]
fn run_metrics_report_passes_and_cache_hits() {
    let prog = workload();
    let pflow = PerFlow::new();
    let run = pflow.run(&prog, &RunConfig::new(4)).unwrap();
    let (g, _) = comm_analysis_graph(run.vertices()).unwrap();
    let cache = PassCache::new();
    let obs = Obs::enabled();

    let cold = g.execute_observed_with(&obs, Some(&cache), None).unwrap();
    assert_eq!(cold.metrics.passes.len(), g.len());
    assert!(cold.metrics.total_wall_us > 0.0);
    assert!(cold.metrics.workers >= 1);
    assert_eq!(cold.metrics.worker_busy_us.len(), cold.metrics.workers);
    assert!(cold.metrics.passes.iter().all(|p| !p.cache_hit));
    assert!(cold.metrics.passes.iter().all(|p| p.wall_us >= 0.0));
    // Node ids are sorted and dispatch order is a permutation.
    let ids: Vec<usize> = cold.metrics.passes.iter().map(|p| p.node).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted);
    let mut seqs: Vec<usize> = cold.metrics.passes.iter().map(|p| p.dispatch_seq).collect();
    seqs.sort_unstable();
    assert_eq!(seqs, (0..g.len()).collect::<Vec<_>>());
    let cold_cache = cold.metrics.cache.expect("cache delta present");
    assert_eq!(cold_cache.misses, g.len() as u64);
    assert_eq!(cold_cache.hits, 0);

    let warm = g.execute_observed_with(&obs, Some(&cache), None).unwrap();
    assert!(warm.metrics.passes.iter().all(|p| p.cache_hit));
    let warm_cache = warm.metrics.cache.expect("cache delta present");
    assert_eq!(warm_cache.hits, g.len() as u64);
    assert_eq!(warm_cache.misses, 0);
    assert_eq!(cold.trail, warm.trail);

    // The per-run counters accumulated too.
    assert_eq!(obs.counter("core.cache.miss"), g.len() as u64);
    assert_eq!(obs.counter("core.cache.hit"), g.len() as u64);

    // render() mentions the cache and every pass.
    let rendered = warm.metrics.render();
    assert!(rendered.contains("pass cache"));
    for p in &warm.metrics.passes {
        assert!(rendered.contains(&p.name));
    }
}

#[test]
fn unobserved_execution_reports_empty_metrics() {
    let mut g = perflow::PerFlowGraph::new();
    let s = g.add_source(1.0);
    let id = g.add_pass(perflow::pass::FnPass::new("id", 1, |i: &[Value]| {
        Ok(vec![i[0].clone()])
    }));
    g.pipe(s, id).unwrap();
    let out = g.execute().unwrap();
    assert!(out.metrics.is_empty());
    assert!(out.metrics.render().contains("not observed"));
}

#[test]
fn scheduler_outputs_identical_observed_or_not() {
    let prog = workload();
    let pflow = PerFlow::new();
    let run = pflow.run(&prog, &RunConfig::new(4)).unwrap();
    let (g, nodes) = comm_analysis_graph(run.vertices()).unwrap();
    let plain = g.execute().unwrap();
    let observed = g.execute_observed(&Obs::enabled()).unwrap();
    assert_eq!(plain.trail, observed.trail);
    let a = plain.of(nodes.report)[0].as_report().unwrap().render();
    let b = observed.of(nodes.report)[0].as_report().unwrap().render();
    assert_eq!(a, b, "report must not depend on observation");
}

#[test]
fn disabled_handle_records_nothing() {
    let prog = workload();
    let obs = Obs::disabled();
    let cfg = RunConfig::new(2).with_obs(obs.clone());
    simulate(&prog, &cfg).unwrap();
    assert!(!obs.is_enabled());
    assert!(obs.spans().is_empty());
    assert!(obs.counters().is_empty());
}
