//! Property tests for the perflow-query layer: the canonical-text
//! round trip over hostile field names, determinism of the PF03xx
//! lint, and the workspace-wide single-JSON-escaper invariant that
//! keeps obs, verify and serve byte-identical on hostile strings.

use proptest::prelude::*;
use query::{CmpOp, Field, JoinKind, NanPolicy, Order, Query, Stage, Value, View};
use verify::{codes, lint_query_text, Anchor, Diagnostics, Severity};

// ---------------------------------------------------------------------------
// AST strategies
// ---------------------------------------------------------------------------

/// Arbitrary unicode strings (including control characters) built from
/// the lite runner's `char` primitive.
fn wild_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<char>(), 0..12).prop_map(|v| v.into_iter().collect())
}

/// Field names from friendly to hostile: bare identifiers, names that
/// must be quoted (spaces, quotes, backslashes, control characters,
/// unicode), and the `nan`/`inf` keywords that lex as float literals.
fn hostile_name() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z_][a-z0-9_.-]{0,10}",
        wild_string(),
        Just("nan".to_string()),
        Just("inf".to_string()),
        Just("a b\"c\\d\ne\tf".to_string()),
        Just("\u{1}\u{7f}\u{3b1} quoted name".to_string()),
        Just("time".to_string()),
    ]
}

fn field() -> impl Strategy<Value = Field> {
    (hostile_name(), any::<bool>()).prop_map(|(name, shim)| Field { name, shim })
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Glob),
    ]
}

/// Literals. NaN is canonicalised to `f64::NAN` because the surface
/// syntax only has one `nan` token — payload bits cannot round-trip.
fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<f64>().prop_map(|n| Value::Num(if n.is_nan() { f64::NAN } else { n })),
        Just(Value::Num(f64::NAN)),
        Just(Value::Num(f64::INFINITY)),
        Just(Value::Num(f64::NEG_INFINITY)),
        hostile_name().prop_map(Value::Str),
    ]
}

fn mid_stage() -> impl Strategy<Value = Stage> {
    prop_oneof![
        (field(), cmp_op(), value()).prop_map(|(field, op, value)| Stage::Filter {
            field,
            op,
            value
        }),
        field().prop_map(Stage::Score),
        (
            field(),
            prop_oneof![Just(Order::Asc), Just(Order::Desc)],
            prop_oneof![
                Just(NanPolicy::Unspecified),
                Just(NanPolicy::NanLast),
                Just(NanPolicy::NanFirst)
            ],
        )
            .prop_map(|(field, order, nan)| Stage::Sort { field, order, nan }),
        (0usize..1_000_000).prop_map(Stage::Top),
    ]
}

fn terminal() -> impl Strategy<Value = Stage> {
    prop_oneof![
        proptest::collection::vec(field(), 1..4).prop_map(Stage::Select),
        field().prop_map(Stage::Sum),
        (field(), field()).prop_map(|(by, sum)| Stage::Group { by, sum }),
    ]
}

fn view() -> impl Strategy<Value = View> {
    prop_oneof![Just(View::Vertices), Just(View::Parallel)]
}

/// A join-free pipeline; `with_terminal` controls whether it may end in
/// a terminal stage (join subqueries must not).
fn flat_query(with_terminal: bool) -> impl Strategy<Value = Query> {
    (
        view(),
        proptest::collection::vec(mid_stage(), 0..4),
        proptest::option::of(terminal()),
    )
        .prop_map(move |(v, mids, term)| {
            let mut stages = vec![Stage::From(v)];
            stages.extend(mids);
            if with_terminal {
                if let Some(t) = term {
                    stages.push(t);
                }
            }
            Query { stages }
        })
}

/// A pipeline that may contain one `join` stage (one level of nesting,
/// matching what the grammar and linter exercise most).
fn any_query() -> impl Strategy<Value = Query> {
    (
        view(),
        proptest::collection::vec(mid_stage(), 0..3),
        proptest::option::of((
            prop_oneof![
                Just(JoinKind::Union),
                Just(JoinKind::Intersect),
                Just(JoinKind::Minus)
            ],
            flat_query(false),
        )),
        proptest::option::of(terminal()),
    )
        .prop_map(|(v, mids, join, term)| {
            let mut stages = vec![Stage::From(v)];
            stages.extend(mids);
            if let Some((kind, sub)) = join {
                stages.push(Stage::Join {
                    kind,
                    query: Box::new(sub),
                });
            }
            if let Some(t) = term {
                stages.push(t);
            }
            Query { stages }
        })
}

proptest! {
    /// `Query::parse(q.render()) == q` for every constructible query,
    /// including field names full of quotes, backslashes, newlines and
    /// arbitrary unicode: quoting/escaping must be lossless.
    #[test]
    fn parse_render_parse_round_trips(q in any_query()) {
        let text = q.render();
        let back = Query::parse(&text)
            .unwrap_or_else(|e| panic!("canonical text failed to parse: {e:?}\n{text}"));
        prop_assert_eq!(&back, &q, "round trip changed the query\ntext: {}", text);
        // The canonical form is a fixed point.
        prop_assert_eq!(back.render(), text);
    }

    /// The static analyzer is a pure function of the query text: two
    /// lints of the same text render identically, byte for byte.
    #[test]
    fn lint_is_deterministic(q in any_query()) {
        let text = q.render();
        let (_, a) = lint_query_text(&text);
        let (_, b) = lint_query_text(&text);
        prop_assert_eq!(a.render_text(), b.render_text());
        prop_assert_eq!(a.render_json(), b.render_json());
    }

    /// obs, verify and serve expose the same escaper (satellite of the
    /// PF03xx work: serve now delegates instead of hand-rolling), and
    /// what it emits survives a parse through serve's JSON parser.
    #[test]
    fn json_escaping_is_unified_and_parseable(s in hostile_name()) {
        let escaped = obs::json_escape(&s);
        prop_assert_eq!(&escaped, &verify::json_escape(&s));
        prop_assert_eq!(&escaped, &serve::json::escape(&s));
        let literal = format!("\"{escaped}\"");
        let parsed = serve::json::Json::parse(&literal)
            .unwrap_or_else(|e| panic!("escaped literal failed to parse: {e}\n{literal}"));
        prop_assert_eq!(parsed, serve::json::Json::Str(s));
    }
}

/// Diagnostics render in canonical `(code, anchor, message)` order no
/// matter what order the analyzer discovered them in.
#[test]
fn diagnostics_are_insertion_order_invariant() {
    let findings = [
        (
            codes::QUERY_TYPE_MISMATCH,
            Severity::Error,
            Anchor::Stage {
                index: 2,
                op: "filter",
            },
            "type mismatch".to_string(),
        ),
        (
            codes::QUERY_UNKNOWN_FIELD,
            Severity::Error,
            Anchor::Stage {
                index: 1,
                op: "filter",
            },
            "unknown metric or field `tme`".to_string(),
        ),
        (
            codes::QUERY_NAN_ORDER,
            Severity::Warn,
            Anchor::Stage {
                index: 3,
                op: "sort",
            },
            "no NaN policy".to_string(),
        ),
        (
            codes::QUERY_UNKNOWN_FIELD,
            Severity::Error,
            Anchor::Stage {
                index: 1,
                op: "filter",
            },
            "unknown metric or field `lable`".to_string(),
        ),
    ];
    let mut forward = Diagnostics::new();
    for (code, sev, anchor, msg) in findings.iter().cloned() {
        forward.push(code, sev, anchor, msg);
    }
    let mut backward = Diagnostics::new();
    for (code, sev, anchor, msg) in findings.iter().rev().cloned() {
        backward.push(code, sev, anchor, msg);
    }
    let forward = forward.finish();
    let backward = backward.finish();
    assert_eq!(forward.render_text(), backward.render_text());
    assert_eq!(forward.render_json(), backward.render_json());
    let codes_in_order: Vec<&str> = forward.items().iter().map(|d| d.code).collect();
    assert_eq!(
        codes_in_order,
        vec![
            codes::QUERY_UNKNOWN_FIELD,
            codes::QUERY_UNKNOWN_FIELD,
            codes::QUERY_TYPE_MISMATCH,
            codes::QUERY_NAN_ORDER,
        ]
    );
}

/// The real-world lint path is order-invariant too: a query whose text
/// produces several findings always reports them in code order.
#[test]
fn lint_orders_mixed_findings_canonically() {
    let (_, d) = lint_query_text("from vertices | sort tme desc | filter label == 3 | select name");
    assert!(d.has_errors());
    let codes_seen: Vec<&str> = d.items().iter().map(|x| x.code).collect();
    let mut sorted = codes_seen.clone();
    sorted.sort();
    assert_eq!(
        codes_seen, sorted,
        "diagnostics not in canonical order: {codes_seen:?}"
    );
}
