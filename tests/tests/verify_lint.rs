//! Integration tests for the `verify` static analyzers: every built-in
//! paradigm graph and example workload must lint clean, cyclic graphs
//! must be rejected pre-flight with named cycle members, the JSON
//! rendering must be well-formed, and diagnostic order must be
//! deterministic regardless of input order.

use perflow::paradigms::{
    causal_loop_graph, comm_analysis_graph, diagnosis_graph, scalability_graph,
};
use perflow::pass::FnPass;
use perflow::{PerFlow, PerFlowError, PerFlowGraph, RunHandleExt, Value};
use proptest::prelude::*;
use simrt::RunConfig;
use verify::{check_pag, lint_program, Diagnostics, GraphShape, NodeShape, Severity, WireShape};

fn run(prog: &progmodel::Program, ranks: u32) -> perflow::RunHandle {
    PerFlow::new().run(prog, &RunConfig::new(ranks)).unwrap()
}

/// Every built-in paradigm PerFlowGraph lints clean (no errors, no
/// warnings — infos such as deliberately-unconsumed branch outputs are
/// allowed), and the program model itself has no dead functions.
#[test]
fn builtin_paradigm_graphs_lint_clean() {
    let prog = workloads::cg();
    let r = run(&prog, 4);
    let clean = |name: &str, d: Diagnostics| {
        assert!(d.is_clean(), "{name} not clean:\n{}", d.render_text());
    };
    clean("program", lint_program(&prog));
    let (g, _) = comm_analysis_graph(r.vertices()).unwrap();
    clean("comm-analysis", g.lint());
    let (g, _) = scalability_graph(r.vertices(), r.vertices()).unwrap();
    clean("scalability", g.lint());
    let (g, _) = causal_loop_graph(r.vertices()).unwrap();
    clean("causal-loop", g.lint());
    let (g, _) = diagnosis_graph(r.vertices(), r.vertices(), r.parallel_vertices()).unwrap();
    // The diagnosis graph keeps two un-consumed analysis branches by
    // design: infos fire, warnings and errors must not.
    let d = g.lint();
    assert!(!d.has_errors(), "{}", d.render_text());
    assert_eq!(d.count(Severity::Warn), 0, "{}", d.render_text());
}

/// Every example workload produces PAGs that satisfy the structural
/// invariant checker, in both views.
#[test]
fn example_workload_pags_check_clean() {
    let progs = [
        workloads::bt(),
        workloads::cg(),
        workloads::ep(),
        workloads::lu(),
        workloads::zeusmp(),
        workloads::vite(),
    ];
    for prog in &progs {
        let r = run(prog, 4);
        for (view, d) in [
            ("top-down", check_pag(r.topdown())),
            ("parallel", check_pag(r.parallel())),
        ] {
            assert!(
                !d.has_errors(),
                "{} {view} PAG has errors:\n{}",
                prog.name,
                d.render_text()
            );
        }
    }
}

/// A cyclic PerFlowGraph is rejected by the pre-flight lint with a
/// diagnostic naming every node on the ring — not a bare scheduler
/// stall.
#[test]
fn cyclic_graph_rejected_with_named_members() {
    let mut g = PerFlowGraph::new();
    let a = g.add_pass(FnPass::new("stage_a", 1, |i: &[Value]| {
        Ok(vec![i[0].clone()])
    }));
    let b = g.add_pass(FnPass::new("stage_b", 1, |i: &[Value]| {
        Ok(vec![i[0].clone()])
    }));
    let c = g.add_pass(FnPass::new("stage_c", 1, |i: &[Value]| {
        Ok(vec![i[0].clone()])
    }));
    g.pipe(a, b).unwrap();
    g.pipe(b, c).unwrap();
    g.pipe(c, a).unwrap();
    match g.execute() {
        Err(PerFlowError::Rejected { diagnostics }) => {
            let cyc = diagnostics
                .items()
                .iter()
                .find(|d| d.code == verify::codes::CYCLE)
                .expect("cycle diagnostic");
            for name in ["`stage_a`", "`stage_b`", "`stage_c`"] {
                assert!(cyc.message.contains(name), "{}", cyc.message);
            }
        }
        Err(other) => panic!("expected Rejected, got {other:?}"),
        Ok(_) => panic!("expected Rejected, graph executed"),
    }
}

/// The machine-readable rendering stays well-formed even when node
/// names contain JSON metacharacters. (CI runs a real JSON parser over
/// the CLI's `--lint-json` output; this is the cheap in-tree check.)
#[test]
fn lint_json_is_wellformed_with_hostile_names() {
    let g = GraphShape {
        nodes: vec![
            NodeShape {
                name: "he said \"hi\"\\\n\tend".into(),
                arity: 2,
                has_fingerprint: false,
            },
            NodeShape {
                name: "loop{".into(),
                arity: 1,
                has_fingerprint: false,
            },
        ],
        wires: vec![
            WireShape {
                from: 1,
                out_port: 0,
                to: 0,
                in_port: 0,
            },
            WireShape {
                from: 0,
                out_port: 0,
                to: 1,
                in_port: 0,
            },
        ],
    };
    let d = verify::lint_graph(&g);
    assert!(d.has_errors(), "cycle + missing input expected");
    let json = d.render_json();
    assert!(json.starts_with('[') && json.ends_with(']'));
    let mut depth = 0i64;
    let mut in_str = false;
    let mut esc = false;
    for ch in json.chars() {
        if esc {
            esc = false;
            continue;
        }
        match ch {
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '{' | '[' if !in_str => depth += 1,
            '}' | ']' if !in_str => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0);
        if in_str {
            assert!(ch != '\n' && ch != '\t', "raw control char in string");
        }
    }
    assert_eq!(depth, 0, "unbalanced braces");
    assert!(!in_str, "unterminated string");
}

/// Deterministic expansion of a seed into an arbitrary (possibly
/// broken) graph shape: random arities, wires that may dangle, repeat,
/// or point backwards to form cycles.
fn shape_from_seed(n: usize, mix: u64) -> GraphShape {
    let mut state = mix;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let mut g = GraphShape::default();
    for i in 0..n {
        g.nodes.push(NodeShape {
            name: format!("n{}", next() % (n / 2 + 1)), // collisions on purpose
            arity: next() % 3,
            has_fingerprint: i % 2 == 0,
        });
    }
    let wires = next() % (2 * n + 1);
    for _ in 0..wires {
        g.wires.push(WireShape {
            from: next() % (n + 2), // may be out of range
            out_port: next() % 2,
            to: next() % (n + 2),
            in_port: next() % 4, // may gap or duplicate
        });
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Linting the same shape twice yields byte-identical output, and
    /// the emission order is sorted by (code, anchor, message) — so
    /// diagnostics are stable across runs and machines.
    #[test]
    fn lint_order_is_deterministic(n in 1usize..12, mix in any::<u64>()) {
        let g = shape_from_seed(n, mix);
        let d1 = verify::lint_graph(&g);
        let d2 = verify::lint_graph(&g);
        prop_assert_eq!(d1.render_text(), d2.render_text());
        prop_assert_eq!(d1.render_json(), d2.render_json());
        let items = d1.items();
        for w in items.windows(2) {
            let ka = (w[0].code, &w[0].anchor, &w[0].message);
            let kb = (w[1].code, &w[1].anchor, &w[1].message);
            prop_assert!(ka <= kb, "unsorted: {:?} > {:?}", ka, kb);
        }
    }

    /// Shuffling the wire list does not change the rendered diagnostics:
    /// the report depends on the graph, not on insertion order. (Wires
    /// are clamped in range first — PF0005 deliberately reports the
    /// positional wire index, which is order-dependent by design.)
    #[test]
    fn lint_ignores_wire_insertion_order(n in 2usize..10, mix in any::<u64>(), rot in 0usize..8) {
        let mut g = shape_from_seed(n, mix);
        for w in &mut g.wires {
            w.from %= n;
            w.to %= n;
        }
        let mut rotated = g.clone();
        if !rotated.wires.is_empty() {
            let r = rot % rotated.wires.len();
            rotated.wires.rotate_left(r);
        }
        prop_assert_eq!(
            verify::lint_graph(&g).render_text(),
            verify::lint_graph(&rotated).render_text()
        );
    }
}
