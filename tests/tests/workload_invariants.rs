//! Workload-wide structural invariants: every bundled program honours
//! the Table-2 invariants at any scale, and both PAG views validate.

use perflow::{PerFlow, RunHandleExt};
use simrt::RunConfig;

#[test]
fn every_workload_honours_table2_invariants() {
    let pflow = PerFlow::new();
    for (prog, name) in workloads::all_programs()
        .iter()
        .zip(workloads::PROGRAM_NAMES)
    {
        let run = pflow
            .run(prog, &RunConfig::new(4).with_threads(2))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let td = run.topdown();
        // Top-down view is a tree.
        assert_eq!(td.num_edges(), td.num_vertices() - 1, "{name} not a tree");
        assert!(td.validate().is_empty(), "{name}: {:?}", td.validate());
        // Parallel view replicates ≥ |V_td| × P (thread flows add more).
        let pv = run.parallel();
        assert!(
            pv.num_vertices() >= td.num_vertices() * 4,
            "{name}: parallel {} < topdown {} × 4",
            pv.num_vertices(),
            td.num_vertices()
        );
        assert!(pv.validate().is_empty(), "{name}: {:?}", pv.validate());
        // Root carries exact elapsed.
        assert!(td.total_time() > 0.0, "{name} has no time");
        // Serialization roundtrips both views.
        let back = pag::serialize::decode(&pag::serialize::encode(td)).unwrap();
        assert_eq!(back.num_vertices(), td.num_vertices(), "{name}");
    }
}

#[test]
fn every_workload_survives_hotspot_and_imbalance_passes() {
    let pflow = PerFlow::new();
    for (prog, name) in workloads::all_programs()
        .iter()
        .zip(workloads::PROGRAM_NAMES)
    {
        let run = pflow
            .run(prog, &RunConfig::new(4).with_threads(2))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let hot = pflow.hotspot_detection(&run.vertices(), 10);
        assert!(!hot.is_empty(), "{name}: no hotspots at all");
        // Passes must not panic on any workload; results may be empty.
        let _ = pflow.imbalance_analysis(&hot, 0.2);
        let comm = pflow.filter(&run.vertices(), "MPI_*");
        let (_, report) = pflow.breakdown_analysis(&comm);
        assert!(!report.render().is_empty(), "{name}");
    }
}
