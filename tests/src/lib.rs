// integration test crate
