//! # `verify` — static analysis for PerFlow programs and PAGs
//!
//! Analysis tasks in PerFlow are *programs*: PerFlowGraphs of passes
//! operating over Program Abstraction Graphs. Programs deserve static
//! analysis, and this crate provides it — correctness tooling in the
//! spirit of ScalAna's graph-contract checking — behind one deterministic
//! diagnostics framework ([`Diagnostics`]):
//!
//! * **PerFlowGraph lint** ([`lint_graph`]) analyzes the *structure* of a
//!   dataflow graph without executing it: cycle localization that names
//!   the offending node ring, input-arity and port-contiguity checks,
//!   unreachable-pass / unused-output / missing-entry detection,
//!   duplicate node names, and cache-effectiveness advice for passes
//!   lacking a content fingerprint. The engine runs it as a pre-flight
//!   gate before every execution.
//! * **PAG invariant checker** ([`check_pag`]) verifies a constructed
//!   Program Abstraction Graph: the top-down view's tree invariant
//!   (`|E| = |V| - 1`, designated root, root-reachability — the Table 2
//!   property), endpoint sanity, edge-label legality per view, a
//!   non-negative/NaN metric audit, and completeness-metadata
//!   consistency from the fault-injection path.
//! * **Program-model lint** ([`lint_program`]) warns about dead
//!   (entry-unreachable) functions in a [`progmodel::Program`].
//! * **Query semantic analysis** ([`lint_query`]) type-checks a parsed
//!   [`query::Query`] against a [`query::Schema`] before anything
//!   executes: unknown metric/field names with nearest-key suggestions,
//!   scalar/vector/string type mismatches, predicates over columns
//!   provably absent in the target view, NaN-unsafe orderings,
//!   contradictory (provably-empty) filter chains, and deprecated
//!   string-keyed `shim:` access (the PF03xx family).
//!
//! Every diagnostic carries a stable code (`PF0001`, …), a severity, and
//! a source anchor (graph node, PAG vertex/edge, or function); emission
//! order is fully deterministic (sorted by code, anchor, message) and
//! renders both as human-readable text and machine-readable JSON.
//!
//! The crate deliberately depends only on `pag`, `query`, `progmodel`
//! and the zero-dependency `obs` (for the shared JSON escaping helper):
//! the dataflow engine hands it a plain structural snapshot
//! ([`GraphShape`]), so `core` can depend on `verify` without a cycle.

pub mod diag;
pub mod graph;
pub mod pag_check;
pub mod program_lint;
pub mod query_lint;

pub use diag::{json_escape, Anchor, Diagnostic, Diagnostics, Severity};
pub use graph::{lint_checkpoint, lint_graph, GraphShape, NodeShape, WireShape};
pub use pag_check::check_pag;
pub use program_lint::lint_program;
pub use query_lint::{lint_query, lint_query_text};

/// Stable diagnostic codes emitted by the analyzers in this crate.
///
/// `PF00xx` — PerFlowGraph lint; `PF01xx` — PAG invariant checker;
/// `PF02xx` — program-model lint. Codes are part of the public contract:
/// tools may match on them, so they are never renumbered.
pub mod codes {
    /// Data-flow cycle through the named node ring (error).
    pub const CYCLE: &str = "PF0001";
    /// An input port required by a pass's arity has no producer (error).
    pub const MISSING_INPUT: &str = "PF0002";
    /// Input ports are not contiguous from 0 (error).
    pub const PORT_GAP: &str = "PF0003";
    /// Two wires feed the same input port (error).
    pub const DUPLICATE_INPUT: &str = "PF0004";
    /// A wire references a node id outside the graph (error).
    pub const BAD_NODE_REF: &str = "PF0005";
    /// Non-empty graph with no entry node at all (error).
    pub const NO_ENTRY: &str = "PF0006";
    /// Pass unreachable from every entry node (warning).
    pub const UNREACHABLE: &str = "PF0007";
    /// Two non-source nodes share a display name (warning).
    pub const DUPLICATE_NAME: &str = "PF0008";
    /// A non-report node's outputs are never consumed (info).
    pub const UNUSED_OUTPUT: &str = "PF0009";
    /// Pass lacks a content fingerprint; the pass-result cache falls
    /// back to object identity (warning).
    pub const NO_FINGERPRINT: &str = "PF0010";
    /// Checkpoint/resume was requested but the pass has no content
    /// fingerprint, so its results can never be persisted or resumed
    /// (warning).
    pub const UNRESUMABLE_PASS: &str = "PF0011";

    /// Edge endpoint out of the vertex range (error).
    pub const DANGLING_EDGE: &str = "PF0101";
    /// Non-empty top-down PAG without a designated root (error).
    pub const NO_ROOT: &str = "PF0102";
    /// Top-down tree invariant `|E| = |V| - 1` violated (error).
    pub const TREE_VIOLATION: &str = "PF0103";
    /// Vertices unreachable from the designated root (error).
    pub const UNROOTED_VERTEX: &str = "PF0104";
    /// Inter-process/inter-thread edge in the top-down view (error).
    pub const ILLEGAL_EDGE_LABEL: &str = "PF0105";
    /// Negative, NaN, or infinite value in an audited metric (warning).
    pub const BAD_METRIC: &str = "PF0106";
    /// Completeness value outside `[0, 1]` or not finite (warning).
    pub const BAD_COMPLETENESS: &str = "PF0107";
    /// Per-process completeness vector length ≠ `num_procs` (warning).
    pub const COMPLETENESS_SHAPE: &str = "PF0108";
    /// Observation was truncated: the span cap was hit and spans were
    /// dropped, so the PAG is knowingly incomplete (info).
    pub const TRUNCATED_OBSERVATION: &str = "PF0110";
    /// Columnar store: a scalar column's presence bitmap disagrees with
    /// its value count (error).
    pub const PRESENCE_SHAPE: &str = "PF0111";
    /// Columnar store: a column exists for a `KeyId` the key table never
    /// interned (error).
    pub const UNKNOWN_COLUMN_KEY: &str = "PF0112";

    /// Function unreachable from the program entry (warning).
    pub const DEAD_FUNCTION: &str = "PF0201";

    /// Query does not parse (error).
    pub const QUERY_SYNTAX: &str = "PF0300";
    /// Query references a metric/field no view defines (error).
    pub const QUERY_UNKNOWN_FIELD: &str = "PF0301";
    /// Query applies an operation to a value of the wrong type (error).
    pub const QUERY_TYPE_MISMATCH: &str = "PF0302";
    /// Query reads a column provably absent in its target view (error).
    pub const QUERY_ABSENT_COLUMN: &str = "PF0303";
    /// Sort over a NaN-capable metric without an explicit `nan_last` /
    /// `nan_first` policy (warning; execution defaults to
    /// `pag::ord::desc_nan_last` semantics).
    pub const QUERY_NAN_ORDER: &str = "PF0304";
    /// Filter chain is provably empty — contradictory predicates or
    /// `top 0` (error).
    pub const QUERY_EMPTY_RESULT: &str = "PF0305";
    /// Deprecated string-keyed `shim:` property access (warning).
    pub const QUERY_SHIM_ACCESS: &str = "PF0306";

    // PF04xx — bench-diff regression watchdog (`driver::bench_diff`).

    /// A pass present in both snapshots slowed down past the threshold
    /// (error; drives the CLI's non-zero exit).
    pub const BENCH_REGRESSED: &str = "PF0401";
    /// A pass in the baseline is missing from the current snapshot
    /// (warning — a silently dropped measurement hides regressions).
    pub const BENCH_MISSING_PASS: &str = "PF0402";
    /// A pass sped up past the threshold (info).
    pub const BENCH_IMPROVED: &str = "PF0403";
    /// A pass appears only in the current snapshot (info).
    pub const BENCH_NEW_PASS: &str = "PF0404";
    /// A baseline measurement is unusable — NaN, negative, or zero with
    /// a nonzero current value — so no ratio can be formed (warning).
    pub const BENCH_BAD_BASELINE: &str = "PF0405";
}
