//! Program-model lint: dead-code detection over the static call graph.
//!
//! A function nobody can reach from the program entry — not even as an
//! indirect-call candidate — can never execute, so its cost model is
//! dead weight and usually a modelling mistake (`PF0201`).

use progmodel::Program;

use crate::codes;
use crate::diag::{Anchor, Diagnostics, Severity};

/// Lint a program model. The result is sorted and deterministic.
pub fn lint_program(p: &Program) -> Diagnostics {
    let mut d = Diagnostics::new();
    let entry = p.function(p.entry).name.clone();
    for f in progmodel::dead_functions(p) {
        let name = &p.function(f).name;
        d.push(
            codes::DEAD_FUNCTION,
            Severity::Warn,
            Anchor::Func {
                id: f.0,
                name: name.to_string(),
            },
            format!("function `{name}` is unreachable from entry `{entry}`"),
        );
    }
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use progmodel::{c, ProgramBuilder};

    #[test]
    fn pf0201_dead_function_warns() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare("main", "p.c");
        let live = pb.declare("live", "p.c");
        let dead = pb.declare("orphan", "p.c");
        pb.define(main, |f| f.call(live));
        pb.define(live, |f| f.compute("k", c(1.0)));
        pb.define(dead, |f| f.compute("never", c(1.0)));
        let p = pb.build(main);

        let d = lint_program(&p);
        assert_eq!(d.len(), 1, "{}", d.render_text());
        let m = &d.items()[0];
        assert_eq!(m.code, codes::DEAD_FUNCTION);
        assert_eq!(m.severity, Severity::Warn);
        assert!(m.message.contains("`orphan`"), "{}", m.message);
        assert!(m.message.contains("entry `main`"), "{}", m.message);
    }

    #[test]
    fn fully_live_program_is_clean() {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare("main", "p.c");
        let helper = pb.declare("helper", "p.c");
        pb.define(main, |f| f.call(helper));
        pb.define(helper, |f| f.compute("k", c(1.0)));
        let p = pb.build(main);
        assert!(lint_program(&p).is_empty());
    }
}
