//! The PF03xx static semantic analyzer for PAG queries.
//!
//! [`lint_query`] type-checks a parsed [`query::Query`] against a
//! [`query::Schema`] without executing anything. Checks, by code:
//!
//! | code   | severity | finding |
//! |--------|----------|---------|
//! | PF0300 | error    | query does not parse |
//! | PF0301 | error    | unknown metric/field (with nearest-key suggestion) |
//! | PF0302 | error    | type mismatch (scalar vs vector vs string) |
//! | PF0303 | error    | column provably absent in the target view |
//! | PF0304 | warning  | sort without an explicit NaN policy |
//! | PF0305 | error    | provably-empty result (contradictory filters, `top 0`) |
//! | PF0306 | warning  | deprecated string-keyed `shim:` access |
//!
//! Diagnostics anchor to the offending pipeline stage
//! ([`Anchor::Stage`]) and, like every analyzer in this crate, emit in a
//! deterministic `(code, anchor, message)` order regardless of the walk
//! order — the CLI gate (`--check-query`) and the server's pre-enqueue
//! gate reject iff any error-severity finding exists.

use std::collections::BTreeMap;

use query::{CmpOp, Field, NanPolicy, Query, Schema, Stage, Ty, Value, View};

use crate::codes;
use crate::diag::{Anchor, Diagnostics, Severity};

/// Parse and lint query text against the static schema of the query's
/// own `from` view. Returns the AST when it parses (even if the lint
/// found errors) so callers can render the canonical form.
pub fn lint_query_text(text: &str) -> (Option<Query>, Diagnostics) {
    match Query::parse(text) {
        Err(e) => {
            let mut d = Diagnostics::new();
            d.push(
                codes::QUERY_SYNTAX,
                Severity::Error,
                Anchor::Graph,
                format!("query syntax error: {e}"),
            );
            (None, d.finish())
        }
        Ok(q) => {
            let schema = Schema::for_view(q.view());
            let diags = lint_query(&q, &schema);
            (Some(q), diags)
        }
    }
}

/// Lint a parsed query against a schema (static or PAG-derived).
pub fn lint_query(q: &Query, schema: &Schema) -> Diagnostics {
    let mut d = Diagnostics::new();
    lint_into(q, schema, &mut d);
    d.finish()
}

/// Interval constraints accumulated over a conjunctive filter chain,
/// used to prove a chain empty (PF0305). `join` resets the state (a
/// union can re-admit rows), and `score` resets the `score` pseudo-field.
#[derive(Default)]
struct Constraints {
    num: BTreeMap<String, NumRange>,
    str_eq: BTreeMap<String, String>,
}

#[derive(Clone, Copy)]
struct NumRange {
    lo: f64,
    lo_strict: bool,
    hi: f64,
    hi_strict: bool,
}

impl Default for NumRange {
    fn default() -> Self {
        NumRange {
            lo: f64::NEG_INFINITY,
            lo_strict: false,
            hi: f64::INFINITY,
            hi_strict: false,
        }
    }
}

impl NumRange {
    fn apply(&mut self, op: CmpOp, val: f64) {
        match op {
            CmpOp::Lt => {
                if val < self.hi || (val == self.hi && !self.hi_strict) {
                    self.hi = val;
                    self.hi_strict = true;
                }
            }
            CmpOp::Le => {
                if val < self.hi {
                    self.hi = val;
                    self.hi_strict = false;
                }
            }
            CmpOp::Gt => {
                if val > self.lo || (val == self.lo && !self.lo_strict) {
                    self.lo = val;
                    self.lo_strict = true;
                }
            }
            CmpOp::Ge => {
                if val > self.lo {
                    self.lo = val;
                    self.lo_strict = false;
                }
            }
            CmpOp::Eq => {
                self.apply(CmpOp::Ge, val);
                self.apply(CmpOp::Le, val);
            }
            CmpOp::Ne | CmpOp::Glob => {}
        }
    }

    fn satisfiable(&self) -> bool {
        self.lo < self.hi || (self.lo == self.hi && !self.lo_strict && !self.hi_strict)
    }
}

fn lint_into(q: &Query, schema: &Schema, d: &mut Diagnostics) {
    let view = q.view();
    let mut cons = Constraints::default();
    for (index, stage) in q.stages.iter().enumerate() {
        let anchor = Anchor::Stage {
            index,
            op: stage.op_name(),
        };
        match stage {
            Stage::From(_) => {}
            Stage::Filter { field, op, value } => {
                let ty = check_field(field, view, schema, d, &anchor);
                if let Some(ty) = ty {
                    check_filter_types(field, *op, value, ty, d, &anchor);
                }
                check_filter_emptiness(field, *op, value, ty, &mut cons, d, &anchor);
            }
            Stage::Score(field) => {
                let ty = check_field(field, view, schema, d, &anchor);
                if let Some(ty) = ty {
                    if ty != Ty::Num {
                        d.push(
                            codes::QUERY_TYPE_MISMATCH,
                            Severity::Error,
                            anchor.clone(),
                            format!(
                                "`score` needs a scalar metric, but `{}` is a {}",
                                field.name,
                                ty.name()
                            ),
                        );
                    }
                }
                // Scores change, so earlier `score` constraints no longer
                // describe the new values.
                cons.num.remove("score");
            }
            Stage::Sort { field, nan, .. } => {
                let ty = check_field(field, view, schema, d, &anchor);
                if let Some(ty) = ty {
                    if ty != Ty::Num {
                        d.push(
                            codes::QUERY_TYPE_MISMATCH,
                            Severity::Error,
                            anchor.clone(),
                            format!(
                                "sort key must be a scalar metric, but `{}` is a {}",
                                field.name,
                                ty.name()
                            ),
                        );
                    }
                }
                if *nan == NanPolicy::Unspecified {
                    d.push(
                        codes::QUERY_NAN_ORDER,
                        Severity::Warn,
                        anchor.clone(),
                        format!(
                            "sort over `{}` picks no NaN policy; degraded runs may carry NaN \
                             metrics, and execution falls back to `pag::ord::desc_nan_last` \
                             semantics — write `nan_last` or `nan_first` explicitly",
                            field.name
                        ),
                    );
                }
            }
            Stage::Top(n) => {
                if *n == 0 {
                    d.push(
                        codes::QUERY_EMPTY_RESULT,
                        Severity::Error,
                        anchor.clone(),
                        "`top 0` always yields an empty set",
                    );
                }
            }
            Stage::Join { query: sub, .. } => {
                if sub.view() != view {
                    d.push(
                        codes::QUERY_TYPE_MISMATCH,
                        Severity::Error,
                        anchor.clone(),
                        format!(
                            "join operands read different views: outer query reads `{}`, \
                             subquery reads `{}` (set operations need one graph)",
                            view.name(),
                            sub.view().name()
                        ),
                    );
                } else {
                    lint_into(sub, schema, d);
                }
                // A union may re-admit rows earlier filters excluded.
                cons = Constraints::default();
            }
            Stage::Select(fields) => {
                for field in fields {
                    check_field(field, view, schema, d, &anchor);
                }
            }
            Stage::Sum(field) => {
                let ty = check_field(field, view, schema, d, &anchor);
                if let Some(ty) = ty {
                    if ty != Ty::Num {
                        d.push(
                            codes::QUERY_TYPE_MISMATCH,
                            Severity::Error,
                            anchor.clone(),
                            format!(
                                "`sum` needs a scalar metric, but `{}` is a {}",
                                field.name,
                                ty.name()
                            ),
                        );
                    }
                }
            }
            Stage::Group { by, sum } => {
                let by_ty = check_field(by, view, schema, d, &anchor);
                if by_ty == Some(Ty::Vec) {
                    d.push(
                        codes::QUERY_TYPE_MISMATCH,
                        Severity::Error,
                        anchor.clone(),
                        format!(
                            "cannot group by vector metric `{}`; group keys must be scalar \
                             metrics or string attributes",
                            by.name
                        ),
                    );
                }
                let sum_ty = check_field(sum, view, schema, d, &anchor);
                if let Some(ty) = sum_ty {
                    if ty != Ty::Num {
                        d.push(
                            codes::QUERY_TYPE_MISMATCH,
                            Severity::Error,
                            anchor.clone(),
                            format!(
                                "`group ... sum` needs a scalar metric, but `{}` is a {}",
                                sum.name,
                                ty.name()
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Resolve a field's type, reporting PF0306 (shim access), PF0301
/// (unknown name) and PF0303 (absent in the target view) as applicable.
/// Returns `None` when no type is known (lint continues best-effort).
fn check_field(
    field: &Field,
    view: View,
    schema: &Schema,
    d: &mut Diagnostics,
    anchor: &Anchor,
) -> Option<Ty> {
    if field.shim {
        d.push(
            codes::QUERY_SHIM_ACCESS,
            Severity::Warn,
            anchor.clone(),
            format!(
                "deprecated string-keyed access `shim:{}` reads the legacy property map; \
                 intern the key and use the typed metric columns instead",
                field.name
            ),
        );
        // Shim reads surface as rendered strings; their keys live outside
        // the schema, so no unknown-field check applies.
        return Some(Ty::Str);
    }
    match schema.lookup(&field.name) {
        None => {
            let suggestion = schema
                .suggest(&field.name)
                .map(|s| format!("; did you mean `{s}`?"))
                .unwrap_or_default();
            d.push(
                codes::QUERY_UNKNOWN_FIELD,
                Severity::Error,
                anchor.clone(),
                format!("unknown metric or field `{}`{suggestion}", field.name),
            );
            None
        }
        Some(ty) => {
            if !schema.present_in(&field.name, view) {
                let other = match view {
                    View::Vertices => View::Parallel,
                    View::Parallel => View::Vertices,
                };
                let hint = if schema.present_in(&field.name, other) {
                    format!(
                        "; it is only materialized in the {} view (`from {}`)",
                        match other {
                            View::Vertices => "top-down",
                            View::Parallel => "parallel",
                        },
                        other.name()
                    )
                } else {
                    String::new()
                };
                d.push(
                    codes::QUERY_ABSENT_COLUMN,
                    Severity::Error,
                    anchor.clone(),
                    format!(
                        "column `{}` is never materialized in the {} view{hint}",
                        field.name,
                        match view {
                            View::Vertices => "top-down",
                            View::Parallel => "parallel",
                        }
                    ),
                );
            }
            Some(ty)
        }
    }
}

/// PF0302: operator/operand type agreement for one filter.
fn check_filter_types(
    field: &Field,
    op: CmpOp,
    value: &Value,
    ty: Ty,
    d: &mut Diagnostics,
    anchor: &Anchor,
) {
    let mut mismatch = |msg: String| {
        d.push(
            codes::QUERY_TYPE_MISMATCH,
            Severity::Error,
            anchor.clone(),
            msg,
        );
    };
    if ty == Ty::Vec {
        mismatch(format!(
            "cannot filter on vector metric `{}`; reduce it to a scalar first",
            field.name
        ));
        return;
    }
    match op {
        CmpOp::Glob => {
            if ty != Ty::Str {
                mismatch(format!(
                    "glob match `~` only applies to string attributes, but `{}` is a {}",
                    field.name,
                    ty.name()
                ));
            } else if !matches!(value, Value::Str(_)) {
                mismatch(format!(
                    "glob match `~` needs a string pattern on the right of `{}`",
                    field.name
                ));
            }
        }
        op if op.is_range() => match (ty, value) {
            (Ty::Num, Value::Num(_)) => {}
            (Ty::Str, _) => mismatch(format!(
                "range comparison `{}` does not apply to string attribute `{}`",
                op.symbol(),
                field.name
            )),
            (Ty::Num, Value::Str(s)) => mismatch(format!(
                "scalar metric `{}` compared against string \"{s}\"",
                field.name
            )),
            _ => unreachable!("vector handled above"),
        },
        CmpOp::Eq | CmpOp::Ne => match (ty, value) {
            (Ty::Num, Value::Num(_)) | (Ty::Str, Value::Str(_)) => {}
            (Ty::Num, Value::Str(s)) => mismatch(format!(
                "scalar metric `{}` compared against string \"{s}\"",
                field.name
            )),
            (Ty::Str, Value::Num(n)) => mismatch(format!(
                "string attribute `{}` compared against number {n}",
                field.name
            )),
            _ => unreachable!("vector handled above"),
        },
        _ => unreachable!("all operators covered"),
    }
}

/// PF0305: always-false predicates and contradictory chains.
fn check_filter_emptiness(
    field: &Field,
    op: CmpOp,
    value: &Value,
    ty: Option<Ty>,
    cons: &mut Constraints,
    d: &mut Diagnostics,
    anchor: &Anchor,
) {
    let mut empty = |msg: String| {
        d.push(
            codes::QUERY_EMPTY_RESULT,
            Severity::Error,
            anchor.clone(),
            msg,
        );
    };
    match value {
        // `!= nan` is vacuously true for every non-NaN row; nothing to flag,
        // and the NaN literal must not feed the numeric range constraints.
        Value::Num(n) if n.is_nan() && op == CmpOp::Ne => {}
        Value::Num(n) if n.is_nan() => {
            // IEEE comparisons with NaN are false for every other operator.
            empty(format!(
                "`{} {} nan` is always false (IEEE NaN compares false); \
                 this filter empties the set",
                field.name,
                op.symbol()
            ));
        }
        Value::Num(n) if ty == Some(Ty::Num) => {
            let range = cons.num.entry(field.name.clone()).or_default();
            let was_satisfiable = range.satisfiable();
            range.apply(op, *n);
            if was_satisfiable && !range.satisfiable() {
                empty(format!(
                    "`{} {} {n}` contradicts earlier filters on `{}`; no row can satisfy \
                     the chain",
                    field.name,
                    op.symbol(),
                    field.name
                ));
            }
        }
        Value::Str(s) if op == CmpOp::Eq && !field.shim => {
            if let Some(prev) = cons.str_eq.get(&field.name) {
                if prev != s {
                    empty(format!(
                        "`{} == \"{s}\"` contradicts the earlier `{} == \"{prev}\"`",
                        field.name, field.name
                    ));
                }
            } else {
                cons.str_eq.insert(field.name.clone(), s.clone());
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes_of(d: &Diagnostics) -> Vec<&'static str> {
        d.items().iter().map(|i| i.code).collect()
    }

    fn lint(src: &str) -> Diagnostics {
        lint_query_text(src).1
    }

    #[test]
    fn clean_hotspot_query_has_no_findings() {
        let d = lint(
            "from vertices | score time | sort score desc nan_last | top 15 \
             | select name, label, debug-info, time",
        );
        assert!(d.is_empty(), "{}", d.render_text());
    }

    #[test]
    fn pf0300_fires_on_syntax_errors() {
        let d = lint("from vertices | top banana");
        assert_eq!(codes_of(&d), vec![codes::QUERY_SYNTAX]);
        assert!(d.has_errors());
        assert!(d.items()[0].message.contains("syntax error"));
        let (q, _) = lint_query_text("from vertices | top banana");
        assert!(q.is_none(), "unparseable query yields no AST");
    }

    #[test]
    fn pf0301_fires_on_unknown_fields_with_suggestion() {
        let d = lint("from vertices | filter tme > 1");
        assert_eq!(codes_of(&d), vec![codes::QUERY_UNKNOWN_FIELD]);
        let msg = &d.items()[0].message;
        assert!(msg.contains("did you mean `time`?"), "{msg}");
        assert!(
            matches!(
                d.items()[0].anchor,
                Anchor::Stage {
                    index: 1,
                    op: "filter"
                }
            ),
            "{:?}",
            d.items()[0].anchor
        );
        // Far-off names get no suggestion but still fire.
        let d = lint("from vertices | sum zzzzzzzzz");
        assert_eq!(codes_of(&d), vec![codes::QUERY_UNKNOWN_FIELD]);
        assert!(!d.items()[0].message.contains("did you mean"));
    }

    #[test]
    fn pf0302_fires_on_type_mismatches() {
        // Range comparison over a string attribute.
        let d = lint("from vertices | filter name > 3");
        assert_eq!(codes_of(&d), vec![codes::QUERY_TYPE_MISMATCH]);
        // Filtering a vector metric at all.
        let d = lint("from vertices | filter time-per-proc > 1");
        assert_eq!(codes_of(&d), vec![codes::QUERY_TYPE_MISMATCH]);
        // Glob over a scalar metric.
        let d = lint("from vertices | filter time ~ \"x*\"");
        assert_eq!(codes_of(&d), vec![codes::QUERY_TYPE_MISMATCH]);
        // Scalar metric vs string literal.
        let d = lint("from vertices | filter time == \"fast\"");
        assert_eq!(codes_of(&d), vec![codes::QUERY_TYPE_MISMATCH]);
        // Sorting / summing non-scalars.
        let d = lint("from vertices | sort name asc nan_last");
        assert_eq!(codes_of(&d), vec![codes::QUERY_TYPE_MISMATCH]);
        let d = lint("from vertices | sum name");
        assert_eq!(codes_of(&d), vec![codes::QUERY_TYPE_MISMATCH]);
        // Join across views.
        let d = lint("from vertices | join union (from parallel)");
        assert_eq!(codes_of(&d), vec![codes::QUERY_TYPE_MISMATCH]);
        assert!(d.items()[0].message.contains("different views"));
    }

    #[test]
    fn pf0303_fires_on_view_absent_columns() {
        let d = lint("from vertices | filter proc == 0");
        assert_eq!(codes_of(&d), vec![codes::QUERY_ABSENT_COLUMN]);
        assert!(
            d.items()[0].message.contains("`from parallel`"),
            "{}",
            d.items()[0].message
        );
        let d = lint("from parallel | select name, time-per-proc");
        assert_eq!(codes_of(&d), vec![codes::QUERY_ABSENT_COLUMN]);
    }

    #[test]
    fn pf0304_warns_on_nan_unsafe_sort() {
        let d = lint("from vertices | sort time");
        assert_eq!(codes_of(&d), vec![codes::QUERY_NAN_ORDER]);
        assert_eq!(d.items()[0].severity, Severity::Warn);
        assert!(!d.has_errors(), "PF0304 alone must not gate execution");
        // An explicit policy silences it.
        assert!(lint("from vertices | sort time desc nan_last").is_empty());
        assert!(lint("from vertices | sort time asc nan_first").is_empty());
    }

    #[test]
    fn pf0305_fires_on_provably_empty_chains() {
        // Contradictory range predicates.
        let d = lint("from vertices | filter time > 5 | filter time < 3");
        assert_eq!(codes_of(&d), vec![codes::QUERY_EMPTY_RESULT]);
        // Equality to two different constants.
        let d = lint("from vertices | filter count == 1 | filter count == 2");
        assert_eq!(codes_of(&d), vec![codes::QUERY_EMPTY_RESULT]);
        // Two different string equalities.
        let d = lint("from vertices | filter name == \"a\" | filter name == \"b\"");
        assert_eq!(codes_of(&d), vec![codes::QUERY_EMPTY_RESULT]);
        // NaN comparisons are always false.
        let d = lint("from vertices | filter time == nan");
        assert_eq!(codes_of(&d), vec![codes::QUERY_EMPTY_RESULT]);
        // `top 0`.
        let d = lint("from vertices | top 0");
        assert_eq!(codes_of(&d), vec![codes::QUERY_EMPTY_RESULT]);
        // Boundary arithmetic: `>= 5` then `<= 5` is satisfiable...
        assert!(lint("from vertices | filter time >= 5 | filter time <= 5").is_empty());
        // ...but `> 5` then `<= 5` is not.
        let d = lint("from vertices | filter time > 5 | filter time <= 5");
        assert_eq!(codes_of(&d), vec![codes::QUERY_EMPTY_RESULT]);
        // `!= nan` is always true, not always false.
        assert!(lint("from vertices | filter time != nan").is_empty());
        // A join resets the chain: the union may re-admit rows.
        assert!(lint(
            "from vertices | filter time > 5 \
             | join union (from vertices | filter time < 3) | filter time < 3"
        )
        .is_empty());
    }

    #[test]
    fn pf0306_warns_on_shim_access() {
        let d = lint("from vertices | filter shim:region == \"main\"");
        assert_eq!(codes_of(&d), vec![codes::QUERY_SHIM_ACCESS]);
        assert_eq!(d.items()[0].severity, Severity::Warn);
        assert!(!d.has_errors());
    }

    #[test]
    fn subquery_findings_are_reported() {
        let d = lint("from vertices | join minus (from vertices | filter tme > 1)");
        assert_eq!(codes_of(&d), vec![codes::QUERY_UNKNOWN_FIELD]);
    }

    #[test]
    fn diagnostics_are_sorted_and_order_invariant() {
        // One query tripping several families at once; emission must come
        // out in (code, anchor, message) order however the walk found them.
        let src = "from vertices | sort proc | filter tme > 1 | filter time == nan \
                   | select shim:x, time-per-proc";
        let d = lint(src);
        let codes = codes_of(&d);
        let mut sorted = codes.clone();
        sorted.sort();
        assert_eq!(codes, sorted, "emission must be code-sorted");
        assert!(codes.contains(&codes::QUERY_UNKNOWN_FIELD));
        assert!(codes.contains(&codes::QUERY_ABSENT_COLUMN));
        assert!(codes.contains(&codes::QUERY_NAN_ORDER));
        assert!(codes.contains(&codes::QUERY_EMPTY_RESULT));
        assert!(codes.contains(&codes::QUERY_SHIM_ACCESS));
        // Linting twice renders identically.
        assert_eq!(d.render_text(), lint(src).render_text());
        assert_eq!(d.render_json(), lint(src).render_json());
    }

    #[test]
    fn runtime_schema_accepts_user_keys() {
        let mut g = pag::Pag::new(pag::ViewKind::TopDown, "t");
        let v = g.add_vertex(pag::VertexLabel::Function, "main");
        let k = g.intern_key("my-metric");
        g.set_metric(v, k, 2.0);
        let schema = Schema::from_pag(&g, View::Vertices);
        let q = Query::parse("from vertices | filter my-metric > 1").unwrap();
        assert!(lint_query(&q, &schema).is_empty());
        // The static schema, by contrast, rejects it.
        let d = lint("from vertices | filter my-metric > 1");
        assert_eq!(codes_of(&d), vec![codes::QUERY_UNKNOWN_FIELD]);
    }
}
