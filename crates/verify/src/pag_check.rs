//! PAG structural-invariant checker.
//!
//! Verifies a constructed Program Abstraction Graph against the
//! invariants the pass library (and the paper's Table 2 shape data) rely
//! on:
//!
//! * every edge endpoint is a real vertex (`PF0101`);
//! * the top-down view is a tree: a designated root (`PF0102`),
//!   `|E| = |V| - 1` (`PF0103`), and every vertex reachable from the
//!   root (`PF0104`);
//! * only intra-/inter-procedural edge labels appear in the top-down
//!   view (`PF0105`) — cross-flow edges belong to the parallel view;
//! * audited metrics (times, counts, PMU estimates, communication
//!   volumes) are finite and non-negative (`PF0106`);
//! * completeness metadata written by the degraded-collection path is a
//!   finite fraction in `[0, 1]` (`PF0107`) with per-process vectors of
//!   the right length (`PF0108`);
//! * the columnar metric store is internally consistent: every scalar
//!   column's presence bitmap matches its value count (`PF0111`) and no
//!   column exists for a `KeyId` the key table never interned
//!   (`PF0112`).
//!
//! Large PAGs can violate one rule at thousands of vertices, so
//! per-vertex findings are summarized: one diagnostic per (code, key)
//! naming the offender count and the first offender.

use pag::{keys, mkeys, KeyId, Pag, VertexId, ViewKind};

use crate::codes;
use crate::diag::{Anchor, Diagnostics, Severity};

/// Scalar metric keys that must be finite and non-negative wherever they
/// appear. `diff-time` is deliberately absent: differential analysis
/// legitimately produces negative deltas.
const SCALAR_AUDIT: &[KeyId] = &[
    mkeys::TIME,
    mkeys::SELF_TIME,
    mkeys::COUNT,
    mkeys::PMU_INSTRUCTIONS,
    mkeys::PMU_CYCLES,
    mkeys::PMU_CACHE_MISSES,
    mkeys::COMM_BYTES,
    mkeys::COMM_TIME,
    mkeys::WAIT_TIME,
];

/// Per-process vector keys whose every element must be finite and
/// non-negative.
const VECTOR_AUDIT: &[KeyId] = &[
    mkeys::TIME_PER_PROC,
    mkeys::BYTES_PER_PROC,
    mkeys::WAIT_PER_PROC,
];

fn vanchor(g: &Pag, v: VertexId) -> Anchor {
    Anchor::Vertex {
        id: v.0,
        name: g.vertex(v).name.to_string(),
    }
}

/// Check a PAG's structural invariants. The result is sorted and
/// deterministic; see the module docs for the rule set.
pub fn check_pag(g: &Pag) -> Diagnostics {
    let mut d = Diagnostics::new();
    let nv = g.num_vertices();

    // PF0101 — dangling edge endpoints. Edges failing this are excluded
    // from the traversal below (their adjacency entries cannot be
    // trusted).
    let mut edge_ok = vec![true; g.num_edges()];
    for e in g.edge_ids() {
        let ed = g.edge(e);
        if ed.src.index() >= nv || ed.dst.index() >= nv {
            edge_ok[e.index()] = false;
            let bad = if ed.src.index() >= nv { ed.src } else { ed.dst };
            d.push(
                codes::DANGLING_EDGE,
                Severity::Error,
                Anchor::Edge { id: e.0 },
                format!("edge endpoint {bad} is out of range (PAG has {nv} vertices)"),
            );
        }
    }

    if g.view() == ViewKind::TopDown {
        // PF0102 — a non-empty top-down PAG must designate its root.
        let root = g.root().filter(|r| r.index() < nv);
        if nv > 0 && root.is_none() {
            d.push(
                codes::NO_ROOT,
                Severity::Error,
                Anchor::Graph,
                "top-down PAG has no designated root vertex".to_string(),
            );
        }

        // PF0103 — tree invariant |E| = |V| - 1 (Table 2).
        if nv > 0 && g.num_edges() != nv - 1 {
            d.push(
                codes::TREE_VIOLATION,
                Severity::Error,
                Anchor::Graph,
                format!(
                    "top-down view must be a tree (|E| = |V| - 1) but has {} vertices and {} edges",
                    nv,
                    g.num_edges()
                ),
            );
        }

        // PF0104 — all vertices reachable from the root (summarized).
        if let Some(root) = root {
            let mut reach = vec![false; nv];
            reach[root.index()] = true;
            let mut stack = vec![root];
            while let Some(v) = stack.pop() {
                for &e in g.out_edges(v) {
                    if !edge_ok[e.index()] {
                        continue;
                    }
                    let dst = g.edge(e).dst;
                    if !reach[dst.index()] {
                        reach[dst.index()] = true;
                        stack.push(dst);
                    }
                }
            }
            let unrooted: Vec<VertexId> = g.vertex_ids().filter(|v| !reach[v.index()]).collect();
            if let Some(&first) = unrooted.first() {
                let sample: Vec<String> = unrooted
                    .iter()
                    .take(3)
                    .map(|&v| format!("`{}` ({v})", g.vertex(v).name))
                    .collect();
                d.push(
                    codes::UNROOTED_VERTEX,
                    Severity::Error,
                    vanchor(g, first),
                    format!(
                        "{} vertices are unreachable from root `{}`: {}{}",
                        unrooted.len(),
                        g.vertex(root).name,
                        sample.join(", "),
                        if unrooted.len() > 3 { ", …" } else { "" },
                    ),
                );
            }
        }

        // PF0105 — cross-flow (inter-process/inter-thread) edges are
        // illegal in the top-down view (summarized).
        let illegal: Vec<_> = g
            .edge_ids()
            .filter(|&e| edge_ok[e.index()] && g.edge(e).label.is_cross_flow())
            .collect();
        if let Some(&first) = illegal.first() {
            d.push(
                codes::ILLEGAL_EDGE_LABEL,
                Severity::Error,
                Anchor::Edge { id: first.0 },
                format!(
                    "{} `{}`-labeled edge(s) in the top-down view (first at {first}); \
                     cross-flow edges belong to the parallel view",
                    illegal.len(),
                    g.edge(first).label.name(),
                ),
            );
        }
    }

    // Columnar-store faults first: a corrupt presence bitmap makes every
    // value read on that column unreliable, so report the corruption
    // before the value audits below interpret what they see.
    audit_columns(g, &mut d);
    audit_metrics(g, &mut d);
    audit_completeness(g, &mut d);
    audit_truncation(g, &mut d);

    d.finish()
}

/// PF0111 / PF0112 — columnar-store invariants. The query layer and the
/// parallel graph algorithms read presence bitmaps word-at-a-time, so a
/// bitmap whose word count disagrees with its value count is memory
/// corruption waiting to be dereferenced; an orphan column (one whose
/// `KeyId` the key table never interned) can never be named by a pass or
/// a query and signals a serialization or mutation bug.
fn audit_columns(g: &Pag, d: &mut Diagnostics) {
    let known = g.key_table().len();
    for (columns, space) in [
        (g.vmetric_columns(), "vertex"),
        (g.emetric_columns(), "edge"),
    ] {
        for fault in columns.audit(known) {
            match fault {
                pag::ColumnFault::PresenceLen {
                    key,
                    data_len,
                    present_words,
                } => {
                    let expected = data_len.div_ceil(64);
                    let name = if key.index() < known {
                        format!("`{}`", g.key_name(key))
                    } else {
                        format!("key {}", key.0)
                    };
                    d.push(
                        codes::PRESENCE_SHAPE,
                        Severity::Error,
                        Anchor::Graph,
                        format!(
                            "{space} metric column {name} holds {data_len} value(s) but \
                             {present_words} presence word(s); expected {expected}"
                        ),
                    );
                }
                pag::ColumnFault::UnknownKey { key, column } => {
                    d.push(
                        codes::UNKNOWN_COLUMN_KEY,
                        Severity::Error,
                        Anchor::Graph,
                        format!(
                            "{space} {column} column exists for key {} but the key table \
                             only interns {known} key(s)",
                            key.0
                        ),
                    );
                }
            }
        }
    }
}

/// PF0106 — audited metrics must be finite and non-negative. One
/// summary diagnostic per offending key.
fn audit_metrics(g: &Pag, d: &mut Diagnostics) {
    // Columnar scan: one pass per audited key over its metric column,
    // never touching string keys or per-vertex property lists.
    for &key in SCALAR_AUDIT {
        let mut count = 0usize;
        let mut first: Option<(VertexId, f64)> = None;
        for v in g.vertex_ids() {
            if let Some(x) = g.metric(v, key) {
                if !x.is_finite() || x < 0.0 {
                    count += 1;
                    first.get_or_insert((v, x));
                }
            }
        }
        if let Some((v, x)) = first {
            let name = g.key_name(key);
            d.push(
                codes::BAD_METRIC,
                Severity::Warn,
                vanchor(g, v),
                format!(
                    "metric `{name}` is negative/NaN/infinite at {count} vertex(es); first: {x}"
                ),
            );
        }
    }
    for &key in VECTOR_AUDIT {
        let mut count = 0usize;
        let mut first: Option<(VertexId, f64)> = None;
        for v in g.vertex_ids() {
            if let Some(xs) = g.metric_vec(v, key) {
                if let Some(&x) = xs.iter().find(|x| !x.is_finite() || **x < 0.0) {
                    count += 1;
                    first.get_or_insert((v, x));
                }
            }
        }
        if let Some((v, x)) = first {
            let name = g.key_name(key);
            d.push(
                codes::BAD_METRIC,
                Severity::Warn,
                vanchor(g, v),
                format!(
                    "metric `{name}` is negative/NaN/infinite at {count} vertex(es); first: {x}"
                ),
            );
        }
    }
}

/// PF0107 / PF0108 — completeness metadata from the degraded-collection
/// path: a finite fraction in `[0, 1]`, with per-process vectors sized
/// `num_procs` and each element itself a valid fraction.
fn audit_completeness(g: &Pag, d: &mut Diagnostics) {
    let procs = g.num_procs() as usize;
    for v in g.vertex_ids() {
        if let Some(x) = g.metric(v, mkeys::COMPLETENESS) {
            if !x.is_finite() || !(0.0..=1.0).contains(&x) {
                d.push(
                    codes::BAD_COMPLETENESS,
                    Severity::Warn,
                    vanchor(g, v),
                    format!(
                        "`{}` is {x}, expected a finite fraction in [0, 1]",
                        keys::COMPLETENESS
                    ),
                );
            }
        }
        if let Some(xs) = g.metric_vec(v, mkeys::COMPLETENESS_PER_PROC) {
            if xs.len() != procs {
                d.push(
                    codes::COMPLETENESS_SHAPE,
                    Severity::Warn,
                    vanchor(g, v),
                    format!(
                        "`{}` has {} entries but the run has {procs} process(es)",
                        keys::COMPLETENESS_PER_PROC,
                        xs.len(),
                    ),
                );
            }
            if let Some(&x) = xs
                .iter()
                .find(|x| !x.is_finite() || !(0.0..=1.0).contains(*x))
            {
                d.push(
                    codes::BAD_COMPLETENESS,
                    Severity::Warn,
                    vanchor(g, v),
                    format!(
                        "`{}` contains {x}, expected finite fractions in [0, 1]",
                        keys::COMPLETENESS_PER_PROC,
                    ),
                );
            }
        }
    }
}

/// PF0110 — the observation behind this PAG was truncated: the span
/// recorder hit its cap and dropped spans, so the graph is knowingly
/// incomplete. Info-level: the data is still usable, just labeled.
fn audit_truncation(g: &Pag, d: &mut Diagnostics) {
    for v in g.vertex_ids() {
        if let Some(n) = g.metric(v, mkeys::DROPPED_SPANS) {
            if n > 0.0 {
                d.push(
                    codes::TRUNCATED_OBSERVATION,
                    Severity::Info,
                    vanchor(g, v),
                    format!(
                        "observation truncated: {n} span(s) dropped at the recorder's cap; \
                         this PAG under-reports the layers that were still running"
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pag::{CommKind, EdgeLabel, VertexLabel};

    fn tree() -> Pag {
        let mut g = Pag::new(ViewKind::TopDown, "t");
        let root = g.add_vertex(VertexLabel::Root, "main");
        let l = g.add_vertex(VertexLabel::Loop, "loop_1");
        let c = g.add_vertex(VertexLabel::Call(pag::CallKind::Comm), "MPI_Send");
        g.add_edge(root, l, EdgeLabel::IntraProc);
        g.add_edge(l, c, EdgeLabel::IntraProc);
        g.set_root(root);
        g
    }

    fn codes_of(d: &Diagnostics) -> Vec<&'static str> {
        d.items().iter().map(|x| x.code).collect()
    }

    #[test]
    fn well_formed_tree_is_clean() {
        let d = check_pag(&tree());
        assert!(d.is_empty(), "{}", d.render_text());
    }

    #[test]
    fn empty_pag_is_clean() {
        assert!(check_pag(&Pag::new(ViewKind::TopDown, "empty")).is_empty());
        assert!(check_pag(&Pag::new(ViewKind::Parallel, "empty")).is_empty());
    }

    #[test]
    fn pf0101_dangling_edge_endpoint() {
        let mut g = tree();
        // EdgeData exposes its endpoints; point one past the table.
        let e = pag::EdgeId(0);
        g.edge_mut(e).dst = VertexId(99);
        let d = check_pag(&g);
        let m = d
            .items()
            .iter()
            .find(|x| x.code == codes::DANGLING_EDGE)
            .unwrap();
        assert_eq!(m.severity, Severity::Error);
        assert!(m.message.contains("v99"), "{}", m.message);
        assert!(m.message.contains("3 vertices"), "{}", m.message);
    }

    #[test]
    fn pf0102_missing_root() {
        let mut g = Pag::new(ViewKind::TopDown, "t");
        g.add_vertex(VertexLabel::Function, "f");
        let d = check_pag(&g);
        assert!(codes_of(&d).contains(&codes::NO_ROOT));
    }

    #[test]
    fn pf0103_edge_count_breaks_tree_invariant() {
        let mut g = tree();
        // A second path to MPI_Send: |E| becomes |V|.
        g.add_edge(VertexId(0), VertexId(2), EdgeLabel::InterProc);
        let d = check_pag(&g);
        let m = d
            .items()
            .iter()
            .find(|x| x.code == codes::TREE_VIOLATION)
            .unwrap();
        assert!(
            m.message.contains("3 vertices and 3 edges"),
            "{}",
            m.message
        );
    }

    #[test]
    fn pf0104_unrooted_vertices_summarized() {
        let mut g = tree();
        g.add_vertex(VertexLabel::Compute, "orphan_a");
        g.add_vertex(VertexLabel::Compute, "orphan_b");
        let d = check_pag(&g);
        let m = d
            .items()
            .iter()
            .find(|x| x.code == codes::UNROOTED_VERTEX)
            .unwrap();
        assert!(m.message.starts_with("2 vertices"), "{}", m.message);
        assert!(m.message.contains("`orphan_a`"), "{}", m.message);
        assert!(m.message.contains("root `main`"), "{}", m.message);
        // The edge-count violation fires too (5 vertices, 2 edges).
        assert!(codes_of(&d).contains(&codes::TREE_VIOLATION));
    }

    #[test]
    fn pf0105_cross_flow_edge_in_top_down() {
        let mut g = tree();
        // Replace nothing; add an inter-process edge (also breaks the
        // edge count, which is fine — both must fire).
        g.add_edge(
            VertexId(2),
            VertexId(2),
            EdgeLabel::InterProcess(CommKind::Collective),
        );
        let d = check_pag(&g);
        let m = d
            .items()
            .iter()
            .find(|x| x.code == codes::ILLEGAL_EDGE_LABEL)
            .unwrap();
        assert!(m.message.contains("`collective`"), "{}", m.message);
        assert!(m.message.contains("e2"), "{}", m.message);
    }

    #[test]
    fn parallel_view_allows_cross_flow_edges() {
        let mut g = Pag::new(ViewKind::Parallel, "p");
        let a = g.add_vertex(VertexLabel::Call(pag::CallKind::Comm), "MPI_Send");
        let b = g.add_vertex(VertexLabel::Call(pag::CallKind::Comm), "MPI_Recv");
        g.add_edge(a, b, EdgeLabel::InterProcess(CommKind::P2pSync));
        let d = check_pag(&g);
        assert!(d.is_empty(), "{}", d.render_text());
    }

    #[test]
    fn pf0106_bad_metrics_summarized_per_key() {
        let mut g = tree();
        g.set_vprop(VertexId(1), keys::TIME, -1.0);
        g.set_vprop(VertexId(2), keys::TIME, f64::NAN);
        g.set_vprop(VertexId(2), keys::WAIT_PER_PROC, vec![0.5, f64::INFINITY]);
        // A legitimate negative differential must NOT fire.
        g.set_vprop(VertexId(1), keys::DIFF_TIME, -0.25);
        let d = check_pag(&g);
        let bad: Vec<_> = d
            .items()
            .iter()
            .filter(|x| x.code == codes::BAD_METRIC)
            .collect();
        assert_eq!(bad.len(), 2, "{}", d.render_text());
        let time = bad.iter().find(|x| x.message.contains("`time`")).unwrap();
        assert!(time.message.contains("2 vertex(es)"), "{}", time.message);
        assert!(time.message.contains("first: -1"), "{}", time.message);
        assert!(bad.iter().any(|x| x.message.contains("`wait-per-proc`")));
    }

    #[test]
    fn pf0107_completeness_out_of_range() {
        let mut g = tree();
        g.set_vprop(VertexId(0), keys::COMPLETENESS, 1.5);
        let d = check_pag(&g);
        let m = d
            .items()
            .iter()
            .find(|x| x.code == codes::BAD_COMPLETENESS)
            .unwrap();
        assert!(m.message.contains("1.5"), "{}", m.message);
    }

    #[test]
    fn pf0108_completeness_vector_wrong_length() {
        let mut g = tree();
        g.set_num_procs(4);
        g.set_vprop(VertexId(0), keys::COMPLETENESS_PER_PROC, vec![1.0, 1.0]);
        let d = check_pag(&g);
        let m = d
            .items()
            .iter()
            .find(|x| x.code == codes::COMPLETENESS_SHAPE)
            .unwrap();
        assert!(m.message.contains("2 entries"), "{}", m.message);
        assert!(m.message.contains("4 process(es)"), "{}", m.message);
        // Values themselves are valid fractions → no PF0107.
        assert!(!codes_of(&d).contains(&codes::BAD_COMPLETENESS));
    }

    #[test]
    fn valid_completeness_metadata_is_clean() {
        let mut g = tree();
        g.set_num_procs(2);
        g.set_vprop(VertexId(0), keys::COMPLETENESS, 0.75);
        g.set_vprop(VertexId(0), keys::COMPLETENESS_PER_PROC, vec![1.0, 0.5]);
        assert!(check_pag(&g).is_empty());
    }

    #[test]
    fn pf0111_presence_bitmap_length_mismatch() {
        let mut g = tree();
        g.set_vprop(VertexId(0), keys::TIME, 1.0);
        assert!(check_pag(&g).is_empty());
        // Simulate corruption: drop one presence word out from under the
        // `time` column's values.
        g.vmetric_columns_for_test()
            .corrupt_presence_for_test(mkeys::TIME);
        let d = check_pag(&g);
        let m = d
            .items()
            .iter()
            .find(|x| x.code == codes::PRESENCE_SHAPE)
            .unwrap();
        assert_eq!(m.severity, Severity::Error);
        assert!(m.message.contains("`time`"), "{}", m.message);
        assert!(m.message.contains("0 presence word(s)"), "{}", m.message);
        assert!(m.message.contains("expected 1"), "{}", m.message);
    }

    #[test]
    fn pf0112_column_for_uninterned_key() {
        let mut g = tree();
        // Write through a KeyId the key table never handed out.
        g.set_metric(VertexId(0), KeyId(999), 1.0);
        let d = check_pag(&g);
        let m = d
            .items()
            .iter()
            .find(|x| x.code == codes::UNKNOWN_COLUMN_KEY)
            .unwrap();
        assert_eq!(m.severity, Severity::Error);
        assert!(m.message.contains("key 999"), "{}", m.message);
        assert!(m.message.contains("scalar column"), "{}", m.message);
    }

    #[test]
    fn pf0110_truncated_observation_is_info() {
        let mut g = tree();
        g.set_vprop(VertexId(0), keys::DROPPED_SPANS, 17.0);
        let d = check_pag(&g);
        let m = d
            .items()
            .iter()
            .find(|x| x.code == codes::TRUNCATED_OBSERVATION)
            .unwrap();
        assert_eq!(m.severity, Severity::Info);
        assert!(m.message.contains("17"), "{}", m.message);
        // Info-level: the PAG still counts as clean for gating purposes.
        assert!(d.is_clean(), "{}", d.render_text());

        // Zero drops (complete observation) → no diagnostic at all.
        let mut g2 = tree();
        g2.set_vprop(VertexId(0), keys::DROPPED_SPANS, 0.0);
        assert!(check_pag(&g2).is_empty());
    }
}
