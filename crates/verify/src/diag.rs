//! The diagnostics framework: stable codes, severities, source anchors,
//! deterministic ordering, and text/JSON rendering.
//!
//! Diagnostics are *data*, not log lines: analyzers return a
//! [`Diagnostics`] collection and callers decide how to surface it — the
//! engine embeds it in `PerFlowError::Rejected`, the CLI renders text or
//! JSON, tests match on codes. Two runs of any analyzer over the same
//! input produce byte-identical renderings: collections sort by
//! `(code, anchor, message)` before emission.

use std::fmt;

/// How serious a diagnostic is.
///
/// Severity policy: **error** means the artifact is structurally broken —
/// executing the graph would fail, or the PAG violates an invariant the
/// pass library relies on; the pre-flight gate rejects on errors.
/// **warning** means the artifact is suspicious but executable (duplicate
/// names, unreachable passes, identity-keyed caching, degraded metrics).
/// **info** is advisory (an unused output may be intentional).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory only.
    Info,
    /// Suspicious but executable.
    Warn,
    /// Structurally broken; the pre-flight gate rejects on these.
    Error,
}

impl Severity {
    /// Lowercase name used in text and JSON renderings.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warning",
            Severity::Error => "error",
        }
    }
}

/// What a diagnostic points at.
///
/// The variant order defines the sort precedence within one code:
/// whole-graph diagnostics first, then nodes, vertices, edges, functions.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Anchor {
    /// The whole analyzed artifact.
    Graph,
    /// One PerFlowGraph node (pass), by id and display name.
    Node {
        /// Node index within the graph.
        id: usize,
        /// The pass's display name.
        name: String,
    },
    /// One PAG vertex, by id and snippet name.
    Vertex {
        /// Vertex id.
        id: u32,
        /// Snippet name.
        name: String,
    },
    /// One PAG edge, by id.
    Edge {
        /// Edge id.
        id: u32,
    },
    /// One program-model function, by id and name.
    Func {
        /// Function id.
        id: u32,
        /// Function name.
        name: String,
    },
    /// One query pipeline stage, by position and keyword.
    Stage {
        /// Zero-based stage index within the pipeline.
        index: usize,
        /// The stage keyword (`filter`, `sort`, ...).
        op: &'static str,
    },
}

impl fmt::Display for Anchor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Anchor::Graph => write!(f, "graph"),
            Anchor::Node { id, name } => write!(f, "node {id} (`{name}`)"),
            Anchor::Vertex { id, name } => write!(f, "vertex {id} (`{name}`)"),
            Anchor::Edge { id } => write!(f, "edge {id}"),
            Anchor::Func { id, name } => write!(f, "function {id} (`{name}`)"),
            Anchor::Stage { index, op } => write!(f, "stage {index} (`{op}`)"),
        }
    }
}

/// One finding of a static analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (see [`crate::codes`]).
    pub code: &'static str,
    /// Severity under the policy documented on [`Severity`].
    pub severity: Severity,
    /// What the finding points at.
    pub anchor: Anchor,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Render as one text line:
    /// `error[PF0001] node 0 (`a`): data-flow cycle …`.
    pub fn render_text(&self) -> String {
        format!(
            "{}[{}] {}: {}",
            self.severity.name(),
            self.code,
            self.anchor,
            self.message
        )
    }

    /// Render as one JSON object with a structured anchor.
    pub fn render_json(&self) -> String {
        let anchor = match &self.anchor {
            Anchor::Graph => "{\"kind\":\"graph\"}".to_string(),
            Anchor::Node { id, name } => format!(
                "{{\"kind\":\"node\",\"id\":{id},\"name\":\"{}\"}}",
                json_escape(name)
            ),
            Anchor::Vertex { id, name } => format!(
                "{{\"kind\":\"vertex\",\"id\":{id},\"name\":\"{}\"}}",
                json_escape(name)
            ),
            Anchor::Edge { id } => format!("{{\"kind\":\"edge\",\"id\":{id}}}"),
            Anchor::Func { id, name } => format!(
                "{{\"kind\":\"function\",\"id\":{id},\"name\":\"{}\"}}",
                json_escape(name)
            ),
            Anchor::Stage { index, op } => {
                format!("{{\"kind\":\"stage\",\"index\":{index},\"op\":\"{op}\"}}")
            }
        };
        format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"anchor\":{},\"message\":\"{}\"}}",
            self.code,
            self.severity.name(),
            anchor,
            json_escape(&self.message)
        )
    }

    fn sort_key(&self) -> (&'static str, &Anchor, &str) {
        (self.code, &self.anchor, &self.message)
    }
}

/// An ordered collection of diagnostics.
///
/// `push` may happen in any analyzer-internal order; the collection sorts
/// itself on [`Diagnostics::finish`] (and defensively before rendering),
/// so emission order is independent of analysis order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a finding.
    pub fn push(
        &mut self,
        code: &'static str,
        severity: Severity,
        anchor: Anchor,
        message: impl Into<String>,
    ) {
        self.items.push(Diagnostic {
            code,
            severity,
            anchor,
            message: message.into(),
        });
    }

    /// Absorb another collection.
    pub fn merge(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }

    /// Sort into canonical `(code, anchor, message)` order and return
    /// self — analyzers call this before handing the collection out.
    pub fn finish(mut self) -> Self {
        self.items.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        self
    }

    /// All findings in canonical order.
    pub fn items(&self) -> &[Diagnostic] {
        &self.items
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing was found.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.items.iter().filter(|d| d.severity == severity).count()
    }

    /// True when at least one finding is an error.
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// True when nothing at warning level or above was found — the bar
    /// the built-in paradigms and examples hold themselves to.
    pub fn is_clean(&self) -> bool {
        !self.items.iter().any(|d| d.severity >= Severity::Warn)
    }

    /// First error in canonical order, if any.
    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.items.iter().find(|d| d.severity == Severity::Error)
    }

    /// Short counter summary, e.g. `2 errors, 1 warning, 0 infos`.
    pub fn summary(&self) -> String {
        let (e, w, i) = (
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info),
        );
        let plural = |n: usize| if n == 1 { "" } else { "s" };
        format!(
            "{e} error{}, {w} warning{}, {i} info{}",
            plural(e),
            plural(w),
            plural(i)
        )
    }

    /// Render as text, one line per finding (empty string when clean).
    pub fn render_text(&self) -> String {
        let mut sorted: Vec<&Diagnostic> = self.items.iter().collect();
        sorted.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        let mut out = String::new();
        for d in sorted {
            out.push_str(&d.render_text());
            out.push('\n');
        }
        out
    }

    /// Render as a JSON array of diagnostic objects.
    pub fn render_json(&self) -> String {
        let mut sorted: Vec<&Diagnostic> = self.items.iter().collect();
        sorted.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        let mut out = String::from("[");
        for (i, d) in sorted.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&d.render_json());
        }
        out.push(']');
        out
    }
}

/// Escape a string for inclusion inside a JSON string literal.
///
/// Re-exported from `obs` so the whole workspace shares one escaping
/// implementation (this used to be a per-crate duplicate).
pub use obs::json_escape;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostics {
        let mut d = Diagnostics::new();
        d.push(
            "PF0010",
            Severity::Warn,
            Anchor::Node {
                id: 3,
                name: "b".into(),
            },
            "later",
        );
        d.push("PF0001", Severity::Error, Anchor::Graph, "first");
        d.push(
            "PF0010",
            Severity::Warn,
            Anchor::Node {
                id: 1,
                name: "a".into(),
            },
            "earlier",
        );
        d
    }

    #[test]
    fn emission_is_sorted_by_code_then_anchor() {
        let d = sample().finish();
        let codes: Vec<&str> = d.items().iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["PF0001", "PF0010", "PF0010"]);
        // Within PF0010, node 1 before node 3.
        assert!(matches!(d.items()[1].anchor, Anchor::Node { id: 1, .. }));
        let text = d.render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("error[PF0001] graph: first"));
        assert!(lines[1].contains("node 1 (`a`)"));
    }

    #[test]
    fn rendering_is_deterministic_regardless_of_push_order() {
        let a = sample().finish();
        let mut b = Diagnostics::new();
        // Same findings, reversed push order.
        for d in sample().items().iter().rev() {
            b.push(d.code, d.severity, d.anchor.clone(), d.message.clone());
        }
        let b = b.finish();
        assert_eq!(a.render_text(), b.render_text());
        assert_eq!(a.render_json(), b.render_json());
        assert_eq!(a, b);
    }

    #[test]
    fn counters_and_summary() {
        let d = sample().finish();
        assert_eq!(d.count(Severity::Error), 1);
        assert_eq!(d.count(Severity::Warn), 2);
        assert!(d.has_errors());
        assert!(!d.is_clean());
        assert_eq!(d.summary(), "1 error, 2 warnings, 0 infos");
        assert_eq!(d.first_error().unwrap().code, "PF0001");
        assert!(Diagnostics::new().is_clean());
        assert!(!Diagnostics::new().has_errors());
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\t\r"), "\\t\\r");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        let mut d = Diagnostics::new();
        d.push(
            "PF0001",
            Severity::Error,
            Anchor::Node {
                id: 0,
                name: "evil \"node\"\n".into(),
            },
            "msg with \\ and \"quotes\"",
        );
        let json = d.finish().render_json();
        assert!(json.contains("evil \\\"node\\\"\\n"), "{json}");
        assert!(json.contains("msg with \\\\ and \\\"quotes\\\""), "{json}");
        // No raw control characters survive.
        assert!(!json.contains('\n'));
    }

    #[test]
    fn merge_combines_collections() {
        let mut a = sample();
        let mut b = Diagnostics::new();
        b.push("PF0002", Severity::Error, Anchor::Graph, "merged");
        a.merge(b);
        let a = a.finish();
        assert_eq!(a.len(), 4);
        assert_eq!(a.items()[1].code, "PF0002");
    }
}
