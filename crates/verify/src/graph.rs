//! Static lint of PerFlowGraph structure — executed *without* running the
//! graph.
//!
//! The engine hands the linter a plain structural snapshot
//! ([`GraphShape`]: node names, arities, fingerprint availability, and
//! wires), so this crate needs no dependency on the dataflow engine and
//! the engine can gate execution on the lint result.
//!
//! Error-level findings (`PF0001`–`PF0006`) are exactly the structural
//! conditions under which execution would fail — a graph with no lint
//! errors cannot hit the scheduler's cycle-stall or wiring errors.
//! Warning/info findings catch likely authoring mistakes (unreachable
//! passes, duplicate names, identity-keyed caching, unconsumed outputs).

use crate::codes;
use crate::diag::{Anchor, Diagnostics, Severity};

/// Structural description of one node: everything the linter may inspect.
#[derive(Debug, Clone)]
pub struct NodeShape {
    /// The pass's display name.
    pub name: String,
    /// Declared number of required input ports.
    pub arity: usize,
    /// Whether the pass publishes a content fingerprint (affects
    /// pass-result cache keying, not correctness).
    pub has_fingerprint: bool,
}

/// One wire: `(from, out_port) → (to, in_port)`.
#[derive(Debug, Clone, Copy)]
pub struct WireShape {
    /// Producing node index.
    pub from: usize,
    /// Producer output port.
    pub out_port: usize,
    /// Consuming node index.
    pub to: usize,
    /// Consumer input port.
    pub in_port: usize,
}

/// Structural snapshot of a PerFlowGraph.
#[derive(Debug, Clone, Default)]
pub struct GraphShape {
    /// All nodes, indexed by id.
    pub nodes: Vec<NodeShape>,
    /// All wires.
    pub wires: Vec<WireShape>,
}

fn node_anchor(g: &GraphShape, id: usize) -> Anchor {
    Anchor::Node {
        id,
        name: g.nodes[id].name.clone(),
    }
}

/// Lint a PerFlowGraph structure. See the module docs for the severity
/// contract; the result is sorted and deterministic.
pub fn lint_graph(g: &GraphShape) -> Diagnostics {
    let mut d = Diagnostics::new();
    let n = g.nodes.len();

    // PF0005 — wires referencing unknown nodes. Such wires are excluded
    // from every later analysis.
    let mut wires: Vec<WireShape> = Vec::with_capacity(g.wires.len());
    for (i, w) in g.wires.iter().enumerate() {
        if w.from >= n || w.to >= n {
            let bad = if w.from >= n { w.from } else { w.to };
            d.push(
                codes::BAD_NODE_REF,
                Severity::Error,
                Anchor::Graph,
                format!("wire #{i} references unknown node {bad} (graph has {n} nodes)"),
            );
        } else {
            wires.push(*w);
        }
    }

    // Per-node input wiring.
    let mut in_wires: Vec<Vec<&WireShape>> = vec![Vec::new(); n];
    let mut out_deg: Vec<usize> = vec![0; n];
    for w in &wires {
        in_wires[w.to].push(w);
        out_deg[w.from] += 1;
    }

    for (i, node) in g.nodes.iter().enumerate() {
        let mut ports: Vec<usize> = in_wires[i].iter().map(|w| w.in_port).collect();
        ports.sort_unstable();
        // PF0004 — duplicate producers for one port.
        let mut dups: Vec<usize> = ports
            .windows(2)
            .filter(|p| p[0] == p[1])
            .map(|p| p[0])
            .collect();
        dups.dedup();
        for p in dups {
            d.push(
                codes::DUPLICATE_INPUT,
                Severity::Error,
                node_anchor(g, i),
                format!(
                    "input port {p} of `{}` has more than one producer",
                    node.name
                ),
            );
        }
        ports.dedup();
        // PF0002 — ports below the arity with no producer.
        for p in 0..node.arity {
            if ports.binary_search(&p).is_err() {
                d.push(
                    codes::MISSING_INPUT,
                    Severity::Error,
                    node_anchor(g, i),
                    format!(
                        "`{}` declares arity {} but input port {p} has no producer",
                        node.name, node.arity
                    ),
                );
            }
        }
        // PF0003 — wired ports beyond the arity that leave a gap: the
        // engine requires input ports contiguous from 0.
        for (rank, &p) in ports.iter().enumerate() {
            if p != rank && p >= node.arity {
                d.push(
                    codes::PORT_GAP,
                    Severity::Error,
                    node_anchor(g, i),
                    format!(
                        "input ports of `{}` are not contiguous: port {p} is wired but port {rank} is empty",
                        node.name
                    ),
                );
            }
        }
    }

    // Adjacency (deduplicated) for cycle and reachability analysis.
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for w in &wires {
        succ[w.from].push(w.to);
    }
    for s in &mut succ {
        s.sort_unstable();
        s.dedup();
    }

    // PF0001 — cycle localization via Tarjan SCC: every SCC with more
    // than one member (or a self-loop) is reported as one named ring.
    let mut in_cycle = vec![false; n];
    for scc in tarjan_sccs(&succ) {
        let cyclic = scc.len() > 1 || succ[scc[0]].contains(&scc[0]);
        if !cyclic {
            continue;
        }
        for &m in &scc {
            in_cycle[m] = true;
        }
        let mut ring: Vec<usize> = scc.clone();
        ring.sort_unstable();
        let names: Vec<String> = ring
            .iter()
            .map(|&m| format!("`{}` (#{m})", g.nodes[m].name))
            .collect();
        let first = format!("`{}` (#{})", g.nodes[ring[0]].name, ring[0]);
        d.push(
            codes::CYCLE,
            Severity::Error,
            node_anchor(g, ring[0]),
            format!(
                "data-flow cycle through {} node(s): {} → back to {first}",
                ring.len(),
                names.join(" → "),
            ),
        );
    }

    // PF0006 — no entry node at all (every node consumes some input).
    let entries: Vec<usize> = (0..n).filter(|&i| in_wires[i].is_empty()).collect();
    if n > 0 && entries.is_empty() {
        d.push(
            codes::NO_ENTRY,
            Severity::Error,
            Anchor::Graph,
            "graph has no entry node: every node waits on some input, so nothing can start"
                .to_string(),
        );
    }

    // PF0007 — nodes unreachable from every entry. Cycle members are
    // already reported by PF0001 and are skipped here.
    let mut reach = vec![false; n];
    let mut stack = entries.clone();
    for &e in &entries {
        reach[e] = true;
    }
    while let Some(i) = stack.pop() {
        for &j in &succ[i] {
            if !reach[j] {
                reach[j] = true;
                stack.push(j);
            }
        }
    }
    for i in 0..n {
        if !reach[i] && !in_cycle[i] {
            d.push(
                codes::UNREACHABLE,
                Severity::Warn,
                node_anchor(g, i),
                format!(
                    "`{}` can never run: no path from any entry node reaches it",
                    g.nodes[i].name
                ),
            );
        }
    }

    // PF0008 — duplicate display names among non-source nodes (several
    // sources per graph are normal; two `hotspot_detection` nodes usually
    // mean a copy-paste slip and make trails/reports ambiguous).
    let mut by_name: Vec<(&str, usize)> = g
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, node)| node.name != "source")
        .map(|(i, node)| (node.name.as_str(), i))
        .collect();
    by_name.sort_unstable();
    let mut k = 0;
    while k < by_name.len() {
        let mut j = k + 1;
        while j < by_name.len() && by_name[j].0 == by_name[k].0 {
            j += 1;
        }
        if j - k > 1 {
            let ids: Vec<String> = by_name[k..j].iter().map(|(_, i)| format!("#{i}")).collect();
            d.push(
                codes::DUPLICATE_NAME,
                Severity::Warn,
                node_anchor(g, by_name[k].1),
                format!(
                    "{} nodes share the name `{}`: {}",
                    j - k,
                    by_name[k].0,
                    ids.join(", ")
                ),
            );
        }
        k = j;
    }

    // PF0009 — sinks that are not reports: their outputs vanish. A
    // single-node graph is its own consumer story and is left alone.
    if n > 1 {
        for (i, deg) in out_deg.iter().enumerate() {
            if *deg == 0 && g.nodes[i].name != "report" {
                d.push(
                    codes::UNUSED_OUTPUT,
                    Severity::Info,
                    node_anchor(g, i),
                    format!("outputs of `{}` are never consumed", g.nodes[i].name),
                );
            }
        }
    }

    // PF0010 — no content fingerprint: the pass-result cache falls back
    // to pass-object identity, so equal configurations in different graph
    // instances never share cached results.
    for (i, node) in g.nodes.iter().enumerate() {
        if !node.has_fingerprint {
            d.push(
                codes::NO_FINGERPRINT,
                Severity::Warn,
                node_anchor(g, i),
                format!(
                    "`{}` has no content fingerprint; the pass-result cache falls back to object identity",
                    node.name
                ),
            );
        }
    }

    d.finish()
}

/// Lint a PerFlowGraph for checkpoint/resume readiness: every pass
/// without a content fingerprint gets a `PF0011` warning, because its
/// results can never be persisted to a snapshot or replayed on resume —
/// a kill-then-resume run re-executes it (and everything downstream of
/// it) from scratch. Run by the engine when a checkpoint or resume
/// handle is attached; findings are warnings and never block execution.
pub fn lint_checkpoint(g: &GraphShape) -> Diagnostics {
    let mut d = Diagnostics::new();
    for (i, node) in g.nodes.iter().enumerate() {
        if !node.has_fingerprint {
            d.push(
                codes::UNRESUMABLE_PASS,
                Severity::Warn,
                node_anchor(g, i),
                format!(
                    "`{}` has no content fingerprint; its results cannot be checkpointed or resumed",
                    node.name
                ),
            );
        }
    }
    d.finish()
}

/// Iterative Tarjan strongly-connected components over a dense adjacency
/// list. Returns SCCs; singleton SCCs are cyclic only with a self-loop
/// (the caller checks).
fn tarjan_sccs(succ: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = succ.len();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS frames: (node, next-child position).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        frames.push((start, 0));
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child < succ[v].len() {
                let w = succ[v][*child];
                *child += 1;
                if index[w] == UNSET {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(name: &str, arity: usize) -> NodeShape {
        NodeShape {
            name: name.into(),
            arity,
            has_fingerprint: true,
        }
    }

    fn wire(from: usize, to: usize, in_port: usize) -> WireShape {
        WireShape {
            from,
            out_port: 0,
            to,
            in_port,
        }
    }

    fn codes_of(d: &Diagnostics) -> Vec<&'static str> {
        d.items().iter().map(|x| x.code).collect()
    }

    #[test]
    fn pf0001_cycle_names_the_ring() {
        let g = GraphShape {
            nodes: vec![node("id1", 1), node("id2", 1)],
            wires: vec![wire(0, 1, 0), wire(1, 0, 0)],
        };
        let d = lint_graph(&g);
        assert!(codes_of(&d).contains(&codes::CYCLE));
        let cyc = d.items().iter().find(|x| x.code == codes::CYCLE).unwrap();
        assert!(cyc.message.contains("`id1` (#0)"), "{}", cyc.message);
        assert!(cyc.message.contains("`id2` (#1)"), "{}", cyc.message);
        assert!(cyc.message.contains("back to `id1`"), "{}", cyc.message);
        // The all-cyclic graph also has no entry.
        assert!(codes_of(&d).contains(&codes::NO_ENTRY));
        // Cycle members are not double-reported as unreachable.
        assert!(!codes_of(&d).contains(&codes::UNREACHABLE));
    }

    #[test]
    fn pf0001_self_loop_detected() {
        let g = GraphShape {
            nodes: vec![node("selfie", 1)],
            wires: vec![wire(0, 0, 0)],
        };
        let d = lint_graph(&g);
        let cyc = d.items().iter().find(|x| x.code == codes::CYCLE).unwrap();
        assert!(cyc.message.contains("1 node(s)"), "{}", cyc.message);
    }

    #[test]
    fn pf0002_missing_input_names_node_and_port() {
        let g = GraphShape {
            nodes: vec![node("source", 0), node("add", 2)],
            wires: vec![wire(0, 1, 0)], // port 1 never wired
        };
        let d = lint_graph(&g);
        let m = d
            .items()
            .iter()
            .find(|x| x.code == codes::MISSING_INPUT)
            .unwrap();
        assert_eq!(m.severity, Severity::Error);
        assert!(m.message.contains("`add`"), "{}", m.message);
        assert!(m.message.contains("port 1"), "{}", m.message);
        assert!(m.message.contains("arity 2"), "{}", m.message);
    }

    #[test]
    fn pf0003_gap_beyond_arity() {
        // Arity satisfied on port 0, but port 2 wired with port 1 empty.
        let g = GraphShape {
            nodes: vec![node("source", 0), node("flex", 1)],
            wires: vec![wire(0, 1, 0), wire(0, 1, 2)],
        };
        let d = lint_graph(&g);
        let m = d
            .items()
            .iter()
            .find(|x| x.code == codes::PORT_GAP)
            .unwrap();
        assert!(m.message.contains("port 2 is wired"), "{}", m.message);
        assert!(m.message.contains("port 1 is empty"), "{}", m.message);
        assert!(!codes_of(&d).contains(&codes::MISSING_INPUT));
    }

    #[test]
    fn pf0004_duplicate_input_port() {
        let g = GraphShape {
            nodes: vec![node("source", 0), node("source", 0), node("sink", 1)],
            wires: vec![wire(0, 2, 0), wire(1, 2, 0)],
        };
        let d = lint_graph(&g);
        let m = d
            .items()
            .iter()
            .find(|x| x.code == codes::DUPLICATE_INPUT)
            .unwrap();
        assert!(m.message.contains("port 0"), "{}", m.message);
        assert!(m.message.contains("`sink`"), "{}", m.message);
    }

    #[test]
    fn pf0005_bad_node_reference() {
        let g = GraphShape {
            nodes: vec![node("source", 0)],
            wires: vec![wire(0, 7, 0)],
        };
        let d = lint_graph(&g);
        let m = d
            .items()
            .iter()
            .find(|x| x.code == codes::BAD_NODE_REF)
            .unwrap();
        assert!(m.message.contains("unknown node 7"), "{}", m.message);
        assert!(m.message.contains("1 nodes"), "{}", m.message);
    }

    #[test]
    fn pf0006_no_entry_node() {
        // Two mutually-feeding nodes: no entry anywhere.
        let g = GraphShape {
            nodes: vec![node("a", 1), node("b", 1)],
            wires: vec![wire(0, 1, 0), wire(1, 0, 0)],
        };
        let d = lint_graph(&g);
        assert!(codes_of(&d).contains(&codes::NO_ENTRY));
    }

    #[test]
    fn pf0007_unreachable_pass_downstream_of_cycle() {
        // 0↔1 cycle feeding 2: node 2 is not in the cycle but can never
        // run.
        let g = GraphShape {
            nodes: vec![
                node("a", 1),
                node("b", 1),
                node("sinkhole", 1),
                node("source", 0),
            ],
            wires: vec![wire(0, 1, 0), wire(1, 0, 0), wire(1, 2, 0)],
        };
        let d = lint_graph(&g);
        let m = d
            .items()
            .iter()
            .find(|x| x.code == codes::UNREACHABLE)
            .unwrap();
        assert!(m.message.contains("`sinkhole`"), "{}", m.message);
        // a and b are cycle members, not "unreachable".
        assert_eq!(
            d.items()
                .iter()
                .filter(|x| x.code == codes::UNREACHABLE)
                .count(),
            1
        );
    }

    #[test]
    fn pf0008_duplicate_names_warn_but_sources_exempt() {
        let g = GraphShape {
            nodes: vec![
                node("source", 0),
                node("source", 0),
                node("hotspot_detection", 1),
                node("hotspot_detection", 1),
                node("report", 2),
            ],
            wires: vec![wire(0, 2, 0), wire(1, 3, 0), wire(2, 4, 0), wire(3, 4, 1)],
        };
        let d = lint_graph(&g);
        let dups: Vec<_> = d
            .items()
            .iter()
            .filter(|x| x.code == codes::DUPLICATE_NAME)
            .collect();
        assert_eq!(dups.len(), 1, "sources must not be flagged");
        assert!(dups[0].message.contains("`hotspot_detection`"));
        assert!(dups[0].message.contains("#2, #3"));
    }

    #[test]
    fn pf0009_unused_output_info_excludes_report() {
        let g = GraphShape {
            nodes: vec![
                node("source", 0),
                node("hotspot_detection", 1),
                node("report", 1),
            ],
            wires: vec![wire(0, 1, 0), wire(0, 2, 0)],
        };
        let d = lint_graph(&g);
        let m = d
            .items()
            .iter()
            .find(|x| x.code == codes::UNUSED_OUTPUT)
            .unwrap();
        assert_eq!(m.severity, Severity::Info);
        assert!(m.message.contains("`hotspot_detection`"));
        // The report sink is not flagged.
        assert_eq!(
            d.items()
                .iter()
                .filter(|x| x.code == codes::UNUSED_OUTPUT)
                .count(),
            1
        );
    }

    #[test]
    fn pf0010_missing_fingerprint_warns() {
        let mut closure = node("my_closure", 0);
        closure.has_fingerprint = false;
        let g = GraphShape {
            nodes: vec![closure],
            wires: vec![],
        };
        let d = lint_graph(&g);
        let m = d
            .items()
            .iter()
            .find(|x| x.code == codes::NO_FINGERPRINT)
            .unwrap();
        assert!(m.message.contains("`my_closure`"));
        assert!(m.message.contains("object identity"));
    }

    #[test]
    fn checkpoint_lint_flags_unresumable_passes() {
        let mut opaque = node("my_closure", 1);
        opaque.has_fingerprint = false;
        let g = GraphShape {
            nodes: vec![node("source", 0), opaque, node("report", 1)],
            wires: vec![wire(0, 1, 0), wire(1, 2, 0)],
        };
        let d = lint_checkpoint(&g);
        assert!(!d.has_errors(), "PF0011 findings are warnings only");
        let items: Vec<_> = d
            .items()
            .iter()
            .filter(|x| x.code == codes::UNRESUMABLE_PASS)
            .collect();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].severity, Severity::Warn);
        assert!(items[0].message.contains("`my_closure`"));
        assert!(
            items[0].message.contains("checkpointed"),
            "{}",
            items[0].message
        );
        // A fully fingerprinted graph is checkpoint-clean.
        let clean = GraphShape {
            nodes: vec![node("source", 0), node("hotspot", 1)],
            wires: vec![wire(0, 1, 0)],
        };
        assert!(lint_checkpoint(&clean).items().is_empty());
    }

    #[test]
    fn clean_pipeline_lints_clean() {
        // source → filter → hotspot → report: nothing at all to report.
        let g = GraphShape {
            nodes: vec![
                node("source", 0),
                node("filter", 1),
                node("hotspot_detection", 1),
                node("report", 1),
            ],
            wires: vec![wire(0, 1, 0), wire(1, 2, 0), wire(2, 3, 0)],
        };
        let d = lint_graph(&g);
        assert!(d.is_empty(), "{}", d.render_text());
    }

    #[test]
    fn empty_graph_is_clean() {
        assert!(lint_graph(&GraphShape::default()).is_empty());
    }

    #[test]
    fn tarjan_handles_long_chains_iteratively() {
        // A 10_000-node chain with a closing back-edge: recursion-free
        // SCC must find the whole ring without overflowing the stack.
        let n = 10_000;
        let nodes = (0..n)
            .map(|i| node(&format!("n{i}"), usize::from(i > 0)))
            .collect();
        let mut wires: Vec<WireShape> = (0..n - 1).map(|i| wire(i, i + 1, 0)).collect();
        wires.push(wire(n - 1, 0, 0));
        let d = lint_graph(&GraphShape { nodes, wires });
        let cyc = d.items().iter().find(|x| x.code == codes::CYCLE).unwrap();
        assert!(cyc.message.contains(&format!("{n} node(s)")));
    }
}
