//! Critical-path extraction: longest weighted path through a DAG.
//!
//! The *critical path* paradigm (§4.4, inspired by Böhme et al. and Schmitt
//! et al.) finds the chain of activities that determines total runtime: on
//! the parallel view, the heaviest path through per-flow sequences and
//! cross-flow dependence edges.

use pag::{EdgeId, Pag, VertexId};

use crate::traverse::topo_sort_filtered;

/// The result of a critical-path computation.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Vertices on the path, source first.
    pub vertices: Vec<VertexId>,
    /// Edges connecting consecutive path vertices.
    pub edges: Vec<EdgeId>,
    /// Total weight (sum of vertex weights along the path).
    pub weight: f64,
}

/// Compute the maximum-weight path in the DAG formed by the edges accepted
/// by `follow`, where each vertex contributes `vertex_weight(v)`.
///
/// Returns `None` when the filtered graph is cyclic or has no vertices.
pub fn critical_path(
    g: &Pag,
    follow: impl Fn(EdgeId) -> bool + Copy,
    vertex_weight: impl Fn(VertexId) -> f64,
) -> Option<CriticalPath> {
    if g.num_vertices() == 0 {
        return None;
    }
    let order = topo_sort_filtered(g, follow).ok()?;
    let n = g.num_vertices();
    // dist[v] = best path weight ending at v (including v's weight).
    let mut dist = vec![f64::NEG_INFINITY; n];
    let mut pred: Vec<Option<EdgeId>> = vec![None; n];
    for &v in &order {
        let wv = vertex_weight(v);
        let mut best = wv; // start a fresh path at v
        let mut best_edge = None;
        for &e in g.in_edges(v) {
            if !follow(e) {
                continue;
            }
            let u = g.edge(e).src;
            let cand = dist[u.index()] + wv;
            if cand > best {
                best = cand;
                best_edge = Some(e);
            }
        }
        dist[v.index()] = best;
        pred[v.index()] = best_edge;
    }
    // Find the heaviest endpoint and walk back.
    // NaN-weighted vertices never win the endpoint selection (a NaN
    // weight compares below every number), so corrupted metrics degrade
    // to "not on the critical path" instead of panicking.
    let (end, &weight) = dist
        .iter()
        .enumerate()
        .max_by(|a, b| pag::nan_smallest(*a.1, *b.1))?;
    let mut vertices = vec![VertexId(end as u32)];
    let mut edges = Vec::new();
    let mut cur = end;
    while let Some(e) = pred[cur] {
        edges.push(e);
        cur = g.edge(e).src.index();
        vertices.push(VertexId(cur as u32));
    }
    vertices.reverse();
    edges.reverse();
    Some(CriticalPath {
        vertices,
        edges,
        weight,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pag::{keys, EdgeLabel, VertexLabel, ViewKind};

    fn weighted(weights: &[f64], edges: &[(u32, u32)]) -> Pag {
        let mut g = Pag::new(ViewKind::Parallel, "w");
        for (i, &w) in weights.iter().enumerate() {
            let v = g.add_vertex(VertexLabel::Compute, format!("n{i}").as_str());
            g.set_vprop(v, keys::TIME, w);
        }
        for &(a, b) in edges {
            g.add_edge(VertexId(a), VertexId(b), EdgeLabel::IntraProc);
        }
        g
    }

    #[test]
    fn picks_heavier_branch() {
        // 0 -> 1 -> 3 and 0 -> 2 -> 3; vertex 2 heavier than 1.
        let g = weighted(&[1.0, 2.0, 10.0, 1.0], &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let cp = critical_path(&g, |_| true, |v| g.vertex_time(v)).unwrap();
        assert_eq!(cp.vertices, vec![VertexId(0), VertexId(2), VertexId(3)]);
        assert_eq!(cp.edges.len(), 2);
        assert!((cp.weight - 12.0).abs() < 1e-12);
    }

    #[test]
    fn isolated_heavy_vertex_wins() {
        let g = weighted(&[1.0, 1.0, 100.0], &[(0, 1)]);
        let cp = critical_path(&g, |_| true, |v| g.vertex_time(v)).unwrap();
        assert_eq!(cp.vertices, vec![VertexId(2)]);
        assert!(cp.edges.is_empty());
        assert_eq!(cp.weight, 100.0);
    }

    #[test]
    fn cyclic_returns_none() {
        let mut g = weighted(&[1.0, 1.0], &[(0, 1)]);
        g.add_edge(VertexId(1), VertexId(0), EdgeLabel::IntraProc);
        assert!(critical_path(&g, |_| true, |v| g.vertex_time(v)).is_none());
    }

    #[test]
    fn empty_graph_returns_none() {
        let g = Pag::new(ViewKind::Parallel, "empty");
        assert!(critical_path(&g, |_| true, |_| 1.0).is_none());
    }

    #[test]
    fn edge_filter_restricts_path() {
        let g = weighted(&[1.0, 50.0, 1.0], &[(0, 1), (0, 2)]);
        // Exclude the edge to the heavy vertex; path must not use it, but
        // the heavy vertex still wins as an isolated path.
        let cp = critical_path(&g, |e| g.edge(e).dst != VertexId(1), |v| g.vertex_time(v)).unwrap();
        assert_eq!(cp.vertices, vec![VertexId(1)]);
        // Now also weight it zero: path goes 0 -> 2.
        let cp2 = critical_path(
            &g,
            |e| g.edge(e).dst != VertexId(1),
            |v| {
                if v == VertexId(1) {
                    0.0
                } else {
                    g.vertex_time(v)
                }
            },
        )
        .unwrap();
        assert_eq!(cp2.vertices, vec![VertexId(0), VertexId(2)]);
    }

    #[test]
    fn long_chain_accumulates() {
        let n = 100;
        let weights: Vec<f64> = (0..n).map(|_| 1.0).collect();
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i as u32, i as u32 + 1)).collect();
        let g = weighted(&weights, &edges);
        let cp = critical_path(&g, |_| true, |v| g.vertex_time(v)).unwrap();
        assert_eq!(cp.vertices.len(), n);
        assert!((cp.weight - n as f64).abs() < 1e-9);
    }
}
