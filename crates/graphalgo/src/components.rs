//! Connected components: weakly connected (undirected reachability) and
//! strongly connected (Tarjan).
//!
//! Weak components slice a parallel view into independent interaction
//! groups; Tarjan SCCs detect cyclic wait-for structures (potential
//! deadlock/livelock patterns, one of the misbehaviors contention detection
//! targets in §4.3.2-D).

use pag::{Pag, VertexId};

/// Assign every vertex a weakly-connected-component id; returns
/// `(component_of, component_count)`.
pub fn weakly_connected_components(g: &Pag) -> (Vec<u32>, usize) {
    let n = g.num_vertices();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut stack = Vec::new();
    for s in 0..n {
        if comp[s] != u32::MAX {
            continue;
        }
        comp[s] = next;
        stack.push(VertexId(s as u32));
        while let Some(v) = stack.pop() {
            for w in g.out_neighbors(v).chain(g.in_neighbors(v)) {
                if comp[w.index()] == u32::MAX {
                    comp[w.index()] = next;
                    stack.push(w);
                }
            }
        }
        next += 1;
    }
    (comp, next as usize)
}

/// Tarjan strongly connected components (iterative). Returns the list of
/// SCCs, each a vector of vertices; singleton SCCs without self-loops are
/// included.
pub fn strongly_connected_components(g: &Pag) -> Vec<Vec<VertexId>> {
    let n = g.num_vertices();
    let mut index = vec![u32::MAX; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs = Vec::new();

    // Explicit DFS state: (vertex, next out-edge position).
    let mut call: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != u32::MAX {
            continue;
        }
        call.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut ei)) = call.last_mut() {
            let out = g.out_edges(VertexId(v as u32));
            if *ei < out.len() {
                let e = out[*ei];
                *ei += 1;
                let w = g.edge(e).dst.index();
                if index[w] == u32::MAX {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc.push(VertexId(w as u32));
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use pag::{EdgeLabel, VertexLabel, ViewKind};

    fn graph(n: u32, edges: &[(u32, u32)]) -> Pag {
        let mut g = Pag::new(ViewKind::TopDown, "g");
        for i in 0..n {
            g.add_vertex(VertexLabel::Compute, format!("n{i}").as_str());
        }
        for &(a, b) in edges {
            g.add_edge(VertexId(a), VertexId(b), EdgeLabel::IntraProc);
        }
        g
    }

    #[test]
    fn weak_components_split() {
        let g = graph(5, &[(0, 1), (1, 2), (3, 4)]);
        let (comp, count) = weakly_connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
    }

    #[test]
    fn weak_components_ignore_direction() {
        let g = graph(3, &[(1, 0), (1, 2)]);
        let (_, count) = weakly_connected_components(&g);
        assert_eq!(count, 1);
    }

    #[test]
    fn scc_finds_cycle() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let sccs = strongly_connected_components(&g);
        let cycle = sccs.iter().find(|s| s.len() == 3).expect("3-cycle SCC");
        let mut ids: Vec<u32> = cycle.iter().map(|v| v.0).collect();
        ids.sort();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(sccs.len(), 2); // the cycle + singleton {3}
    }

    #[test]
    fn scc_acyclic_gives_singletons() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 4);
        assert!(sccs.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn empty_graph() {
        let g = graph(0, &[]);
        assert_eq!(weakly_connected_components(&g).1, 0);
        assert!(strongly_connected_components(&g).is_empty());
    }

    #[test]
    fn two_interlocked_cycles() {
        // 0 <-> 1 and 2 <-> 3 linked by 1 -> 2.
        let g = graph(4, &[(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]);
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 2);
        assert!(sccs.iter().all(|s| s.len() == 2));
    }
}
