//! Subgraph matching (VF2-style backtracking).
//!
//! Contention detection "searches all embeddings of a subgraph query in a
//! large graph" to find resource-contention patterns on the parallel view
//! (§4.3.2-D). Patterns constrain vertex labels and names (glob) and edge
//! labels; matching can be *anchored* at a given graph vertex so a pass can
//! search "around the vertices of the input set".

use pag::{graph::glob_match, EdgeLabel, Pag, VertexId, VertexLabel};

/// A pattern vertex: every constraint is optional (None = wildcard).
#[derive(Debug, Clone, Default)]
pub struct PatternVertex {
    /// Required vertex label.
    pub label: Option<VertexLabel>,
    /// Required name glob (e.g. `allocate*`).
    pub name: Option<String>,
}

impl PatternVertex {
    /// Wildcard pattern vertex.
    pub fn any() -> Self {
        Self::default()
    }

    /// Pattern vertex constrained by label.
    pub fn with_label(label: VertexLabel) -> Self {
        PatternVertex {
            label: Some(label),
            name: None,
        }
    }

    /// Pattern vertex constrained by name glob.
    pub fn with_name(glob: impl Into<String>) -> Self {
        PatternVertex {
            label: None,
            name: Some(glob.into()),
        }
    }

    fn matches(&self, g: &Pag, v: VertexId) -> bool {
        if let Some(l) = self.label {
            if g.vertex(v).label != l {
                return false;
            }
        }
        if let Some(p) = &self.name {
            if !glob_match(p, &g.vertex(v).name) {
                return false;
            }
        }
        true
    }
}

/// A pattern edge between two pattern vertices (by index), optionally
/// constrained to an edge label.
#[derive(Debug, Clone)]
pub struct PatternEdge {
    /// Index of the source pattern vertex.
    pub src: usize,
    /// Index of the destination pattern vertex.
    pub dst: usize,
    /// Required edge label (`None` = any).
    pub label: Option<EdgeLabel>,
}

/// A query pattern: small directed graph with constraints.
#[derive(Debug, Clone, Default)]
pub struct Pattern {
    /// Pattern vertices; embedding maps each to a distinct graph vertex.
    pub vertices: Vec<PatternVertex>,
    /// Pattern edges that must all be present in the embedding.
    pub edges: Vec<PatternEdge>,
}

impl Pattern {
    /// Empty pattern.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a vertex; returns its pattern index.
    pub fn add_vertex(&mut self, v: PatternVertex) -> usize {
        self.vertices.push(v);
        self.vertices.len() - 1
    }

    /// Add an edge between pattern vertices.
    pub fn add_edge(&mut self, src: usize, dst: usize, label: Option<EdgeLabel>) {
        assert!(src < self.vertices.len() && dst < self.vertices.len());
        self.edges.push(PatternEdge { src, dst, label });
    }
}

/// One embedding: `mapping[i]` is the graph vertex matched to pattern
/// vertex `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Embedding {
    /// Pattern-index → graph-vertex assignment.
    pub mapping: Vec<VertexId>,
}

/// Find embeddings of `pattern` in `g`.
///
/// * `anchor`: optionally require pattern vertex `anchor.0` to map to graph
///   vertex `anchor.1` (used to search around a suspicious vertex).
/// * `max_embeddings`: stop after this many embeddings (0 = unlimited).
pub fn match_subgraph(
    g: &Pag,
    pattern: &Pattern,
    anchor: Option<(usize, VertexId)>,
    max_embeddings: usize,
) -> Vec<Embedding> {
    let k = pattern.vertices.len();
    if k == 0 {
        return Vec::new();
    }
    // Order pattern vertices: anchor first, then by connectivity to already
    // placed vertices (greedy), to keep the search space narrow.
    let order = plan_order(pattern, anchor.map(|(p, _)| p));

    let mut result = Vec::new();
    let mut assignment: Vec<Option<VertexId>> = vec![None; k];
    let mut used: std::collections::HashSet<VertexId> = std::collections::HashSet::new();
    search(
        g,
        pattern,
        &order,
        0,
        anchor,
        &mut assignment,
        &mut used,
        &mut result,
        max_embeddings,
    );
    result
}

/// Parallel [`match_subgraph`]: the depth-0 candidates of the first
/// planned pattern vertex are sharded across `workers` scoped threads,
/// each shard enumerating its subtree with the serial backtracker. Shard
/// results are concatenated in candidate order and *then* truncated to
/// `max_embeddings`, so the output equals the serial prefix exactly —
/// identical for any worker count.
pub fn match_subgraph_parallel(
    g: &Pag,
    pattern: &Pattern,
    anchor: Option<(usize, VertexId)>,
    max_embeddings: usize,
    workers: usize,
) -> Vec<Embedding> {
    let k = pattern.vertices.len();
    if k == 0 {
        return Vec::new();
    }
    let order = plan_order(pattern, anchor.map(|(p, _)| p));
    let p0 = order[0];
    let empty: Vec<Option<VertexId>> = vec![None; k];
    let roots = candidates_for(g, pattern, p0, anchor, &empty);

    let shards: Vec<Vec<Embedding>> = crate::par::map_shards(roots.len(), workers, |i| {
        let v = roots[i];
        if !pattern.vertices[p0].matches(g, v) || !edges_consistent(g, pattern, p0, v, &empty) {
            return Vec::new();
        }
        let mut assignment = empty.clone();
        let mut used = std::collections::HashSet::new();
        assignment[p0] = Some(v);
        used.insert(v);
        let mut result = Vec::new();
        search(
            g,
            pattern,
            &order,
            1,
            anchor,
            &mut assignment,
            &mut used,
            &mut result,
            max_embeddings,
        );
        result
    });

    let mut out: Vec<Embedding> = shards.into_iter().flatten().collect();
    if max_embeddings != 0 {
        out.truncate(max_embeddings);
    }
    out
}

fn plan_order(pattern: &Pattern, anchor: Option<usize>) -> Vec<usize> {
    let k = pattern.vertices.len();
    let mut order = Vec::with_capacity(k);
    let mut placed = vec![false; k];
    if let Some(a) = anchor {
        order.push(a);
        placed[a] = true;
    }
    while order.len() < k {
        // Prefer a vertex adjacent to an already placed one.
        let next = (0..k)
            .filter(|&i| !placed[i])
            .max_by_key(|&i| {
                pattern
                    .edges
                    .iter()
                    .filter(|e| (e.src == i && placed[e.dst]) || (e.dst == i && placed[e.src]))
                    .count()
            })
            .expect("unplaced vertex exists");
        order.push(next);
        placed[next] = true;
    }
    order
}

#[allow(clippy::too_many_arguments)]
fn search(
    g: &Pag,
    pattern: &Pattern,
    order: &[usize],
    depth: usize,
    anchor: Option<(usize, VertexId)>,
    assignment: &mut Vec<Option<VertexId>>,
    used: &mut std::collections::HashSet<VertexId>,
    result: &mut Vec<Embedding>,
    max_embeddings: usize,
) -> bool {
    if depth == order.len() {
        result.push(Embedding {
            mapping: assignment.iter().map(|a| a.unwrap()).collect(),
        });
        return max_embeddings != 0 && result.len() >= max_embeddings;
    }
    let pi = order[depth];
    let candidates = candidates_for(g, pattern, pi, anchor, assignment);
    for v in candidates {
        if used.contains(&v) || !pattern.vertices[pi].matches(g, v) {
            continue;
        }
        // Check all pattern edges between pi and already-assigned vertices.
        if !edges_consistent(g, pattern, pi, v, assignment) {
            continue;
        }
        assignment[pi] = Some(v);
        used.insert(v);
        let done = search(
            g,
            pattern,
            order,
            depth + 1,
            anchor,
            assignment,
            used,
            result,
            max_embeddings,
        );
        assignment[pi] = None;
        used.remove(&v);
        if done {
            return true;
        }
    }
    false
}

/// Candidate graph vertices for pattern vertex `pi`: the anchor if pinned,
/// neighbors of already-assigned adjacent pattern vertices if any,
/// otherwise all vertices.
fn candidates_for(
    g: &Pag,
    pattern: &Pattern,
    pi: usize,
    anchor: Option<(usize, VertexId)>,
    assignment: &[Option<VertexId>],
) -> Vec<VertexId> {
    if let Some((ap, av)) = anchor {
        if ap == pi {
            return vec![av];
        }
    }
    for e in &pattern.edges {
        if e.dst == pi {
            if let Some(u) = assignment[e.src] {
                return g.out_neighbors(u).collect();
            }
        }
        if e.src == pi {
            if let Some(u) = assignment[e.dst] {
                return g.in_neighbors(u).collect();
            }
        }
    }
    g.vertex_ids().collect()
}

fn edges_consistent(
    g: &Pag,
    pattern: &Pattern,
    pi: usize,
    v: VertexId,
    assignment: &[Option<VertexId>],
) -> bool {
    for e in &pattern.edges {
        if e.src == pi {
            if let Some(w) = assignment[e.dst] {
                if !has_edge(g, v, w, e.label) {
                    return false;
                }
            }
        } else if e.dst == pi {
            if let Some(u) = assignment[e.src] {
                if !has_edge(g, u, v, e.label) {
                    return false;
                }
            }
        }
    }
    true
}

fn has_edge(g: &Pag, src: VertexId, dst: VertexId, label: Option<EdgeLabel>) -> bool {
    g.out_edges(src).iter().any(|&e| {
        let ed = g.edge(e);
        ed.dst == dst && label.is_none_or(|l| ed.label == l)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pag::{CallKind, CommKind, ViewKind};

    /// The paper's Listing-6 candidate subgraph: A,B -> C -> D,E.
    fn fan_pattern() -> Pattern {
        let mut p = Pattern::new();
        let a = p.add_vertex(PatternVertex::any());
        let b = p.add_vertex(PatternVertex::any());
        let c = p.add_vertex(PatternVertex::any());
        let d = p.add_vertex(PatternVertex::any());
        let e = p.add_vertex(PatternVertex::any());
        p.add_edge(a, c, None);
        p.add_edge(b, c, None);
        p.add_edge(c, d, None);
        p.add_edge(c, e, None);
        p
    }

    fn host() -> Pag {
        // Two fan structures sharing nothing + noise.
        let mut g = Pag::new(ViewKind::Parallel, "host");
        for i in 0..12 {
            g.add_vertex(VertexLabel::Compute, format!("n{i}").as_str());
        }
        for (a, b) in [(0, 2), (1, 2), (2, 3), (2, 4)] {
            g.add_edge(VertexId(a), VertexId(b), EdgeLabel::InterThread);
        }
        for (a, b) in [(5, 7), (6, 7), (7, 8), (7, 9)] {
            g.add_edge(VertexId(a), VertexId(b), EdgeLabel::InterThread);
        }
        g.add_edge(VertexId(10), VertexId(11), EdgeLabel::IntraProc);
        g
    }

    #[test]
    fn finds_both_fans() {
        let g = host();
        let p = fan_pattern();
        let embeddings = match_subgraph(&g, &p, None, 0);
        // Each fan matches 4 ways (A/B swap × D/E swap).
        assert_eq!(embeddings.len(), 8);
        // All embeddings map C (pattern index 2) to vertex 2 or 7.
        for emb in &embeddings {
            assert!(emb.mapping[2] == VertexId(2) || emb.mapping[2] == VertexId(7));
        }
    }

    #[test]
    fn anchored_search_restricts() {
        let g = host();
        let p = fan_pattern();
        let embeddings = match_subgraph(&g, &p, Some((2, VertexId(7))), 0);
        assert_eq!(embeddings.len(), 4);
        assert!(embeddings.iter().all(|e| e.mapping[2] == VertexId(7)));
    }

    #[test]
    fn anchor_mismatch_gives_nothing() {
        let g = host();
        let p = fan_pattern();
        // Vertex 10 has no fan around it.
        assert!(match_subgraph(&g, &p, Some((2, VertexId(10))), 0).is_empty());
    }

    #[test]
    fn max_embeddings_truncates() {
        let g = host();
        let p = fan_pattern();
        assert_eq!(match_subgraph(&g, &p, None, 3).len(), 3);
    }

    #[test]
    fn label_constraints_filter() {
        let mut g = Pag::new(ViewKind::Parallel, "labels");
        let a = g.add_vertex(VertexLabel::Call(CallKind::Lock), "lock");
        let b = g.add_vertex(VertexLabel::Compute, "work");
        let c = g.add_vertex(VertexLabel::Call(CallKind::Lock), "lock");
        g.add_edge(a, b, EdgeLabel::IntraProc);
        g.add_edge(c, b, EdgeLabel::InterThread);

        let mut p = Pattern::new();
        let x = p.add_vertex(PatternVertex::with_label(VertexLabel::Call(CallKind::Lock)));
        let y = p.add_vertex(PatternVertex::with_label(VertexLabel::Compute));
        p.add_edge(x, y, Some(EdgeLabel::InterThread));

        let embeddings = match_subgraph(&g, &p, None, 0);
        assert_eq!(embeddings.len(), 1);
        assert_eq!(embeddings[0].mapping, vec![c, b]);
    }

    #[test]
    fn name_glob_constraints() {
        let mut g = Pag::new(ViewKind::Parallel, "names");
        let a = g.add_vertex(VertexLabel::Call(CallKind::Comm), "MPI_Send");
        let b = g.add_vertex(VertexLabel::Call(CallKind::Comm), "MPI_Recv");
        g.add_edge(a, b, EdgeLabel::InterProcess(CommKind::P2pSync));

        let mut p = Pattern::new();
        let x = p.add_vertex(PatternVertex::with_name("MPI_S*"));
        let y = p.add_vertex(PatternVertex::with_name("MPI_R*"));
        p.add_edge(x, y, None);
        assert_eq!(match_subgraph(&g, &p, None, 0).len(), 1);

        let mut p2 = Pattern::new();
        let x2 = p2.add_vertex(PatternVertex::with_name("MPI_R*"));
        let y2 = p2.add_vertex(PatternVertex::with_name("MPI_S*"));
        p2.add_edge(x2, y2, None); // wrong direction
        assert!(match_subgraph(&g, &p2, None, 0).is_empty());
    }

    #[test]
    fn parallel_matches_serial() {
        let g = host();
        let p = fan_pattern();
        let serial = match_subgraph(&g, &p, None, 0);
        for workers in [1, 2, 4, 16] {
            assert_eq!(
                match_subgraph_parallel(&g, &p, None, 0, workers),
                serial,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn parallel_truncation_is_the_serial_prefix() {
        let g = host();
        let p = fan_pattern();
        let serial = match_subgraph(&g, &p, None, 0);
        for cap in [1, 3, 5, 8, 100] {
            for workers in [1, 3, 8] {
                let par = match_subgraph_parallel(&g, &p, None, cap, workers);
                assert_eq!(
                    par,
                    serial[..cap.min(serial.len())],
                    "cap={cap} workers={workers}"
                );
            }
        }
    }

    #[test]
    fn parallel_anchored_matches_serial() {
        let g = host();
        let p = fan_pattern();
        let serial = match_subgraph(&g, &p, Some((2, VertexId(7))), 0);
        assert_eq!(
            match_subgraph_parallel(&g, &p, Some((2, VertexId(7))), 0, 4),
            serial
        );
        assert!(match_subgraph_parallel(&g, &Pattern::new(), None, 0, 4).is_empty());
    }

    #[test]
    fn injectivity_enforced() {
        // Self-loop graph: pattern with two vertices must not map both to
        // the same graph vertex.
        let mut g = Pag::new(ViewKind::Parallel, "loop");
        let a = g.add_vertex(VertexLabel::Compute, "a");
        g.add_edge(a, a, EdgeLabel::IntraProc);
        let mut p = Pattern::new();
        let x = p.add_vertex(PatternVertex::any());
        let y = p.add_vertex(PatternVertex::any());
        p.add_edge(x, y, None);
        assert!(match_subgraph(&g, &p, None, 0).is_empty());
    }

    #[test]
    fn empty_pattern_matches_nothing() {
        let g = host();
        assert!(match_subgraph(&g, &Pattern::new(), None, 0).is_empty());
    }
}
