//! # Graph algorithms over Program Abstraction Graphs
//!
//! PerFlow builds its performance-analysis passes out of "graph algorithms,
//! such as breadth-first search, subgraph matching, etc., on the PAGs"
//! (§2.1) plus "lowest common ancestor" for causal analysis (§4.3.2-C) and
//! "community detection" (§4.3.1). This crate provides those algorithms —
//! plus critical-path extraction, connected components and the graph
//! difference used by differential analysis — as standalone functions over
//! [`pag::Pag`] so both the built-in pass library and user-defined passes
//! can reuse them.

pub mod coarsen;
pub mod components;
pub mod diff;
pub mod kpaths;
pub mod lca;
pub mod longest_path;
pub mod louvain;
pub mod par;
pub mod subgraph;
pub mod traverse;

pub use coarsen::{coarsen, coarsen_parallel_by_topdown};
pub use components::{strongly_connected_components, weakly_connected_components};
pub use diff::{
    graph_difference, graph_difference_parallel, graph_difference_scaled,
    graph_difference_scaled_parallel, hottest_differences,
};
pub use kpaths::k_heaviest_paths;
pub use lca::{lca_bfs, lowest_common_ancestor, LcaIndex};
pub use longest_path::{critical_path, CriticalPath};
pub use louvain::{louvain, louvain_parallel, Communities};
pub use par::{default_workers, map_shards};
pub use subgraph::{
    match_subgraph, match_subgraph_parallel, Embedding, Pattern, PatternEdge, PatternVertex,
};
pub use traverse::{bfs_order, dfs_preorder, topo_sort, CycleError};
