//! Lowest common ancestor on a rooted DAG.
//!
//! The causal-analysis pass "is designed based on the LCA algorithm […] the
//! goal of the LCA algorithm is to search the deepest vertex that has both
//! v and w as descendants in a tree or directed acyclic graph" (§4.3.2-C).
//!
//! [`LcaIndex`] precomputes, per query-relevant edge set, each vertex's
//! ancestor set (as compact bitsets) and its depth (longest distance from
//! the root), so repeated LCA queries — causal analysis runs LCA over every
//! pair of buggy vertices — stay cheap.

use pag::{EdgeId, Pag, VertexId};

use crate::traverse::topo_sort_filtered;

/// Precomputed ancestor/depth index for LCA queries over the subgraph of
/// edges accepted by a filter.
pub struct LcaIndex {
    /// `ancestors[v]` is a bitset over vertices (including `v` itself).
    ancestors: Vec<Bitset>,
    /// Longest-path depth from any source vertex.
    depth: Vec<u32>,
    /// First parent edge on a deepest path, used to reconstruct paths.
    parent_edge: Vec<Option<EdgeId>>,
}

#[derive(Clone)]
struct Bitset {
    words: Vec<u64>,
}

impl Bitset {
    fn new(n: usize) -> Self {
        Bitset {
            words: vec![0; n.div_ceil(64)],
        }
    }
    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }
    #[inline]
    fn get(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }
    fn union_with(&mut self, other: &Bitset) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }
    /// Iterate over indices present in both bitsets.
    fn intersection<'a>(&'a self, other: &'a Bitset) -> impl Iterator<Item = usize> + 'a {
        self.words
            .iter()
            .zip(&other.words)
            .enumerate()
            .flat_map(|(wi, (a, b))| {
                let mut bits = a & b;
                std::iter::from_fn(move || {
                    if bits == 0 {
                        None
                    } else {
                        let t = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        Some(wi * 64 + t)
                    }
                })
            })
    }
}

impl LcaIndex {
    /// Build the index over edges accepted by `follow`. The subgraph must
    /// be acyclic; returns `None` if it is not.
    pub fn build(g: &Pag, follow: impl Fn(EdgeId) -> bool + Copy) -> Option<Self> {
        let n = g.num_vertices();
        let order = topo_sort_filtered(g, follow).ok()?;
        let mut ancestors: Vec<Bitset> = (0..n).map(|_| Bitset::new(n)).collect();
        let mut depth = vec![0u32; n];
        let mut parent_edge: Vec<Option<EdgeId>> = vec![None; n];
        for &v in &order {
            // Every vertex is its own ancestor (matches the paper's "has
            // both v and w as descendants" with reflexive descent, so that
            // causal analysis can report one bug vertex as the ancestor of
            // another).
            let vi = v.index();
            ancestors[vi].set(vi);
            for &e in g.in_edges(v) {
                if !follow(e) {
                    continue;
                }
                let u = g.edge(e).src;
                let (a_u, a_v) = borrow_two(&mut ancestors, u.index(), vi);
                a_v.union_with(a_u);
                if depth[u.index()] + 1 > depth[vi] || parent_edge[vi].is_none() {
                    depth[vi] = depth[u.index()] + 1;
                    parent_edge[vi] = Some(e);
                }
            }
        }
        Some(LcaIndex {
            ancestors,
            depth,
            parent_edge,
        })
    }

    /// Depth (longest path from a source) of a vertex.
    pub fn depth(&self, v: VertexId) -> u32 {
        self.depth[v.index()]
    }

    /// True if `a` is an ancestor of `d` (reflexive).
    pub fn is_ancestor(&self, a: VertexId, d: VertexId) -> bool {
        self.ancestors[d.index()].get(a.index())
    }

    /// The deepest vertex that is an ancestor of both `v` and `w`
    /// (reflexive), or `None` if they share no ancestor.
    pub fn lca(&self, v: VertexId, w: VertexId) -> Option<VertexId> {
        let mut best: Option<(u32, VertexId)> = None;
        for i in self.ancestors[v.index()].intersection(&self.ancestors[w.index()]) {
            let cand = VertexId(i as u32);
            let d = self.depth[i];
            match best {
                Some((bd, _)) if bd >= d => {}
                _ => best = Some((d, cand)),
            }
        }
        best.map(|(_, v)| v)
    }

    /// Reconstruct one deepest path of edges from `ancestor` down to `v`
    /// (empty when `ancestor == v`). Returns `None` if `ancestor` does not
    /// lie on the recorded deepest-parent chain of `v`; callers that need
    /// *a* path (not the deepest) can walk the graph instead.
    pub fn path_from(&self, g: &Pag, ancestor: VertexId, v: VertexId) -> Option<Vec<EdgeId>> {
        let mut path = Vec::new();
        let mut cur = v;
        while cur != ancestor {
            let e = self.parent_edge[cur.index()]?;
            path.push(e);
            cur = g.edge(e).src;
        }
        path.reverse();
        Some(path)
    }
}

/// Split-borrow two distinct indices of a slice.
fn borrow_two<T>(v: &mut [T], i: usize, j: usize) -> (&T, &mut T) {
    debug_assert_ne!(i, j);
    if i < j {
        let (a, b) = v.split_at_mut(j);
        (&a[i], &mut b[0])
    } else {
        let (a, b) = v.split_at_mut(i);
        (&b[0] as &T, &mut a[j])
    }
}

/// One-shot LCA of two vertices over the full edge set: returns the
/// ancestor vertex and the edge paths from it to `v` and to `w`.
///
/// This is the paper's `pflow.lowest_common_ancestor(v1, v2)` low-level
/// API (Listing 5): `v` is the detected lowest common ancestor, and the
/// returned edge sets describe how the bug propagates from it.
pub fn lowest_common_ancestor(
    g: &Pag,
    v: VertexId,
    w: VertexId,
) -> Option<(VertexId, Vec<EdgeId>, Vec<EdgeId>)> {
    let idx = LcaIndex::build(g, |_| true)?;
    let a = idx.lca(v, w)?;
    let pv = idx.path_from(g, a, v).unwrap_or_default();
    let pw = idx.path_from(g, a, w).unwrap_or_default();
    Some((a, pv, pw))
}

/// Memory-frugal LCA for large graphs (e.g. parallel views with millions
/// of vertices, where the bitset index would need O(V²) bits).
///
/// Performs backward BFS from both query vertices over edges accepted by
/// `follow`, intersects the reached ancestor sets, and picks the common
/// ancestor with the greatest backward-BFS depth-sum (a "deepest common
/// ancestor" in the causal-past sense). Returns the ancestor and one edge
/// path from it to each query vertex.
pub fn lca_bfs(
    g: &Pag,
    v: VertexId,
    w: VertexId,
    follow: impl Fn(EdgeId) -> bool + Copy,
) -> Option<(VertexId, Vec<EdgeId>, Vec<EdgeId>)> {
    let reach_v = backward_reach(g, v, follow);
    let reach_w = backward_reach(g, w, follow);
    // The deepest common ancestor is the one closest to both descendants:
    // minimal combined backward distance. Ties break on vertex id for
    // determinism.
    let mut best: Option<(u32, VertexId)> = None;
    for (&cand, &(dv, _)) in &reach_v {
        if let Some(&(dw, _)) = reach_w.get(&cand) {
            let key = dv + dw;
            match best {
                None => best = Some((key, cand)),
                Some((bk, bc)) if key < bk || (key == bk && cand < bc) => best = Some((key, cand)),
                _ => {}
            }
        }
    }
    let (_, anc) = best?;
    let pv = walk_back(g, &reach_v, v, anc)?;
    let pw = walk_back(g, &reach_w, w, anc)?;
    Some((anc, pv, pw))
}

/// Backward BFS: vertex → (distance from start, parent edge toward start).
fn backward_reach(
    g: &Pag,
    start: VertexId,
    follow: impl Fn(EdgeId) -> bool,
) -> std::collections::HashMap<VertexId, (u32, Option<EdgeId>)> {
    let mut out = std::collections::HashMap::new();
    out.insert(start, (0u32, None));
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        let (du, _) = out[&u];
        for &e in g.in_edges(u) {
            if !follow(e) {
                continue;
            }
            let p = g.edge(e).src;
            if let std::collections::hash_map::Entry::Vacant(ent) = out.entry(p) {
                ent.insert((du + 1, Some(e)));
                queue.push_back(p);
            }
        }
    }
    out
}

/// Reconstruct the edge path ancestor → descendant from a backward-BFS map.
fn walk_back(
    g: &Pag,
    reach: &std::collections::HashMap<VertexId, (u32, Option<EdgeId>)>,
    _descendant: VertexId,
    ancestor: VertexId,
) -> Option<Vec<EdgeId>> {
    // reach maps ancestors of `descendant` with parent edges pointing
    // toward the descendant; walk from the ancestor following them.
    let mut path = Vec::new();
    let mut cur = ancestor;
    loop {
        let (_, pe) = *reach.get(&cur)?;
        match pe {
            None => break, // arrived at the descendant
            Some(e) => {
                path.push(e);
                cur = g.edge(e).dst;
            }
        }
    }
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pag::{EdgeLabel, VertexLabel, ViewKind};

    /// Tree:        0
    ///            /   \
    ///           1     2
    ///          / \     \
    ///         3   4     5
    fn tree() -> Pag {
        let mut g = Pag::new(ViewKind::TopDown, "tree");
        for i in 0..6 {
            g.add_vertex(VertexLabel::Compute, format!("n{i}").as_str());
        }
        for (a, b) in [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)] {
            g.add_edge(VertexId(a), VertexId(b), EdgeLabel::IntraProc);
        }
        g
    }

    #[test]
    fn lca_in_tree() {
        let g = tree();
        let (a, pv, pw) = lowest_common_ancestor(&g, VertexId(3), VertexId(4)).unwrap();
        assert_eq!(a, VertexId(1));
        assert_eq!(pv.len(), 1);
        assert_eq!(pw.len(), 1);

        let (a, ..) = lowest_common_ancestor(&g, VertexId(3), VertexId(5)).unwrap();
        assert_eq!(a, VertexId(0));
    }

    #[test]
    fn lca_is_reflexive_on_ancestry() {
        let g = tree();
        // 1 is an ancestor of 3, so LCA(1,3) = 1 and the path to 3 is direct.
        let (a, pv, pw) = lowest_common_ancestor(&g, VertexId(1), VertexId(3)).unwrap();
        assert_eq!(a, VertexId(1));
        assert!(pv.is_empty());
        assert_eq!(pw.len(), 1);
    }

    #[test]
    fn lca_on_dag_takes_deepest() {
        // DAG: 0 -> 1 -> 3, 0 -> 2 -> 3, 3 -> 4, 3 -> 5.
        // LCA(4,5) must be 3 (the deepest common ancestor), not 0.
        let mut g = Pag::new(ViewKind::TopDown, "dag");
        for i in 0..6 {
            g.add_vertex(VertexLabel::Compute, format!("n{i}").as_str());
        }
        for (a, b) in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (3, 5)] {
            g.add_edge(VertexId(a), VertexId(b), EdgeLabel::IntraProc);
        }
        let (a, pv, pw) = lowest_common_ancestor(&g, VertexId(4), VertexId(5)).unwrap();
        assert_eq!(a, VertexId(3));
        assert_eq!(pv.len(), 1);
        assert_eq!(pw.len(), 1);
    }

    #[test]
    fn no_common_ancestor() {
        let mut g = Pag::new(ViewKind::TopDown, "forest");
        for i in 0..4 {
            g.add_vertex(VertexLabel::Compute, format!("n{i}").as_str());
        }
        g.add_edge(VertexId(0), VertexId(1), EdgeLabel::IntraProc);
        g.add_edge(VertexId(2), VertexId(3), EdgeLabel::IntraProc);
        assert!(lowest_common_ancestor(&g, VertexId(1), VertexId(3)).is_none());
    }

    #[test]
    fn cyclic_graph_returns_none() {
        let mut g = Pag::new(ViewKind::TopDown, "cycle");
        let a = g.add_vertex(VertexLabel::Compute, "a");
        let b = g.add_vertex(VertexLabel::Compute, "b");
        g.add_edge(a, b, EdgeLabel::IntraProc);
        g.add_edge(b, a, EdgeLabel::IntraProc);
        assert!(LcaIndex::build(&g, |_| true).is_none());
    }

    #[test]
    fn index_answers_ancestry() {
        let g = tree();
        let idx = LcaIndex::build(&g, |_| true).unwrap();
        assert!(idx.is_ancestor(VertexId(0), VertexId(5)));
        assert!(idx.is_ancestor(VertexId(1), VertexId(4)));
        assert!(!idx.is_ancestor(VertexId(2), VertexId(4)));
        assert!(idx.is_ancestor(VertexId(3), VertexId(3)));
        assert_eq!(idx.depth(VertexId(0)), 0);
        assert_eq!(idx.depth(VertexId(3)), 2);
    }

    #[test]
    fn path_reconstruction_matches_edges() {
        let g = tree();
        let idx = LcaIndex::build(&g, |_| true).unwrap();
        let path = idx.path_from(&g, VertexId(0), VertexId(4)).unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(g.edge(path[0]).src, VertexId(0));
        assert_eq!(g.edge(path[0]).dst, VertexId(1));
        assert_eq!(g.edge(path[1]).src, VertexId(1));
        assert_eq!(g.edge(path[1]).dst, VertexId(4));
    }
}

#[cfg(test)]
mod bfs_tests {
    use super::*;
    use pag::{EdgeLabel, VertexLabel, ViewKind};

    fn graph(n: u32, edges: &[(u32, u32)]) -> Pag {
        let mut g = Pag::new(ViewKind::Parallel, "g");
        for i in 0..n {
            g.add_vertex(VertexLabel::Compute, format!("n{i}").as_str());
        }
        for &(a, b) in edges {
            g.add_edge(VertexId(a), VertexId(b), EdgeLabel::IntraProc);
        }
        g
    }

    #[test]
    fn bfs_lca_matches_index_lca_on_tree() {
        let g = graph(6, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)]);
        let (a, pv, pw) = lca_bfs(&g, VertexId(3), VertexId(4), |_| true).unwrap();
        assert_eq!(a, VertexId(1));
        assert_eq!(pv.len(), 1);
        assert_eq!(pw.len(), 1);
        let (a2, ..) = lca_bfs(&g, VertexId(3), VertexId(5), |_| true).unwrap();
        assert_eq!(a2, VertexId(0));
    }

    #[test]
    fn bfs_lca_reflexive_ancestry() {
        let g = graph(3, &[(0, 1), (1, 2)]);
        let (a, pv, pw) = lca_bfs(&g, VertexId(1), VertexId(2), |_| true).unwrap();
        assert_eq!(a, VertexId(1));
        assert!(pv.is_empty());
        assert_eq!(pw.len(), 1);
    }

    #[test]
    fn bfs_lca_two_flows_joined_by_cross_edge() {
        // Flow A: 0→1→2; flow B: 3→4→5; cross edge 1→4 (A's op delayed B).
        let g = graph(6, &[(0, 1), (1, 2), (3, 4), (4, 5), (1, 4)]);
        // Causal ancestor of (2 in flow A, 5 in flow B) is vertex 1.
        let (a, ..) = lca_bfs(&g, VertexId(2), VertexId(5), |_| true).unwrap();
        assert_eq!(a, VertexId(1));
        // No common ancestor of 0 and 3.
        assert!(lca_bfs(&g, VertexId(0), VertexId(3), |_| true).is_none());
    }

    #[test]
    fn bfs_lca_edge_filter() {
        let g = graph(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        // Exclude the 1→3 edge: paths to 3 must go through 2.
        let excluded = pag::EdgeId(2);
        let (a, _, pw) = lca_bfs(&g, VertexId(1), VertexId(3), |e| e != excluded).unwrap();
        assert_eq!(a, VertexId(0));
        assert_eq!(pw.len(), 2);
    }

    #[test]
    fn bfs_lca_paths_are_valid_edge_chains() {
        let g = graph(7, &[(0, 1), (1, 2), (2, 3), (0, 4), (4, 5), (5, 6)]);
        let (a, pv, pw) = lca_bfs(&g, VertexId(3), VertexId(6), |_| true).unwrap();
        assert_eq!(a, VertexId(0));
        // pv: 0→1→2→3, pw: 0→4→5→6
        assert_eq!(pv.len(), 3);
        assert_eq!(pw.len(), 3);
        assert_eq!(g.edge(pv[0]).src, VertexId(0));
        assert_eq!(g.edge(pv[2]).dst, VertexId(3));
        assert_eq!(g.edge(pw[2]).dst, VertexId(6));
        for win in pv.windows(2).chain(pw.windows(2)) {
            assert_eq!(g.edge(win[0]).dst, g.edge(win[1]).src);
        }
    }
}
