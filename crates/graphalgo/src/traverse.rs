//! Basic traversals: BFS, DFS pre-order, topological sort.

use pag::{Pag, VertexId};

/// Error returned by [`topo_sort`] when the graph contains a cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleError {
    /// A vertex known to participate in (or be downstream of) a cycle.
    pub witness: VertexId,
}

impl std::fmt::Display for CycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "graph contains a cycle (witness vertex {})",
            self.witness
        )
    }
}

impl std::error::Error for CycleError {}

/// Breadth-first order from `start`, following out-edges. Each reachable
/// vertex appears exactly once.
pub fn bfs_order(g: &Pag, start: VertexId) -> Vec<VertexId> {
    let mut visited = vec![false; g.num_vertices()];
    let mut queue = std::collections::VecDeque::new();
    let mut order = Vec::new();
    visited[start.index()] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for w in g.out_neighbors(v) {
            if !visited[w.index()] {
                visited[w.index()] = true;
                queue.push_back(w);
            }
        }
    }
    order
}

/// Depth-first pre-order from `start`, following out-edges. Children are
/// visited in edge-insertion order, which for a top-down PAG equals source
/// order — this is the traversal that generates parallel-view *flows*
/// (§3.4: "a flow is the vertex access sequence recorded by pre-order
/// traversal").
pub fn dfs_preorder(g: &Pag, start: VertexId) -> Vec<VertexId> {
    let mut visited = vec![false; g.num_vertices()];
    let mut stack = vec![start];
    let mut order = Vec::new();
    while let Some(v) = stack.pop() {
        if visited[v.index()] {
            continue;
        }
        visited[v.index()] = true;
        order.push(v);
        // Push children in reverse so the first child is processed first.
        let out = g.out_edges(v);
        for &e in out.iter().rev() {
            let w = g.edge(e).dst;
            if !visited[w.index()] {
                stack.push(w);
            }
        }
    }
    order
}

/// Kahn topological sort over the whole graph. Edges for which `follow`
/// returns `false` are ignored (used to sort only the structural subgraph
/// of a parallel view, skipping back-pointing dependence edges).
pub fn topo_sort_filtered(
    g: &Pag,
    follow: impl Fn(pag::EdgeId) -> bool,
) -> Result<Vec<VertexId>, CycleError> {
    let n = g.num_vertices();
    let mut indeg = vec![0u32; n];
    for e in g.edge_ids() {
        if follow(e) {
            indeg[g.edge(e).dst.index()] += 1;
        }
    }
    let mut queue: std::collections::VecDeque<VertexId> = (0..n as u32)
        .map(VertexId)
        .filter(|v| indeg[v.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &e in g.out_edges(v) {
            if !follow(e) {
                continue;
            }
            let w = g.edge(e).dst;
            indeg[w.index()] -= 1;
            if indeg[w.index()] == 0 {
                queue.push_back(w);
            }
        }
    }
    if order.len() != n {
        let witness = (0..n as u32)
            .map(VertexId)
            .find(|v| indeg[v.index()] > 0)
            .expect("cycle implies a vertex with positive residual in-degree");
        return Err(CycleError { witness });
    }
    Ok(order)
}

/// Kahn topological sort over all edges.
pub fn topo_sort(g: &Pag) -> Result<Vec<VertexId>, CycleError> {
    topo_sort_filtered(g, |_| true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pag::{EdgeLabel, VertexLabel, ViewKind};

    /// Diamond: 0 -> {1,2} -> 3, plus isolated 4.
    fn diamond() -> Pag {
        let mut g = Pag::new(ViewKind::TopDown, "diamond");
        for i in 0..5 {
            g.add_vertex(VertexLabel::Compute, format!("n{i}").as_str());
        }
        for (a, b) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            g.add_edge(VertexId(a), VertexId(b), EdgeLabel::IntraProc);
        }
        g
    }

    #[test]
    fn bfs_visits_reachable_once() {
        let g = diamond();
        let order = bfs_order(&g, VertexId(0));
        assert_eq!(order.len(), 4); // vertex 4 unreachable
        assert_eq!(order[0], VertexId(0));
        assert_eq!(*order.last().unwrap(), VertexId(3));
    }

    #[test]
    fn dfs_preorder_follows_first_child_first() {
        let g = diamond();
        let order = dfs_preorder(&g, VertexId(0));
        assert_eq!(order[0], VertexId(0));
        assert_eq!(order[1], VertexId(1)); // first out-edge first
        assert!(order.contains(&VertexId(3)));
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn topo_sort_respects_edges() {
        let g = diamond();
        let order = topo_sort(&g).unwrap();
        let pos: Vec<usize> = (0..5)
            .map(|i| order.iter().position(|&v| v == VertexId(i)).unwrap())
            .collect();
        assert!(pos[0] < pos[1]);
        assert!(pos[0] < pos[2]);
        assert!(pos[1] < pos[3]);
        assert!(pos[2] < pos[3]);
    }

    #[test]
    fn topo_sort_detects_cycles() {
        let mut g = diamond();
        g.add_edge(VertexId(3), VertexId(0), EdgeLabel::IntraProc);
        assert!(topo_sort(&g).is_err());
    }

    #[test]
    fn filtered_topo_ignores_cycle_edges() {
        let mut g = diamond();
        let back = g.add_edge(VertexId(3), VertexId(0), EdgeLabel::InterThread);
        let order = topo_sort_filtered(&g, |e| e != back).unwrap();
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn bfs_from_sink_is_singleton() {
        let g = diamond();
        assert_eq!(bfs_order(&g, VertexId(3)), vec![VertexId(3)]);
    }
}
