//! Graph difference for performance differential analysis (§4.3.2-B).
//!
//! Two PAGs built from the same binary share their top-down skeleton, so
//! the difference graph `G3 = G1 - G2` is computed positionally: identical
//! structure, each vertex carrying `metric(G1) - metric(G2)` for every
//! requested numeric metric (Fig. 7). A vertex that is *not* the hottest in
//! either input can be the hottest in the difference — that is exactly the
//! signal differential analysis looks for.

use pag::{keys, Pag, PropValue, VertexId};

/// Error cases for graph difference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffError {
    /// The two PAGs have different numbers of vertices.
    VertexCountMismatch {
        /// Vertex count of the left graph.
        left: usize,
        /// Vertex count of the right graph.
        right: usize,
    },
    /// A vertex pair has different names, i.e. the skeletons differ.
    SkeletonMismatch {
        /// The mismatching vertex.
        vertex: VertexId,
    },
}

impl std::fmt::Display for DiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffError::VertexCountMismatch { left, right } => {
                write!(f, "vertex count mismatch: {left} vs {right}")
            }
            DiffError::SkeletonMismatch { vertex } => {
                write!(f, "skeleton mismatch at vertex {vertex}")
            }
        }
    }
}

impl std::error::Error for DiffError {}

/// Compute the difference graph of two same-skeleton PAGs.
///
/// For every metric in `metrics`, each result vertex carries
/// `left[metric] - scale * right[metric]`. `scale` lets scalability
/// analysis compare runs at different process counts under an ideal-scaling
/// model (e.g. `scale = 1.0` for plain comparison, or the runtime ratio
/// expected from perfect strong scaling).
pub fn graph_difference_scaled(
    left: &Pag,
    right: &Pag,
    metrics: &[&str],
    scale: f64,
) -> Result<Pag, DiffError> {
    if left.num_vertices() != right.num_vertices() {
        return Err(DiffError::VertexCountMismatch {
            left: left.num_vertices(),
            right: right.num_vertices(),
        });
    }
    let mut out = Pag::with_capacity(
        left.view(),
        format!("diff({},{})", left.name(), right.name()),
        left.num_vertices(),
        left.num_edges(),
    );
    out.set_num_procs(left.num_procs().max(right.num_procs()));
    for v in left.vertex_ids() {
        let lv = left.vertex(v);
        let rv = right.vertex(v);
        if lv.name != rv.name {
            return Err(DiffError::SkeletonMismatch { vertex: v });
        }
        let nv = out.add_vertex(lv.label, lv.name.clone());
        // Copy identifying metadata from the left graph.
        if let Some(d) = lv.props.get(keys::DEBUG_INFO) {
            out.vertex_mut(nv).props.set(keys::DEBUG_INFO, d.clone());
        }
        for m in metrics {
            let a = lv.props.get_f64(m);
            let b = rv.props.get_f64(m);
            out.set_vprop(nv, m, a - scale * b);
        }
    }
    for e in left.edge_ids() {
        let ed = left.edge(e);
        out.add_edge(ed.src, ed.dst, ed.label);
    }
    if let Some(r) = left.root() {
        out.set_root(r);
    }
    Ok(out)
}

/// Plain difference `left - right` (scale 1.0).
pub fn graph_difference(left: &Pag, right: &Pag, metrics: &[&str]) -> Result<Pag, DiffError> {
    graph_difference_scaled(left, right, metrics, 1.0)
}

/// Convenience: the vertices of a difference graph sorted by a metric,
/// hottest first. Ties are broken by vertex id for determinism.
pub fn hottest_differences(diff: &Pag, metric: &str, n: usize) -> Vec<(VertexId, f64)> {
    let mut v: Vec<(VertexId, f64)> = diff
        .vertex_ids()
        .map(|id| {
            let x = diff
                .vprop(id, metric)
                .and_then(PropValue::as_f64)
                .unwrap_or(0.0);
            (id, x)
        })
        .collect();
    // NaN differences (degraded or corrupted metrics) sort last instead
    // of panicking; ids still break ties for determinism.
    v.sort_by(|a, b| pag::desc_nan_last(a.1, b.1).then(a.0.cmp(&b.0)));
    v.truncate(n);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use pag::{EdgeLabel, VertexLabel, ViewKind};

    fn run(name: &str, times: &[f64]) -> Pag {
        let mut g = Pag::new(ViewKind::TopDown, name);
        for (i, &t) in times.iter().enumerate() {
            let v = g.add_vertex(VertexLabel::Compute, format!("n{i}").as_str());
            g.set_vprop(v, keys::TIME, t);
        }
        for i in 1..times.len() as u32 {
            g.add_edge(VertexId(0), VertexId(i), EdgeLabel::IntraProc);
        }
        g.set_root(VertexId(0));
        g
    }

    #[test]
    fn positional_difference() {
        let a = run("a", &[10.0, 5.0, 1.0]);
        let b = run("b", &[9.0, 1.0, 1.0]);
        let d = graph_difference(&a, &b, &[keys::TIME]).unwrap();
        assert_eq!(d.num_vertices(), 3);
        assert_eq!(d.num_edges(), 2);
        assert_eq!(d.vertex_time(VertexId(0)), 1.0);
        assert_eq!(d.vertex_time(VertexId(1)), 4.0);
        assert_eq!(d.vertex_time(VertexId(2)), 0.0);
        assert_eq!(d.root(), Some(VertexId(0)));
    }

    #[test]
    fn non_hotspot_becomes_hottest_difference() {
        // Vertex 0 is the hotspot in both runs, but vertex 1 grows the most
        // — the paper's MPI_Reduce example (Fig. 7).
        let small = run("small", &[10.0, 1.0, 2.0]);
        let large = run("large", &[11.0, 7.0, 2.5]);
        let d = graph_difference(&large, &small, &[keys::TIME]).unwrap();
        let hot = hottest_differences(&d, keys::TIME, 1);
        assert_eq!(hot[0].0, VertexId(1));
        assert!((hot[0].1 - 6.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_difference_models_ideal_scaling() {
        let small = run("p4", &[8.0, 4.0]);
        let large = run("p16", &[2.0, 3.9]);
        // Under perfect strong scaling 4→16 procs, time shrinks 4×:
        // expected = small/4. Loss = large - small/4.
        let d = graph_difference_scaled(&large, &small, &[keys::TIME], 0.25).unwrap();
        assert!((d.vertex_time(VertexId(0)) - 0.0).abs() < 1e-12);
        assert!((d.vertex_time(VertexId(1)) - 2.9).abs() < 1e-12);
    }

    #[test]
    fn mismatched_counts_rejected() {
        let a = run("a", &[1.0, 2.0]);
        let b = run("b", &[1.0]);
        assert_eq!(
            graph_difference(&a, &b, &[keys::TIME]).unwrap_err(),
            DiffError::VertexCountMismatch { left: 2, right: 1 }
        );
    }

    #[test]
    fn mismatched_names_rejected() {
        let a = run("a", &[1.0, 2.0]);
        let mut b = Pag::new(ViewKind::TopDown, "b");
        b.add_vertex(VertexLabel::Compute, "n0");
        b.add_vertex(VertexLabel::Compute, "DIFFERENT");
        let err = graph_difference(&a, &b, &[keys::TIME]).unwrap_err();
        assert_eq!(
            err,
            DiffError::SkeletonMismatch {
                vertex: VertexId(1)
            }
        );
    }

    #[test]
    fn missing_metric_treated_as_zero() {
        let mut a = run("a", &[1.0]);
        let b = run("b", &[3.0]);
        a.vertex_mut(VertexId(0)).props.remove(keys::TIME);
        let d = graph_difference(&a, &b, &[keys::TIME]).unwrap();
        assert_eq!(d.vertex_time(VertexId(0)), -3.0);
    }

    #[test]
    fn hottest_differences_survive_nan() {
        let mut d = run("d", &[5.0, 2.0, 8.0]);
        d.set_vprop(VertexId(1), keys::TIME, f64::NAN);
        let hot = hottest_differences(&d, keys::TIME, 10);
        assert_eq!(hot.len(), 3);
        assert_eq!(hot[0].0, VertexId(2));
        assert_eq!(hot[1].0, VertexId(0));
        assert!(hot[2].1.is_nan(), "NaN sorts last, not first");
        // Deterministic under repetition.
        assert_eq!(
            hottest_differences(&d, keys::TIME, 10)
                .iter()
                .map(|x| x.0)
                .collect::<Vec<_>>(),
            hot.iter().map(|x| x.0).collect::<Vec<_>>()
        );
    }
}
