//! Graph difference for performance differential analysis (§4.3.2-B).
//!
//! Two PAGs built from the same binary share their top-down skeleton, so
//! the difference graph `G3 = G1 - G2` is computed positionally: identical
//! structure, each vertex carrying `metric(G1) - metric(G2)` for every
//! requested numeric metric (Fig. 7). A vertex that is *not* the hottest in
//! either input can be the hottest in the difference — that is exactly the
//! signal differential analysis looks for.

use pag::{keys, KeyId, Pag, VertexId};

/// Error cases for graph difference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffError {
    /// The two PAGs have different numbers of vertices.
    VertexCountMismatch {
        /// Vertex count of the left graph.
        left: usize,
        /// Vertex count of the right graph.
        right: usize,
    },
    /// A vertex pair has different names, i.e. the skeletons differ.
    SkeletonMismatch {
        /// The mismatching vertex.
        vertex: VertexId,
    },
}

impl std::fmt::Display for DiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffError::VertexCountMismatch { left, right } => {
                write!(f, "vertex count mismatch: {left} vs {right}")
            }
            DiffError::SkeletonMismatch { vertex } => {
                write!(f, "skeleton mismatch at vertex {vertex}")
            }
        }
    }
}

impl std::error::Error for DiffError {}

/// Compute the difference graph of two same-skeleton PAGs.
///
/// For every metric in `metrics`, each result vertex carries
/// `left[metric] - scale * right[metric]`. `scale` lets scalability
/// analysis compare runs at different process counts under an ideal-scaling
/// model (e.g. `scale = 1.0` for plain comparison, or the runtime ratio
/// expected from perfect strong scaling).
pub fn graph_difference_scaled(
    left: &Pag,
    right: &Pag,
    metrics: &[&str],
    scale: f64,
) -> Result<Pag, DiffError> {
    if left.num_vertices() != right.num_vertices() {
        return Err(DiffError::VertexCountMismatch {
            left: left.num_vertices(),
            right: right.num_vertices(),
        });
    }
    let mut out = Pag::with_capacity(
        left.view(),
        format!("diff({},{})", left.name(), right.name()),
        left.num_vertices(),
        left.num_edges(),
    );
    out.set_num_procs(left.num_procs().max(right.num_procs()));
    // Resolve metric names to column ids once; the per-vertex loop then
    // never touches string keys.
    let lkeys: Vec<Option<KeyId>> = metrics.iter().map(|m| left.key_id(m)).collect();
    let rkeys: Vec<Option<KeyId>> = metrics.iter().map(|m| right.key_id(m)).collect();
    let okeys: Vec<KeyId> = metrics.iter().map(|m| out.intern_key(m)).collect();
    for v in left.vertex_ids() {
        let lv = left.vertex(v);
        let rv = right.vertex(v);
        if lv.name != rv.name {
            return Err(DiffError::SkeletonMismatch { vertex: v });
        }
        let nv = out.add_vertex(lv.label, lv.name.clone());
        // Copy identifying metadata from the left graph.
        if let Some(d) = left.vstr(v, keys::DEBUG_INFO) {
            out.set_vstr(nv, keys::DEBUG_INFO, d);
        }
        for i in 0..metrics.len() {
            let a = lkeys[i].map_or(0.0, |k| left.metric_f64(v, k));
            let b = rkeys[i].map_or(0.0, |k| right.metric_f64(v, k));
            out.set_metric(nv, okeys[i], a - scale * b);
        }
    }
    for e in left.edge_ids() {
        let ed = left.edge(e);
        out.add_edge(ed.src, ed.dst, ed.label);
    }
    if let Some(r) = left.root() {
        out.set_root(r);
    }
    Ok(out)
}

/// Plain difference `left - right` (scale 1.0).
pub fn graph_difference(left: &Pag, right: &Pag, metrics: &[&str]) -> Result<Pag, DiffError> {
    graph_difference_scaled(left, right, metrics, 1.0)
}

/// Parallel [`graph_difference_scaled`]: vertices are sharded into
/// contiguous ascending ranges, each range's name check and metric
/// subtraction runs on a worker thread, and the result graph is assembled
/// in vertex order. Output — including which vertex a
/// [`DiffError::SkeletonMismatch`] reports — is identical for any worker
/// count, because the first erring shard in range order holds the globally
/// first mismatching vertex.
pub fn graph_difference_scaled_parallel(
    left: &Pag,
    right: &Pag,
    metrics: &[&str],
    scale: f64,
    workers: usize,
) -> Result<Pag, DiffError> {
    if left.num_vertices() != right.num_vertices() {
        return Err(DiffError::VertexCountMismatch {
            left: left.num_vertices(),
            right: right.num_vertices(),
        });
    }
    let n = left.num_vertices();
    let lkeys: Vec<Option<KeyId>> = metrics.iter().map(|m| left.key_id(m)).collect();
    let rkeys: Vec<Option<KeyId>> = metrics.iter().map(|m| right.key_id(m)).collect();

    // Over-shard relative to the worker count so uneven metric density
    // still balances; shard count does not affect the output.
    let workers = workers.max(1);
    let nshards = (workers * 4).min(n.max(1));
    type Row<'a> = (Vec<f64>, Option<&'a str>);
    let shards: Vec<Result<Vec<Row<'_>>, VertexId>> =
        crate::par::map_shards(nshards, workers, |s| {
            let (lo, hi) = (s * n / nshards, (s + 1) * n / nshards);
            let mut rows = Vec::with_capacity(hi - lo);
            for i in lo..hi {
                let v = VertexId(i as u32);
                if left.vertex(v).name != right.vertex(v).name {
                    return Err(v);
                }
                let vals: Vec<f64> = (0..metrics.len())
                    .map(|m| {
                        let a = lkeys[m].map_or(0.0, |k| left.metric_f64(v, k));
                        let b = rkeys[m].map_or(0.0, |k| right.metric_f64(v, k));
                        a - scale * b
                    })
                    .collect();
                rows.push((vals, left.vstr(v, keys::DEBUG_INFO)));
            }
            Ok(rows)
        });

    let mut out = Pag::with_capacity(
        left.view(),
        format!("diff({},{})", left.name(), right.name()),
        left.num_vertices(),
        left.num_edges(),
    );
    out.set_num_procs(left.num_procs().max(right.num_procs()));
    let okeys: Vec<KeyId> = metrics.iter().map(|m| out.intern_key(m)).collect();
    let mut idx = 0u32;
    for shard in shards {
        let rows = shard.map_err(|vertex| DiffError::SkeletonMismatch { vertex })?;
        for (vals, dbg) in rows {
            let lv = left.vertex(VertexId(idx));
            idx += 1;
            let nv = out.add_vertex(lv.label, lv.name.clone());
            if let Some(d) = dbg {
                out.set_vstr(nv, keys::DEBUG_INFO, d);
            }
            for (m, &x) in vals.iter().enumerate() {
                out.set_metric(nv, okeys[m], x);
            }
        }
    }
    for e in left.edge_ids() {
        let ed = left.edge(e);
        out.add_edge(ed.src, ed.dst, ed.label);
    }
    if let Some(r) = left.root() {
        out.set_root(r);
    }
    Ok(out)
}

/// Parallel plain difference `left - right` (scale 1.0).
pub fn graph_difference_parallel(
    left: &Pag,
    right: &Pag,
    metrics: &[&str],
    workers: usize,
) -> Result<Pag, DiffError> {
    graph_difference_scaled_parallel(left, right, metrics, 1.0, workers)
}

/// Convenience: the vertices of a difference graph sorted by a metric,
/// hottest first. Ties are broken by vertex id for determinism.
pub fn hottest_differences(diff: &Pag, metric: &str, n: usize) -> Vec<(VertexId, f64)> {
    let key = diff.key_id(metric);
    let mut v: Vec<(VertexId, f64)> = diff
        .vertex_ids()
        .map(|id| {
            let x = key.and_then(|k| diff.metric(id, k)).unwrap_or(0.0);
            (id, x)
        })
        .collect();
    // NaN differences (degraded or corrupted metrics) sort last instead
    // of panicking; ids still break ties for determinism.
    v.sort_by(|a, b| pag::desc_nan_last(a.1, b.1).then(a.0.cmp(&b.0)));
    v.truncate(n);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use pag::{EdgeLabel, VertexLabel, ViewKind};

    fn run(name: &str, times: &[f64]) -> Pag {
        let mut g = Pag::new(ViewKind::TopDown, name);
        for (i, &t) in times.iter().enumerate() {
            let v = g.add_vertex(VertexLabel::Compute, format!("n{i}").as_str());
            g.set_vprop(v, keys::TIME, t);
        }
        for i in 1..times.len() as u32 {
            g.add_edge(VertexId(0), VertexId(i), EdgeLabel::IntraProc);
        }
        g.set_root(VertexId(0));
        g
    }

    #[test]
    fn positional_difference() {
        let a = run("a", &[10.0, 5.0, 1.0]);
        let b = run("b", &[9.0, 1.0, 1.0]);
        let d = graph_difference(&a, &b, &[keys::TIME]).unwrap();
        assert_eq!(d.num_vertices(), 3);
        assert_eq!(d.num_edges(), 2);
        assert_eq!(d.vertex_time(VertexId(0)), 1.0);
        assert_eq!(d.vertex_time(VertexId(1)), 4.0);
        assert_eq!(d.vertex_time(VertexId(2)), 0.0);
        assert_eq!(d.root(), Some(VertexId(0)));
    }

    #[test]
    fn non_hotspot_becomes_hottest_difference() {
        // Vertex 0 is the hotspot in both runs, but vertex 1 grows the most
        // — the paper's MPI_Reduce example (Fig. 7).
        let small = run("small", &[10.0, 1.0, 2.0]);
        let large = run("large", &[11.0, 7.0, 2.5]);
        let d = graph_difference(&large, &small, &[keys::TIME]).unwrap();
        let hot = hottest_differences(&d, keys::TIME, 1);
        assert_eq!(hot[0].0, VertexId(1));
        assert!((hot[0].1 - 6.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_difference_models_ideal_scaling() {
        let small = run("p4", &[8.0, 4.0]);
        let large = run("p16", &[2.0, 3.9]);
        // Under perfect strong scaling 4→16 procs, time shrinks 4×:
        // expected = small/4. Loss = large - small/4.
        let d = graph_difference_scaled(&large, &small, &[keys::TIME], 0.25).unwrap();
        assert!((d.vertex_time(VertexId(0)) - 0.0).abs() < 1e-12);
        assert!((d.vertex_time(VertexId(1)) - 2.9).abs() < 1e-12);
    }

    #[test]
    fn mismatched_counts_rejected() {
        let a = run("a", &[1.0, 2.0]);
        let b = run("b", &[1.0]);
        assert_eq!(
            graph_difference(&a, &b, &[keys::TIME]).unwrap_err(),
            DiffError::VertexCountMismatch { left: 2, right: 1 }
        );
    }

    #[test]
    fn mismatched_names_rejected() {
        let a = run("a", &[1.0, 2.0]);
        let mut b = Pag::new(ViewKind::TopDown, "b");
        b.add_vertex(VertexLabel::Compute, "n0");
        b.add_vertex(VertexLabel::Compute, "DIFFERENT");
        let err = graph_difference(&a, &b, &[keys::TIME]).unwrap_err();
        assert_eq!(
            err,
            DiffError::SkeletonMismatch {
                vertex: VertexId(1)
            }
        );
    }

    #[test]
    fn missing_metric_treated_as_zero() {
        let mut a = run("a", &[1.0]);
        let b = run("b", &[3.0]);
        a.remove_vprop(VertexId(0), keys::TIME);
        let d = graph_difference(&a, &b, &[keys::TIME]).unwrap();
        assert_eq!(d.vertex_time(VertexId(0)), -3.0);
    }

    #[test]
    fn parallel_diff_is_byte_identical_to_serial() {
        let a = run("a", &[10.0, 5.0, 1.0, 7.5, 0.25, 3.0, 9.0]);
        let b = run("b", &[9.0, 1.0, 1.0, 2.5, 0.5, 4.0, 8.0]);
        let serial = graph_difference_scaled(&a, &b, &[keys::TIME], 0.5).unwrap();
        for workers in [1, 2, 3, 8] {
            let par =
                graph_difference_scaled_parallel(&a, &b, &[keys::TIME], 0.5, workers).unwrap();
            assert_eq!(
                pag::serialize::encode(&par),
                pag::serialize::encode(&serial),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn parallel_diff_reports_the_same_first_mismatch() {
        let a = run("a", &[1.0, 2.0, 3.0, 4.0]);
        let mut b = Pag::new(ViewKind::TopDown, "b");
        for name in ["n0", "X", "n2", "Y"] {
            b.add_vertex(VertexLabel::Compute, name);
        }
        let serial = graph_difference(&a, &b, &[keys::TIME]).unwrap_err();
        assert_eq!(
            serial,
            DiffError::SkeletonMismatch {
                vertex: VertexId(1)
            }
        );
        for workers in [1, 2, 8] {
            assert_eq!(
                graph_difference_parallel(&a, &b, &[keys::TIME], workers).unwrap_err(),
                serial,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn parallel_diff_empty_graphs() {
        let a = Pag::new(ViewKind::TopDown, "a");
        let b = Pag::new(ViewKind::TopDown, "b");
        let d = graph_difference_parallel(&a, &b, &[keys::TIME], 4).unwrap();
        assert_eq!(d.num_vertices(), 0);
    }

    #[test]
    fn hottest_differences_survive_nan() {
        let mut d = run("d", &[5.0, 2.0, 8.0]);
        d.set_vprop(VertexId(1), keys::TIME, f64::NAN);
        let hot = hottest_differences(&d, keys::TIME, 10);
        assert_eq!(hot.len(), 3);
        assert_eq!(hot[0].0, VertexId(2));
        assert_eq!(hot[1].0, VertexId(0));
        assert!(hot[2].1.is_nan(), "NaN sorts last, not first");
        // Deterministic under repetition.
        assert_eq!(
            hottest_differences(&d, keys::TIME, 10)
                .iter()
                .map(|x| x.0)
                .collect::<Vec<_>>(),
            hot.iter().map(|x| x.0).collect::<Vec<_>>()
        );
    }
}
