//! Scoped-thread sharding for parallel graph algorithms.
//!
//! The workspace's determinism contract (established by the simulator's
//! worker pool) is `parallel(N workers) == parallel(1 worker)`: shards are
//! claimed from an atomic counter by plain scoped threads, but results are
//! reassembled **in shard order**, so the merged output is bit-identical
//! for any worker count. Algorithms that shard their work through
//! [`map_shards`] inherit that contract for free.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Default worker count: the `PERFLOW_WORKERS` environment variable when
/// set (minimum 1), otherwise the machine's available parallelism.
pub fn default_workers() -> usize {
    match std::env::var("PERFLOW_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(w) => w.max(1),
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Map `f` over shard indices `0..n` using up to `workers` scoped threads
/// and return the results **in shard order** regardless of which worker
/// computed what. Shards are claimed dynamically (atomic counter), so
/// imbalanced shard costs still spread across workers.
pub fn map_shards<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1).min(n.max(1));
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let f = &f;
                let next = &next;
                s.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        mine.push((i, f(i)));
                    }
                    mine
                })
            })
            .collect();
        for h in handles {
            for (i, v) in h.join().expect("graphalgo worker panicked") {
                slots[i] = Some(v);
            }
        }
    });
    slots
        .into_iter()
        .map(|o| o.expect("every shard index is claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_shard_order_for_any_worker_count() {
        let serial = map_shards(37, 1, |i| i * i);
        for workers in [2, 3, 8, 64] {
            assert_eq!(map_shards(37, workers, |i| i * i), serial);
        }
    }

    #[test]
    fn zero_shards_is_empty() {
        assert!(map_shards(0, 4, |i| i).is_empty());
    }

    #[test]
    fn more_workers_than_shards_is_fine() {
        assert_eq!(map_shards(2, 16, |i| i + 1), vec![1, 2]);
    }
}
