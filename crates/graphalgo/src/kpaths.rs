//! Top-k heaviest paths through a DAG.
//!
//! Critical-path tools report not just *the* critical path but the next
//! few near-critical ones (optimizing only the single heaviest chain
//! moves the bottleneck, it rarely removes it). This is the standard
//! k-best dynamic program: each vertex keeps its k best incoming path
//! weights with back-pointers.

use pag::{EdgeId, Pag, VertexId};

use crate::longest_path::CriticalPath;
use crate::traverse::topo_sort_filtered;

/// Compute the `k` heaviest vertex-weighted paths in the DAG formed by
/// edges accepted by `follow`. Paths are returned heaviest-first; fewer
/// than `k` are returned when the graph has fewer distinct maximal
/// paths. Returns `None` for cyclic or empty graphs.
pub fn k_heaviest_paths(
    g: &Pag,
    k: usize,
    follow: impl Fn(EdgeId) -> bool + Copy,
    vertex_weight: impl Fn(VertexId) -> f64,
) -> Option<Vec<CriticalPath>> {
    if g.num_vertices() == 0 || k == 0 {
        return None;
    }
    let order = topo_sort_filtered(g, follow).ok()?;
    let n = g.num_vertices();
    // Per vertex: up to k entries (weight, Option<(pred_vertex, pred_slot, edge)>).
    type Entry = (f64, Option<(u32, u8, EdgeId)>);
    let mut best: Vec<Vec<Entry>> = vec![Vec::new(); n];
    for &v in &order {
        let wv = vertex_weight(v);
        // Maximal paths only: a chain may start only at a source (no
        // accepted in-edges) — otherwise every suffix of the critical
        // path would crowd out genuinely distinct alternatives.
        let is_source = !g.in_edges(v).iter().any(|&e| follow(e));
        let mut cands: Vec<Entry> = if is_source {
            vec![(wv, None)]
        } else {
            Vec::new()
        };
        for &e in g.in_edges(v) {
            if !follow(e) {
                continue;
            }
            let u = g.edge(e).src;
            for (slot, &(du, _)) in best[u.index()].iter().enumerate() {
                cands.push((du + wv, Some((u.0, slot as u8, e))));
            }
        }
        cands.sort_by(|a, b| b.0.total_cmp(&a.0));
        cands.truncate(k);
        best[v.index()] = cands;
    }
    // Collect the global k best path *endpoints* (avoiding returning k
    // prefixes of the same chain: an endpoint must not have an accepted
    // out-edge, unless the graph has no sinks at all).
    let mut endpoints: Vec<(f64, u32, u8)> = Vec::new();
    for v in 0..n as u32 {
        let vid = VertexId(v);
        let is_sink = !g.out_edges(vid).iter().any(|&e| follow(e));
        if !is_sink {
            continue;
        }
        for (slot, &(d, _)) in best[vid.index()].iter().enumerate() {
            endpoints.push((d, v, slot as u8));
        }
    }
    if endpoints.is_empty() {
        // Degenerate: no sinks (shouldn't happen in a DAG with vertices).
        return None;
    }
    endpoints.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    endpoints.truncate(k);

    let mut out = Vec::with_capacity(endpoints.len());
    for (weight, v, slot) in endpoints {
        let mut vertices = Vec::new();
        let mut edges = Vec::new();
        let mut cur = (v, slot);
        loop {
            vertices.push(VertexId(cur.0));
            match best[cur.0 as usize][cur.1 as usize].1 {
                Some((pu, pslot, e)) => {
                    edges.push(e);
                    cur = (pu, pslot);
                }
                None => break,
            }
        }
        vertices.reverse();
        edges.reverse();
        out.push(CriticalPath {
            vertices,
            edges,
            weight,
        });
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pag::{keys, EdgeLabel, VertexLabel, ViewKind};

    fn weighted(weights: &[f64], edges: &[(u32, u32)]) -> Pag {
        let mut g = Pag::new(ViewKind::Parallel, "kp");
        for (i, &w) in weights.iter().enumerate() {
            let v = g.add_vertex(VertexLabel::Compute, format!("n{i}").as_str());
            g.set_vprop(v, keys::TIME, w);
        }
        for &(a, b) in edges {
            g.add_edge(VertexId(a), VertexId(b), EdgeLabel::IntraProc);
        }
        g
    }

    #[test]
    fn top1_matches_critical_path() {
        let g = weighted(&[1.0, 2.0, 10.0, 1.0], &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let w = |v: VertexId| g.vertex_time(v);
        let k1 = k_heaviest_paths(&g, 1, |_| true, w).unwrap();
        let cp = crate::critical_path(&g, |_| true, w).unwrap();
        assert_eq!(k1[0].vertices, cp.vertices);
        assert_eq!(k1[0].weight, cp.weight);
    }

    #[test]
    fn second_path_is_the_other_branch() {
        let g = weighted(&[1.0, 2.0, 10.0, 1.0], &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let w = |v: VertexId| g.vertex_time(v);
        let paths = k_heaviest_paths(&g, 2, |_| true, w).unwrap();
        assert_eq!(paths.len(), 2);
        assert!((paths[0].weight - 12.0).abs() < 1e-12); // 0→2→3
        assert!((paths[1].weight - 4.0).abs() < 1e-12); // 0→1→3
        assert_eq!(
            paths[1].vertices,
            vec![VertexId(0), VertexId(1), VertexId(3)]
        );
        // Weights are non-increasing.
        assert!(paths[0].weight >= paths[1].weight);
    }

    #[test]
    fn fewer_paths_than_k() {
        let g = weighted(&[5.0, 3.0], &[(0, 1)]);
        let paths = k_heaviest_paths(&g, 10, |_| true, |v| g.vertex_time(v)).unwrap();
        // One maximal (source→sink) path only.
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].weight, 8.0);
        assert_eq!(paths[0].vertices, vec![VertexId(0), VertexId(1)]);
    }

    #[test]
    fn multiple_sinks_compete() {
        // 0 → 1 (heavy sink), 0 → 2 (light sink)
        let g = weighted(&[1.0, 20.0, 2.0], &[(0, 1), (0, 2)]);
        let paths = k_heaviest_paths(&g, 2, |_| true, |v| g.vertex_time(v)).unwrap();
        assert_eq!(paths[0].weight, 21.0);
        assert_eq!(paths[1].weight, 3.0);
    }

    #[test]
    fn cyclic_returns_none() {
        let mut g = weighted(&[1.0, 1.0], &[(0, 1)]);
        g.add_edge(VertexId(1), VertexId(0), EdgeLabel::IntraProc);
        assert!(k_heaviest_paths(&g, 3, |_| true, |v| g.vertex_time(v)).is_none());
    }

    #[test]
    fn k_zero_and_empty_graph() {
        let g = weighted(&[1.0], &[]);
        assert!(k_heaviest_paths(&g, 0, |_| true, |v| g.vertex_time(v)).is_none());
        let e = Pag::new(ViewKind::Parallel, "e");
        assert!(k_heaviest_paths(&e, 3, |_| true, |_| 1.0).is_none());
    }
}
