//! Graph coarsening: collapse groups of vertices into super-vertices.
//!
//! The parallel view replicates every snippet once per process/thread;
//! for visualization and coarse-grained analysis it is often useful to
//! collapse all replicas of a snippet back into one vertex while keeping
//! the aggregated cross-group edges — the graph-operation flavour of the
//! low-level API ("graph operations can … even transform the PAG",
//! §4.3.1).

use std::collections::HashMap;

use pag::{keys, mkeys, EdgeLabel, Pag, VertexId};

/// Collapse vertices into super-vertices according to `group_of` (same
/// key → same super-vertex; `None` drops the vertex). Numeric `time`,
/// `wait-time` and `count` properties are summed; intra-group edges
/// become self-loops only if `keep_self_loops`; parallel inter-group
/// edges are merged with wait/count accumulation.
pub fn coarsen(
    g: &Pag,
    group_of: impl Fn(VertexId) -> Option<i64>,
    keep_self_loops: bool,
) -> (Pag, HashMap<i64, VertexId>) {
    let mut out = Pag::new(g.view(), format!("{}:coarse", g.name()));
    out.set_num_procs(g.num_procs());
    out.set_threads_per_proc(g.threads_per_proc());
    let mut group_vertex: HashMap<i64, VertexId> = HashMap::new();

    // Pass 1: create super-vertices and accumulate vertex metrics.
    for v in g.vertex_ids() {
        let Some(key) = group_of(v) else { continue };
        let data = g.vertex(v);
        let sv = *group_vertex
            .entry(key)
            .or_insert_with(|| out.add_vertex(data.label, data.name.clone()));
        for metric in [mkeys::TIME, mkeys::WAIT_TIME, mkeys::SELF_TIME] {
            let x = g.metric_f64(v, metric);
            if x != 0.0 {
                out.add_metric(sv, metric, x);
            }
        }
        if let Some(c) = g.metric_i64(v, mkeys::COUNT) {
            out.add_metric_i64(sv, mkeys::COUNT, c);
        }
        if let Some(d) = g.vstr(v, keys::DEBUG_INFO) {
            if out.vstr(sv, keys::DEBUG_INFO).is_none() {
                out.set_vstr(sv, keys::DEBUG_INFO, d);
            }
        }
    }

    // Pass 2: merge edges between super-vertices.
    struct EAgg {
        label: EdgeLabel,
        wait: f64,
        count: i64,
    }
    let mut eaggs: HashMap<(VertexId, VertexId, u8), EAgg> = HashMap::new();
    let label_tag = |l: EdgeLabel| -> u8 {
        match l {
            EdgeLabel::IntraProc => 0,
            EdgeLabel::InterProc => 1,
            EdgeLabel::InterThread => 2,
            EdgeLabel::InterProcess(_) => 3,
        }
    };
    for e in g.edge_ids() {
        let ed = g.edge(e);
        let (Some(ks), Some(kd)) = (group_of(ed.src), group_of(ed.dst)) else {
            continue;
        };
        let (Some(&sv), Some(&dv)) = (group_vertex.get(&ks), group_vertex.get(&kd)) else {
            continue;
        };
        if sv == dv && !keep_self_loops {
            continue;
        }
        let agg = eaggs.entry((sv, dv, label_tag(ed.label))).or_insert(EAgg {
            label: ed.label,
            wait: 0.0,
            count: 0,
        });
        agg.wait += g.emetric_f64(e, mkeys::WAIT_TIME);
        agg.count += g.emetric_i64(e, mkeys::COUNT).unwrap_or(1);
    }
    let mut pairs: Vec<((VertexId, VertexId, u8), EAgg)> = eaggs.into_iter().collect();
    pairs.sort_by_key(|&((a, b, t), _)| (a, b, t));
    for ((sv, dv, _), agg) in pairs {
        let e = out.add_edge(sv, dv, agg.label);
        out.set_emetric(e, mkeys::WAIT_TIME, agg.wait);
        out.set_emetric_i64(e, mkeys::COUNT, agg.count);
    }
    (out, group_vertex)
}

/// Collapse a parallel view back onto its top-down skeleton: group by the
/// `topdown-vertex` property.
pub fn coarsen_parallel_by_topdown(g: &Pag) -> (Pag, HashMap<i64, VertexId>) {
    coarsen(g, |v| g.metric_i64(v, mkeys::TOPDOWN_VERTEX), false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pag::{CommKind, VertexLabel, ViewKind};

    /// Two flows of 2 vertices each (A,B) × ranks {0,1} + a cross edge.
    fn mini_parallel() -> Pag {
        let mut g = Pag::new(ViewKind::Parallel, "pv");
        let mut ids = Vec::new();
        for rank in 0..2i64 {
            for (td, name, t) in [(0i64, "A", 1.0), (1i64, "B", 2.0)] {
                let v = g.add_vertex(VertexLabel::Compute, name);
                g.set_vprop(v, keys::TOPDOWN_VERTEX, td);
                g.set_vprop(v, keys::PROC, rank);
                g.set_vprop(v, keys::TIME, t * (rank + 1) as f64);
                ids.push(v);
            }
        }
        // Flow edges A→B per rank; cross edge B@0 → A@1.
        g.add_edge(ids[0], ids[1], EdgeLabel::IntraProc);
        g.add_edge(ids[2], ids[3], EdgeLabel::IntraProc);
        let ce = g.add_edge(ids[1], ids[2], EdgeLabel::InterProcess(CommKind::P2pAsync));
        g.set_eprop(ce, keys::WAIT_TIME, 5.0);
        g
    }

    #[test]
    fn collapses_replicas_and_sums_metrics() {
        let g = mini_parallel();
        let (c, groups) = coarsen_parallel_by_topdown(&g);
        assert_eq!(c.num_vertices(), 2);
        let a = groups[&0];
        let b = groups[&1];
        assert_eq!(c.vertex_name(a), "A");
        assert_eq!(c.vertex_time(a), 1.0 + 2.0); // ranks 0+1
        assert_eq!(c.vertex_time(b), 2.0 + 4.0);
    }

    #[test]
    fn merges_parallel_edges_and_drops_self_loops() {
        let g = mini_parallel();
        let (c, groups) = coarsen_parallel_by_topdown(&g);
        // Two intra A→B edges merge into one; B→A cross edge kept.
        assert_eq!(c.num_edges(), 2);
        let a = groups[&0];
        let b = groups[&1];
        let ab = c
            .out_edges(a)
            .iter()
            .copied()
            .find(|&e| c.edge(e).dst == b)
            .unwrap();
        assert_eq!(c.emetric_i64(ab, mkeys::COUNT), Some(2));
        let ba = c
            .out_edges(b)
            .iter()
            .copied()
            .find(|&e| c.edge(e).dst == a)
            .unwrap();
        assert_eq!(c.emetric_f64(ba, mkeys::WAIT_TIME), 5.0);
    }

    #[test]
    fn self_loops_kept_when_requested() {
        let mut g = mini_parallel();
        // Add an edge between two replicas of the same snippet.
        let a0 = VertexId(0);
        let a1 = VertexId(2);
        g.add_edge(a0, a1, EdgeLabel::InterThread);
        let (no_loops, _) = coarsen_parallel_by_topdown(&g);
        let (with_loops, groups) = coarsen(&g, |v| g.metric_i64(v, mkeys::TOPDOWN_VERTEX), true);
        assert_eq!(no_loops.num_edges() + 1, with_loops.num_edges());
        let a = groups[&0];
        assert!(with_loops
            .out_edges(a)
            .iter()
            .any(|&e| with_loops.edge(e).dst == a));
    }

    #[test]
    fn dropping_groups_drops_their_edges() {
        let g = mini_parallel();
        // Keep only group 0.
        let (c, _) = coarsen(
            &g,
            |v| g.metric_i64(v, mkeys::TOPDOWN_VERTEX).filter(|&t| t == 0),
            false,
        );
        assert_eq!(c.num_vertices(), 1);
        assert_eq!(c.num_edges(), 0);
    }
}
