//! Louvain community detection.
//!
//! Listed among PerFlow's graph-algorithm APIs (§4.3.1: "breadth-first
//! search, subgraph matching, and community detection, etc."). Communities
//! on a parallel view group flows that interact tightly (e.g. the process
//! grid neighborhoods of a stencil code). It is also the algorithm the
//! Vite case study's *target application* implements, so the workload model
//! and the analysis share semantics.
//!
//! The implementation is the classic two-phase Louvain: greedy local moving
//! to maximize modularity, then graph aggregation, repeated until the
//! modularity gain falls below a threshold. Directed PAG edges are
//! projected onto an undirected weighted graph first.

use pag::{EdgeId, Pag, VertexId};

/// Result of community detection.
#[derive(Debug, Clone)]
pub struct Communities {
    /// `assignment[v]` = community id of vertex `v` (ids are dense, 0-based).
    pub assignment: Vec<u32>,
    /// Number of communities.
    pub count: usize,
    /// Final modularity of the partition.
    pub modularity: f64,
}

impl Communities {
    /// Vertices of a given community.
    pub fn members(&self, community: u32) -> Vec<VertexId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == community)
            .map(|(i, _)| VertexId(i as u32))
            .collect()
    }
}

/// Undirected weighted adjacency built from a PAG.
struct WGraph {
    /// adj[v] = (neighbor, weight); parallel edges merged.
    adj: Vec<Vec<(usize, f64)>>,
    /// self-loop weight per vertex.
    self_loops: Vec<f64>,
    total_weight: f64, // m = sum of all edge weights (undirected)
}

impl WGraph {
    fn from_pag(g: &Pag, edge_weight: impl Fn(EdgeId) -> f64) -> Self {
        let n = g.num_vertices();
        let mut maps: Vec<std::collections::HashMap<usize, f64>> =
            vec![std::collections::HashMap::new(); n];
        let mut self_loops = vec![0.0; n];
        let mut total = 0.0;
        for e in g.edge_ids() {
            let ed = g.edge(e);
            let w = edge_weight(e);
            if w <= 0.0 {
                continue;
            }
            total += w;
            let (a, b) = (ed.src.index(), ed.dst.index());
            if a == b {
                self_loops[a] += w;
            } else {
                *maps[a].entry(b).or_insert(0.0) += w;
                *maps[b].entry(a).or_insert(0.0) += w;
            }
        }
        let adj = maps
            .into_iter()
            .map(|m| {
                let mut v: Vec<(usize, f64)> = m.into_iter().collect();
                v.sort_by_key(|&(n, _)| n);
                v
            })
            .collect();
        WGraph {
            adj,
            self_loops,
            total_weight: total,
        }
    }

    fn n(&self) -> usize {
        self.adj.len()
    }

    fn weighted_degree(&self, v: usize) -> f64 {
        self.adj[v].iter().map(|&(_, w)| w).sum::<f64>() + 2.0 * self.self_loops[v]
    }

    /// Connected components of the projection; component ids are assigned
    /// in first-seen (ascending vertex) order, so they are deterministic.
    fn components(&self) -> (Vec<usize>, usize) {
        let n = self.n();
        let mut comp = vec![usize::MAX; n];
        let mut count = 0;
        let mut stack = Vec::new();
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            comp[start] = count;
            stack.push(start);
            while let Some(v) = stack.pop() {
                for &(w, _) in &self.adj[v] {
                    if comp[w] == usize::MAX {
                        comp[w] = count;
                        stack.push(w);
                    }
                }
            }
            count += 1;
        }
        (comp, count)
    }

    /// Sub-graph induced by `verts` (which must be closed under adjacency,
    /// i.e. a union of components); local ids follow the order of `verts`.
    fn induced(&self, verts: &[usize]) -> WGraph {
        let mut local = std::collections::HashMap::new();
        for (i, &v) in verts.iter().enumerate() {
            local.insert(v, i);
        }
        let mut self_loops = Vec::with_capacity(verts.len());
        let mut adj = Vec::with_capacity(verts.len());
        let mut total = 0.0;
        for &v in verts {
            self_loops.push(self.self_loops[v]);
            total += self.self_loops[v];
            let row: Vec<(usize, f64)> =
                self.adj[v].iter().map(|&(w, wt)| (local[&w], wt)).collect();
            total += 0.5 * row.iter().map(|&(_, wt)| wt).sum::<f64>();
            adj.push(row);
        }
        WGraph {
            adj,
            self_loops,
            total_weight: total,
        }
    }
}

/// Run Louvain over the PAG's undirected projection with unit edge weights.
pub fn louvain(g: &Pag) -> Communities {
    louvain_weighted(g, |_| 1.0)
}

/// Run Louvain with a caller-supplied edge weight (e.g. communication
/// bytes or wait time).
pub fn louvain_weighted(g: &Pag, edge_weight: impl Fn(EdgeId) -> f64) -> Communities {
    let base = WGraph::from_pag(g, edge_weight);
    let n = base.n();
    if n == 0 {
        return Communities {
            assignment: Vec::new(),
            count: 0,
            modularity: 0.0,
        };
    }
    if base.total_weight == 0.0 {
        // No edges: every vertex is its own community.
        return Communities {
            assignment: (0..n as u32).collect(),
            count: n,
            modularity: 0.0,
        };
    }

    let membership = cluster(base);
    let relabel = compact(&membership);
    let assignment: Vec<u32> = membership.iter().map(|&m| relabel[&m] as u32).collect();
    let count = relabel.values().max().map(|&m| m + 1).unwrap_or(0);
    let q = modularity_of(&WGraph::from_pag(g, |_| 1.0), &membership);
    Communities {
        assignment,
        count,
        modularity: q,
    }
}

/// The multi-level Louvain loop on a prepared weighted graph; returns the
/// per-vertex membership (ids sparse, compacted by callers).
fn cluster(base: WGraph) -> Vec<usize> {
    let n = base.n();
    let mut membership: Vec<usize> = (0..n).collect();
    let mut level_graph = base;
    loop {
        let (local, improved) = one_level(&level_graph);
        // Re-map original membership through this level's assignment.
        let relabel = compact(&local);
        for m in membership.iter_mut() {
            *m = relabel[&local[*m]];
        }
        if !improved {
            break;
        }
        level_graph = aggregate(&level_graph, &local, &relabel);
        if level_graph.n() <= 1 {
            break;
        }
    }
    membership
}

/// Parallel Louvain over the unit-weight projection: each connected
/// component is clustered independently on a worker thread and the
/// per-component partitions are relabelled into a dense global id space
/// **in component order**, so the result is identical for any worker
/// count (`louvain_parallel(g, n) == louvain_parallel(g, 1)`).
///
/// Because each component optimizes modularity against its own local edge
/// mass rather than the whole graph's, the partition may differ from
/// [`louvain`] on multi-component graphs; on connected graphs the two
/// agree exactly. The reported modularity is always computed globally.
pub fn louvain_parallel(g: &Pag, workers: usize) -> Communities {
    let base = WGraph::from_pag(g, |_| 1.0);
    let n = base.n();
    if n == 0 {
        return Communities {
            assignment: Vec::new(),
            count: 0,
            modularity: 0.0,
        };
    }
    if base.total_weight == 0.0 {
        return Communities {
            assignment: (0..n as u32).collect(),
            count: n,
            modularity: 0.0,
        };
    }

    let (comp, ncomp) = base.components();
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); ncomp];
    for v in 0..n {
        members[comp[v]].push(v);
    }
    let locals: Vec<Vec<usize>> =
        crate::par::map_shards(ncomp, workers, |c| cluster(base.induced(&members[c])));

    // Merge: compact each component's community ids and shift them past the
    // communities of every earlier component.
    let mut membership = vec![0usize; n];
    let mut offset = 0;
    for c in 0..ncomp {
        let relabel = compact(&locals[c]);
        for (i, &v) in members[c].iter().enumerate() {
            membership[v] = offset + relabel[&locals[c][i]];
        }
        offset += relabel.len();
    }
    let q = modularity_of(&base, &membership);
    Communities {
        assignment: membership.iter().map(|&m| m as u32).collect(),
        count: offset,
        modularity: q,
    }
}

/// One local-moving phase; returns per-vertex community and whether any
/// move improved modularity.
fn one_level(g: &WGraph) -> (Vec<usize>, bool) {
    let n = g.n();
    let m2 = 2.0 * g.total_weight;
    let mut community: Vec<usize> = (0..n).collect();
    let mut comm_tot: Vec<f64> = (0..n).map(|v| g.weighted_degree(v)).collect();
    let mut improved_any = false;
    let mut improved = true;
    let mut rounds = 0;
    while improved && rounds < 32 {
        improved = false;
        rounds += 1;
        for v in 0..n {
            let cv = community[v];
            let kv = g.weighted_degree(v);
            // Weights from v to each neighboring community. A BTreeMap so
            // the candidate scan below runs in ascending community-id
            // order: exact gain ties deterministically go to the lowest
            // id, which keeps `cluster` a pure function of the graph (the
            // parallel identity contract depends on this).
            let mut to_comm: std::collections::BTreeMap<usize, f64> =
                std::collections::BTreeMap::new();
            for &(w, wt) in &g.adj[v] {
                *to_comm.entry(community[w]).or_insert(0.0) += wt;
            }
            // Remove v from its community.
            comm_tot[cv] -= kv;
            let base_links = to_comm.get(&cv).copied().unwrap_or(0.0);
            let mut best_c = cv;
            let mut best_gain = base_links - comm_tot[cv] * kv / m2;
            for (&c, &links) in &to_comm {
                if c == cv {
                    continue;
                }
                let gain = links - comm_tot[c] * kv / m2;
                if gain > best_gain + 1e-12 {
                    best_gain = gain;
                    best_c = c;
                }
            }
            community[v] = best_c;
            comm_tot[best_c] += kv;
            if best_c != cv {
                improved = true;
                improved_any = true;
            }
        }
    }
    (community, improved_any)
}

/// Map sparse community ids to dense 0-based ids.
fn compact(assignment: &[usize]) -> std::collections::HashMap<usize, usize> {
    let mut map = std::collections::HashMap::new();
    for &c in assignment {
        let next = map.len();
        map.entry(c).or_insert(next);
    }
    map
}

/// Build the aggregated super-graph of communities.
fn aggregate(
    g: &WGraph,
    community: &[usize],
    relabel: &std::collections::HashMap<usize, usize>,
) -> WGraph {
    let k = relabel.len();
    let mut maps: Vec<std::collections::HashMap<usize, f64>> =
        vec![std::collections::HashMap::new(); k];
    let mut self_loops = vec![0.0; k];
    let mut total = 0.0;
    for v in 0..g.n() {
        let cv = relabel[&community[v]];
        self_loops[cv] += g.self_loops[v];
        total += g.self_loops[v];
        for &(w, wt) in &g.adj[v] {
            if w < v {
                continue; // count undirected edges once
            }
            total += wt;
            let cw = relabel[&community[w]];
            if cv == cw {
                self_loops[cv] += wt;
            } else {
                *maps[cv].entry(cw).or_insert(0.0) += wt;
                *maps[cw].entry(cv).or_insert(0.0) += wt;
            }
        }
    }
    let adj = maps
        .into_iter()
        .map(|m| {
            let mut v: Vec<(usize, f64)> = m.into_iter().collect();
            v.sort_by_key(|&(n, _)| n);
            v
        })
        .collect();
    WGraph {
        adj,
        self_loops,
        total_weight: total,
    }
}

/// Modularity Q of a partition on the unit-weight projection.
fn modularity_of(g: &WGraph, membership: &[usize]) -> f64 {
    let m2 = 2.0 * g.total_weight;
    if m2 == 0.0 {
        return 0.0;
    }
    let ncomm = membership.iter().max().map(|&m| m + 1).unwrap_or(0);
    let mut internal = vec![0.0; ncomm];
    let mut degree = vec![0.0; ncomm];
    for v in 0..g.n() {
        let cv = membership[v];
        degree[cv] += g.weighted_degree(v);
        internal[cv] += 2.0 * g.self_loops[v];
        for &(w, wt) in &g.adj[v] {
            if membership[w] == cv {
                internal[cv] += wt; // counted from both sides => ×1 here
            }
        }
    }
    (0..ncomm)
        .map(|c| internal[c] / m2 - (degree[c] / m2) * (degree[c] / m2))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pag::{EdgeLabel, VertexLabel, ViewKind};

    /// Two dense 4-cliques joined by a single edge.
    fn two_cliques() -> Pag {
        let mut g = Pag::new(ViewKind::Parallel, "cliques");
        for i in 0..8 {
            g.add_vertex(VertexLabel::Compute, format!("n{i}").as_str());
        }
        for base in [0u32, 4u32] {
            for i in base..base + 4 {
                for j in (i + 1)..base + 4 {
                    g.add_edge(VertexId(i), VertexId(j), EdgeLabel::IntraProc);
                }
            }
        }
        g.add_edge(VertexId(3), VertexId(4), EdgeLabel::InterThread);
        g
    }

    #[test]
    fn separates_cliques() {
        let g = two_cliques();
        let c = louvain(&g);
        assert_eq!(c.count, 2);
        for i in 0..4usize {
            assert_eq!(c.assignment[i], c.assignment[0]);
        }
        for i in 4..8usize {
            assert_eq!(c.assignment[i], c.assignment[4]);
        }
        assert_ne!(c.assignment[0], c.assignment[4]);
        assert!(c.modularity > 0.3, "modularity was {}", c.modularity);
    }

    #[test]
    fn members_listing() {
        let g = two_cliques();
        let c = louvain(&g);
        let m0 = c.members(c.assignment[0]);
        assert_eq!(m0.len(), 4);
        assert!(m0.contains(&VertexId(0)));
    }

    #[test]
    fn empty_graph() {
        let g = Pag::new(ViewKind::Parallel, "empty");
        let c = louvain(&g);
        assert_eq!(c.count, 0);
        assert!(c.assignment.is_empty());
    }

    #[test]
    fn edgeless_graph_is_all_singletons() {
        let mut g = Pag::new(ViewKind::Parallel, "iso");
        for i in 0..5 {
            g.add_vertex(VertexLabel::Compute, format!("n{i}").as_str());
        }
        let c = louvain(&g);
        assert_eq!(c.count, 5);
    }

    #[test]
    fn weighted_edges_dominate() {
        // Path 0-1-2-3 with a heavy middle edge: heavy pair ends together.
        let mut g = Pag::new(ViewKind::Parallel, "weights");
        for i in 0..4 {
            g.add_vertex(VertexLabel::Compute, format!("n{i}").as_str());
        }
        let e01 = g.add_edge(VertexId(0), VertexId(1), EdgeLabel::IntraProc);
        let e12 = g.add_edge(VertexId(1), VertexId(2), EdgeLabel::IntraProc);
        let e23 = g.add_edge(VertexId(2), VertexId(3), EdgeLabel::IntraProc);
        let weights = move |e: EdgeId| -> f64 {
            if e == e12 {
                10.0
            } else if e == e01 || e == e23 {
                1.0
            } else {
                0.0
            }
        };
        let c = louvain_weighted(&g, weights);
        assert_eq!(c.assignment[1], c.assignment[2]);
    }

    #[test]
    fn parallel_matches_serial_on_connected_graph() {
        let g = two_cliques();
        let serial = louvain(&g);
        for workers in [1, 2, 4, 9] {
            let par = louvain_parallel(&g, workers);
            assert_eq!(par.assignment, serial.assignment, "workers={workers}");
            assert_eq!(par.count, serial.count);
            assert_eq!(par.modularity, serial.modularity);
        }
    }

    #[test]
    fn parallel_is_identical_for_any_worker_count() {
        // Three disjoint cliques of different sizes: exercises the
        // component sharding and the component-order id merge.
        let mut g = Pag::new(ViewKind::Parallel, "multi");
        let sizes = [4u32, 6, 3];
        let mut base = 0u32;
        for &s in &sizes {
            for i in 0..s {
                g.add_vertex(VertexLabel::Compute, format!("n{}", base + i).as_str());
            }
            for i in base..base + s {
                for j in (i + 1)..base + s {
                    g.add_edge(VertexId(i), VertexId(j), EdgeLabel::IntraProc);
                }
            }
            base += s;
        }
        let one = louvain_parallel(&g, 1);
        assert_eq!(one.count, 3);
        // Component-order merge: community ids ascend with components.
        assert_eq!(one.assignment[0], 0);
        assert_eq!(one.assignment[4], 1);
        assert_eq!(one.assignment[10], 2);
        for workers in [2, 3, 8] {
            let par = louvain_parallel(&g, workers);
            assert_eq!(par.assignment, one.assignment, "workers={workers}");
            assert_eq!(par.count, one.count);
            assert_eq!(par.modularity, one.modularity);
        }
    }

    #[test]
    fn parallel_edge_cases() {
        let empty = Pag::new(ViewKind::Parallel, "empty");
        assert_eq!(louvain_parallel(&empty, 4).count, 0);
        let mut iso = Pag::new(ViewKind::Parallel, "iso");
        for i in 0..5 {
            iso.add_vertex(VertexLabel::Compute, format!("n{i}").as_str());
        }
        let c = louvain_parallel(&iso, 4);
        assert_eq!(c.count, 5);
        assert_eq!(c.assignment, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ring_of_cliques_scales() {
        // 8 cliques of 5 vertices arranged in a ring: Louvain should find
        // roughly one community per clique.
        let mut g = Pag::new(ViewKind::Parallel, "ring");
        let k = 8;
        let s = 5;
        for i in 0..(k * s) {
            g.add_vertex(VertexLabel::Compute, format!("n{i}").as_str());
        }
        for c in 0..k {
            let base = (c * s) as u32;
            for i in base..base + s as u32 {
                for j in (i + 1)..base + s as u32 {
                    g.add_edge(VertexId(i), VertexId(j), EdgeLabel::IntraProc);
                }
            }
            let next = (((c + 1) % k) * s) as u32;
            g.add_edge(VertexId(base), VertexId(next), EdgeLabel::IntraProc);
        }
        let c = louvain(&g);
        assert!(
            c.count >= k / 2 && c.count <= k,
            "found {} communities",
            c.count
        );
        assert!(c.modularity > 0.5);
    }
}
