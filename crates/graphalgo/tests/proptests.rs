//! Property-based tests of the graph algorithms on random DAGs and
//! random general graphs.

use proptest::prelude::*;

use pag::{EdgeLabel, Pag, VertexId, VertexLabel, ViewKind};

/// Random DAG: edges only go from lower to higher vertex index.
#[derive(Debug, Clone)]
struct DagSpec {
    n: usize,
    edges: Vec<(usize, usize)>,
    weights: Vec<f64>,
}

fn arb_dag() -> impl Strategy<Value = DagSpec> {
    (2usize..24).prop_flat_map(|n| {
        let edge = (0..n, 0..n).prop_filter_map("forward edges only", |(a, b)| {
            if a < b {
                Some((a, b))
            } else if b < a {
                Some((b, a))
            } else {
                None
            }
        });
        (
            Just(n),
            prop::collection::vec(edge, 0..n * 2),
            prop::collection::vec(0.1..100.0f64, n),
        )
            .prop_map(|(n, edges, weights)| DagSpec { n, edges, weights })
    })
}

fn build(spec: &DagSpec) -> Pag {
    let mut g = Pag::new(ViewKind::Parallel, "dag");
    for (i, &w) in spec.weights.iter().enumerate() {
        let v = g.add_vertex(VertexLabel::Compute, format!("n{i}").as_str());
        g.set_vprop(v, pag::keys::TIME, w);
    }
    for &(a, b) in &spec.edges {
        g.add_edge(VertexId(a as u32), VertexId(b as u32), EdgeLabel::IntraProc);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Topological sort of a forward-edge DAG succeeds and respects all
    /// edges.
    #[test]
    fn topo_sort_respects_edges(spec in arb_dag()) {
        let g = build(&spec);
        let order = graphalgo::topo_sort(&g).unwrap();
        prop_assert_eq!(order.len(), spec.n);
        let pos: std::collections::HashMap<VertexId, usize> =
            order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for &(a, b) in &spec.edges {
            prop_assert!(pos[&VertexId(a as u32)] < pos[&VertexId(b as u32)]);
        }
    }

    /// The critical path weight is an upper bound on the weight of every
    /// root-to-anywhere greedy path, and its own weight equals the sum of
    /// its vertex weights.
    #[test]
    fn critical_path_dominates(spec in arb_dag()) {
        let g = build(&spec);
        let w = |v: VertexId| g.vertex_time(v);
        let cp = graphalgo::critical_path(&g, |_| true, w).unwrap();
        let sum: f64 = cp.vertices.iter().map(|&v| w(v)).collect::<Vec<_>>().iter().sum();
        prop_assert!((cp.weight - sum).abs() < 1e-6);
        // Consecutive path vertices are actually connected.
        for (i, &e) in cp.edges.iter().enumerate() {
            prop_assert_eq!(g.edge(e).src, cp.vertices[i]);
            prop_assert_eq!(g.edge(e).dst, cp.vertices[i + 1]);
        }
        // Any single vertex is a path: weight must dominate the max vertex.
        let max_v = spec.weights.iter().cloned().fold(0.0, f64::max);
        prop_assert!(cp.weight >= max_v - 1e-9);
    }

    /// k-heaviest paths: ranked, first equals the critical path weight,
    /// all are valid chains.
    #[test]
    fn k_paths_are_ranked_valid_chains(spec in arb_dag(), k in 1usize..6) {
        let g = build(&spec);
        let w = |v: VertexId| g.vertex_time(v);
        let cp = graphalgo::critical_path(&g, |_| true, w).unwrap();
        let paths = graphalgo::k_heaviest_paths(&g, k, |_| true, w).unwrap();
        prop_assert!(!paths.is_empty());
        prop_assert!((paths[0].weight - cp.weight).abs() < 1e-6,
            "k=1 weight {} vs critical {}", paths[0].weight, cp.weight);
        for pair in paths.windows(2) {
            prop_assert!(pair[0].weight >= pair[1].weight - 1e-9);
        }
        for p in &paths {
            for (i, &e) in p.edges.iter().enumerate() {
                prop_assert_eq!(g.edge(e).src, p.vertices[i]);
                prop_assert_eq!(g.edge(e).dst, p.vertices[i + 1]);
            }
        }
    }

    /// The bitset LCA index and the BFS LCA agree on existence, and both
    /// results are genuine common ancestors.
    #[test]
    fn lca_variants_agree(spec in arb_dag(), qa in 0usize..24, qb in 0usize..24) {
        let g = build(&spec);
        let a = VertexId((qa % spec.n) as u32);
        let b = VertexId((qb % spec.n) as u32);
        let idx = graphalgo::LcaIndex::build(&g, |_| true).unwrap();
        let via_index = idx.lca(a, b);
        let via_bfs = graphalgo::lca_bfs(&g, a, b, |_| true).map(|(v, _, _)| v);
        prop_assert_eq!(via_index.is_some(), via_bfs.is_some());
        for anc in [via_index, via_bfs].into_iter().flatten() {
            prop_assert!(idx.is_ancestor(anc, a), "{anc:?} !anc of {a:?}");
            prop_assert!(idx.is_ancestor(anc, b), "{anc:?} !anc of {b:?}");
        }
    }

    /// Weak components: every edge's endpoints share a component; the
    /// number of components plus reachable pairs is consistent.
    #[test]
    fn weak_components_cover_edges(spec in arb_dag()) {
        let g = build(&spec);
        let (comp, count) = graphalgo::weakly_connected_components(&g);
        prop_assert_eq!(comp.len(), spec.n);
        prop_assert!(count >= 1 && count <= spec.n);
        for &(a, b) in &spec.edges {
            prop_assert_eq!(comp[a], comp[b]);
        }
        prop_assert_eq!(comp.iter().collect::<std::collections::HashSet<_>>().len(), count);
    }

    /// SCCs of a DAG are all singletons and partition the vertex set.
    #[test]
    fn dag_sccs_are_singletons(spec in arb_dag()) {
        let g = build(&spec);
        let sccs = graphalgo::strongly_connected_components(&g);
        prop_assert_eq!(sccs.len(), spec.n);
        prop_assert!(sccs.iter().all(|s| s.len() == 1));
    }

    /// Louvain always returns a full assignment with dense community ids
    /// and modularity in [-1, 1].
    #[test]
    fn louvain_output_well_formed(spec in arb_dag()) {
        let g = build(&spec);
        let c = graphalgo::louvain(&g);
        prop_assert_eq!(c.assignment.len(), spec.n);
        if spec.edges.is_empty() {
            prop_assert_eq!(c.count, spec.n);
        } else {
            let distinct: std::collections::HashSet<u32> =
                c.assignment.iter().copied().collect();
            prop_assert_eq!(distinct.len(), c.count);
            prop_assert!(c.assignment.iter().all(|&x| (x as usize) < c.count));
        }
        prop_assert!((-1.0..=1.0).contains(&c.modularity), "Q = {}", c.modularity);
    }

    /// Graph difference then adding back the right graph's metric restores
    /// the left graph's metric (additivity).
    #[test]
    fn diff_is_additive(
        left in prop::collection::vec(0.0..1e4f64, 1..16),
        right_delta in prop::collection::vec(-1e3f64..1e3, 1..16),
    ) {
        let n = left.len().min(right_delta.len());
        let mk = |times: &[f64]| {
            let mut g = Pag::new(ViewKind::TopDown, "d");
            for (i, &t) in times.iter().take(n).enumerate() {
                let v = g.add_vertex(VertexLabel::Compute, format!("n{i}").as_str());
                g.set_vprop(v, pag::keys::TIME, t);
            }
            g
        };
        let right: Vec<f64> = left.iter().zip(&right_delta).map(|(l, d)| l + d).collect();
        let gl = mk(&left);
        let gr = mk(&right);
        let d = graphalgo::graph_difference(&gl, &gr, &[pag::keys::TIME]).unwrap();
        for i in 0..n {
            let v = VertexId(i as u32);
            let restored = d.vertex_time(v) + gr.vertex_time(v);
            prop_assert!((restored - gl.vertex_time(v)).abs() < 1e-6);
        }
    }
}
