//! HPCToolkit-style sampling profiler.
//!
//! HPCToolkit samples call stacks and attributes time to calling
//! contexts; `hpcviewer` presents loop-level hotspots, and differential
//! profiles of two scales expose scalability losses (Coarfa et al.). What
//! it does *not* do is explain propagation: "the root cause of poor
//! scalability and the underlying reasons cannot be easily obtained"
//! (§5.3). This module reproduces both the hotspot and the scaling-loss
//! views from [`collect::ProfiledRun`] data.

use collect::ProfiledRun;
use pag::{keys, mkeys, VertexId};

/// One hotspot / scaling row.
#[derive(Debug, Clone)]
pub struct HpcRow {
    /// Code snippet name.
    pub name: String,
    /// Debug info (`file:line`).
    pub site: String,
    /// Metric value (inclusive µs, or µs of loss).
    pub value: f64,
    /// Percentage of total.
    pub pct: f64,
}

/// The HPCToolkit-style report.
#[derive(Debug, Clone)]
pub struct HpcToolkitReport {
    /// Report kind ("hotspots" or "scaling losses").
    pub kind: &'static str,
    /// Rows sorted by value descending.
    pub rows: Vec<HpcRow>,
}

impl HpcToolkitReport {
    /// Render the viewer-style table.
    pub fn render(&self) -> String {
        let mut out = format!("--- hpcviewer: {} ---\n", self.kind);
        for r in &self.rows {
            out.push_str(&format!(
                "{:>8.2}% {:>12.1}us  {:<28} {}\n",
                r.pct, r.value, r.name, r.site
            ));
        }
        out
    }
}

fn self_time(run: &ProfiledRun, v: VertexId) -> f64 {
    run.pag.metric_f64(v, mkeys::SELF_TIME)
}

fn row(run: &ProfiledRun, v: VertexId, value: f64, total: f64) -> HpcRow {
    HpcRow {
        name: run.pag.vertex_name(v).to_string(),
        site: run
            .pag
            .vprop(v, keys::DEBUG_INFO)
            .and_then(|p| p.as_str().map(String::from))
            .unwrap_or_default(),
        value,
        pct: 100.0 * value / total.max(1e-12),
    }
}

/// Loop/kernel-level hotspots by exclusive (self) sampled time.
pub fn hpctoolkit_profile(run: &ProfiledRun, top_n: usize) -> HpcToolkitReport {
    let total: f64 = run
        .pag
        .vertex_ids()
        .map(|v| self_time(run, v))
        .sum::<f64>()
        .max(1e-12);
    let mut rows: Vec<(VertexId, f64)> = run
        .pag
        .vertex_ids()
        .map(|v| (v, self_time(run, v)))
        .filter(|&(_, t)| t > 0.0)
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    rows.truncate(top_n);
    HpcToolkitReport {
        kind: "hotspots",
        rows: rows
            .into_iter()
            .map(|(v, t)| row(run, v, t, total))
            .collect(),
    }
}

/// Scaling losses: per-vertex `time(large) - time(small)` of aggregate
/// inclusive time (expected to stay flat under ideal strong scaling).
/// Requires same-binary runs (identical skeletons).
pub fn hpctoolkit_scaling(
    small: &ProfiledRun,
    large: &ProfiledRun,
    top_n: usize,
) -> HpcToolkitReport {
    let n = small.pag.num_vertices().min(large.pag.num_vertices());
    let total_loss: f64 = {
        let ts: f64 = small.data.elapsed.iter().sum();
        let tl: f64 = large.data.elapsed.iter().sum();
        (tl - ts).max(1e-12)
    };
    let mut rows: Vec<(VertexId, f64)> = (0..n as u32)
        .map(VertexId)
        .map(|v| {
            let loss = large.pag.metric_f64(v, mkeys::SELF_TIME)
                - small.pag.metric_f64(v, mkeys::SELF_TIME);
            (v, loss)
        })
        .filter(|&(_, l)| l > 0.0)
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    rows.truncate(top_n);
    HpcToolkitReport {
        kind: "scaling losses",
        rows: rows
            .into_iter()
            .map(|(v, l)| row(large, v, l, total_loss))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use progmodel::{c, nranks, rank, ProgramBuilder};
    use simrt::RunConfig;

    fn prog() -> progmodel::Program {
        let mut pb = ProgramBuilder::new("hpc");
        let main = pb.declare("main", "h.c");
        pb.define(main, |f| {
            f.loop_("it", c(400.0), |b| {
                // Kernel scales; the serial section does not.
                b.compute("kernel", c(4000.0) / nranks());
                b.compute("serial_section", c(300.0) * progmodel::noise(0.05, 77));
                b.allreduce(c(8.0));
            });
        });
        let _ = rank();
        pb.build(main)
    }

    #[test]
    fn hotspots_sorted_by_self_time() {
        let run = collect::profile(&prog(), &RunConfig::new(2)).unwrap();
        let report = hpctoolkit_profile(&run, 5);
        assert!(!report.rows.is_empty());
        assert_eq!(report.rows[0].name, "kernel");
        assert!(report.rows[0].pct > 30.0);
        assert!(report.render().contains("hpcviewer"));
    }

    #[test]
    fn scaling_losses_rank_serial_section_first() {
        let small = collect::profile(&prog(), &RunConfig::new(2)).unwrap();
        let large = collect::profile(&prog(), &RunConfig::new(16)).unwrap();
        let report = hpctoolkit_scaling(&small, &large, 5);
        assert!(!report.rows.is_empty());
        // The non-scaling serial section (or the allreduce waits it
        // causes) tops the loss list; the well-scaling kernel must not.
        assert_ne!(report.rows[0].name, "kernel", "{:?}", report.rows);
    }
}
