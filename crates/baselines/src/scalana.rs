//! ScalAna-style monolithic scaling-loss analyzer.
//!
//! ScalAna (Jin et al., SC'20) builds a Program Structure Graph, detects
//! scaling loss with a differential model and backtracks dependence to
//! root causes — exactly what PerFlow's scalability paradigm composes
//! from reusable passes. Here the same analysis is written the ScalAna
//! way: one special-purpose function with the differential model, the
//! imbalance detector and the backtracking walker hard-wired together and
//! no reusable intermediate abstractions. Besides validating PerFlow's
//! paradigm output, this module is the LoC-comparison artifact of §5.3
//! ("the source code of ScalAna has thousands of lines" vs. 27 lines of
//! PerFlow APIs) — see `bench`'s comparison table, which counts the lines
//! of both implementations.

use std::collections::{HashMap, HashSet};

use collect::ProfiledRun;
use pag::{keys, mkeys, VertexId};

/// A detected root cause.
#[derive(Debug, Clone)]
pub struct ScalAnaCause {
    /// Snippet name.
    pub name: String,
    /// Debug info.
    pub site: String,
    /// Scaling loss attributed (µs of aggregate time growth).
    pub loss_us: f64,
    /// Imbalance factor at the large scale.
    pub imbalance: f64,
}

/// The analyzer output.
#[derive(Debug, Clone)]
pub struct ScalAnaReport {
    /// Root causes sorted by loss.
    pub causes: Vec<ScalAnaCause>,
    /// Number of dependence edges walked.
    pub edges_walked: usize,
}

impl ScalAnaReport {
    /// Render the report.
    pub fn render(&self) -> String {
        let mut out = String::from("--- scalana-style scaling analysis ---\n");
        for c in &self.causes {
            out.push_str(&format!(
                "loss {:>12.1}us  imb {:>5.2}  {:<24} {}\n",
                c.loss_us, c.imbalance, c.name, c.site
            ));
        }
        out.push_str(&format!(
            "(walked {} dependence edges)\n",
            self.edges_walked
        ));
        out
    }
}

/// Run the monolithic analysis over a small and a large run.
pub fn scalana_analyze(small: &ProfiledRun, large: &ProfiledRun, top_n: usize) -> ScalAnaReport {
    // --- Phase 1: differential model (inline, special-purpose). -------
    let n = small.pag.num_vertices().min(large.pag.num_vertices());
    let mut loss: Vec<(VertexId, f64)> = Vec::new();
    for i in 0..n as u32 {
        let v = VertexId(i);
        let l = large.pag.metric_f64(v, mkeys::TIME) - small.pag.metric_f64(v, mkeys::TIME);
        if l > 0.0 {
            loss.push((v, l));
        }
    }
    loss.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    loss.truncate(top_n.max(8));
    let loss_of: HashMap<VertexId, f64> = loss.iter().copied().collect();

    // --- Phase 2: imbalance detector (inline). -------------------------
    let imb_of = |run: &ProfiledRun, v: VertexId| -> f64 {
        run.pag
            .metric_vec(v, mkeys::TIME_PER_PROC)
            .and_then(pag::VertexStats::from_slice)
            .map(|s| s.imbalance())
            .unwrap_or(0.0)
    };

    // --- Phase 3: backtracking over dependence records (inline). ------
    // Walk msg-edge dependencies backwards from lossy comm contexts to
    // the earliest origins, then attribute to the origin's non-comm
    // predecessor in the static tree.
    let mut dep_from: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
    for e in &large.data.msg_edges {
        if let (Some(s), Some(d)) = (large.ctx_leaf(e.src_ctx), large.ctx_leaf(e.dst_ctx)) {
            dep_from.entry(d).or_default().push(s);
        }
    }
    let mut edges_walked = 0usize;
    let mut origins: HashSet<VertexId> = HashSet::new();
    for &v in loss_of.keys() {
        let mut cur = v;
        let mut seen = HashSet::new();
        while seen.insert(cur) {
            match dep_from.get(&cur).and_then(|d| d.first()).copied() {
                Some(prev) => {
                    edges_walked += 1;
                    cur = prev;
                }
                None => break,
            }
        }
        // Attribute comm origins to the code before them.
        let mut origin = cur;
        for _ in 0..64 {
            if !large.pag.vertex(origin).label.is_comm() {
                break;
            }
            let Some(&pe) = large.pag.in_edges(origin).first() else {
                break;
            };
            let parent = large.pag.edge(pe).src;
            // Previous sibling (tree order) or parent.
            let siblings: Vec<VertexId> = large.pag.out_neighbors(parent).collect();
            let pos = siblings.iter().position(|&s| s == origin).unwrap_or(0);
            origin = if pos == 0 { parent } else { siblings[pos - 1] };
        }
        origins.insert(origin);
    }

    // --- Phase 4: rank causes. -----------------------------------------
    let mut causes: Vec<ScalAnaCause> = origins
        .into_iter()
        .map(|v| ScalAnaCause {
            name: large.pag.vertex_name(v).to_string(),
            site: large
                .pag
                .vprop(v, keys::DEBUG_INFO)
                .and_then(|p| p.as_str().map(String::from))
                .unwrap_or_default(),
            loss_us: loss_of.get(&v).copied().unwrap_or_else(|| {
                large.pag.metric_f64(v, mkeys::TIME) - small.pag.metric_f64(v, mkeys::TIME)
            }),
            imbalance: imb_of(large, v),
        })
        .collect();
    causes.sort_by(|a, b| {
        b.loss_us
            .total_cmp(&a.loss_us)
            .then(b.imbalance.total_cmp(&a.imbalance))
            .then(a.name.cmp(&b.name))
    });
    causes.truncate(top_n);
    ScalAnaReport {
        causes,
        edges_walked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use progmodel::{c, noise, nranks, rank, ProgramBuilder};
    use simrt::RunConfig;

    fn prog() -> progmodel::Program {
        let mut pb = ProgramBuilder::new("sa");
        let main = pb.declare("main", "sa.f");
        pb.define(main, |f| {
            f.loop_("step", c(40.0), |b| {
                b.loop_("loop_bound", c(6.0), |l| {
                    l.compute(
                        "bound_fill",
                        rank().rem(c(4.0)).lt(1.0).select(c(400.0), c(150.0)) * noise(0.05, 3),
                    );
                });
                b.irecv((rank() + nranks() - 1.0).rem(nranks()), c(2048.0), 0);
                b.isend((rank() + 1.0).rem(nranks()), c(2048.0), 0);
                b.waitall();
                b.allreduce(c(8.0));
            });
        });
        pb.build(main)
    }

    #[test]
    fn finds_the_imbalanced_loop_like_perflow_does() {
        let p = prog();
        let small = collect::profile(&p, &RunConfig::new(4)).unwrap();
        let large = collect::profile(&p, &RunConfig::new(16)).unwrap();
        let report = scalana_analyze(&small, &large, 5);
        assert!(!report.causes.is_empty());
        let names: Vec<&str> = report.causes.iter().map(|c| c.name.as_str()).collect();
        assert!(
            names
                .iter()
                .any(|n| *n == "bound_fill" || *n == "loop_bound"),
            "causes {names:?}"
        );
        assert!(report.render().contains("scalana"));
    }
}
