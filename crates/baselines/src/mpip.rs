//! mpiP-style statistical MPI profiler.
//!
//! mpiP interposes PMPI wrappers and aggregates per call-site statistics;
//! it reports *what* communication costs, not *why*. This reimplementation
//! consumes the simulator's communication records directly — the same
//! information a PMPI layer sees.

use std::collections::HashMap;

use progmodel::Program;
use simrt::{simulate, RunConfig, RunData, SimError};

/// One aggregated call-site row.
#[derive(Debug, Clone)]
pub struct MpipSite {
    /// MPI function name.
    pub call: String,
    /// Call-site id (statement id — mpiP's "site" numbers).
    pub site: u32,
    /// Aggregate operation time over all ranks (µs).
    pub time_us: f64,
    /// Percentage of aggregate application time.
    pub app_pct: f64,
    /// Percentage of aggregate MPI time.
    pub mpi_pct: f64,
    /// Number of calls.
    pub count: u64,
    /// Mean message size in bytes.
    pub avg_bytes: f64,
}

/// The mpiP-style report.
#[derive(Debug, Clone)]
pub struct MpipReport {
    /// Aggregate application time (rank-seconds, µs).
    pub app_time_us: f64,
    /// Aggregate MPI time (µs).
    pub mpi_time_us: f64,
    /// Per call-site rows, sorted by time descending.
    pub sites: Vec<MpipSite>,
}

impl MpipReport {
    /// Render the classic mpiP text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("@--- mpiP-style Aggregate Time (top sites) ---\n");
        out.push_str(&format!(
            "App time: {:.3} s   MPI time: {:.3} s ({:.2}%)\n",
            self.app_time_us / 1e6,
            self.mpi_time_us / 1e6,
            100.0 * self.mpi_time_us / self.app_time_us.max(1e-12)
        ));
        out.push_str("Call            Site   Time(ms)    App%   MPI%    Count  AvgSz\n");
        for s in &self.sites {
            out.push_str(&format!(
                "{:<15} {:<6} {:<10.2} {:<6.2} {:<6.2} {:<8} {:<8.0}\n",
                s.call,
                s.site,
                s.time_us / 1e3,
                s.app_pct,
                s.mpi_pct,
                s.count,
                s.avg_bytes
            ));
        }
        out
    }

    /// The row of one MPI function (summed over sites), if present.
    pub fn function_pct(&self, call: &str) -> f64 {
        self.sites
            .iter()
            .filter(|s| s.call == call)
            .map(|s| s.app_pct)
            .sum()
    }
}

/// Build an mpiP-style report from collected run data.
pub fn mpip_from_data(data: &RunData) -> MpipReport {
    let app_time_us: f64 = data.elapsed.iter().sum();
    let mut agg: HashMap<(String, u32), (f64, u64, u64)> = HashMap::new();
    for rec in &data.comm_records {
        let e = agg
            .entry((rec.kind.mpi_name().to_string(), rec.stmt.0))
            .or_insert((0.0, 0, 0));
        e.0 += rec.complete - rec.post;
        e.1 += 1;
        e.2 += rec.bytes;
    }
    let mpi_time_us: f64 = agg.values().map(|v| v.0).sum();
    let mut sites: Vec<MpipSite> = agg
        .into_iter()
        .map(|((call, site), (time, count, bytes))| MpipSite {
            call,
            site,
            time_us: time,
            app_pct: 100.0 * time / app_time_us.max(1e-12),
            mpi_pct: 100.0 * time / mpi_time_us.max(1e-12),
            count,
            avg_bytes: bytes as f64 / count.max(1) as f64,
        })
        .collect();
    sites.sort_by(|a, b| b.time_us.total_cmp(&a.time_us));
    MpipReport {
        app_time_us,
        mpi_time_us,
        sites,
    }
}

/// Run a program under the mpiP-style profiler (comm records only, no
/// sampling — the lightweight configuration).
pub fn mpip_profile(prog: &Program, cfg: &RunConfig) -> Result<MpipReport, SimError> {
    let mut cfg = cfg.clone();
    cfg.collection = simrt::CollectionConfig {
        sampling_period_us: None,
        collect_pmu: false,
        collect_comm: true,
        collect_locks: false,
        trace_events: false,
        trace_store_cap: 0,
        sample_cost_us: 0.0,
        comm_wrapper_cost_us: 0.3, // mpiP's lightweight wrappers
        trace_event_cost_us: 0.0,
    };
    let data = simulate(prog, &cfg)?;
    Ok(mpip_from_data(&data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use progmodel::{c, rank, ProgramBuilder};

    fn prog() -> Program {
        let mut pb = ProgramBuilder::new("m");
        let main = pb.declare("main", "m.c");
        pb.define(main, |f| {
            f.loop_("it", c(100.0), |b| {
                b.compute("work", (rank() + 1.0) * c(200.0));
                b.allreduce(c(64.0));
                b.barrier();
            });
        });
        pb.build(main)
    }

    #[test]
    fn sites_and_percentages() {
        let report = mpip_profile(&prog(), &RunConfig::new(4)).unwrap();
        assert_eq!(report.sites.len(), 2); // allreduce + barrier sites
        let total_mpi_pct: f64 = report.sites.iter().map(|s| s.mpi_pct).sum();
        assert!((total_mpi_pct - 100.0).abs() < 1e-6);
        assert!(report.function_pct("MPI_Allreduce") > 0.0);
        // Imbalance means real wait time in the allreduce: a large share
        // of app time is MPI.
        assert!(report.mpi_time_us / report.app_time_us > 0.2);
        let text = report.render();
        assert!(text.contains("MPI_Allreduce"));
        assert!(text.contains("App time"));
    }

    #[test]
    fn counts_are_exact() {
        let report = mpip_profile(&prog(), &RunConfig::new(4)).unwrap();
        for site in &report.sites {
            assert_eq!(site.count, 400, "{}: {}", site.call, site.count); // 100 iters × 4 ranks
        }
    }
}
