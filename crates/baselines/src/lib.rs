//! # Comparator tools (§5.3's comparison targets)
//!
//! Reimplementations of the four state-of-the-art tools PerFlow is
//! compared against, all running on the shared simulator substrate so the
//! comparison axes of the paper — what each tool reports, and what it
//! costs — are reproducible:
//!
//! * [`mpip`] — a lightweight PMPI-wrapper statistical profiler: per
//!   call-site communication statistics, no analysis.
//! * [`hpctoolkit`] — a sampling profiler with calling-context
//!   attribution: flat/loop-level hotspots plus a two-run scaling-loss
//!   ranking (its `hpcprof` differential mode).
//! * [`scalasca`] — a tracing tool: full event traces, automatic
//!   wait-state classification (Late Sender, Wait at Collective), and the
//!   measured overhead/storage that tracing costs.
//! * [`scalana`] — a monolithic scaling-loss detector (differential +
//!   imbalance + backtracking hard-wired together). Functionally
//!   equivalent to PerFlow's scalability paradigm but written as one
//!   special-purpose analyzer — the LoC comparison of §5.3 measures
//!   exactly this contrast.

pub mod hpctoolkit;
pub mod mpip;
pub mod scalana;
pub mod scalasca;

pub use hpctoolkit::{hpctoolkit_profile, hpctoolkit_scaling, HpcToolkitReport};
pub use mpip::{mpip_profile, MpipReport};
pub use scalana::{scalana_analyze, ScalAnaReport};
pub use scalasca::{scalasca_trace, ScalascaReport, WaitState};
