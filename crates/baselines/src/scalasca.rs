//! Scalasca-style tracing and automatic wait-state analysis.
//!
//! Scalasca records *complete event traces* and replays them to classify
//! wait states (Late Sender, Wait at Barrier/NxN, …). It finds root
//! causes automatically — at the price of tracing: the paper measured
//! 56.72 % runtime overhead and 57.64 GB of traces on 128 processes where
//! PerFlow's sampling cost 1.56 % and 2.4 MB (§5.3). This module
//! reproduces both the analysis and the cost axis: the run is executed
//! with full event tracing, the wall-clock overhead against an
//! uninstrumented run is measured, and wait states are classified from
//! the trace-level records.

use progmodel::Program;
use simrt::{simulate, CollectionConfig, CommKindTag, RunConfig, SimError};

/// A classified wait state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WaitState {
    /// Receiver (or its wait) blocked on a sender that posted late.
    LateSender,
    /// Sender blocked in a rendezvous on a receiver that posted late.
    LateReceiver,
    /// Time lost waiting for the last participant of a collective.
    WaitAtCollective,
}

impl WaitState {
    /// Display name as Scalasca's analyzer prints it.
    pub fn name(self) -> &'static str {
        match self {
            WaitState::LateSender => "Late Sender",
            WaitState::LateReceiver => "Late Receiver",
            WaitState::WaitAtCollective => "Wait at Collective",
        }
    }
}

/// The Scalasca-style analysis result plus measured tracing costs.
#[derive(Debug, Clone)]
pub struct ScalascaReport {
    /// Wait-state totals in µs, sorted by severity.
    pub wait_states: Vec<(WaitState, f64)>,
    /// Total events the trace would contain.
    pub trace_events: u64,
    /// Estimated trace size in bytes.
    pub trace_bytes: u64,
    /// Collection overhead: relative growth of the application's
    /// (virtual) makespan under tracing — the slowdown real tracing
    /// inflicts on the application.
    pub runtime_overhead: f64,
    /// The statement (site) with the largest accumulated wait, if any —
    /// Scalasca's "root cause" call path.
    pub worst_site: Option<(u32, f64)>,
}

impl ScalascaReport {
    /// Render the analyzer summary.
    pub fn render(&self) -> String {
        let mut out = String::from("--- scalasca-style analysis ---\n");
        for (ws, t) in &self.wait_states {
            out.push_str(&format!("{:<20} {:>12.1} us\n", ws.name(), t));
        }
        out.push_str(&format!(
            "trace: {} events, {:.2} MB; runtime overhead {:.2}%\n",
            self.trace_events,
            self.trace_bytes as f64 / 1e6,
            100.0 * self.runtime_overhead
        ));
        out
    }
}

/// Trace a program run and classify wait states.
pub fn scalasca_trace(prog: &Program, cfg: &RunConfig) -> Result<ScalascaReport, SimError> {
    // Uninstrumented baseline for the overhead measurement.
    let mut plain_cfg = cfg.clone();
    plain_cfg.collection = CollectionConfig::off();
    let plain = simulate(prog, &plain_cfg)?;

    // Traced run (per-event costs perturb the application).
    let mut trace_cfg = cfg.clone();
    trace_cfg.collection = CollectionConfig::tracing();
    let data = simulate(prog, &trace_cfg)?;

    // Wait-state classification from per-instance records (what the
    // parallel replay computes from the trace).
    let mut late_sender = 0.0;
    let mut late_receiver = 0.0;
    let mut wait_coll = 0.0;
    for rec in &data.comm_records {
        if rec.wait <= 0.0 {
            continue;
        }
        match rec.kind {
            CommKindTag::Recv | CommKindTag::Wait | CommKindTag::Waitall => late_sender += rec.wait,
            CommKindTag::Send => late_receiver += rec.wait,
            k if k.is_collective() => wait_coll += rec.wait,
            _ => {}
        }
    }
    let mut wait_states = vec![
        (WaitState::LateSender, late_sender),
        (WaitState::LateReceiver, late_receiver),
        (WaitState::WaitAtCollective, wait_coll),
    ];
    wait_states.sort_by(|a, b| b.1.total_cmp(&a.1));

    // Worst call site.
    let mut per_site: std::collections::HashMap<u32, f64> = Default::default();
    for rec in &data.comm_records {
        *per_site.entry(rec.stmt.0).or_insert(0.0) += rec.wait;
    }
    let worst_site = per_site
        .into_iter()
        .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)));

    Ok(ScalascaReport {
        wait_states,
        trace_events: data.trace.total_events,
        trace_bytes: data.trace.est_bytes,
        runtime_overhead: ((data.total_time - plain.total_time) / plain.total_time.max(1e-9))
            .max(0.0),
        worst_site,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use progmodel::{c, rank, ProgramBuilder};

    fn imbalanced() -> Program {
        let mut pb = ProgramBuilder::new("sc");
        let main = pb.declare("main", "s.c");
        pb.define(main, |f| {
            f.loop_("it", c(200.0), |b| {
                b.compute("work", (rank() + 1.0) * c(150.0));
                b.allreduce(c(16.0));
            });
        });
        pb.build(main)
    }

    #[test]
    fn classifies_collective_waits() {
        let report = scalasca_trace(&imbalanced(), &RunConfig::new(4)).unwrap();
        assert_eq!(report.wait_states[0].0, WaitState::WaitAtCollective);
        assert!(report.wait_states[0].1 > 0.0);
        assert!(report.trace_events > 0);
        assert!(report.trace_bytes > 0);
        assert!(report.worst_site.is_some());
        assert!(report.render().contains("Wait at Collective"));
    }

    #[test]
    fn late_sender_detected_in_p2p() {
        let mut pb = ProgramBuilder::new("ls");
        let main = pb.declare("main", "l.c");
        pb.define(main, |f| {
            f.branch(
                "role",
                rank().eq(0.0),
                |s| {
                    s.compute("slow", c(5000.0));
                    s.send(c(1.0), c(64.0), 0);
                },
                |r| r.recv(c(0.0), c(64.0), 0),
            );
        });
        let prog = pb.build(main);
        let report = scalasca_trace(&prog, &RunConfig::new(2)).unwrap();
        let ls = report
            .wait_states
            .iter()
            .find(|(w, _)| *w == WaitState::LateSender)
            .unwrap();
        assert!(ls.1 >= 5000.0 * 0.9);
    }

    #[test]
    fn trace_volume_scales_with_events() {
        let r_small = scalasca_trace(&imbalanced(), &RunConfig::new(2)).unwrap();
        let r_large = scalasca_trace(&imbalanced(), &RunConfig::new(8)).unwrap();
        assert!(r_large.trace_events > 3 * r_small.trace_events);
        assert_eq!(r_large.trace_bytes, r_large.trace_events * 24);
    }
}
