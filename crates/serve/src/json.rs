//! Minimal JSON for the daemon's request/response bodies. The
//! implementation lives in [`obs::json`] (hoisted so `driver` can parse
//! telemetry snapshots without depending on serve); this module keeps
//! the daemon-local paths compiling unchanged.

pub use obs::json::{escape, obj, Json};
