//! Minimal HTTP/1.1 framing over `std::net`: request parsing with hard
//! size limits and plain response writing. One request per connection
//! (`Connection: close`) — the daemon's clients are scripts and tests,
//! not browsers holding keep-alive pools.

use std::io::{BufRead, Write};

/// Request-line length / header-count / body-size caps. Oversized
/// requests are rejected before allocation, so a hostile client cannot
/// balloon a long-lived daemon.
pub const MAX_LINE: usize = 8 * 1024;
/// Maximum number of headers accepted.
pub const MAX_HEADERS: usize = 64;
/// Maximum request-body size in bytes.
pub const MAX_BODY: usize = 256 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Raw query string (without `?`), empty when absent.
    pub query: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

/// Why a request could not be parsed, mapped to a response status.
#[derive(Debug, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed framing → 400.
    Bad(String),
    /// A size limit tripped → 413.
    TooLarge(String),
    /// The socket died mid-request.
    Io(String),
}

impl HttpError {
    /// The HTTP status code this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Bad(_) => 400,
            HttpError::TooLarge(_) => 413,
            HttpError::Io(_) => 400,
        }
    }

    /// Human-readable reason.
    pub fn message(&self) -> &str {
        match self {
            HttpError::Bad(m) | HttpError::TooLarge(m) | HttpError::Io(m) => m,
        }
    }
}

fn read_line(r: &mut impl BufRead) -> Result<String, HttpError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE {
                    return Err(HttpError::TooLarge("line too long".into()));
                }
            }
            Err(e) => return Err(HttpError::Io(e.to_string())),
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| HttpError::Bad("non-utf8 header".into()))
}

impl Request {
    /// Read one request from `r`.
    pub fn read_from(r: &mut impl BufRead) -> Result<Request, HttpError> {
        let start = read_line(r)?;
        if start.is_empty() {
            return Err(HttpError::Io("empty request".into()));
        }
        let mut parts = start.split(' ');
        let method = parts
            .next()
            .filter(|m| !m.is_empty())
            .ok_or_else(|| HttpError::Bad("missing method".into()))?
            .to_ascii_uppercase();
        let target = parts
            .next()
            .ok_or_else(|| HttpError::Bad("missing request target".into()))?;
        let version = parts
            .next()
            .ok_or_else(|| HttpError::Bad("missing HTTP version".into()))?;
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Bad(format!("unsupported version {version}")));
        }
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (target.to_string(), String::new()),
        };

        let mut headers = Vec::new();
        loop {
            let line = read_line(r)?;
            if line.is_empty() {
                break;
            }
            if headers.len() >= MAX_HEADERS {
                return Err(HttpError::TooLarge("too many headers".into()));
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| HttpError::Bad(format!("malformed header `{line}`")))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }

        let mut req = Request {
            method,
            path,
            query,
            headers,
            body: Vec::new(),
        };
        if let Some(len) = req.header("content-length") {
            let len: usize = len
                .parse()
                .map_err(|_| HttpError::Bad("bad content-length".into()))?;
            if len > MAX_BODY {
                return Err(HttpError::TooLarge(format!("body of {len} bytes")));
            }
            let mut body = vec![0u8; len];
            r.read_exact(&mut body)
                .map_err(|e| HttpError::Io(format!("short body: {e}")))?;
            req.body = body;
        }
        Ok(req)
    }

    /// Case-insensitive header lookup (first match).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The request body as UTF-8 text.
    pub fn body_str(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body).map_err(|_| HttpError::Bad("non-utf8 body".into()))
    }
}

/// The reason phrase for the status codes the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        401 => "Unauthorized",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Write a complete response and flush. Errors are ignored beyond the
/// return value — the peer may already be gone.
pub fn respond(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        status,
        reason(status),
        content_type,
        body.len(),
        body
    )?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        Request::read_from(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            "POST /jobs?x=1 HTTP/1.1\r\nHost: localhost\r\nX-Api-Key: t1\r\nContent-Length: 4\r\n\r\nabcd",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.header("x-api-key"), Some("t1"));
        assert_eq!(req.body_str().unwrap(), "abcd");
    }

    #[test]
    fn header_lookup_is_case_insensitive() {
        let req = parse("GET / HTTP/1.1\r\nX-API-Key: K\r\n\r\n").unwrap();
        assert_eq!(req.header("x-api-key"), Some("K"));
    }

    #[test]
    fn rejects_bad_framing() {
        assert_eq!(parse("GARBAGE\r\n\r\n").unwrap_err().status(), 400);
        assert_eq!(
            parse("GET / HTTP/9.9\r\n\r\n").unwrap_err().status(),
            400,
            "unsupported version"
        );
        assert_eq!(
            parse("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")
                .unwrap_err()
                .status(),
            400
        );
    }

    #[test]
    fn rejects_oversized_bodies() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert_eq!(parse(&raw).unwrap_err().status(), 413);
    }

    #[test]
    fn response_is_well_formed() {
        let mut out = Vec::new();
        respond(&mut out, 200, "application/json", "{\"ok\":true}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }
}
