//! Job specifications, records and the registry.
//!
//! A job is one analysis request: a bundled workload, an analysis kind
//! (a built-in [`driver::Paradigm`] or the observed comm-analysis
//! session), and the run configuration. Specs parse from the `POST
//! /jobs` JSON body; records track a job from `queued` to a terminal
//! state and render back to JSON for `GET /jobs/:id`.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use driver::{AnalysisConfig, Paradigm, ResilienceConfig};
use perflow::ExecPolicy;

use crate::json::{obj, Json};

/// What kind of analysis a job runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobKind {
    /// One of the driver's built-in paradigms.
    Paradigm(Paradigm),
    /// The observed/resilient comm-analysis session (shares the
    /// server's bounded pass cache across jobs).
    Comm,
    /// A perflow-query program, statically linted before admission
    /// (`POST /query`). The string is the query text.
    Query(String),
}

impl JobKind {
    /// Wire name, matching [`Paradigm::name`] plus `comm` / `query`.
    pub fn name(&self) -> &'static str {
        match self {
            JobKind::Paradigm(p) => p.name(),
            JobKind::Comm => "comm",
            JobKind::Query(_) => "query",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<JobKind> {
        if s == "comm" || s == "comm-analysis" {
            return Some(JobKind::Comm);
        }
        Paradigm::parse(s).map(JobKind::Paradigm)
    }
}

/// Highest accepted priority (priorities are `0..=MAX_PRIORITY`).
pub const MAX_PRIORITY: u8 = 9;
/// Priority assigned when a submission does not name one.
pub const DEFAULT_PRIORITY: u8 = 4;

/// A validated analysis-job request.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Bundled workload name (validated against [`driver::workload`]).
    pub workload: String,
    /// Analysis to run.
    pub kind: JobKind,
    /// Run shape (ranks, threads, seed, reference-run ranks).
    pub cfg: AnalysisConfig,
    /// Scheduling priority, `0..=9`, FIFO within equal priorities.
    pub priority: u8,
    /// Resilient-scheduler knobs for `comm` jobs.
    pub resilience: ResilienceConfig,
    /// Debug/testing knob: hold the executor this long before running,
    /// to simulate a long job (bounded to 10 s).
    pub hold_ms: u64,
}

impl JobSpec {
    /// Parse and validate a `POST /jobs` body.
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        if !matches!(v, Json::Obj(_)) {
            return Err("job spec must be a JSON object".into());
        }
        let workload = v
            .get("workload")
            .and_then(Json::as_str)
            .ok_or("missing required string field `workload`")?
            .to_string();
        if driver::workload(&workload).is_none() {
            return Err(format!("unknown workload `{workload}`"));
        }
        let kind = match (v.get("query"), v.get("paradigm")) {
            (Some(_), Some(_)) => {
                return Err("`query` and `paradigm` are mutually exclusive".into());
            }
            (Some(q), None) => {
                let text = q.as_str().ok_or("`query` must be a string")?;
                if text.trim().is_empty() {
                    return Err("`query` must not be empty".into());
                }
                JobKind::Query(text.to_string())
            }
            (None, None) => JobKind::Paradigm(Paradigm::Hotspot),
            (None, Some(p)) => {
                let name = p.as_str().ok_or("`paradigm` must be a string")?;
                JobKind::parse(name).ok_or_else(|| format!("unknown paradigm `{name}`"))?
            }
        };
        let u32_field = |name: &str, default: u32| -> Result<u32, String> {
            match v.get(name) {
                None => Ok(default),
                Some(j) => j
                    .as_u64()
                    .filter(|&n| n <= u32::MAX as u64)
                    .map(|n| n as u32)
                    .ok_or_else(|| format!("`{name}` must be a non-negative integer")),
            }
        };
        let defaults = AnalysisConfig::default();
        let cfg = AnalysisConfig {
            ranks: u32_field("ranks", defaults.ranks)?,
            small_ranks: u32_field("small_ranks", defaults.small_ranks)?,
            threads: u32_field("threads", defaults.threads)?,
            seed: match v.get("seed") {
                None => defaults.seed,
                Some(j) => j.as_u64().ok_or("`seed` must be a non-negative integer")?,
            },
        };
        if cfg.ranks == 0 || cfg.ranks > 4096 {
            return Err("`ranks` must be in 1..=4096".into());
        }
        if cfg.threads > 256 {
            return Err("`threads` must be at most 256".into());
        }
        let priority = match v.get("priority") {
            None => DEFAULT_PRIORITY,
            Some(j) => j
                .as_u64()
                .filter(|&n| n <= MAX_PRIORITY as u64)
                .map(|n| n as u8)
                .ok_or_else(|| format!("`priority` must be an integer in 0..={MAX_PRIORITY}"))?,
        };
        let mut resilience = ResilienceConfig::default();
        if let Some(j) = v.get("fail_policy") {
            let s = j.as_str().ok_or("`fail_policy` must be a string")?;
            resilience.fail_policy = Some(
                ExecPolicy::parse(s)
                    .ok_or_else(|| format!("`fail_policy` must be failfast|isolate, got `{s}`"))?,
            );
        }
        if let Some(j) = v.get("retries") {
            resilience.retries = Some(
                j.as_u64()
                    .ok_or("`retries` must be a non-negative integer")? as u32,
            );
        }
        if let Some(j) = v.get("pass_timeout_ms") {
            resilience.pass_timeout_ms = Some(
                j.as_u64()
                    .ok_or("`pass_timeout_ms` must be a non-negative integer")?,
            );
        }
        let hold_ms = match v.get("hold_ms") {
            None => 0,
            Some(j) => j
                .as_u64()
                .filter(|&n| n <= 10_000)
                .ok_or("`hold_ms` must be an integer at most 10000")?,
        };
        Ok(JobSpec {
            workload,
            kind,
            cfg,
            priority,
            resilience,
            hold_ms,
        })
    }

    /// Fingerprint of the simulation this spec requests (see
    /// [`driver::sim_fingerprint`]).
    pub fn sim_fingerprint(&self) -> u64 {
        driver::sim_fingerprint(&self.workload, &self.cfg)
    }
}

/// Lifecycle of a job record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting for an executor.
    Queued,
    /// An executor is running it.
    Running,
    /// Finished with a report.
    Done,
    /// Finished with an error.
    Failed,
}

impl JobStatus {
    /// Wire name.
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
        }
    }
}

/// A finished job's payload.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The rendered report.
    pub report: String,
    /// FNV digest of `report` (stable across identical submissions).
    pub report_digest: u64,
    /// True when the report came from the fingerprint-keyed cache
    /// without re-running the analysis.
    pub cached: bool,
    /// Rendered [`perflow::RunMetrics`] JSON for jobs that executed the
    /// observed scheduler (`comm` jobs that actually ran). `None` for
    /// paradigm/query jobs and report-cache hits.
    pub run_metrics: Option<String>,
}

/// One tracked job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Server-assigned id (monotonic).
    pub id: u64,
    /// Owning tenant (API-key identity).
    pub tenant: String,
    /// The validated request.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// Present when `status == Done`.
    pub result: Option<JobResult>,
    /// Present when `status == Failed`.
    pub error: Option<String>,
    /// Monotonic timestamp (`Obs::now_us`) when the HTTP layer admitted
    /// the job — queue wait is measured from here, not from dispatch.
    pub admitted_us: f64,
    /// When an executor picked the job up.
    pub dispatched_us: Option<f64>,
    /// When the job settled into a terminal state.
    pub finished_us: Option<f64>,
}

impl JobRecord {
    /// The `GET /jobs/:id` JSON body. `with_report` controls whether the
    /// (possibly large) report text is included.
    pub fn to_json(&self, with_report: bool) -> Json {
        let mut fields = vec![
            ("id", Json::Num(self.id as f64)),
            ("status", Json::Str(self.status.name().into())),
            ("workload", Json::Str(self.spec.workload.clone())),
            ("paradigm", Json::Str(self.spec.kind.name().into())),
            ("priority", Json::Num(self.spec.priority as f64)),
            ("ranks", Json::Num(self.spec.cfg.ranks as f64)),
            ("threads", Json::Num(self.spec.cfg.threads as f64)),
            ("seed", Json::Num(self.spec.cfg.seed as f64)),
            ("tenant", Json::Str(self.tenant.clone())),
            ("trace", Json::Num(self.id as f64)),
        ];
        if let JobKind::Query(text) = &self.spec.kind {
            fields.push(("query", Json::Str(text.clone())));
        }
        if let Some(r) = &self.result {
            fields.push(("cached", Json::Bool(r.cached)));
            fields.push((
                "report_digest",
                Json::Str(format!("{:016x}", r.report_digest)),
            ));
            if with_report {
                fields.push(("report", Json::Str(r.report.clone())));
            }
        }
        if let Some(e) = &self.error {
            fields.push(("error", Json::Str(e.clone())));
        }
        if let Some(m) = self.metrics_json() {
            fields.push(("metrics", m));
        }
        obj(fields)
    }

    /// Per-job latency block for terminal jobs: queue wait measured
    /// from HTTP admission, executor time, end-to-end time, and the
    /// scheduler's `RunMetrics` when the job produced one.
    fn metrics_json(&self) -> Option<Json> {
        let dispatched = self.dispatched_us?;
        let finished = self.finished_us?;
        let run = self
            .result
            .as_ref()
            .and_then(|r| r.run_metrics.as_deref())
            .and_then(|text| Json::parse(text).ok())
            .unwrap_or(Json::Null);
        Some(obj(vec![
            (
                "queue_wait_us",
                Json::Num((dispatched - self.admitted_us).max(0.0)),
            ),
            ("exec_us", Json::Num((finished - dispatched).max(0.0))),
            (
                "total_us",
                Json::Num((finished - self.admitted_us).max(0.0)),
            ),
            ("run", run),
        ]))
    }
}

/// Thread-safe registry of every job plus per-tenant active counts
/// (queued + running), which back quota enforcement.
#[derive(Default)]
pub struct JobRegistry {
    inner: Mutex<RegistryState>,
    /// Signaled on every terminal transition (used by drain/wait).
    settled: Condvar,
}

#[derive(Default)]
struct RegistryState {
    jobs: HashMap<u64, JobRecord>,
    next_id: u64,
    active_per_tenant: HashMap<String, usize>,
    active_total: usize,
}

impl JobRegistry {
    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryState> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Admit a job if the tenant is below `quota` active jobs. Returns
    /// the new record or the tenant's current active count. `now_us` is
    /// the admission timestamp queue wait is measured from.
    pub fn admit(
        &self,
        tenant: &str,
        spec: JobSpec,
        quota: usize,
        now_us: f64,
    ) -> Result<JobRecord, usize> {
        let mut st = self.lock();
        let active = st.active_per_tenant.get(tenant).copied().unwrap_or(0);
        if active >= quota {
            return Err(active);
        }
        st.next_id += 1;
        let record = JobRecord {
            id: st.next_id,
            tenant: tenant.to_string(),
            spec,
            status: JobStatus::Queued,
            result: None,
            error: None,
            admitted_us: now_us,
            dispatched_us: None,
            finished_us: None,
        };
        st.jobs.insert(record.id, record.clone());
        *st.active_per_tenant.entry(tenant.to_string()).or_insert(0) += 1;
        st.active_total += 1;
        Ok(record)
    }

    /// Snapshot one job.
    pub fn get(&self, id: u64) -> Option<JobRecord> {
        self.lock().jobs.get(&id).cloned()
    }

    /// Snapshot a tenant's jobs, id-ascending.
    pub fn for_tenant(&self, tenant: &str) -> Vec<JobRecord> {
        let st = self.lock();
        let mut jobs: Vec<JobRecord> = st
            .jobs
            .values()
            .filter(|j| j.tenant == tenant)
            .cloned()
            .collect();
        jobs.sort_by_key(|j| j.id);
        jobs
    }

    /// Mark a job running, stamping the dispatch time.
    pub fn start(&self, id: u64, now_us: f64) {
        if let Some(j) = self.lock().jobs.get_mut(&id) {
            j.status = JobStatus::Running;
            j.dispatched_us = Some(now_us);
        }
    }

    /// Settle a job into a terminal state and release its quota slot.
    pub fn finish(&self, id: u64, outcome: Result<JobResult, String>, now_us: f64) {
        let mut st = self.lock();
        if let Some(j) = st.jobs.get_mut(&id) {
            match outcome {
                Ok(r) => {
                    j.status = JobStatus::Done;
                    j.result = Some(r);
                }
                Err(e) => {
                    j.status = JobStatus::Failed;
                    j.error = Some(e);
                }
            }
            j.finished_us = Some(now_us);
            if j.dispatched_us.is_none() {
                j.dispatched_us = Some(now_us);
            }
            let tenant = j.tenant.clone();
            if let Some(n) = st.active_per_tenant.get_mut(&tenant) {
                *n = n.saturating_sub(1);
            }
            st.active_total = st.active_total.saturating_sub(1);
        }
        drop(st);
        self.settled.notify_all();
    }

    /// Remove a just-admitted job whose enqueue failed, releasing its
    /// quota slot as if it never existed.
    pub fn retract(&self, id: u64) {
        let mut st = self.lock();
        if let Some(j) = st.jobs.remove(&id) {
            if let Some(n) = st.active_per_tenant.get_mut(&j.tenant) {
                *n = n.saturating_sub(1);
            }
            st.active_total = st.active_total.saturating_sub(1);
        }
        drop(st);
        self.settled.notify_all();
    }

    /// Jobs not yet in a terminal state (queued + running), across all
    /// tenants.
    pub fn active_total(&self) -> usize {
        self.lock().active_total
    }

    /// Block until no job is queued or running (used by graceful
    /// shutdown after the queue stops accepting work).
    pub fn wait_idle(&self) {
        let mut st = self.lock();
        while st.active_total > 0 {
            st = self.settled.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// Shareable registry handle.
pub type Registry = Arc<JobRegistry>;

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(workload: &str) -> JobSpec {
        JobSpec::from_json(&Json::parse(&format!("{{\"workload\":\"{workload}\"}}")).unwrap())
            .unwrap()
    }

    #[test]
    fn spec_parsing_validates() {
        let ok = JobSpec::from_json(
            &Json::parse(
                r#"{"workload":"cg","paradigm":"comm","ranks":8,"seed":7,"priority":9,
                    "fail_policy":"isolate","retries":2,"pass_timeout_ms":500,"hold_ms":10}"#,
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(ok.kind, JobKind::Comm);
        assert_eq!(ok.cfg.ranks, 8);
        assert_eq!(ok.cfg.seed, 7);
        assert_eq!(ok.priority, 9);
        assert_eq!(ok.resilience.retries, Some(2));
        assert!(ok.resilience.is_active());

        for bad in [
            r#"{}"#,
            r#"{"workload":"nope"}"#,
            r#"{"workload":"cg","paradigm":"nope"}"#,
            r#"{"workload":"cg","ranks":0}"#,
            r#"{"workload":"cg","ranks":99999}"#,
            r#"{"workload":"cg","priority":10}"#,
            r#"{"workload":"cg","hold_ms":999999}"#,
            r#"{"workload":"cg","fail_policy":"explode"}"#,
            r#"{"workload":"cg","seed":-1}"#,
            r#"{"workload":"cg","query":"from vertices","paradigm":"hotspot"}"#,
            r#"{"workload":"cg","query":42}"#,
            r#"{"workload":"cg","query":"   "}"#,
        ] {
            assert!(
                JobSpec::from_json(&Json::parse(bad).unwrap()).is_err(),
                "accepted bad spec {bad}"
            );
        }
    }

    #[test]
    fn query_spec_parses_and_round_trips() {
        let ok = JobSpec::from_json(
            &Json::parse(r#"{"workload":"cg","query":"from vertices | sum time"}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(
            ok.kind,
            JobKind::Query("from vertices | sum time".to_string())
        );
        assert_eq!(ok.kind.name(), "query");

        let reg = JobRegistry::default();
        let rec = reg.admit("t1", ok, 1, 0.0).unwrap();
        let j = reg.get(rec.id).unwrap().to_json(false);
        assert_eq!(j.get("paradigm").and_then(Json::as_str), Some("query"));
        assert_eq!(
            j.get("query").and_then(Json::as_str),
            Some("from vertices | sum time")
        );
    }

    #[test]
    fn sim_fingerprint_tracks_shape() {
        let a = spec("cg");
        let b = spec("bt");
        assert_ne!(a.sim_fingerprint(), b.sim_fingerprint());
        assert_eq!(a.sim_fingerprint(), spec("cg").sim_fingerprint());
    }

    #[test]
    fn quotas_and_lifecycle() {
        let reg = JobRegistry::default();
        let a = reg.admit("t1", spec("cg"), 2, 10.0).unwrap();
        let _b = reg.admit("t1", spec("bt"), 2, 11.0).unwrap();
        assert_eq!(reg.admit("t1", spec("ep"), 2, 12.0).err(), Some(2));
        // Another tenant is unaffected.
        assert!(reg.admit("t2", spec("ep"), 2, 13.0).is_ok());
        assert_eq!(reg.active_total(), 3);
        reg.start(a.id, 25.0);
        assert_eq!(reg.get(a.id).unwrap().status, JobStatus::Running);
        reg.finish(
            a.id,
            Ok(JobResult {
                report: "r".into(),
                report_digest: 1,
                cached: false,
                run_metrics: None,
            }),
            40.0,
        );
        let done = reg.get(a.id).unwrap();
        assert_eq!(done.status, JobStatus::Done);
        // Queue wait is measured from HTTP admission, not dispatch.
        let m = done.to_json(false);
        let metrics = m.get("metrics").expect("terminal job carries metrics");
        assert_eq!(
            metrics.get("queue_wait_us").and_then(Json::as_f64),
            Some(15.0)
        );
        assert_eq!(metrics.get("exec_us").and_then(Json::as_f64), Some(15.0));
        assert_eq!(metrics.get("total_us").and_then(Json::as_f64), Some(30.0));
        assert_eq!(metrics.get("run"), Some(&Json::Null));
        // The slot frees up.
        assert!(reg.admit("t1", spec("ep"), 2, 50.0).is_ok());
        assert_eq!(reg.for_tenant("t1").len(), 3);
    }

    #[test]
    fn record_json_shape() {
        let reg = JobRegistry::default();
        let a = reg.admit("t1", spec("cg"), 1, 0.0).unwrap();
        reg.finish(
            a.id,
            Ok(JobResult {
                report: "line1\nline2".into(),
                report_digest: 0xabcd,
                cached: true,
                run_metrics: Some(r#"{"total_wall_us":5}"#.to_string()),
            }),
            2.0,
        );
        let j = reg.get(a.id).unwrap().to_json(true);
        assert_eq!(j.get("status").and_then(Json::as_str), Some("done"));
        assert_eq!(j.get("trace").and_then(Json::as_f64), Some(a.id as f64));
        assert_eq!(
            j.get("metrics")
                .and_then(|m| m.get("run"))
                .and_then(|r| r.get("total_wall_us"))
                .and_then(Json::as_f64),
            Some(5.0)
        );
        assert_eq!(j.get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(
            j.get("report_digest").and_then(Json::as_str),
            Some("000000000000abcd")
        );
        assert_eq!(j.get("report").and_then(Json::as_str), Some("line1\nline2"));
        // Render/parse round trip survives the embedded newline.
        let rendered = j.render();
        assert_eq!(Json::parse(&rendered).unwrap(), j);
    }
}
