//! Serve-side LRU caches: simulated runs and rendered reports.
//!
//! Both are keyed on content fingerprints (see
//! [`driver::sim_fingerprint`] and [`driver::report_fingerprint`]): the
//! run cache maps a simulation fingerprint to its [`RunHandle`] so an
//! identical submission skips the simulator, and the report cache maps
//! a report fingerprint to the rendered text + digest so it skips the
//! analysis too. Pass-level reuse inside `comm` jobs additionally goes
//! through the core's bounded [`perflow::PassCache`].

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

/// A small thread-safe LRU map with `u64` (fingerprint) keys.
pub struct LruMap<V> {
    inner: Mutex<LruState<V>>,
    capacity: usize,
}

struct LruState<V> {
    entries: HashMap<u64, (V, u64)>,
    /// tick → key, oldest first.
    order: BTreeMap<u64, u64>,
    next_tick: u64,
}

impl<V: Clone> LruMap<V> {
    /// An empty map evicting past `capacity` entries (capacity 0 stores
    /// nothing).
    pub fn new(capacity: usize) -> Self {
        LruMap {
            inner: Mutex::new(LruState {
                entries: HashMap::new(),
                order: BTreeMap::new(),
                next_tick: 0,
            }),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LruState<V>> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Clone out the value under `key`, refreshing its recency.
    pub fn get(&self, key: u64) -> Option<V> {
        let mut st = self.lock();
        let tick = st.next_tick;
        if let Some((v, old_tick)) = st.entries.get_mut(&key) {
            let value = v.clone();
            let old = *old_tick;
            *old_tick = tick;
            st.next_tick += 1;
            st.order.remove(&old);
            st.order.insert(tick, key);
            Some(value)
        } else {
            None
        }
    }

    /// Insert (or refresh) `key`, evicting the least-recently-used
    /// entries past capacity. Returns how many entries were evicted so
    /// the caller can feed an eviction counter.
    pub fn insert(&self, key: u64, value: V) -> usize {
        let mut st = self.lock();
        let tick = st.next_tick;
        st.next_tick += 1;
        if let Some((_, old_tick)) = st.entries.insert(key, (value, tick)) {
            st.order.remove(&old_tick);
        }
        st.order.insert(tick, key);
        let mut evicted = 0;
        while st.entries.len() > self.capacity {
            let (&oldest_tick, &oldest_key) = st.order.iter().next().expect("order tracks entries");
            st.order.remove(&oldest_tick);
            st.entries.remove(&oldest_key);
            evicted += 1;
        }
        evicted
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let m = LruMap::new(2);
        assert_eq!(m.insert(1, "a"), 0);
        assert_eq!(m.insert(2, "b"), 0);
        assert_eq!(m.get(1), Some("a")); // touch 1 → 2 is LRU
        assert_eq!(m.insert(3, "c"), 1);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(2), None);
        assert_eq!(m.get(1), Some("a"));
        assert_eq!(m.get(3), Some("c"));
    }

    #[test]
    fn reinsert_refreshes_not_duplicates() {
        let m = LruMap::new(2);
        m.insert(1, "a");
        m.insert(1, "a2");
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(1), Some("a2"));
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let m = LruMap::new(0);
        assert_eq!(m.insert(1, "a"), 1);
        assert!(m.is_empty());
        assert_eq!(m.get(1), None);
    }
}
