//! The `perflow-serve` daemon binary: parse flags, start the server,
//! block until a `POST /shutdown` drains it.

use serve::{Server, ServerConfig};

const USAGE: &str = "perflow-serve [options]

Options:
  --addr HOST:PORT            bind address (default 127.0.0.1:7070, port 0 = ephemeral)
  --workers N                 executor threads (default 4)
  --queue-cap N               bounded job-queue capacity (default 64)
  --tenant-quota N            max active jobs per tenant (default 8)
  --cache-capacity N          pass-result cache entry cap (default 1024)
  --run-cache-capacity N      simulated-run cache entry cap (default 16)
  --report-cache-capacity N   rendered-report cache entry cap (default 256)
  --span-cap N                span-storage cap of the trace store (default 65536)
  --api-key KEY               accepted API key (repeatable; none = open server)
  --admin-key KEY             require this X-Admin-Key on POST /shutdown
  --help                      print this help
";

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:7070".into(),
        ..ServerConfig::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr")?.clone(),
            "--workers" => {
                cfg.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers needs an integer".to_string())?
            }
            "--queue-cap" => {
                cfg.queue_capacity = value("--queue-cap")?
                    .parse()
                    .map_err(|_| "--queue-cap needs an integer".to_string())?
            }
            "--tenant-quota" => {
                cfg.tenant_quota = value("--tenant-quota")?
                    .parse()
                    .map_err(|_| "--tenant-quota needs an integer".to_string())?
            }
            "--cache-capacity" => {
                cfg.pass_cache_capacity = value("--cache-capacity")?
                    .parse()
                    .map_err(|_| "--cache-capacity needs an integer".to_string())?
            }
            "--run-cache-capacity" => {
                cfg.run_cache_capacity = value("--run-cache-capacity")?
                    .parse()
                    .map_err(|_| "--run-cache-capacity needs an integer".to_string())?
            }
            "--report-cache-capacity" => {
                cfg.report_cache_capacity = value("--report-cache-capacity")?
                    .parse()
                    .map_err(|_| "--report-cache-capacity needs an integer".to_string())?
            }
            "--span-cap" => {
                cfg.span_cap = value("--span-cap")?
                    .parse()
                    .map_err(|_| "--span-cap needs an integer".to_string())?
            }
            "--api-key" => cfg.api_keys.push(value("--api-key")?.clone()),
            "--admin-key" => cfg.admin_key = Some(value("--admin-key")?.clone()),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(cfg)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let workers = cfg.workers;
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "perflow-serve listening on {} ({} workers)",
        server.local_addr(),
        workers
    );
    let stats = server.wait();
    println!(
        "perflow-serve drained: {} completed ({} from report cache), {} failed",
        stats.completed, stats.report_cache_hits, stats.failed
    );
}
