//! # `perflow-serve` — a multi-tenant analysis daemon
//!
//! PerFlow's serving half: a zero-external-dependency HTTP/1.1 server
//! (std `TcpListener` + threads, matching the workspace's no-deps
//! style) that accepts analysis jobs and executes them through the
//! [`driver`] crate over a bounded, priority-ordered job queue.
//!
//! ## Endpoints
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /jobs` | Submit a job (JSON body: `workload`, `paradigm`, `ranks`, `threads`, `seed`, `priority`, resilience knobs). 202 + job id. |
//! | `POST /query` | Submit a perflow-query job (body adds a required `query` string). The query is statically linted (PF03xx) **before** admission: lint errors are a 400 with the diagnostics as JSON and nothing is enqueued or executed. 202 + job id otherwise. |
//! | `GET /jobs/:id` | Job status; includes the report, its digest, `cached` and a per-job `metrics` latency block once done. |
//! | `GET /jobs/:id/trace` | The job's end-to-end trace as Chrome-trace JSON: every span stamped with the job's trace id (= job id), from HTTP admission through queue wait to per-pass scheduler spans. |
//! | `GET /jobs` | The calling tenant's jobs (no report bodies). |
//! | `POST /bench-diff` | Regression watchdog: diff two bench/`RunMetrics` snapshots (body: `baseline`, `current`, optional `threshold`, `noise_floor_us`) into PF04xx verdicts. |
//! | `GET /metrics` | Prometheus text exposition of the whole engine + daemon. |
//! | `GET /healthz` | Liveness. |
//! | `POST /shutdown` | Graceful shutdown: stop accepting, drain queued and running jobs, exit. |
//!
//! ## Tracing
//!
//! Every admitted job gets a deterministic trace id equal to its job
//! id. The HTTP layer records a `job.admit` span, the executor records
//! `job.queue_wait` (admission → dispatch), `job.exec` and a whole-`job`
//! span, and the core scheduler's per-pass spans inherit the id through
//! a trace-scoped [`Obs`] handle, so `GET /jobs/:id/trace` returns one
//! connected tree across the serve, core, simrt and collect layers.
//!
//! ## Multi-tenancy and scheduling
//!
//! The `X-Api-Key` header names the tenant (`anonymous` when absent;
//! submissions are rejected 401 when the server was started with an
//! explicit key list). Each tenant may hold at most `tenant_quota`
//! *active* (queued + running) jobs — the 429 path. Admitted jobs land
//! on a bounded queue ordered by `(priority desc, arrival asc)`:
//! strict FIFO within a priority level.
//!
//! ## Caching
//!
//! Three content-fingerprint-keyed layers, all bounded:
//! * a **run cache** ([`driver::sim_fingerprint`] → [`RunHandle`]) so an
//!   identical simulation is never re-run,
//! * a **report cache** ([`driver::report_fingerprint`] /
//!   [`RunBundle::content_digest`](perflow::RunBundle) → rendered text +
//!   digest) so an identical submission is answered without re-running
//!   the analysis (`"cached": true` in the job JSON), and
//! * the core's bounded, single-flight [`PassCache`] shared across
//!   `comm` jobs for pass-level reuse keyed on
//!   [`Pass::fingerprint`](perflow::Pass::fingerprint).

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use driver::fnv_str;
use obs::names;
use perflow::{Obs, PassCache, PerFlow, RunHandle};
use simrt::RunConfig;

pub mod cache;
pub mod http;
pub mod jobs;
pub mod json;
pub mod queue;

use cache::LruMap;
use http::{respond, Request};
use jobs::{JobKind, JobRecord, JobRegistry, JobResult, JobSpec, Registry};
use json::{obj, Json};
use queue::{JobQueue, PushError};

/// Everything tunable about the daemon.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Executor threads pulling jobs off the queue.
    pub workers: usize,
    /// Maximum undispatched jobs across all tenants.
    pub queue_capacity: usize,
    /// Maximum active (queued + running) jobs per tenant.
    pub tenant_quota: usize,
    /// Entry cap of the shared pass-result cache (LRU).
    pub pass_cache_capacity: usize,
    /// Entry cap of the simulated-run cache (LRU).
    pub run_cache_capacity: usize,
    /// Entry cap of the rendered-report cache (LRU).
    pub report_cache_capacity: usize,
    /// Accepted API keys; empty accepts any caller (key or anonymous).
    pub api_keys: Vec<String>,
    /// When set, `POST /shutdown` requires this value in `X-Admin-Key`.
    pub admin_key: Option<String>,
    /// Span cap of the daemon's obs handle (bounds trace memory).
    pub span_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_capacity: 64,
            tenant_quota: 8,
            pass_cache_capacity: 1024,
            run_cache_capacity: 16,
            report_cache_capacity: 256,
            api_keys: Vec::new(),
            admin_key: None,
            span_cap: 65_536,
        }
    }
}

/// Counters reported by [`Server::shutdown`] after the drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainStats {
    /// Jobs that finished with a report over the server's lifetime.
    pub completed: u64,
    /// Jobs that finished with an error.
    pub failed: u64,
    /// Of the completed jobs, how many were answered from the report
    /// cache.
    pub report_cache_hits: u64,
}

struct Shared {
    cfg: ServerConfig,
    obs: Obs,
    pflow: PerFlow,
    registry: Registry,
    queue: JobQueue<u64>,
    pass_cache: PassCache,
    run_cache: LruMap<RunHandle>,
    report_cache: LruMap<Arc<(String, u64)>>,
    /// Set once shutdown begins: submissions are rejected 503.
    draining: AtomicBool,
    /// Signaled by `POST /shutdown` / [`Server::request_shutdown`].
    shutdown: (Mutex<bool>, Condvar),
}

impl Shared {
    fn tick_queue_gauge(&self) {
        self.obs
            .set_gauge(names::SERVE_QUEUE_DEPTH, self.queue.len() as f64);
    }
}

/// A running daemon. Dropping without [`Server::shutdown`] leaves
/// detached threads running; call `shutdown` (or serve `POST
/// /shutdown` + [`Server::wait`]) for a clean exit.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the acceptor and the executor pool, and return.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let obs = Obs::enabled_with_cap(cfg.span_cap);
        let shared = Arc::new(Shared {
            obs,
            pflow: PerFlow::new(),
            registry: Arc::new(JobRegistry::default()),
            queue: JobQueue::new(cfg.queue_capacity),
            pass_cache: PassCache::with_capacity(cfg.pass_cache_capacity),
            run_cache: LruMap::new(cfg.run_cache_capacity),
            report_cache: LruMap::new(cfg.report_cache_capacity),
            draining: AtomicBool::new(false),
            shutdown: (Mutex::new(false), Condvar::new()),
            cfg,
        });

        let workers = (0..shared.cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || executor_loop(&shared))
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, listener))
        };
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's telemetry handle (what `/metrics` exports).
    pub fn obs(&self) -> &Obs {
        &self.shared.obs
    }

    /// Ask the server to shut down, as `POST /shutdown` does. Returns
    /// immediately; pair with [`Server::wait`].
    pub fn request_shutdown(&self) {
        *self
            .shared
            .shutdown
            .0
            .lock()
            .unwrap_or_else(|p| p.into_inner()) = true;
        self.shared.shutdown.1.notify_all();
    }

    /// Block until shutdown is requested, then drain: stop accepting
    /// submissions, let queued and running jobs finish, join every
    /// thread, and report lifetime counters.
    pub fn wait(mut self) -> DrainStats {
        {
            let (lock, cv) = &self.shared.shutdown;
            let mut requested = lock.lock().unwrap_or_else(|p| p.into_inner());
            while !*requested {
                requested = cv.wait(requested).unwrap_or_else(|p| p.into_inner());
            }
        }
        let shared = &self.shared;
        shared.draining.store(true, Ordering::SeqCst);
        // Drain: queued jobs still dispatch; pop returns None once the
        // closed queue is empty, so executors exit after their last job.
        shared.queue.close();
        shared.registry.wait_idle();
        // Unblock the acceptor (it re-checks `draining` per connection).
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        DrainStats {
            completed: shared.obs.counter(names::SERVE_JOBS_COMPLETED),
            failed: shared.obs.counter(names::SERVE_JOBS_FAILED),
            report_cache_hits: shared.obs.counter(names::SERVE_REPORT_CACHE_HIT),
        }
    }

    /// [`Server::request_shutdown`] + [`Server::wait`].
    pub fn shutdown(self) -> DrainStats {
        self.request_shutdown();
        self.wait()
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            // The drain's wake-up connection (or a late client): stop
            // accepting. In-flight handler threads finish on their own.
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        std::thread::spawn(move || handle_connection(&shared, stream));
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    shared.obs.count(names::SERVE_HTTP_REQUESTS, 1);
    match Request::read_from(&mut reader) {
        Ok(req) => {
            let (status, content_type, body) = route(shared, &req);
            let _ = respond(&mut writer, status, content_type, &body);
        }
        Err(e) => {
            let body = obj(vec![("error", Json::Str(e.message().to_string()))]).render();
            let _ = respond(&mut writer, e.status(), "application/json", &body);
        }
    }
    let _ = writer.flush();
}

/// JSON error body helper.
fn err_body(msg: impl Into<String>) -> String {
    obj(vec![("error", Json::Str(msg.into()))]).render()
}

/// The caller's tenant identity, or an auth failure response.
fn authenticate(shared: &Shared, req: &Request) -> Result<String, (u16, String)> {
    let key = req.header("x-api-key");
    if shared.cfg.api_keys.is_empty() {
        return Ok(key.unwrap_or("anonymous").to_string());
    }
    match key {
        Some(k) if shared.cfg.api_keys.iter().any(|a| a == k) => Ok(k.to_string()),
        Some(_) => Err((401, err_body("unknown API key"))),
        None => Err((401, err_body("missing X-Api-Key header"))),
    }
}

type Response = (u16, &'static str, String);

fn route(shared: &Arc<Shared>, req: &Request) -> Response {
    let path = req.path.trim_end_matches('/');
    let path = if path.is_empty() { "/" } else { path };
    match (req.method.as_str(), path) {
        ("GET", "/") => (
            200,
            "application/json",
            obj(vec![
                ("name", Json::Str("perflow-serve".into())),
                (
                    "endpoints",
                    Json::Arr(
                        [
                            "POST /jobs",
                            "POST /query",
                            "POST /bench-diff",
                            "GET /jobs",
                            "GET /jobs/:id",
                            "GET /jobs/:id/trace",
                            "GET /metrics",
                            "GET /healthz",
                            "POST /shutdown",
                        ]
                        .iter()
                        .map(|s| Json::Str(s.to_string()))
                        .collect(),
                    ),
                ),
                ("workers", Json::Num(shared.cfg.workers as f64)),
                (
                    "queue_capacity",
                    Json::Num(shared.cfg.queue_capacity as f64),
                ),
                ("tenant_quota", Json::Num(shared.cfg.tenant_quota as f64)),
            ])
            .render(),
        ),
        ("GET", "/healthz") => (
            200,
            "application/json",
            obj(vec![("status", Json::Str("ok".into()))]).render(),
        ),
        ("GET", "/metrics") => {
            shared.tick_queue_gauge();
            // Surface the core pass cache's counters as gauges so all
            // three cache layers show up in one scrape.
            let pc = shared.pass_cache.stats();
            shared
                .obs
                .set_gauge(names::SERVE_PASS_CACHE_HITS, pc.hits as f64);
            shared
                .obs
                .set_gauge(names::SERVE_PASS_CACHE_MISSES, pc.misses as f64);
            shared
                .obs
                .set_gauge(names::SERVE_PASS_CACHE_EVICT, pc.evictions as f64);
            (200, "text/plain; version=0.0.4", shared.obs.prometheus())
        }
        ("POST", "/jobs") => submit(shared, req, false),
        ("POST", "/query") => submit(shared, req, true),
        ("POST", "/bench-diff") => bench_diff_endpoint(shared, req),
        ("GET", "/jobs") => match authenticate(shared, req) {
            Err((status, body)) => (status, "application/json", body),
            Ok(tenant) => {
                let jobs: Vec<Json> = shared
                    .registry
                    .for_tenant(&tenant)
                    .iter()
                    .map(|j| j.to_json(false))
                    .collect();
                (
                    200,
                    "application/json",
                    obj(vec![("jobs", Json::Arr(jobs))]).render(),
                )
            }
        },
        ("GET", p) if p.starts_with("/jobs/") && p.ends_with("/trace") => {
            let id_text = &p["/jobs/".len()..p.len() - "/trace".len()];
            job_trace(shared, req, id_text)
        }
        ("GET", p) if p.starts_with("/jobs/") => job_status(shared, req, &p["/jobs/".len()..]),
        ("POST", "/shutdown") => {
            if let Some(admin) = &shared.cfg.admin_key {
                if req.header("x-admin-key") != Some(admin.as_str()) {
                    return (403, "application/json", err_body("X-Admin-Key required"));
                }
            }
            let active = shared.registry.active_total();
            // Signal the waiter; the drain itself happens in
            // `Server::wait`, off this connection thread.
            *shared.shutdown.0.lock().unwrap_or_else(|p| p.into_inner()) = true;
            shared.shutdown.1.notify_all();
            (
                202,
                "application/json",
                obj(vec![
                    ("status", Json::Str("draining".into())),
                    ("active_jobs", Json::Num(active as f64)),
                ])
                .render(),
            )
        }
        (_, "/jobs")
        | (_, "/query")
        | (_, "/bench-diff")
        | (_, "/metrics")
        | (_, "/healthz")
        | (_, "/shutdown")
        | (_, "/") => (405, "application/json", err_body("method not allowed")),
        _ => (404, "application/json", err_body("not found")),
    }
}

fn submit(shared: &Arc<Shared>, req: &Request, require_query: bool) -> Response {
    let tenant = match authenticate(shared, req) {
        Ok(t) => t,
        Err((status, body)) => return (status, "application/json", body),
    };
    if shared.draining.load(Ordering::SeqCst) {
        shared.obs.count(names::SERVE_REJECT_FULL, 1);
        return (503, "application/json", err_body("server is draining"));
    }
    let body = match req.body_str() {
        Ok(b) => b,
        Err(e) => return (400, "application/json", err_body(e.message())),
    };
    let parsed = match Json::parse(body) {
        Ok(v) => v,
        Err(e) => return (400, "application/json", err_body(format!("bad JSON: {e}"))),
    };
    let spec = match JobSpec::from_json(&parsed) {
        Ok(s) => s,
        Err(e) => return (400, "application/json", err_body(e)),
    };
    if require_query && !matches!(spec.kind, JobKind::Query(_)) {
        return (
            400,
            "application/json",
            err_body("missing required string field `query`"),
        );
    }
    // Static gate: a query job never reaches the queue with lint
    // errors, so executors only ever see verified query programs.
    if let JobKind::Query(text) = &spec.kind {
        let d = driver::check_query(text);
        if d.has_errors() {
            return (
                400,
                "application/json",
                format!(
                    "{{\"error\":\"invalid query\",\"summary\":\"{}\",\"diagnostics\":{}}}",
                    json::escape(&d.summary()),
                    d.render_json()
                ),
            );
        }
    }
    let admitted_us = shared.obs.now_us();
    let record = match shared
        .registry
        .admit(&tenant, spec, shared.cfg.tenant_quota, admitted_us)
    {
        Ok(r) => r,
        Err(active) => {
            shared.obs.count(names::SERVE_REJECT_QUOTA, 1);
            return (
                429,
                "application/json",
                obj(vec![
                    ("error", Json::Str("tenant quota exceeded".into())),
                    ("active", Json::Num(active as f64)),
                    ("quota", Json::Num(shared.cfg.tenant_quota as f64)),
                ])
                .render(),
            );
        }
    };
    match shared.queue.push(record.spec.priority, record.id) {
        Ok(depth) => {
            // The job's trace starts here: a Serve-layer span stamped
            // with the deterministic trace id (= job id).
            shared.obs.with_trace(record.id).record_span(
                obs::Layer::Serve,
                "job.admit",
                record.id as u32,
                admitted_us,
                shared.obs.now_us(),
                &[("priority", record.spec.priority as f64)],
            );
            shared.obs.count(names::SERVE_JOBS_SUBMITTED, 1);
            shared.obs.set_gauge(names::SERVE_QUEUE_DEPTH, depth as f64);
            (
                202,
                "application/json",
                obj(vec![
                    ("id", Json::Num(record.id as f64)),
                    ("status", Json::Str("queued".into())),
                    ("tenant", Json::Str(tenant)),
                    ("queue_depth", Json::Num(depth as f64)),
                ])
                .render(),
            )
        }
        Err(e) => {
            shared.registry.retract(record.id);
            shared.obs.count(names::SERVE_REJECT_FULL, 1);
            let msg = match e {
                PushError::Full => "job queue is full",
                PushError::Closed => "server is draining",
            };
            (503, "application/json", err_body(msg))
        }
    }
}

fn job_status(shared: &Arc<Shared>, req: &Request, id_text: &str) -> Response {
    let tenant = match authenticate(shared, req) {
        Ok(t) => t,
        Err((status, body)) => return (status, "application/json", body),
    };
    if req.method != "GET" {
        return (405, "application/json", err_body("method not allowed"));
    }
    let Ok(id) = id_text.parse::<u64>() else {
        return (
            400,
            "application/json",
            err_body("job id must be an integer"),
        );
    };
    match shared.registry.get(id) {
        None => (404, "application/json", err_body("no such job")),
        Some(j) if j.tenant != tenant => {
            // Existence of other tenants' jobs is not disclosed.
            (404, "application/json", err_body("no such job"))
        }
        Some(j) => (200, "application/json", j.to_json(true).render()),
    }
}

/// `GET /jobs/:id/trace` — the job's spans as Chrome-trace JSON.
/// Tenant visibility mirrors [`job_status`]: other tenants' jobs 404.
fn job_trace(shared: &Arc<Shared>, req: &Request, id_text: &str) -> Response {
    let tenant = match authenticate(shared, req) {
        Ok(t) => t,
        Err((status, body)) => return (status, "application/json", body),
    };
    let Ok(id) = id_text.parse::<u64>() else {
        return (
            400,
            "application/json",
            err_body("job id must be an integer"),
        );
    };
    match shared.registry.get(id) {
        None => (404, "application/json", err_body("no such job")),
        Some(j) if j.tenant != tenant => (404, "application/json", err_body("no such job")),
        Some(_) => (200, "application/json", shared.obs.chrome_trace_for(id)),
    }
}

/// `POST /bench-diff` — the regression watchdog over two snapshots.
///
/// Body: `{"baseline": ..., "current": ..., "threshold"?: f,
/// "noise_floor_us"?: f}` where each snapshot is either an embedded
/// bench/`RunMetrics` JSON object or a string holding one.
fn bench_diff_endpoint(shared: &Arc<Shared>, req: &Request) -> Response {
    if let Err((status, body)) = authenticate(shared, req) {
        return (status, "application/json", body);
    }
    let body = match req.body_str() {
        Ok(b) => b,
        Err(e) => return (400, "application/json", err_body(e.message())),
    };
    let parsed = match Json::parse(body) {
        Ok(v) => v,
        Err(e) => return (400, "application/json", err_body(format!("bad JSON: {e}"))),
    };
    let snapshot = |field: &str| -> Result<driver::bench_diff::BenchSnapshot, String> {
        let v = parsed
            .get(field)
            .ok_or_else(|| format!("missing required field `{field}`"))?;
        match v {
            Json::Str(text) => driver::bench_diff::BenchSnapshot::parse(text)
                .map_err(|e| format!("`{field}`: {e}")),
            other => driver::bench_diff::BenchSnapshot::from_json(other)
                .map_err(|e| format!("`{field}`: {e}")),
        }
    };
    let mut cfg = driver::bench_diff::BenchDiffConfig::default();
    if let Some(t) = parsed.get("threshold") {
        match t.as_f64() {
            Some(v) if v >= 0.0 => cfg.threshold = v,
            _ => {
                return (
                    400,
                    "application/json",
                    err_body("`threshold` must be a non-negative number"),
                )
            }
        }
    }
    if let Some(n) = parsed.get("noise_floor_us") {
        match n.as_f64() {
            Some(v) if v >= 0.0 => cfg.noise_floor_us = v,
            _ => {
                return (
                    400,
                    "application/json",
                    err_body("`noise_floor_us` must be a non-negative number"),
                )
            }
        }
    }
    let outcome = match (snapshot("baseline"), snapshot("current")) {
        (Ok(b), Ok(c)) => match driver::bench_diff::bench_diff(&b, &c, &cfg) {
            Ok(o) => o,
            Err(e) => return (400, "application/json", err_body(e.to_string())),
        },
        (Err(e), _) | (_, Err(e)) => return (400, "application/json", err_body(e)),
    };
    shared.obs.count(names::SERVE_BENCH_DIFF, 1);
    (200, "application/json", outcome.render_json())
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

fn executor_loop(shared: &Arc<Shared>) {
    while let Some(id) = shared.queue.pop() {
        shared.tick_queue_gauge();
        let Some(record) = shared.registry.get(id) else {
            continue;
        };
        // Everything this job does — including the core scheduler's
        // per-pass spans — records through a trace-scoped handle, so
        // `/jobs/:id/trace` can filter one connected tree back out.
        let jobobs = shared.obs.with_trace(id);
        let lane = id as u32;
        let dispatched_us = jobobs.now_us();
        shared.registry.start(id, dispatched_us);
        jobobs.record_span(
            obs::Layer::Serve,
            "job.queue_wait",
            lane,
            record.admitted_us.min(dispatched_us),
            dispatched_us,
            &[("priority", record.spec.priority as f64)],
        );
        if record.spec.hold_ms > 0 {
            std::thread::sleep(Duration::from_millis(record.spec.hold_ms));
        }
        let outcome = execute(shared, &record, &jobobs);
        let finished_us = jobobs.now_us();
        match &outcome {
            Ok(_) => shared.obs.count(names::SERVE_JOBS_COMPLETED, 1),
            Err(_) => shared.obs.count(names::SERVE_JOBS_FAILED, 1),
        }
        jobobs.record_span(
            obs::Layer::Serve,
            "job.exec",
            lane,
            dispatched_us,
            finished_us,
            &[],
        );
        jobobs.record_span(
            obs::Layer::Serve,
            "job",
            lane,
            record.admitted_us.min(dispatched_us),
            finished_us,
            &[("priority", record.spec.priority as f64)],
        );
        let queue_wait = (dispatched_us - record.admitted_us).max(0.0);
        let exec = (finished_us - dispatched_us).max(0.0);
        let total = (finished_us - record.admitted_us).max(0.0);
        shared
            .obs
            .observe(names::SERVE_JOB_QUEUE_WAIT_US, queue_wait);
        shared.obs.observe(names::SERVE_JOB_EXEC_US, exec);
        shared.obs.observe(names::SERVE_JOB_TOTAL_US, total);
        for (suffix, value) in [
            ("queue_wait_us", queue_wait),
            ("exec_us", exec),
            ("total_us", total),
        ] {
            shared
                .obs
                .observe(format!("serve.tenant.{}.{suffix}", record.tenant), value);
        }
        shared.registry.finish(id, outcome, finished_us);
    }
}

/// Run one job through the three cache layers (run → report → pass).
/// `obs` is the job's trace-scoped handle: spans recorded below it
/// (simulator, collector, scheduler passes) carry the job's trace id.
fn execute(shared: &Arc<Shared>, record: &JobRecord, obs: &Obs) -> Result<JobResult, String> {
    let spec = &record.spec;
    let prog = driver::workload(&spec.workload)
        .ok_or_else(|| format!("unknown workload {}", spec.workload))?;

    let sim_fp = spec.sim_fingerprint();
    let run = match shared.run_cache.get(sim_fp) {
        Some(run) => {
            obs.count(names::SERVE_RUN_CACHE_HIT, 1);
            run
        }
        None => {
            obs.count(names::SERVE_RUN_CACHE_MISS, 1);
            let run_cfg = RunConfig::new(spec.cfg.ranks)
                .with_threads(spec.cfg.threads)
                .with_seed(spec.cfg.seed)
                .with_obs(obs.clone());
            let run = shared
                .pflow
                .run(&prog, &run_cfg)
                .map_err(|e| format!("run failed: {e}"))?;
            let evicted = shared.run_cache.insert(sim_fp, run.clone());
            if evicted > 0 {
                obs.count(names::SERVE_RUN_CACHE_EVICT, evicted as u64);
            }
            run
        }
    };

    let report_fp = match &spec.kind {
        JobKind::Paradigm(p) => driver::report_fingerprint(*p, &spec.cfg, &run),
        // The comm session's report depends on the run plus the
        // resilience knobs that can degrade it.
        JobKind::Comm => fnv_str(&format!(
            "comm:{:016x}:{:?}:{:?}:{:?}",
            run.content_digest(),
            spec.resilience.fail_policy,
            spec.resilience.retries,
            spec.resilience.pass_timeout_ms,
        )),
        JobKind::Query(text) => driver::query_fingerprint(&run, text),
    };
    if let Some(hit) = shared.report_cache.get(report_fp) {
        obs.count(names::SERVE_REPORT_CACHE_HIT, 1);
        return Ok(JobResult {
            report: hit.0.clone(),
            report_digest: hit.1,
            cached: true,
            run_metrics: None,
        });
    }
    obs.count(names::SERVE_REPORT_CACHE_MISS, 1);

    let mut run_metrics = None;
    let (report, report_digest) = match &spec.kind {
        JobKind::Paradigm(p) => {
            let rendered = driver::analyze(&shared.pflow, &prog, &run, *p, &spec.cfg)
                .map_err(|e| e.to_string())?
                .render();
            let digest = fnv_str(&rendered);
            (rendered, digest)
        }
        JobKind::Query(text) => {
            // Submission already linted the query; a rejection here
            // means the text was tampered with between admit and run.
            let out = driver::run_query(&run, text).map_err(|e| e.to_string())?;
            if !out.executed() {
                return Err(format!(
                    "query rejected by static analysis ({})",
                    out.diagnostics.summary()
                ));
            }
            let rendered = out.render_text();
            let digest = fnv_str(&rendered);
            (rendered, digest)
        }
        JobKind::Comm => {
            let ctx = driver::checkpoint_context(&spec.workload, &spec.cfg, &run);
            let out = driver::comm_analysis_session_with_cache(
                &run,
                obs,
                &spec.resilience,
                ctx,
                &shared.pass_cache,
            )
            .map_err(|e| e.to_string())?;
            run_metrics = Some(out.outputs.metrics.render_json());
            (out.report, out.report_digest)
        }
    };
    let evicted = shared
        .report_cache
        .insert(report_fp, Arc::new((report.clone(), report_digest)));
    if evicted > 0 {
        obs.count(names::SERVE_REPORT_CACHE_EVICT, evicted as u64);
    }
    Ok(JobResult {
        report,
        report_digest,
        cached: false,
        run_metrics,
    })
}

// Re-export the pieces front-ends and tests need.
pub use jobs::{JobKind as ServeJobKind, JobStatus as ServeJobStatus};
