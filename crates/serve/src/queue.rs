//! Bounded job queue with FIFO-within-priority scheduling.
//!
//! Jobs are ordered by `(priority descending, arrival ascending)`: a
//! higher-priority job always dispatches first, and equal-priority jobs
//! dispatch in submission order. The queue is a rendezvous for the
//! accept threads (push) and the executor pool (blocking pop); closing
//! it drains — pops keep returning queued items until the queue is
//! empty, then return `None` so workers can exit.

use std::cmp::Reverse;
use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex};

/// Push failure: the queue is at capacity or shutting down.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue holds `capacity` undispatched jobs.
    Full,
    /// [`JobQueue::close`] was called; no new work is accepted.
    Closed,
}

struct State<T> {
    /// `(priority desc, seq asc) → item`; `iter().next()` is the head.
    items: BTreeMap<(Reverse<u8>, u64), T>,
    seq: u64,
    closed: bool,
}

/// A bounded, closable priority queue (see module docs).
pub struct JobQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// An empty queue holding at most `capacity` undispatched items.
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new(State {
                items: BTreeMap::new(),
                seq: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Enqueue `item` at `priority` (higher dispatches first). Returns
    /// the queue depth after the push.
    pub fn push(&self, priority: u8, item: T) -> Result<usize, PushError> {
        let mut st = self.lock();
        if st.closed {
            return Err(PushError::Closed);
        }
        if st.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        let seq = st.seq;
        st.seq += 1;
        st.items.insert((Reverse(priority), seq), item);
        let depth = st.items.len();
        drop(st);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Dequeue the highest-priority, oldest item, blocking while the
    /// queue is open and empty. Returns `None` only when the queue is
    /// closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.lock();
        loop {
            if let Some((&key, _)) = st.items.iter().next() {
                return st.items.remove(&key);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Stop accepting work and wake every blocked popper. Already-queued
    /// items still drain through [`JobQueue::pop`].
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Number of undispatched items.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_priority() {
        let q = JobQueue::new(16);
        q.push(1, "low-a").unwrap();
        q.push(5, "high-a").unwrap();
        q.push(1, "low-b").unwrap();
        q.push(5, "high-b").unwrap();
        q.push(9, "urgent").unwrap();
        let order: Vec<_> = (0..5).map(|_| q.pop().unwrap()).collect();
        assert_eq!(order, ["urgent", "high-a", "high-b", "low-a", "low-b"]);
    }

    #[test]
    fn bounded_and_closable() {
        let q = JobQueue::new(2);
        q.push(0, 1).unwrap();
        q.push(0, 2).unwrap();
        assert_eq!(q.push(0, 3), Err(PushError::Full));
        q.close();
        assert_eq!(q.push(9, 4), Err(PushError::Closed));
        // Close drains: queued items still pop, then None.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_pop_wakes_on_push_and_close() {
        let q = Arc::new(JobQueue::new(8));
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || (q.pop(), q.pop()))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(0, 42).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(popper.join().unwrap(), (Some(42), None));
    }
}
