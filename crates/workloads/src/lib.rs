//! # Workload models
//!
//! Synthetic program models with the computation/communication skeletons
//! of the paper's evaluated programs (§5.1): the NPB kernels BT, CG, EP,
//! FT, IS, LU, MG, SP, plus the three case-study applications —
//! ZeusMP-like (astrophysics stencil with a boundary-loop imbalance that
//! hurts scalability), LAMMPS-like (molecular dynamics with spatial load
//! imbalance propagating through blocking reverse communication) and
//! Vite-like (multithreaded Louvain with thread-unsafe allocation
//! contention).
//!
//! Per DESIGN.md §2, these skeletons plant the *same bug structure at the
//! same code positions* as the real applications, so PerFlow's paradigms
//! must find them the same way the paper reports. Source-size and
//! binary-size metadata (Table 2's `Code` and `Binary` columns) are set
//! to the paper's reported values; graph sizes emerge from the model
//! structure.

pub mod lammps;
pub mod npb;
pub mod vite;
pub mod zeusmp;

pub use lammps::{lammps, lammps_balanced};
pub use npb::{bt, cg, ep, ft, is, lu, mg, npb_class_factor, sp};
pub use vite::{vite, vite_optimized};
pub use zeusmp::{zeusmp, zeusmp_fixed};

use progmodel::Program;

/// The Table 1/2 program list, in the paper's column order.
pub fn all_programs() -> Vec<Program> {
    vec![
        bt(),
        cg(),
        ep(),
        ft(),
        mg(),
        sp(),
        lu(),
        is(),
        zeusmp(),
        lammps(),
        vite(),
    ]
}

/// Short display names matching the paper's tables.
pub const PROGRAM_NAMES: &[&str] = &[
    "BT", "CG", "EP", "FT", "MG", "SP", "LU", "IS", "ZMP", "LMP", "Vite",
];

#[cfg(test)]
mod tests {
    use super::*;
    use simrt::{simulate, RunConfig};

    #[test]
    fn every_program_builds_and_runs() {
        for (prog, name) in all_programs().iter().zip(PROGRAM_NAMES) {
            let cfg = RunConfig::new(4).with_threads(2);
            let data =
                simulate(prog, &cfg).unwrap_or_else(|e| panic!("{name} failed to simulate: {e}"));
            assert!(data.total_time > 0.0, "{name} produced no time");
            assert!(!data.samples.is_empty(), "{name} produced no samples");
        }
    }

    #[test]
    fn registry_matches_names() {
        assert_eq!(all_programs().len(), PROGRAM_NAMES.len());
    }
}
