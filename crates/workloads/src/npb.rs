//! NPB-like kernel models (BT, CG, EP, FT, IS, LU, MG, SP).
//!
//! Each model reproduces the kernel's characteristic communication
//! pattern and a structure of roughly the paper's relative richness
//! (Table 2 orders top-down PAG sizes MG > BT > FT > SP > LU > IS ≈ CG >
//! EP). Costs are in simulated µs and scale with the `class` parameter
//! and rank count so strong-scaling studies behave sensibly.

use progmodel::{c, noise, nranks, param, rank, Expr, FuncBuilder, Program, ProgramBuilder};

/// Emit `n` straight-line compute kernels (the stand-in for large
/// unrolled Fortran routines; gives functions realistic vertex counts).
fn straightline(f: &mut FuncBuilder<'_>, prefix: &str, n: usize, each_cost: Expr) {
    for i in 0..n {
        f.compute(
            &format!("{prefix}_{i}"),
            each_cost.clone() * noise(0.03, i as u64),
        );
    }
}

/// Per-rank share of an N^3 problem, as a cost expression.
fn share(total_us: f64) -> Expr {
    c(total_us) * param("class_scale") / nranks()
}

/// Multiplier for the NPB problem classes, relative to each model's
/// built-in default (CLASS C, the paper's setting). Override a run with
/// `RunConfig::with_param("class_scale", base * npb_class_factor('B'))`.
pub fn npb_class_factor(class: char) -> f64 {
    match class.to_ascii_uppercase() {
        'S' => 0.01,
        'W' => 0.05,
        'A' => 0.25,
        'B' => 0.5,
        'C' => 1.0,
        'D' => 8.0,
        _ => 1.0,
    }
}

/// BT: block tridiagonal ADI solver. Three directional sweeps per step,
/// each with face exchanges (isend/irecv/waitall per dimension).
pub fn bt() -> Program {
    let mut pb = ProgramBuilder::new("BT");
    pb.param("class_scale", 30.0);
    let main = pb.declare("main", "bt.f");
    let adi = pb.declare("adi", "bt.f");
    let mut solves = Vec::new();
    for dim in ["x", "y", "z"] {
        let fid = pb.declare(&format!("{dim}_solve"), "bt.f");
        pb.define(fid, |f| {
            f.loop_(&format!("loop_{dim}_cells"), c(6.0), |b| {
                straightline(b, &format!("{dim}_backsub"), 24, share(20.0));
                b.irecv((rank() + nranks() - 1.0).rem(nranks()), c(16_384.0), 1);
                b.isend((rank() + 1.0).rem(nranks()), c(16_384.0), 1);
                b.waitall();
            });
        });
        solves.push(fid);
    }
    let rhs = pb.declare("compute_rhs", "bt.f");
    pb.define(rhs, |f| {
        f.loop_("loop_rhs", c(5.0), |b| {
            straightline(b, "rhs_kernel", 30, share(15.0));
        });
    });
    pb.define(adi, |f| {
        f.call(rhs);
        for &s in &solves {
            f.call(s);
        }
        straightline(f, "add", 8, share(10.0));
    });
    pb.define(main, |f| {
        f.loop_("timestep", c(12.0), |b| {
            b.call(adi);
        });
        f.allreduce(c(40.0));
    });
    pb.kloc(11.3);
    pb.binary_bytes(490_000);
    pb.build(main)
}

/// CG: conjugate gradient. The collective reduce is implemented with
/// three point-to-point phases (the paper calls this pattern out as the
/// reason CG has the largest dynamic overhead).
pub fn cg() -> Program {
    let mut pb = ProgramBuilder::new("CG");
    pb.param("class_scale", 60.0);
    let main = pb.declare("main", "cg.f");
    let matvec = pb.declare("sparse_matvec", "cg.f");
    let p2p_reduce = pb.declare("p2p_reduce", "cg.f");
    pb.define(matvec, |f| {
        straightline(f, "spmv", 10, share(120.0));
    });
    pb.define(p2p_reduce, |f| {
        // Three p2p exchange phases emulating a reduce.
        for phase in 0..3u32 {
            f.loop_(&format!("reduce_phase_{phase}"), c(1.0), |b| {
                b.irecv(
                    rank() + (rank().rem(2.0).eq(0.0).select(c(1.0), c(-1.0))),
                    c(8.0),
                    10 + phase,
                );
                b.isend(
                    rank() + (rank().rem(2.0).eq(0.0).select(c(1.0), c(-1.0))),
                    c(8.0),
                    10 + phase,
                );
                b.waitall();
            });
        }
    });
    pb.define(main, |f| {
        f.loop_("cg_iter", c(25.0), |b| {
            b.call(matvec);
            b.call(p2p_reduce);
            straightline(b, "axpy", 4, share(20.0));
        });
    });
    pb.kloc(2.0);
    pb.binary_bytes(97_000);
    pb.build(main)
}

/// EP: embarrassingly parallel random-number kernel; communication is a
/// handful of final allreduces.
pub fn ep() -> Program {
    let mut pb = ProgramBuilder::new("EP");
    pb.param("class_scale", 80.0);
    let main = pb.declare("main", "ep.f");
    pb.define(main, |f| {
        f.loop_("batch", c(8.0), |b| {
            straightline(b, "gaussian_pairs", 6, share(500.0));
        });
        for _ in 0..3 {
            f.allreduce(c(16.0));
        }
    });
    pb.kloc(0.6);
    pb.binary_bytes(60_000);
    pb.build(main)
}

/// FT: 3-D FFT; each iteration performs local FFTs plus an all-to-all
/// transpose.
pub fn ft() -> Program {
    let mut pb = ProgramBuilder::new("FT");
    pb.param("class_scale", 30.0);
    let main = pb.declare("main", "ft.f");
    let fft3d = pb.declare("fft3d", "ft.f");
    pb.define(fft3d, |f| {
        for dim in 0..3u32 {
            f.loop_(&format!("fft_dim_{dim}"), c(4.0), |b| {
                straightline(b, &format!("cfftz_{dim}"), 32, share(16.0));
            });
        }
        f.alltoall(c(65_536.0) / nranks());
    });
    pb.define(main, |f| {
        f.loop_("ft_iter", c(10.0), |b| {
            b.call(fft3d);
            straightline(b, "evolve", 18, share(9.0));
        });
        f.reduce(c(0.0), c(16.0));
    });
    pb.kloc(2.5);
    pb.binary_bytes(222_000);
    pb.build(main)
}

/// IS: integer bucket sort; key exchange is alltoall + allreduce.
pub fn is() -> Program {
    let mut pb = ProgramBuilder::new("IS");
    pb.param("class_scale", 300.0);
    let main = pb.declare("main", "is.c");
    pb.define(main, |f| {
        f.loop_("is_iter", c(10.0), |b| {
            straightline(b, "bucket_count", 5, share(80.0));
            b.allreduce(c(1024.0));
            b.alltoall(c(32_768.0) / nranks());
            straightline(b, "local_rank", 4, share(60.0));
        });
    });
    pb.kloc(1.3);
    pb.binary_bytes(37_000);
    pb.build(main)
}

/// LU: SSOR with wavefront pipelining — many small blocking exchanges.
pub fn lu() -> Program {
    let mut pb = ProgramBuilder::new("LU");
    pb.param("class_scale", 50.0);
    let main = pb.declare("main", "lu.f");
    let blts = pb.declare("blts", "lu.f");
    let buts = pb.declare("buts", "lu.f");
    for (fid, dir) in [(blts, "lower"), (buts, "upper")] {
        pb.define(fid, move |f| {
            f.loop_(&format!("wavefront_{dir}"), c(8.0), |b| {
                b.branch(
                    &format!("has_pred_{dir}"),
                    rank().lt(1.0).select(c(0.0), c(1.0)),
                    |t| t.recv(rank() - c(1.0), c(2_048.0), 5),
                    |_| {},
                );
                straightline(b, &format!("{dir}_sweep"), 14, share(30.0));
                b.branch(
                    &format!("has_succ_{dir}"),
                    (rank() + 1.0).lt(nranks()),
                    |t| t.send(rank() + c(1.0), c(2_048.0), 5),
                    |_| {},
                );
            });
        });
    }
    pb.define(main, |f| {
        f.loop_("ssor_iter", c(6.0), |b| {
            b.call(blts);
            b.call(buts);
            straightline(b, "rhs_update", 10, share(20.0));
        });
        f.allreduce(c(40.0));
    });
    pb.kloc(7.7);
    pb.binary_bytes(325_000);
    pb.build(main)
}

/// MG: multigrid V-cycle — halo exchanges at every level, coarser levels
/// exchanging less data; the deepest structure of the NPB set.
pub fn mg() -> Program {
    let mut pb = ProgramBuilder::new("MG");
    pb.param("class_scale", 100.0);
    let main = pb.declare("main", "mg.f");
    let mut levels = Vec::new();
    for level in 0..5u32 {
        let fid = pb.declare(&format!("level_{level}"), "mg.f");
        let bytes = 8192.0 / (1 << level) as f64;
        pb.define(fid, move |f| {
            f.loop_(&format!("smooth_l{level}"), c(2.0), |b| {
                straightline(
                    b,
                    &format!("resid_l{level}"),
                    22,
                    share(18.0 / (1 << level) as f64),
                );
                b.irecv(
                    (rank() + nranks() - 1.0).rem(nranks()),
                    c(bytes),
                    20 + level,
                );
                b.isend((rank() + 1.0).rem(nranks()), c(bytes), 20 + level);
                b.waitall();
            });
            straightline(f, &format!("interp_l{level}"), 16, share(8.0));
        });
        levels.push(fid);
    }
    pb.define(main, |f| {
        f.loop_("vcycle", c(8.0), |b| {
            for &l in &levels {
                b.call(l);
            }
            b.allreduce(c(8.0));
        });
    });
    pb.kloc(2.8);
    pb.binary_bytes(270_000);
    pb.build(main)
}

/// SP: scalar pentadiagonal ADI; structurally like BT with slimmer
/// sweeps.
pub fn sp() -> Program {
    let mut pb = ProgramBuilder::new("SP");
    pb.param("class_scale", 40.0);
    let main = pb.declare("main", "sp.f");
    let mut solves = Vec::new();
    for dim in ["x", "y", "z"] {
        let fid = pb.declare(&format!("{dim}_solve"), "sp.f");
        pb.define(fid, |f| {
            f.loop_(&format!("loop_{dim}_lines"), c(5.0), |b| {
                straightline(b, &format!("{dim}_thomas"), 18, share(16.0));
                b.irecv((rank() + nranks() - 1.0).rem(nranks()), c(8_192.0), 2);
                b.isend((rank() + 1.0).rem(nranks()), c(8_192.0), 2);
                b.waitall();
            });
        });
        solves.push(fid);
    }
    pb.define(main, |f| {
        f.loop_("timestep", c(12.0), |b| {
            straightline(b, "rhs", 20, share(12.0));
            for &s in &solves {
                b.call(s);
            }
        });
        f.allreduce(c(40.0));
    });
    pb.kloc(6.3);
    pb.binary_bytes(357_000);
    pb.build(main)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrt::{simulate, CommKindTag, RunConfig};

    #[test]
    fn structural_richness_ordering_follows_paper() {
        // Table 2 orders top-down |V|: MG > BT > FT > SP > LU > IS/CG > EP.
        let count = |p: &Program| {
            let mut n = 0;
            p.visit_stmts(|_, _| n += 1);
            n
        };
        let (vmg, vbt, vft, vsp, vlu, vis, vcg, vep) = (
            count(&mg()),
            count(&bt()),
            count(&ft()),
            count(&sp()),
            count(&lu()),
            count(&is()),
            count(&cg()),
            count(&ep()),
        );
        assert!(vmg > vbt, "MG {vmg} vs BT {vbt}");
        assert!(vbt > vft, "BT {vbt} vs FT {vft}");
        assert!(vft > vsp, "FT {vft} vs SP {vsp}");
        assert!(vsp > vlu, "SP {vsp} vs LU {vlu}");
        assert!(vlu > vis, "LU {vlu} vs IS {vis}");
        assert!(vis >= vcg || vcg >= vis, "IS/CG comparable");
        assert!(vep < vcg, "EP smallest");
    }

    #[test]
    fn cg_uses_p2p_not_collectives_for_reduce() {
        let data = simulate(&cg(), &RunConfig::new(4)).unwrap();
        let p2p = data
            .comm_records
            .iter()
            .filter(|r| matches!(r.kind, CommKindTag::Isend | CommKindTag::Irecv))
            .count();
        let coll = data
            .comm_records
            .iter()
            .filter(|r| r.kind.is_collective())
            .count();
        assert!(p2p > 0);
        assert_eq!(coll, 0, "CG's reduce must be pure p2p");
    }

    #[test]
    fn ft_and_is_use_alltoall() {
        for prog in [ft(), is()] {
            let data = simulate(&prog, &RunConfig::new(4)).unwrap();
            assert!(
                data.comm_records
                    .iter()
                    .any(|r| r.kind == CommKindTag::Alltoall),
                "{} lacks alltoall",
                prog.name
            );
        }
    }

    #[test]
    fn lu_wavefront_pipelines() {
        let data = simulate(&lu(), &RunConfig::new(4)).unwrap();
        // Rank 0 leads the pipeline, so it reaches the final allreduce
        // first and waits longest; the last rank waits least.
        let ar_wait = |rank: u32| {
            data.comm_records
                .iter()
                .filter(|r| r.kind == CommKindTag::Allreduce && r.rank == rank)
                .map(|r| r.wait)
                .sum::<f64>()
        };
        assert!(
            ar_wait(0) > ar_wait(3),
            "rank0 wait {} vs rank3 wait {}",
            ar_wait(0),
            ar_wait(3)
        );
        // Blocking sends/recvs present.
        assert!(data
            .comm_records
            .iter()
            .any(|r| r.kind == CommKindTag::Recv));
    }

    #[test]
    fn ep_is_compute_dominated() {
        let data = simulate(&ep(), &RunConfig::new(4)).unwrap();
        let comm: f64 = data.comm_records.iter().map(|r| r.complete - r.post).sum();
        let total: f64 = data.elapsed.iter().sum();
        assert!(comm / total < 0.05, "EP comm share {}", comm / total);
    }

    #[test]
    fn strong_scaling_reduces_time() {
        for prog in [bt(), mg(), sp()] {
            let t4 = simulate(&prog, &RunConfig::new(4)).unwrap().total_time;
            let t16 = simulate(&prog, &RunConfig::new(16)).unwrap().total_time;
            assert!(
                t16 < t4,
                "{}: 16 ranks ({t16}) not faster than 4 ({t4})",
                prog.name
            );
        }
    }
}
