//! Vite-like distributed Louvain community detection (case study C, §5.5).
//!
//! Skeleton of the buggy path: `distExecuteLouvainIteration` runs a
//! per-thread vertex loop whose `unordered_map` updates call
//! `_M_realloc_insert` / `_M_emplace`, which in turn hit the *process
//! allocator* (`allocate` / `reallocate` / `deallocate`). Memory
//! allocation is thread-unsafe — an implicit lock serializes it — so
//! adding threads adds contention instead of speed: the paper measures 8
//! threads running *slower* than 2 (speedup 0.56×).
//!
//! **Planted bug:** every hash-map update performs allocator lock
//! acquisitions. With `T` threads the lock queue grows, and the region's
//! runtime is dominated by serialized hold time.
//!
//! [`vite_optimized`] models the paper's two fixes (static thread-local
//! buffers + a vector-based hashmap for tiny objects): allocator traffic
//! drops by ~16× and the remaining allocations are short, restoring
//! multi-threaded scaling (paper: 25.29× at 8 threads).

use progmodel::{c, noise, nranks, nthreads, param, Program, ProgramBuilder};

fn build(optimized: bool) -> Program {
    let mut pb = ProgramBuilder::new(if optimized { "Vite-opt" } else { "Vite" });
    pb.param("class_scale", 10.0);
    let main = pb.declare("main", "vite.cpp");
    let louvain = pb.declare("distExecuteLouvainIteration", "louvain.cpp");

    pb.define(louvain, |f| {
        f.thread_region(nthreads(), |t| {
            t.loop_("vertex_loop", c(12.0), |l| {
                // Scan the neighbourhood: parallel-friendly compute.
                l.compute(
                    "scan_neighbors",
                    c(180.0) * param("class_scale") * noise(0.08, 501) / nthreads(),
                );
                if optimized {
                    // Thread-local buffers: one short-lived allocation per
                    // whole loop body, vector-based map needs no rehash.
                    l.alloc("tl_buffer_touch", c(1.5) * param("class_scale"));
                } else {
                    // unordered_map growth: realloc-insert + emplace, each
                    // entering the allocator's critical section.
                    l.loop_("hash_updates", c(4.0), |h| {
                        h.alloc("_M_realloc_insert", c(14.0) * param("class_scale"));
                        h.alloc("_M_emplace", c(9.0) * param("class_scale"));
                    });
                }
            });
        });
    });

    // The remaining pipeline: graph loading, ghost exchange, community
    // rebuild — structurally present, cheap in this input.
    let mut phases = Vec::new();
    for pname in [
        "loadDistGraph",
        "exchangeGhosts",
        "fillRemoteCommunities",
        "updateRemoteCommunities",
        "distbuildNextLevelGraph",
        "distComputeModularity",
    ] {
        let fid = pb.declare(pname, "vite.cpp");
        pb.define(fid, move |f| {
            for i in 0..38 {
                f.compute(&format!("{pname}_{i}"), c(0.5));
            }
        });
        phases.push(fid);
    }
    let setup = pb.declare("setup", "vite.cpp");
    pb.define(setup, |f| {
        for &ph in &phases {
            f.call(ph);
        }
    });

    pb.define(main, |f| {
        f.call(setup);
        f.loop_("louvain_phase", c(6.0), |b| {
            b.call(louvain);
            b.allreduce(c(128.0)); // modularity reduction
            b.alltoall(c(8_192.0) / nranks()); // community migration
        });
    });
    pb.kloc(15.9);
    pb.binary_bytes(2_800_000);
    pb.build(main)
}

/// The buggy Vite-like model (allocator contention).
pub fn vite() -> Program {
    build(false)
}

/// The optimized variant (thread-local buffers + vector-based hashmap).
pub fn vite_optimized() -> Program {
    build(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrt::{simulate, RunConfig};

    fn time_with_threads(prog: &Program, threads: u32) -> f64 {
        simulate(prog, &RunConfig::new(2).with_threads(threads))
            .unwrap()
            .total_time
    }

    #[test]
    fn buggy_version_degrades_with_threads() {
        let prog = vite();
        let t2 = time_with_threads(&prog, 2);
        let t8 = time_with_threads(&prog, 8);
        // Fig. 13: 8 threads no faster (even slower) than 2.
        assert!(
            t8 > 0.9 * t2,
            "buggy Vite should not scale: t2={t2} t8={t8}"
        );
    }

    #[test]
    fn optimized_version_scales_and_wins_big() {
        let opt = vite_optimized();
        let t2 = time_with_threads(&opt, 2);
        let t8 = time_with_threads(&opt, 8);
        assert!(t8 < t2, "optimized Vite must scale: t2={t2} t8={t8}");
        // Head-to-head at 8 threads: order-of-magnitude improvement.
        let buggy_t8 = time_with_threads(&vite(), 8);
        let factor = buggy_t8 / t8;
        assert!(factor > 4.0, "optimization factor only {factor}");
    }

    #[test]
    fn contention_shows_in_lock_records() {
        let data = simulate(&vite(), &RunConfig::new(1).with_threads(8)).unwrap();
        let total_wait: f64 = data.lock_records.iter().map(|l| l.wait()).sum();
        let blocked = data
            .lock_records
            .iter()
            .filter(|l| l.blocked_by.is_some())
            .count();
        assert!(total_wait > 0.0);
        assert!(
            blocked as f64 / data.lock_records.len() as f64 > 0.5,
            "most acquisitions should contend"
        );
    }

    #[test]
    fn optimized_version_allocates_less() {
        let buggy = simulate(&vite(), &RunConfig::new(1).with_threads(4)).unwrap();
        let opt = simulate(&vite_optimized(), &RunConfig::new(1).with_threads(4)).unwrap();
        assert!(
            opt.lock_records.len() * 4 < buggy.lock_records.len(),
            "optimization must slash allocator traffic: {} vs {}",
            opt.lock_records.len(),
            buggy.lock_records.len()
        );
    }
}
