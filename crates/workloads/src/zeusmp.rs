//! ZeusMP-like astrophysics stencil (case study A, §5.3).
//!
//! Skeleton of the real code's buggy path: `nudt` calls `bvald` three
//! times; `bvald` contains boundary loops (`loop_10` / `loop_10.1`) whose
//! work depends on which ranks own physical boundaries, followed by
//! non-blocking halo exchanges (`MPI_IRECV`/`MPI_ISEND`, bvald.F:391/399).
//! Each `bvald` call is drained by an `MPI_WAITALL` in `nudt`
//! (nudt.F:227/269/328), and the timestep ends in an `MPI_ALLREDUCE`
//! (nudt.F:361) computing the new dt — plus a `newdt` loop (`loop_1.1`)
//! with its own imbalance.
//!
//! **Planted bug:** boundary ranks (those owning a domain face) do extra
//! work in `loop_10.1`. The fraction of boundary ranks *grows* with the
//! process count (surface-to-volume of the domain decomposition), so the
//! imbalance — and the waits it feeds through three waitall chains into
//! the allreduce — worsens at scale, reproducing the paper's poor
//! speedup at 2,048 processes.
//!
//! [`zeusmp_fixed`] models the paper's fix (hybrid MPI+OpenMP work
//! sharing on the boundary loops): boundary work is spread over threads,
//! shrinking the inter-process imbalance and improving the 2,048-rank
//! speedup by a few percent — not orders of magnitude, matching the
//! paper's +6.91%.

use progmodel::{c, noise, nranks, param, rank, Expr, Program, ProgramBuilder};

/// Expression: 1.0 when this rank owns a domain boundary face.
///
/// With a 1-D decomposition of a 3-D domain into `P` slabs, the first and
/// last slabs own physical x-faces; additionally every `P/16`-th rank
/// models owning a y/z face seam, so the boundary share grows with `P`.
fn is_boundary() -> Expr {
    let first_or_last = rank().lt(1.0).max((rank() + 1.0).eq(nranks()));
    // Seam ranks: every 8th rank up to a quarter of ranks at high P.
    let seam = rank().rem(c(8.0)).lt(1.0);
    first_or_last.max(seam)
}

fn build(balanced: bool) -> Program {
    let mut pb = ProgramBuilder::new(if balanced { "ZMP-fixed" } else { "ZMP" });
    pb.param("class_scale", 1.0);
    let main = pb.declare("main", "zeusmp.F");
    let nudt = pb.declare("nudt", "nudt.F");
    let bvald = pb.declare("bvald", "bvald.F");
    let newdt = pb.declare("newdt", "newdt.F");
    let hsmoc = pb.declare("hsmoc", "hsmoc.F");

    // bvald: boundary-value fill with the famous loop_10/loop_10.1, then
    // the halo exchange posts. Interior work strong-scales (∝ 1/P);
    // boundary surplus follows the surface-to-volume law (∝ 1/√P), so
    // the imbalance worsens relative to useful work as P grows.
    pb.define(bvald, |f| {
        f.loop_("loop_10", c(4.0), |outer| {
            outer.loop_("loop_10.1", c(6.0), |b| {
                let base = c(3_200.0) * param("class_scale") / nranks();
                let surplus_amp = if balanced {
                    // OpenMP work sharing spreads the surplus over the
                    // rank's threads — mitigation, not elimination.
                    c(500.0 * 0.85)
                } else {
                    c(500.0)
                };
                let surplus = is_boundary()
                    .select(surplus_amp * param("class_scale") / nranks().sqrt(), c(0.0));
                b.compute("bvald_fill", (base + surplus) * noise(0.04, 101));
            });
        });
        f.irecv((rank() + nranks() - 1.0).rem(nranks()), c(12_288.0), 3);
        f.isend((rank() + 1.0).rem(nranks()), c(12_288.0), 3);
    });

    // newdt: timestep constraint with its own mild imbalance (loop_1.1).
    pb.define(newdt, |f| {
        f.loop_("loop_1", c(2.0), |outer| {
            outer.loop_("loop_1.1", c(4.0), |b| {
                let base = c(1_600.0) * param("class_scale") / nranks();
                let amp = if balanced { 200.0 * 0.85 } else { 200.0 };
                let surplus =
                    is_boundary().select(c(amp) * param("class_scale") / nranks().sqrt(), c(0.0));
                b.compute("newdt_scan", (base + surplus) * noise(0.04, 103));
            });
        });
    });

    // hsmoc: the bulk MHD update — large, balanced compute.
    pb.define(hsmoc, |f| {
        for i in 0..24 {
            f.compute(
                &format!("hsmoc_sweep_{i}"),
                c(9_000.0) * param("class_scale") / nranks() * noise(0.03, 200 + i as u64),
            );
        }
    });

    // nudt: 3 × (bvald → waitall) then the allreduce of the new dt.
    pb.define(nudt, |f| {
        for _ in 0..3 {
            f.call(bvald);
            f.waitall(); // nudt.F:227 / 269 / 328
        }
        f.call(newdt);
        f.allreduce(c(8.0)); // nudt.F:361
    });

    // The remaining solver inventory: structurally faithful routines
    // (transport, source terms, CT magnetic update, momenta) that are
    // cheap at runtime but give the binary its real size.
    let mut routines = Vec::new();
    for rname in [
        "lorentz", "ct", "srcstep", "tranx1", "tranx2", "tranx3", "momx1", "momx2", "momx3",
        "forces", "pgas", "diverg",
    ] {
        let fid = pb.declare(rname, "zeusmp.F");
        pb.define(fid, move |f| {
            f.loop_(&format!("{rname}_k"), c(2.0), |b| {
                for i in 0..24 {
                    b.compute(
                        &format!("{rname}_sweep_{i}"),
                        c(60.0) * param("class_scale") / nranks(),
                    );
                }
            });
        });
        routines.push(fid);
    }

    pb.define(main, |f| {
        f.loop_("timestep", c(10.0), |b| {
            b.call(hsmoc);
            for &r in &routines {
                b.call(r);
            }
            b.call(nudt);
        });
    });
    pb.kloc(44.1);
    pb.binary_bytes(2_200_000);
    pb.build(main)
}

/// The buggy ZeusMP-like model (imbalanced boundary loops).
pub fn zeusmp() -> Program {
    build(false)
}

/// The fixed model: hybrid MPI+OpenMP work sharing on the boundary loops.
pub fn zeusmp_fixed() -> Program {
    build(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrt::{simulate, CommKindTag, RunConfig};

    #[test]
    fn scales_poorly_when_buggy() {
        let prog = zeusmp();
        let t4 = simulate(&prog, &RunConfig::new(4)).unwrap().total_time;
        let t32 = simulate(&prog, &RunConfig::new(32)).unwrap().total_time;
        let speedup = t4 / t32;
        // Clearly below the ideal 8× (the surface-to-volume surplus).
        assert!(speedup < 7.2, "speedup {speedup} unexpectedly good");
        assert!(speedup > 1.0, "must still speed up somewhat: {speedup}");
    }

    #[test]
    fn fix_improves_large_scale_performance() {
        let t_bug = simulate(&zeusmp(), &RunConfig::new(32)).unwrap().total_time;
        let t_fix = simulate(&zeusmp_fixed(), &RunConfig::new(32))
            .unwrap()
            .total_time;
        let gain = (t_bug - t_fix) / t_bug;
        assert!(gain > 0.0, "fix must help at scale (gain {gain})");
        assert!(
            gain < 0.5,
            "fix should be moderate, not magical (gain {gain})"
        );
    }

    #[test]
    fn waitall_waits_grow_with_scale() {
        let prog = zeusmp();
        let wait_share = |nranks: u32| {
            let data = simulate(&prog, &RunConfig::new(nranks)).unwrap();
            let waits: f64 = data
                .comm_records
                .iter()
                .filter(|r| r.kind == CommKindTag::Waitall)
                .map(|r| r.wait)
                .sum();
            waits / data.elapsed.iter().sum::<f64>()
        };
        let s4 = wait_share(4);
        let s32 = wait_share(32);
        assert!(s32 > s4, "waitall share must grow with scale: {s4} → {s32}");
    }

    #[test]
    fn boundary_ranks_are_the_stragglers() {
        let data = simulate(&zeusmp(), &RunConfig::new(16)).unwrap();
        // Rank 0 and 15 (faces) and 8 (seam) do more total work: they wait
        // *less* in the allreduce than interior ranks.
        let wait_of = |rank: u32| {
            data.comm_records
                .iter()
                .filter(|r| r.kind == CommKindTag::Allreduce && r.rank == rank)
                .map(|r| r.wait)
                .sum::<f64>()
        };
        assert!(wait_of(3) > wait_of(0), "interior rank should wait more");
    }
}
