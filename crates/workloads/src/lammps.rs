//! LAMMPS-like molecular dynamics (case study B, §5.4).
//!
//! Skeleton of the buggy path: every timestep computes pair forces in
//! `PairLJCut::compute` (`loop_1` / `loop_1.1`, pair_lj_cut.cpp:102-137)
//! and then exchanges ghost-atom forces in `CommBrick::reverse_comm`
//! (comm_brick.cpp:544/547) with *blocking* `MPI_Send` + `MPI_Wait` per
//! swap.
//!
//! **Planted bug:** a dense spatial region makes processes 0-2 run
//! `loop_1.1` far longer than the rest. Because the reverse communication
//! is blocking, their lateness propagates into every neighbour's
//! `MPI_Send`/`MPI_Wait` — the secondary bugs the paper's causal analysis
//! traces back to `loop_1.1`.
//!
//! [`lammps_balanced`] models the paper's `balance` fix (periodic domain
//! rebalancing): the force loop evens out, throughput improves by a
//! double-digit percentage (paper: +13.77%).

use progmodel::{c, noise, nranks, param, rank, Program, ProgramBuilder};

fn build(balanced: bool) -> Program {
    let mut pb = ProgramBuilder::new(if balanced { "LMP-balanced" } else { "LMP" });
    pb.param("class_scale", 3.0);
    let main = pb.declare("main", "lammps.cpp");
    let pair = pb.declare("PairLJCut::compute", "pair_lj_cut.cpp");
    let reverse = pb.declare("CommBrick::reverse_comm", "comm_brick.cpp");
    let forward = pb.declare("CommBrick::forward_comm", "comm_brick.cpp");
    let neigh = pb.declare("Neighbor::build", "neighbor.cpp");

    pb.define(pair, |f| {
        f.loop_("loop_1", c(8.0), |outer| {
            outer.loop_("loop_1.1", c(5.0), |b| {
                let cost = if balanced {
                    // `balance` evens the atom counts: mean of the buggy
                    // distribution (work is conserved, not destroyed).
                    c(300.0)
                } else {
                    // Dense region on ranks 0..2.
                    rank().lt(3.0).select(c(400.0), c(240.0))
                };
                b.compute(
                    "lj_inner",
                    cost * param("class_scale") * noise(0.05, 301) / nranks().log2().max(c(1.0)),
                );
            });
        });
    });

    // reverse_comm: per swap, blocking send to the neighbour + wait on
    // the posted irecv (Listing 9's Irecv/Send/Wait triple).
    pb.define(reverse, |f| {
        f.loop_("swap", c(3.0), |b| {
            b.irecv((rank() + 1.0).rem(nranks()), c(60_000.0), 7);
            b.send((rank() + nranks() - 1.0).rem(nranks()), c(60_000.0), 7);
            b.wait(0);
        });
    });

    pb.define(forward, |f| {
        f.loop_("fswap", c(2.0), |b| {
            b.irecv((rank() + nranks() - 1.0).rem(nranks()), c(30_000.0), 8);
            b.isend((rank() + 1.0).rem(nranks()), c(30_000.0), 8);
            b.waitall();
        });
    });

    pb.define(neigh, |f| {
        for i in 0..6 {
            f.compute(
                &format!("bin_atoms_{i}"),
                c(600.0) * param("class_scale") / nranks() * noise(0.03, 400 + i as u64),
            );
        }
    });

    let integrate = pb.declare("Verlet::integrate", "verlet.cpp");
    pb.define(integrate, |f| {
        for i in 0..4 {
            f.compute(
                &format!("final_integrate_{i}"),
                c(1_200.0) * param("class_scale") * noise(0.03, 450 + i as u64)
                    / nranks().log2().max(c(1.0)),
            );
        }
    });

    // The package's style inventory: pair styles, fixes and computes
    // that exist in the binary (and therefore in the static PAG) but run
    // rarely or cheaply in this input deck — this is what makes the
    // LAMMPS binary an order of magnitude bigger than ZeusMP's.
    let mut styles = Vec::new();
    for sname in [
        "PairEAM::compute",
        "PairTersoff::compute",
        "PairMorse::compute",
        "PairBuck::compute",
        "PairYukawa::compute",
        "PairSW::compute",
        "FixNVE::initial_integrate",
        "FixNVT::initial_integrate",
        "FixNPT::initial_integrate",
        "FixLangevin::post_force",
        "FixSpring::post_force",
        "FixWall::post_force",
        "ComputeTemp::compute_scalar",
        "ComputePressure::compute_scalar",
        "ComputePE::compute_scalar",
        "ComputeRDF::compute_array",
        "ComputeMSD::compute_vector",
        "ComputeStress::compute_array",
        "BondHarmonic::compute",
        "AngleHarmonic::compute",
        "DihedralOPLS::compute",
        "ImproperHarmonic::compute",
        "KSpacePPPM::compute",
        "Output::write_dump",
    ] {
        let file = "styles.cpp";
        let fid = pb.declare(sname, file);
        pb.define(fid, move |f| {
            for i in 0..35 {
                f.compute(&format!("{}_{i}", sname.split(':').next().unwrap()), c(0.4));
            }
        });
        styles.push(fid);
    }
    let setup = pb.declare("LAMMPS::setup", "lammps.cpp");
    pb.define(setup, |f| {
        for &st in &styles {
            f.call(st);
        }
    });

    pb.define(main, |f| {
        f.call(setup);
        f.loop_("timestep", c(12.0), |b| {
            b.branch(
                "reneighbor",
                iter_is_multiple_of(4),
                |t| t.call(neigh),
                |_| {},
            );
            b.call(forward);
            b.call(pair);
            b.call(reverse);
            b.call(integrate);
            // Thermo output only every few steps (the usual thermo
            // interval), so the allreduce does not dwarf the p2p path.
            b.branch(
                "thermo",
                iter_is_multiple_of(3),
                |t| t.allreduce(c(48.0)),
                |_| {},
            );
        });
    });
    pb.kloc(704.8);
    pb.binary_bytes(14_670_000);
    pb.build(main)
}

/// `iter % n == 0` as an expression.
fn iter_is_multiple_of(n: u32) -> progmodel::Expr {
    progmodel::iter().rem(n as f64).lt(0.5)
}

/// The buggy LAMMPS-like model (spatial imbalance on ranks 0-2).
pub fn lammps() -> Program {
    build(false)
}

/// The balanced variant (the paper's `balance` command fix).
pub fn lammps_balanced() -> Program {
    build(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrt::{simulate, CommKindTag, RunConfig};

    #[test]
    fn send_and_wait_carry_secondary_waits() {
        let data = simulate(&lammps(), &RunConfig::new(8)).unwrap();
        // MPI_Send (rendezvous; 50 kB > eager) and MPI_Wait of
        // non-overloaded ranks wait on the slow ranks.
        let send_wait: f64 = data
            .comm_records
            .iter()
            .filter(|r| r.kind == CommKindTag::Send && r.rank >= 3)
            .map(|r| r.wait)
            .sum();
        assert!(send_wait > 0.0, "sends should inherit waits");
        let total: f64 = data.elapsed.iter().sum();
        let comm: f64 = data.total_comm_time();
        let share = comm / total;
        // The paper observed ~29% communication share.
        assert!(share > 0.1, "comm share too small: {share}");
    }

    #[test]
    fn balance_fix_improves_throughput() {
        let t_bug = simulate(&lammps(), &RunConfig::new(8)).unwrap().total_time;
        let t_fix = simulate(&lammps_balanced(), &RunConfig::new(8))
            .unwrap()
            .total_time;
        let gain = (t_bug - t_fix) / t_bug;
        assert!(
            gain > 0.05 && gain < 0.5,
            "balance gain should be double-digit percent, got {gain}"
        );
    }

    #[test]
    fn fast_neighbours_of_slow_ranks_wait_in_sends() {
        let data = simulate(&lammps(), &RunConfig::new(8)).unwrap();
        let send_wait_of = |rank: u32| {
            data.comm_records
                .iter()
                .filter(|r| r.kind == CommKindTag::Send && r.rank == rank)
                .map(|r| r.wait)
                .sum::<f64>()
        };
        // Rank 3 sends to overloaded rank 2, whose recv posts late; rank 1
        // is itself slow, so by the time it sends, rank 0's recv is ready.
        assert!(
            send_wait_of(3) > send_wait_of(1),
            "send waits: rank3={} rank1={}",
            send_wait_of(3),
            send_wait_of(1)
        );
    }
}
