//! Minimal JSON: a recursive-descent parser and a deterministic
//! renderer, enough for the daemon's request/response bodies and for
//! `driver::bench_diff`'s snapshot loading without an external
//! dependency. Objects keep insertion order so rendered responses are
//! byte-stable. (Hoisted from `serve`, which re-exports it, so lower
//! layers can parse telemetry JSON without depending on the daemon.)

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            at: 0,
        };
        p.ws();
        let v = p.value(0)?;
        p.ws();
        if p.at != p.b.len() {
            return Err(format!("trailing characters at byte {}", p.at));
        }
        Ok(v)
    }

    /// Object field lookup (None on non-objects or absent keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer (rejects
    /// fractional, negative and out-of-range numbers).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9.007_199_254_740_992e15).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Render as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null"); // JSON has no Inf/NaN
                }
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// JSON string escaping (control characters, quote, backslash).
///
/// Delegates to [`crate::json_escape`] — the workspace keeps exactly
/// one escaper (verify and serve re-export the same one) so layers can
/// never drift on what a hostile string renders as.
pub fn escape(s: &str) -> String {
    crate::json_escape(s)
}

/// Shorthand for building an object literal in code.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    b: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while let Some(&c) = self.b.get(self.at) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.at).copied()
    }

    fn eat(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.at..].starts_with(lit.as_bytes()) {
            self.at += lit.len();
            Ok(())
        } else {
            Err(format!("expected `{lit}` at byte {}", self.at))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'n') => self.eat("null").map(|_| Json::Null),
            Some(b't') => self.eat("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|_| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.at += 1;
                let mut items = Vec::new();
                self.ws();
                if self.peek() == Some(b']') {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.ws();
                    items.push(self.value(depth + 1)?);
                    self.ws();
                    match self.peek() {
                        Some(b',') => self.at += 1,
                        Some(b']') => {
                            self.at += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {}", self.at)),
                    }
                }
            }
            Some(b'{') => {
                self.at += 1;
                let mut fields = Vec::new();
                self.ws();
                if self.peek() == Some(b'}') {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.ws();
                    let key = self.string()?;
                    self.ws();
                    self.eat(":")?;
                    self.ws();
                    let val = self.value(depth + 1)?;
                    fields.push((key, val));
                    self.ws();
                    match self.peek() {
                        Some(b',') => self.at += 1,
                        Some(b'}') => {
                            self.at += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {}", self.at)),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.at)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.at += 1;
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.at += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.at += 1;
            }
        }
        std::str::from_utf8(&self.b[start..self.at])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        if self.peek() != Some(b'"') {
            return Err(format!("expected string at byte {}", self.at));
        }
        self.at += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.at + 1..self.at + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.at))?;
                            // Surrogates are replaced rather than paired:
                            // good enough for config payloads.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.at += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.at)),
                    }
                    self.at += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control character at byte {}", self.at))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let s = &self.b[self.at..];
                    let ch = std::str::from_utf8(s)
                        .map_err(|_| "invalid utf-8".to_string())?
                        .chars()
                        .next()
                        .unwrap();
                    out.push(ch);
                    self.at += ch.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(
            Json::parse("\"a\\nb\\u0041\"").unwrap(),
            Json::Str("a\nbA".into())
        );
        let v = Json::parse(r#"{"a":[1,2,{"b":false}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        match v.get("a") {
            Some(Json::Arr(items)) => assert_eq!(items.len(), 3),
            other => panic!("bad array: {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
        let deep = "[".repeat(64) + &"]".repeat(64);
        assert!(Json::parse(&deep).is_err(), "depth cap");
    }

    #[test]
    fn render_round_trips() {
        let src = r#"{"name":"a\"b\\c","nums":[1,2.5,-3],"flag":true,"none":null}"#;
        let v = Json::parse(src).unwrap();
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
        assert_eq!(rendered, src, "insertion order and escaping preserved");
    }

    #[test]
    fn u64_accessor_is_strict() {
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(Json::parse("7.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-7").unwrap().as_u64(), None);
        assert_eq!(Json::parse("\"7\"").unwrap().as_u64(), None);
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(escape("a\u{1}b"), "a\\u0001b");
        assert_eq!(escape("q\"\\\n"), "q\\\"\\\\\\n");
    }
}
