//! Chrome-trace JSON exporter (the `chrome://tracing` / Perfetto "JSON
//! Object" flavor).

use crate::escape::{json_num, json_str};
use crate::{Layer, Obs, SpanRec};

impl Obs {
    /// Export everything as Chrome-trace JSON: one complete (`"X"`)
    /// event per span, process-name metadata per layer, counters under
    /// `otherData`. Output ordering is deterministic for a given span
    /// set, and every string (span names are hostile input) goes through
    /// the shared [`crate::escape`] helper.
    pub fn chrome_trace(&self) -> String {
        self.render_trace(&self.spans(), None)
    }

    /// Export a single trace (spans stamped with `trace` by
    /// [`Obs::with_trace`]) as Chrome-trace JSON. `otherData` carries
    /// the trace id and its timestamp-free [`Obs::trace_digest`] so
    /// callers can compare two runs of the same job structurally.
    pub fn chrome_trace_for(&self, trace: u64) -> String {
        self.render_trace(&self.spans_for_trace(trace), Some(trace))
    }

    fn render_trace(&self, spans: &[SpanRec], trace: Option<u64>) -> String {
        let mut out = String::with_capacity(256 + spans.len() * 96);
        out.push_str("{\"traceEvents\":[");
        let mut layers: Vec<Layer> = spans.iter().map(|s| s.layer).collect();
        layers.sort();
        layers.dedup();
        let mut first = true;
        for layer in &layers {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":{}}}}}",
                layer.pid(),
                json_str(layer.name())
            ));
        }
        for s in spans {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"ph\":\"X\",\"name\":{},\"cat\":{},\"pid\":{},\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}",
                json_str(&s.name),
                json_str(s.layer.name()),
                s.layer.pid(),
                s.lane,
                s.start_us,
                s.dur_us
            ));
            if s.trace != 0 {
                // Non-standard field; trace viewers ignore unknown keys.
                out.push_str(&format!(",\"trace\":{}", s.trace));
            }
            if !s.args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (k, v)) in s.args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{}:{}", json_str(k), json_num(*v)));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{");
        if let Some(id) = trace {
            out.push_str(&format!(
                "\"trace\":{id},\"traceDigest\":\"{:016x}\",\"spanCount\":{},",
                self.trace_digest(id),
                spans.len()
            ));
        } else {
            let counters = self.counters();
            for (k, v) in &counters {
                out.push_str(&format!("{}:{},", json_str(k), v));
            }
        }
        out.push_str(&format!("\"droppedSpans\":{}", self.dropped_spans()));
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{Layer, Obs};

    #[test]
    fn per_trace_export_filters_and_digests() {
        let obs = Obs::enabled();
        let job = obs.with_trace(11);
        job.record_span(Layer::Serve, "job", 0, 0.0, 20.0, &[]);
        job.record_span(Layer::Core, "pass:a", 1, 2.0, 6.0, &[]);
        obs.record_span(Layer::App, "background", 0, 0.0, 1.0, &[]);

        let t = obs.chrome_trace_for(11);
        assert!(t.contains("\"trace\":11"));
        assert!(t.contains("\"pass:a\""));
        assert!(!t.contains("background"));
        assert!(t.contains("\"spanCount\":2"));
        assert!(t.contains(&format!(
            "\"traceDigest\":\"{:016x}\"",
            obs.trace_digest(11)
        )));
        // The full export still includes everything, with trace ids on
        // the stamped events only.
        let full = obs.chrome_trace();
        assert!(full.contains("background"));
        assert!(full.contains("\"trace\":11"));
    }

    #[test]
    fn untraced_spans_omit_the_trace_field() {
        let obs = Obs::enabled();
        obs.record_span(Layer::Core, "pass:a", 0, 0.0, 1.0, &[]);
        assert!(!obs.chrome_trace().contains("\"trace\":"));
    }
}
