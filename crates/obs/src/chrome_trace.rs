//! Chrome-trace JSON exporter (the `chrome://tracing` / Perfetto "JSON
//! Object" flavor).

use crate::escape::{json_num, json_str};
use crate::{Layer, Obs};

impl Obs {
    /// Export everything as Chrome-trace JSON: one complete (`"X"`)
    /// event per span, process-name metadata per layer, counters under
    /// `otherData`. Output ordering is deterministic for a given span
    /// set, and every string (span names are hostile input) goes through
    /// the shared [`crate::escape`] helper.
    pub fn chrome_trace(&self) -> String {
        let spans = self.spans();
        let mut out = String::with_capacity(256 + spans.len() * 96);
        out.push_str("{\"traceEvents\":[");
        let mut layers: Vec<Layer> = spans.iter().map(|s| s.layer).collect();
        layers.sort();
        layers.dedup();
        let mut first = true;
        for layer in &layers {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":{}}}}}",
                layer.pid(),
                json_str(layer.name())
            ));
        }
        for s in &spans {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"ph\":\"X\",\"name\":{},\"cat\":{},\"pid\":{},\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}",
                json_str(&s.name),
                json_str(s.layer.name()),
                s.layer.pid(),
                s.lane,
                s.start_us,
                s.dur_us
            ));
            if !s.args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (k, v)) in s.args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{}:{}", json_str(k), json_num(*v)));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{");
        let counters = self.counters();
        for (i, (k, v)) in counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json_str(k), v));
        }
        if !counters.is_empty() {
            out.push(',');
        }
        out.push_str(&format!("\"droppedSpans\":{}", self.dropped_spans()));
        out.push_str("}}");
        out
    }
}
