//! Prometheus text exposition format (version 0.0.4) exporter.
//!
//! Everything the handle recorded becomes scrape-able metrics, all under
//! the `perflow_` namespace:
//!
//! * counters → `perflow_<name>_total` (type `counter`),
//! * gauges → `perflow_<name>` (type `gauge`),
//! * histograms → `perflow_<name>_bucket{le="…"}` / `_sum` / `_count`
//!   (type `histogram`, cumulative `le` series ending at `+Inf`),
//! * span aggregates → `perflow_span_time_us_total` summed per
//!   `{layer,name}` pair plus `perflow_spans_total`,
//! * the drop counter → `perflow_dropped_spans_total`.
//!
//! Metric names are sanitized to `[a-zA-Z_:][a-zA-Z0-9_:]*`; label
//! values are escaped per the exposition spec (`\\`, `\"`, `\n`). All
//! sections iterate sorted maps, so output is deterministic.

use std::collections::BTreeMap;

use crate::Obs;

/// Sanitize a metric-name fragment: every character outside
/// `[a-zA-Z0-9_:]` becomes `_`, and a leading digit gets a `_` prefix.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Escape a label value per the exposition format: backslash, double
/// quote and newline.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render a bucket bound as an `le` label value (`+Inf` for infinity;
/// whole numbers without a fractional part).
fn le_value(bound: f64) -> String {
    if bound.is_infinite() {
        "+Inf".to_string()
    } else if bound == bound.trunc() {
        format!("{}", bound as u64)
    } else {
        format!("{bound}")
    }
}

fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

impl Obs {
    /// Export all recorded telemetry in Prometheus text exposition
    /// format. Deterministic for a given telemetry state; returns only
    /// the drop counter when nothing else was recorded, and an exposition
    /// with zero samples when the handle is disabled.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.counters() {
            let metric = format!("perflow_{}_total", sanitize_metric_name(&name));
            header(&mut out, &metric, "Monotonic counter.", "counter");
            out.push_str(&format!("{metric} {value}\n"));
        }
        for (name, value) in self.gauges() {
            let metric = format!("perflow_{}", sanitize_metric_name(&name));
            header(&mut out, &metric, "Gauge (last written value).", "gauge");
            out.push_str(&format!("{metric} {value}\n"));
        }
        for (name, hist) in self.histograms() {
            let metric = format!("perflow_{}", sanitize_metric_name(&name));
            header(&mut out, &metric, "Log-bucketed histogram.", "histogram");
            for (bound, cum) in hist.cumulative_buckets() {
                out.push_str(&format!(
                    "{metric}_bucket{{le=\"{}\"}} {cum}\n",
                    le_value(bound)
                ));
            }
            out.push_str(&format!("{metric}_sum {}\n", hist.sum()));
            out.push_str(&format!("{metric}_count {}\n", hist.count()));
        }
        // Span aggregates: total wall time and count per (layer, name).
        let spans = self.spans();
        if !spans.is_empty() {
            let mut agg: BTreeMap<(&'static str, String), (f64, u64)> = BTreeMap::new();
            for s in &spans {
                let e = agg
                    .entry((s.layer.name(), s.name.to_string()))
                    .or_insert((0.0, 0));
                e.0 += s.dur_us;
                e.1 += 1;
            }
            header(
                &mut out,
                "perflow_span_time_us_total",
                "Total recorded span wall time in microseconds.",
                "counter",
            );
            for ((layer, name), (dur, _)) in &agg {
                out.push_str(&format!(
                    "perflow_span_time_us_total{{layer=\"{}\",name=\"{}\"}} {dur}\n",
                    escape_label_value(layer),
                    escape_label_value(name),
                ));
            }
            header(
                &mut out,
                "perflow_spans_total",
                "Number of recorded spans.",
                "counter",
            );
            for ((layer, name), (_, n)) in &agg {
                out.push_str(&format!(
                    "perflow_spans_total{{layer=\"{}\",name=\"{}\"}} {n}\n",
                    escape_label_value(layer),
                    escape_label_value(name),
                ));
            }
        }
        // Span-storage visibility (enabled handles only): the cap and
        // the high-water mark make trace truncation observable before
        // `GET /jobs/:id/trace` silently caps.
        if self.is_enabled() {
            header(
                &mut out,
                "perflow_span_cap",
                "Maximum number of spans the handle will store.",
                "gauge",
            );
            out.push_str(&format!("perflow_span_cap {}\n", self.span_cap()));
            header(
                &mut out,
                "perflow_span_high_water",
                "Spans currently stored (monotonic: spans are only appended, up to the cap).",
                "gauge",
            );
            out.push_str(&format!(
                "perflow_span_high_water {}\n",
                self.stored_spans()
            ));
        }
        header(
            &mut out,
            "perflow_dropped_spans_total",
            "Spans discarded because the span cap was reached.",
            "counter",
        );
        out.push_str(&format!(
            "perflow_dropped_spans_total {}\n",
            self.dropped_spans()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Layer;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_metric_name("core.cache.hit"), "core_cache_hit");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_metric_name("ok_name:x2"), "ok_name:x2");
    }

    #[test]
    fn escapes_label_values() {
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn exposition_shape() {
        let obs = Obs::enabled();
        obs.count("core.cache.hit", 3);
        obs.set_gauge("pool.workers", 4.0);
        obs.observe("pass.wall_us", 10.0);
        obs.observe("pass.wall_us", 1000.0);
        obs.record_span(Layer::Core, "pass:hotspot", 0, 0.0, 50.0, &[]);
        obs.record_span(Layer::Core, "pass:hotspot", 1, 0.0, 70.0, &[]);
        let text = obs.prometheus();
        assert!(text.contains("# TYPE perflow_core_cache_hit_total counter"));
        assert!(text.contains("perflow_core_cache_hit_total 3\n"));
        assert!(text.contains("# TYPE perflow_pool_workers gauge"));
        assert!(text.contains("perflow_pool_workers 4\n"));
        assert!(text.contains("# TYPE perflow_pass_wall_us histogram"));
        assert!(text.contains("perflow_pass_wall_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("perflow_pass_wall_us_count 2\n"));
        assert!(
            text.contains("perflow_span_time_us_total{layer=\"core\",name=\"pass:hotspot\"} 120\n")
        );
        assert!(text.contains("perflow_spans_total{layer=\"core\",name=\"pass:hotspot\"} 2\n"));
        assert!(text.contains("perflow_dropped_spans_total 0\n"));
        assert!(text.contains("# TYPE perflow_span_cap gauge"));
        assert!(text.contains(&format!("perflow_span_cap {}\n", crate::DEFAULT_SPAN_CAP)));
        assert!(text.contains("perflow_span_high_water 2\n"));
        // Every non-comment line is `name{…}? value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("sample line has a value");
            value.parse::<f64>().expect("sample value parses");
        }
    }

    #[test]
    fn resilience_counters_render() {
        let obs = Obs::enabled();
        obs.count(crate::names::PASS_PANIC, 2);
        obs.count(crate::names::PASS_RETRY, 3);
        obs.count(crate::names::PASS_TIMEOUT, 1);
        obs.count(crate::names::PASS_RESUME_HIT, 4);
        obs.observe(crate::names::PASS_RETRY_LATENCY_MS, 10.0);
        let text = obs.prometheus();
        assert!(text.contains("# TYPE perflow_core_pass_panic_total counter"));
        assert!(text.contains("perflow_core_pass_panic_total 2\n"));
        assert!(text.contains("perflow_core_pass_retry_total 3\n"));
        assert!(text.contains("perflow_core_pass_timeout_total 1\n"));
        assert!(text.contains("perflow_core_pass_resume_hit_total 4\n"));
        assert!(text.contains("# TYPE perflow_core_pass_retry_latency_ms histogram"));
        assert!(text.contains("perflow_core_pass_retry_latency_ms_count 1\n"));
    }

    #[test]
    fn hostile_names_stay_well_formed() {
        let obs = Obs::enabled();
        obs.record_span(Layer::App, "evil\"name\\with\nstuff", 0, 0.0, 1.0, &[]);
        let text = obs.prometheus();
        assert!(text.contains("name=\"evil\\\"name\\\\with\\nstuff\""));
        // No raw newline inside a sample line (escaped form only).
        for line in text.lines() {
            assert!(!line.is_empty());
        }
    }

    #[test]
    fn disabled_exports_only_drop_counter() {
        let text = Obs::disabled().prometheus();
        assert_eq!(
            text.lines().filter(|l| !l.starts_with('#')).count(),
            1,
            "{text}"
        );
        assert!(text.contains("perflow_dropped_spans_total 0"));
    }
}
