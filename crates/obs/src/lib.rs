//! # Observability for PerFlow's own pipeline
//!
//! PerFlow analyzes *other* programs' performance; this crate lets it
//! observe itself. It is a small telemetry subsystem behind an explicit
//! [`Obs`] handle — no globals, no thread-locals — carrying four
//! instrument kinds and three exporters:
//!
//! * wall-clock **spans** (RAII guards or explicit intervals),
//! * monotonic **counters**,
//! * log-bucketed **histograms** ([`Histogram`], deterministic merge),
//! * last-write-wins **gauges**,
//!
//! exported as a Chrome trace ([`Obs::chrome_trace`], for
//! `chrome://tracing` / [Perfetto](https://ui.perfetto.dev)), Prometheus
//! text exposition ([`Obs::prometheus`]), or folded stacks
//! ([`Obs::folded_stacks`], flamegraph.pl/inferno-compatible). A recorded
//! trace can also be lifted into a Program Abstraction Graph by
//! `collect::self_pag`, so PerFlow's own passes analyze PerFlow.
//!
//! Design constraints (all load-bearing for the rest of the workspace):
//!
//! * **No-op when disabled.** A default-constructed handle is disabled:
//!   every instrumentation call short-circuits without reading the clock
//!   or allocating, so digest-asserted deterministic code paths behave
//!   byte-identically whether or not they are instrumented.
//! * **Allocation-light when enabled.** Static span names are borrowed
//!   (`Cow::Borrowed`); dynamic names go through [`Obs::span_with`],
//!   whose closure only runs when the handle is enabled.
//! * **Bounded.** Recorded spans are capped ([`Obs::enabled_with_cap`]);
//!   spans beyond the cap are counted, not stored. Histograms and
//!   gauges are fixed-size per name.
//! * **Deterministic output ordering.** Every exporter sorts: spans by
//!   (start, layer, lane, name), counters/histograms/gauges
//!   alphabetically — equal telemetry always serializes identically.

mod chrome_trace;
pub mod escape;
mod folded;
pub mod json;
pub mod metrics;
mod prometheus;

pub use escape::{json_escape, json_str};
pub use folded::{render_folded, sanitize_frame, FOLDED_ROOT};
pub use metrics::{bucket_bound, Histogram, HIST_BUCKETS};

/// Well-known instrument names recorded by the resilient pass scheduler.
/// Counters render in the Prometheus exposition as
/// `perflow_<sanitized>_total` (e.g. `perflow_core_pass_panic_total`),
/// histograms as `perflow_<sanitized>_bucket`/`_sum`/`_count`.
pub mod names {
    /// Counter: pass executions that panicked (caught and converted to a
    /// structured error by the scheduler).
    pub const PASS_PANIC: &str = "core.pass.panic";
    /// Counter: retry attempts scheduled after a failed execution.
    pub const PASS_RETRY: &str = "core.pass.retry";
    /// Counter: pass executions abandoned by the deadline watchdog.
    pub const PASS_TIMEOUT: &str = "core.pass.timeout";
    /// Counter: passes replayed from a resume snapshot instead of
    /// executing.
    pub const PASS_RESUME_HIT: &str = "core.pass.resume_hit";
    /// Histogram: backoff latency (ms) inserted before each retry.
    pub const PASS_RETRY_LATENCY_MS: &str = "core.pass.retry_latency_ms";

    // `perflow-serve` daemon instruments (exposed via `/metrics`).

    /// Counter: HTTP requests handled (any route, any status).
    pub const SERVE_HTTP_REQUESTS: &str = "serve.http.requests";
    /// Counter: jobs accepted onto the queue.
    pub const SERVE_JOBS_SUBMITTED: &str = "serve.jobs.submitted";
    /// Counter: jobs that finished with a report.
    pub const SERVE_JOBS_COMPLETED: &str = "serve.jobs.completed";
    /// Counter: jobs that finished with an error.
    pub const SERVE_JOBS_FAILED: &str = "serve.jobs.failed";
    /// Counter: submissions rejected by a per-tenant quota (HTTP 429).
    pub const SERVE_REJECT_QUOTA: &str = "serve.jobs.rejected_quota";
    /// Counter: submissions rejected because the queue was full or the
    /// server was draining (HTTP 503).
    pub const SERVE_REJECT_FULL: &str = "serve.jobs.rejected_full";
    /// Counter: jobs answered from the fingerprint-keyed report cache.
    pub const SERVE_REPORT_CACHE_HIT: &str = "serve.report_cache.hit";
    /// Counter: jobs that had to compute their report.
    pub const SERVE_REPORT_CACHE_MISS: &str = "serve.report_cache.miss";
    /// Counter: simulations reused from the run cache.
    pub const SERVE_RUN_CACHE_HIT: &str = "serve.run_cache.hit";
    /// Counter: simulations that had to execute.
    pub const SERVE_RUN_CACHE_MISS: &str = "serve.run_cache.miss";
    /// Gauge: jobs currently queued (not yet running).
    pub const SERVE_QUEUE_DEPTH: &str = "serve.queue.depth";
    /// Counter: run-cache entries dropped by LRU eviction.
    pub const SERVE_RUN_CACHE_EVICT: &str = "serve.run_cache.evictions";
    /// Counter: report-cache entries dropped by LRU eviction.
    pub const SERVE_REPORT_CACHE_EVICT: &str = "serve.report_cache.evictions";
    /// Histogram: per-job queue wait (HTTP admission → executor
    /// dispatch), µs. Per-tenant variants are emitted as
    /// `serve.tenant.<tenant>.queue_wait_us`.
    pub const SERVE_JOB_QUEUE_WAIT_US: &str = "serve.job.queue_wait_us";
    /// Histogram: per-job execution time (dispatch → settled), µs.
    pub const SERVE_JOB_EXEC_US: &str = "serve.job.exec_us";
    /// Histogram: per-job end-to-end latency (admission → settled), µs.
    pub const SERVE_JOB_TOTAL_US: &str = "serve.job.total_us";
    /// Counter: `POST /bench-diff` comparisons served.
    pub const SERVE_BENCH_DIFF: &str = "serve.bench_diff.requests";
    /// Gauge (sampled at `/metrics` scrape): shared pass-cache hits.
    pub const SERVE_PASS_CACHE_HITS: &str = "serve.pass_cache.hits";
    /// Gauge (sampled at `/metrics` scrape): shared pass-cache misses.
    pub const SERVE_PASS_CACHE_MISSES: &str = "serve.pass_cache.misses";
    /// Gauge (sampled at `/metrics` scrape): shared pass-cache
    /// evictions.
    pub const SERVE_PASS_CACHE_EVICT: &str = "serve.pass_cache.evictions";
}

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default cap on stored spans (~26 MB worst case of span records).
pub const DEFAULT_SPAN_CAP: usize = 262_144;

/// Which pipeline layer a span belongs to. Layers map to Chrome-trace
/// *processes* so the timeline groups the simulator, the collection
/// pipeline and the pass scheduler into separate swim-lane blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// The discrete-event simulator (phases, rank segments).
    Simrt,
    /// Static analysis + embedding (PAG construction).
    Collect,
    /// The PerFlowGraph pass scheduler and cache.
    Core,
    /// Application-level spans (CLI, benches, user code).
    App,
    /// The `perflow-serve` daemon (job admission, queueing, dispatch).
    Serve,
}

impl Layer {
    /// Human-readable layer name (the trace's process name).
    pub fn name(self) -> &'static str {
        match self {
            Layer::Simrt => "simrt",
            Layer::Collect => "collect",
            Layer::Core => "core",
            Layer::App => "app",
            Layer::Serve => "serve",
        }
    }

    /// Chrome-trace process id.
    pub(crate) fn pid(self) -> u32 {
        match self {
            Layer::Simrt => 1,
            Layer::Collect => 2,
            Layer::Core => 3,
            Layer::App => 4,
            Layer::Serve => 5,
        }
    }
}

/// One recorded span.
#[derive(Debug, Clone)]
pub struct SpanRec {
    /// Pipeline layer (trace process).
    pub layer: Layer,
    /// Span name.
    pub name: Cow<'static, str>,
    /// Lane within the layer (trace thread id) — rank index, worker
    /// index, or 0 for scheduler-level spans.
    pub lane: u32,
    /// Start, µs since the handle's epoch.
    pub start_us: f64,
    /// Duration in µs.
    pub dur_us: f64,
    /// Trace id stamped by the recording handle (0 = untraced). Serve
    /// jobs record through [`Obs::with_trace`] so every span of one job
    /// — HTTP admission through the core scheduler's passes — carries
    /// the same id and can be exported as one request-scoped trace.
    pub trace: u64,
    /// Numeric annotations.
    pub args: Vec<(&'static str, f64)>,
}

#[derive(Default)]
struct State {
    spans: Vec<SpanRec>,
    dropped: u64,
    counters: BTreeMap<Cow<'static, str>, u64>,
    histograms: BTreeMap<Cow<'static, str>, Histogram>,
    gauges: BTreeMap<Cow<'static, str>, f64>,
}

struct Inner {
    epoch: Instant,
    cap: usize,
    state: Mutex<State>,
}

/// The observability handle. Cheap to clone (an `Option<Arc>`); a
/// disabled handle ([`Obs::disabled`], also the `Default`) makes every
/// instrumentation call a no-op.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
    /// Trace id stamped onto every span this handle records (0 = none).
    trace: u64,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.is_enabled())
            .field("trace", &self.trace)
            .finish()
    }
}

impl Obs {
    /// A disabled handle: all instrumentation compiles to branches that
    /// never touch the clock.
    pub fn disabled() -> Self {
        Obs {
            inner: None,
            trace: 0,
        }
    }

    /// An enabled handle with the default span cap.
    pub fn enabled() -> Self {
        Self::enabled_with_cap(DEFAULT_SPAN_CAP)
    }

    /// An enabled handle storing at most `cap` spans; further spans are
    /// counted in [`Obs::dropped_spans`] but not stored.
    pub fn enabled_with_cap(cap: usize) -> Self {
        Obs {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                cap,
                state: Mutex::new(State::default()),
            })),
            trace: 0,
        }
    }

    /// Whether instrumentation is recording.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A handle sharing this one's storage (same spans, counters, epoch)
    /// that stamps `trace` onto every span it records. Zero means
    /// untraced; serve derives one per job (trace id = job id) so the
    /// whole request — admission, queue wait, dispatch, and every core
    /// pass executed on its behalf — shares one trace id.
    pub fn with_trace(&self, trace: u64) -> Obs {
        Obs {
            inner: self.inner.clone(),
            trace,
        }
    }

    /// The trace id this handle stamps (0 = untraced).
    pub fn trace_id(&self) -> u64 {
        self.trace
    }

    /// The span cap of this handle (0 when disabled).
    pub fn span_cap(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.cap)
    }

    /// Number of spans currently stored. Spans are only ever appended
    /// (up to the cap), so this doubles as the span-storage high-water
    /// mark.
    pub fn stored_spans(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.state.lock().unwrap().spans.len(),
            None => 0,
        }
    }

    /// Microseconds since this handle's epoch (0.0 when disabled).
    pub fn now_us(&self) -> f64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_secs_f64() * 1e6,
            None => 0.0,
        }
    }

    /// Open a span with a static name; it records itself on drop.
    pub fn span(&self, layer: Layer, name: &'static str, lane: u32) -> Span<'_> {
        self.begin(layer, Cow::Borrowed(name), lane)
    }

    /// Open a span with a dynamically built name. The closure runs only
    /// when the handle is enabled, so disabled paths never allocate.
    pub fn span_with(&self, layer: Layer, lane: u32, name: impl FnOnce() -> String) -> Span<'_> {
        if self.inner.is_some() {
            self.begin(layer, Cow::Owned(name()), lane)
        } else {
            Span {
                obs: self,
                rec: None,
            }
        }
    }

    fn begin(&self, layer: Layer, name: Cow<'static, str>, lane: u32) -> Span<'_> {
        let rec = self.inner.as_ref().map(|_| SpanRec {
            layer,
            name,
            lane,
            start_us: self.now_us(),
            dur_us: 0.0,
            trace: self.trace,
            args: Vec::new(),
        });
        Span { obs: self, rec }
    }

    /// Record a fully formed span with explicit timestamps (for callers
    /// that measured the interval themselves, e.g. the pass scheduler).
    pub fn record_span(
        &self,
        layer: Layer,
        name: impl Into<Cow<'static, str>>,
        lane: u32,
        start_us: f64,
        end_us: f64,
        args: &[(&'static str, f64)],
    ) {
        if let Some(inner) = &self.inner {
            inner.push(SpanRec {
                layer,
                name: name.into(),
                lane,
                start_us,
                dur_us: (end_us - start_us).max(0.0),
                trace: self.trace,
                args: args.to_vec(),
            });
        }
    }

    /// Add `delta` to a named counter. Names are usually `&'static str`
    /// constants from [`names`]; owned `String`s are accepted for
    /// dynamically labelled series (e.g. per-tenant metrics) and only
    /// allocate when the handle is enabled.
    pub fn count(&self, name: impl Into<Cow<'static, str>>, delta: u64) {
        if let Some(inner) = &self.inner {
            *inner
                .state
                .lock()
                .unwrap()
                .counters
                .entry(name.into())
                .or_insert(0) += delta;
        }
    }

    /// Current value of a counter (0 when unknown or disabled).
    pub fn counter(&self, name: &str) -> u64 {
        match &self.inner {
            Some(inner) => inner
                .state
                .lock()
                .unwrap()
                .counters
                .get(name)
                .copied()
                .unwrap_or(0),
            None => 0,
        }
    }

    /// Snapshot of all counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        match &self.inner {
            Some(inner) => inner
                .state
                .lock()
                .unwrap()
                .counters
                .iter()
                .map(|(k, &v)| (k.to_string(), v))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Snapshot of recorded spans in deterministic order: (start, layer,
    /// lane, name).
    pub fn spans(&self) -> Vec<SpanRec> {
        match &self.inner {
            Some(inner) => {
                let mut spans = inner.state.lock().unwrap().spans.clone();
                spans.sort_by(|a, b| {
                    a.start_us
                        .total_cmp(&b.start_us)
                        .then(a.layer.cmp(&b.layer))
                        .then(a.lane.cmp(&b.lane))
                        .then(a.name.cmp(&b.name))
                });
                spans
            }
            None => Vec::new(),
        }
    }

    /// Record one measurement into the named histogram (no-op when
    /// disabled, so instrumented code stays digest-identical).
    pub fn observe(&self, name: impl Into<Cow<'static, str>>, value: f64) {
        if let Some(inner) = &self.inner {
            inner
                .state
                .lock()
                .unwrap()
                .histograms
                .entry(name.into())
                .or_default()
                .record(value);
        }
    }

    /// Merge a pre-aggregated histogram into the named one (no-op when
    /// disabled). Used by workers that accumulate locally and publish
    /// once; `Histogram::merge` is order-invariant, so the result does
    /// not depend on worker completion order.
    pub fn observe_merged(&self, name: impl Into<Cow<'static, str>>, h: &Histogram) {
        if let Some(inner) = &self.inner {
            inner
                .state
                .lock()
                .unwrap()
                .histograms
                .entry(name.into())
                .or_default()
                .merge(h);
        }
    }

    /// Snapshot of the named histogram (`None` when disabled or never
    /// observed).
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.state.lock().unwrap().histograms.get(name).cloned())
    }

    /// Snapshot of all histograms, sorted by name.
    pub fn histograms(&self) -> Vec<(String, Histogram)> {
        match &self.inner {
            Some(inner) => inner
                .state
                .lock()
                .unwrap()
                .histograms
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Set a gauge to a value (last write wins; no-op when disabled).
    pub fn set_gauge(&self, name: impl Into<Cow<'static, str>>, value: f64) {
        if let Some(inner) = &self.inner {
            inner
                .state
                .lock()
                .unwrap()
                .gauges
                .insert(name.into(), value);
        }
    }

    /// Current value of a gauge (`None` when disabled or never set).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.state.lock().unwrap().gauges.get(name).copied())
    }

    /// Snapshot of all gauges, sorted by name.
    pub fn gauges(&self) -> Vec<(String, f64)> {
        match &self.inner {
            Some(inner) => inner
                .state
                .lock()
                .unwrap()
                .gauges
                .iter()
                .map(|(k, &v)| (k.to_string(), v))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Spans recorded under `trace`, in deterministic order (same sort
    /// as [`Obs::spans`]).
    pub fn spans_for_trace(&self, trace: u64) -> Vec<SpanRec> {
        let mut spans = self.spans();
        spans.retain(|s| s.trace == trace);
        spans
    }

    /// A timestamp-free digest of one trace: FNV-1a over the sorted
    /// multiset of (layer, span name) pairs. Two runs of the same job
    /// execute the same spans in the same layers, so their digests are
    /// equal even though wall-clock timestamps differ; a missing or
    /// extra pass changes the digest.
    pub fn trace_digest(&self, trace: u64) -> u64 {
        let mut keys: Vec<String> = match &self.inner {
            Some(inner) => inner
                .state
                .lock()
                .unwrap()
                .spans
                .iter()
                .filter(|s| s.trace == trace)
                .map(|s| format!("{}\u{1f}{}", s.layer.name(), s.name))
                .collect(),
            None => Vec::new(),
        };
        keys.sort();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |byte: u8| {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        for key in &keys {
            for &b in key.as_bytes() {
                mix(b);
            }
            mix(0x1e);
        }
        h
    }

    /// Spans discarded because the cap was reached.
    pub fn dropped_spans(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.state.lock().unwrap().dropped,
            None => 0,
        }
    }

    /// True when at least one recorded span belongs to `layer`.
    pub fn has_layer(&self, layer: Layer) -> bool {
        match &self.inner {
            Some(inner) => inner
                .state
                .lock()
                .unwrap()
                .spans
                .iter()
                .any(|s| s.layer == layer),
            None => false,
        }
    }
}

impl Inner {
    fn push(&self, rec: SpanRec) {
        let mut st = self.state.lock().unwrap();
        if st.spans.len() < self.cap {
            st.spans.push(rec);
        } else {
            st.dropped += 1;
        }
    }
}

/// A RAII span guard: records the elapsed interval when dropped. Inert
/// (holds nothing) when the handle is disabled.
#[must_use = "a span records its interval when dropped"]
pub struct Span<'a> {
    obs: &'a Obs,
    rec: Option<SpanRec>,
}

impl Span<'_> {
    /// Attach a numeric argument (builder style).
    pub fn arg(mut self, key: &'static str, value: f64) -> Self {
        self.add_arg(key, value);
        self
    }

    /// Attach a numeric argument in place.
    pub fn add_arg(&mut self, key: &'static str, value: f64) {
        if let Some(rec) = &mut self.rec {
            rec.args.push((key, value));
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(mut rec) = self.rec.take() {
            rec.dur_us = (self.obs.now_us() - rec.start_us).max(0.0);
            if let Some(inner) = &self.obs.inner {
                inner.push(rec);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        assert_eq!(obs.now_us(), 0.0);
        {
            let _s = obs.span(Layer::Core, "x", 0).arg("k", 1.0);
        }
        let _never = obs.span_with(Layer::Core, 0, || panic!("must not run"));
        drop(_never);
        obs.count("c", 5);
        assert_eq!(obs.counter("c"), 0);
        obs.observe("h", 3.0);
        assert!(obs.histogram("h").is_none());
        assert!(obs.histograms().is_empty());
        obs.set_gauge("g", 1.0);
        assert!(obs.gauge("g").is_none());
        assert!(obs.gauges().is_empty());
        assert!(obs.spans().is_empty());
        assert_eq!(obs.chrome_trace(), Obs::disabled().chrome_trace());
    }

    #[test]
    fn spans_record_on_drop() {
        let obs = Obs::enabled();
        {
            let _s = obs.span(Layer::Simrt, "phase", 3).arg("ranks", 4.0);
        }
        let spans = obs.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "phase");
        assert_eq!(spans[0].lane, 3);
        assert_eq!(spans[0].args, vec![("ranks", 4.0)]);
        assert!(spans[0].dur_us >= 0.0);
        assert!(obs.has_layer(Layer::Simrt));
        assert!(!obs.has_layer(Layer::Core));
    }

    #[test]
    fn counters_accumulate() {
        let obs = Obs::enabled();
        obs.count("hits", 2);
        obs.count("hits", 3);
        obs.count("misses", 1);
        assert_eq!(obs.counter("hits"), 5);
        assert_eq!(
            obs.counters(),
            vec![("hits".to_string(), 5), ("misses".to_string(), 1)]
        );
        // Owned (dynamically labelled) names land in the same namespace.
        obs.count(format!("tenant.{}.hits", "acme"), 2);
        assert_eq!(obs.counter("tenant.acme.hits"), 2);
    }

    #[test]
    fn histograms_and_gauges_record() {
        let obs = Obs::enabled();
        obs.observe("lat", 2.0);
        obs.observe("lat", 8.0);
        let mut local = Histogram::new();
        local.record(32.0);
        obs.observe_merged("lat", &local);
        let h = obs.histogram("lat").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 42.0);
        obs.set_gauge("depth", 4.0);
        obs.set_gauge("depth", 7.0);
        assert_eq!(obs.gauge("depth"), Some(7.0));
        assert_eq!(obs.gauges(), vec![("depth".to_string(), 7.0)]);
        assert_eq!(obs.histograms().len(), 1);
        assert_eq!(obs.histograms()[0].0, "lat");
    }

    #[test]
    fn span_cap_counts_drops() {
        let obs = Obs::enabled_with_cap(2);
        for i in 0..5 {
            obs.record_span(Layer::App, "s", i, 0.0, 1.0, &[]);
        }
        assert_eq!(obs.spans().len(), 2);
        assert_eq!(obs.dropped_spans(), 3);
        assert!(obs.chrome_trace().contains("\"droppedSpans\":3"));
    }

    #[test]
    fn chrome_trace_shape_and_escaping() {
        let obs = Obs::enabled();
        obs.record_span(
            Layer::Core,
            "pass:\"ev\\il\"\n",
            1,
            10.0,
            25.0,
            &[("n", 2.0)],
        );
        obs.record_span(Layer::Simrt, "phase", 0, 5.0, 7.0, &[]);
        obs.count("core.cache.hit", 1);
        let t = obs.chrome_trace();
        assert!(t.starts_with("{\"traceEvents\":["));
        assert!(t.ends_with("}}"));
        // Process metadata for both layers.
        assert!(t.contains("\"process_name\""));
        assert!(t.contains("\"name\":\"simrt\""));
        assert!(t.contains("\"name\":\"core\""));
        // Span fields, escaped name, sorted order (simrt span starts first).
        assert!(t.contains("\"ph\":\"X\""));
        assert!(t.contains("pass:\\\"ev\\\\il\\\"\\n"));
        assert!(t.find("\"phase\"").unwrap() < t.find("pass:").unwrap());
        assert!(t.contains("\"core.cache.hit\":1"));
        // No raw control characters escaped into the output.
        assert!(!t.contains('\n'));
        // Balanced braces/brackets (cheap well-formedness check; the CI
        // workflow runs a real JSON parser over CLI output).
        let mut in_str = false;
        let mut esc = false;
        let (mut braces, mut brackets) = (0i32, 0i32);
        for c in t.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' if !in_str => braces += 1,
                '}' if !in_str => braces -= 1,
                '[' if !in_str => brackets += 1,
                ']' if !in_str => brackets -= 1,
                _ => {}
            }
        }
        assert_eq!((braces, brackets), (0, 0));
    }

    #[test]
    fn deterministic_export_ordering() {
        let build = |order: &[u32]| {
            let obs = Obs::enabled();
            for &lane in order {
                obs.record_span(Layer::Core, "s", lane, lane as f64, 2.0, &[]);
            }
            obs.chrome_trace()
        };
        assert_eq!(build(&[2, 0, 1]), build(&[0, 1, 2]));
    }

    #[test]
    fn nonfinite_args_serialize_as_null() {
        let obs = Obs::enabled();
        obs.record_span(Layer::App, "s", 0, 0.0, 1.0, &[("bad", f64::NAN)]);
        let t = obs.chrome_trace();
        assert!(t.contains("\"bad\":null"));
        assert!(!t.contains("NaN"));
    }

    #[test]
    fn with_trace_shares_storage_and_stamps_ids() {
        let obs = Obs::enabled();
        assert_eq!(obs.trace_id(), 0);
        let job = obs.with_trace(7);
        assert_eq!(job.trace_id(), 7);
        {
            let _s = job.span(Layer::Serve, "job", 0);
        }
        job.record_span(Layer::Core, "pass:a", 1, 0.0, 5.0, &[]);
        obs.record_span(Layer::App, "background", 0, 0.0, 1.0, &[]);
        // All three spans share one store...
        assert_eq!(obs.spans().len(), 3);
        // ...but only the job handle's spans carry the trace id.
        let traced = obs.spans_for_trace(7);
        assert_eq!(traced.len(), 2);
        assert!(traced.iter().all(|s| s.trace == 7));
        assert_eq!(obs.spans_for_trace(0).len(), 1);
        // Counters recorded through a traced handle are shared too.
        job.count("c", 1);
        assert_eq!(obs.counter("c"), 1);
    }

    #[test]
    fn trace_digest_ignores_timestamps_but_not_structure() {
        let run = |start: f64| {
            let obs = Obs::enabled().with_trace(3);
            obs.record_span(Layer::Serve, "job", 0, start, start + 9.0, &[]);
            obs.record_span(Layer::Core, "pass:a", 1, start + 1.0, start + 2.0, &[]);
            obs.record_span(Layer::Core, "pass:b", 2, start + 2.0, start + 4.0, &[]);
            obs.trace_digest(3)
        };
        assert_eq!(run(0.0), run(1234.5));

        let missing_pass = {
            let obs = Obs::enabled().with_trace(3);
            obs.record_span(Layer::Serve, "job", 0, 0.0, 9.0, &[]);
            obs.record_span(Layer::Core, "pass:a", 1, 1.0, 2.0, &[]);
            obs.trace_digest(3)
        };
        assert_ne!(run(0.0), missing_pass);
        // Other traces' spans do not leak into the digest.
        let obs = Obs::enabled();
        obs.with_trace(3)
            .record_span(Layer::Core, "pass:a", 0, 0.0, 1.0, &[]);
        let lone = obs.trace_digest(3);
        obs.with_trace(4)
            .record_span(Layer::Core, "pass:z", 0, 0.0, 1.0, &[]);
        assert_eq!(obs.trace_digest(3), lone);
    }

    #[test]
    fn span_cap_and_high_water_are_reported() {
        let obs = Obs::enabled_with_cap(2);
        assert_eq!(obs.span_cap(), 2);
        assert_eq!(obs.stored_spans(), 0);
        for i in 0..5 {
            obs.record_span(Layer::App, "s", i, 0.0, 1.0, &[]);
        }
        assert_eq!(obs.stored_spans(), 2);
        assert_eq!(Obs::disabled().span_cap(), 0);
        assert_eq!(Obs::disabled().stored_spans(), 0);
    }
}
