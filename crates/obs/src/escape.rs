//! JSON string escaping — the one escaping helper shared across the
//! workspace.
//!
//! Both this crate's Chrome-trace exporter and `verify`'s diagnostic
//! renderer emit hand-rolled JSON containing hostile strings (span names
//! and PAG vertex names are attacker-ish input: quotes, backslashes,
//! newlines, control characters). Escaping used to be duplicated per
//! crate; it now lives here, behind two entry points:
//!
//! * [`json_escape`] — escape the *contents* of a JSON string literal
//!   (no surrounding quotes), the drop-in for `verify::json_escape`;
//! * [`json_str`] — a full JSON string literal including quotes.

/// Escape a string for inclusion inside a JSON string literal (without
/// surrounding quotes). Handles `"` and `\`, the common whitespace
/// escapes, and all remaining C0 control characters as `\u00xx`.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// A string as a complete JSON string literal (with surrounding quotes).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    out.push_str(&json_escape(s));
    out.push('"');
    out
}

/// Render an f64 as a JSON number (JSON has no NaN/inf — clamp to null).
pub fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\t\r"), "\\t\\r");
        assert_eq!(json_escape("\u{1}\u{1f}"), "\\u0001\\u001f");
        assert_eq!(json_escape("\u{8}\u{c}"), "\\b\\f");
        assert_eq!(json_escape("plain"), "plain");
        // Unicode above the control range passes through.
        assert_eq!(json_escape("µs → спан"), "µs → спан");
    }

    #[test]
    fn json_str_quotes() {
        assert_eq!(json_str("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_str(""), "\"\"");
    }

    #[test]
    fn json_num_clamps_nonfinite() {
        assert_eq!(json_num(1.5), "1.5");
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(f64::INFINITY), "null");
    }
}
