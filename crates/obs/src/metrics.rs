//! The metrics model: log-bucketed histograms and gauges.
//!
//! Counters (monotonic `u64`) live directly on [`crate::Obs`]; this
//! module adds the two richer instrument kinds:
//!
//! * [`Histogram`] — a fixed-shape power-of-two-bucketed distribution of
//!   non-negative measurements (durations in µs, sizes, counts). The
//!   bucket layout is *static* (no rebalancing), so two histograms are
//!   always mergeable and [`Histogram::merge`] is associative,
//!   commutative and deterministic: the sum is accumulated in 1/1024
//!   fixed-point units, making it exact integer arithmetic rather than
//!   order-sensitive floating-point addition.
//! * Gauges are plain last-write-wins `f64` values stored on the handle
//!   (pool occupancy, queue depth); they need no type of their own.
//!
//! Determinism is load-bearing: `RunMetrics` embeds histograms and its
//! rendering must be byte-identical across runs of the same schedule, and
//! merged per-worker histograms must not depend on merge order.

/// Number of histogram buckets: bucket 0 holds values `< 1`, bucket `i`
/// (`1 ≤ i < 63`) holds values in `[2^(i-1), 2^i)`, and the last bucket
/// holds everything at or above `2^62`.
pub const HIST_BUCKETS: usize = 64;

/// Fixed-point scale for the exact sum: values are accumulated as
/// `round(v * 1024)` so merging is integer addition (associative and
/// commutative, unlike `f64` addition).
const SUM_SCALE: f64 = 1024.0;

/// A log-bucketed histogram of non-negative `f64` measurements.
///
/// Negative and non-finite values are clamped into bucket 0 and excluded
/// from the sum (they still count toward `count`), so hostile inputs
/// cannot poison the statistics with NaN.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    count: u64,
    /// Exact sum in 1/1024 units (see `SUM_SCALE`).
    sum_fp: u128,
    /// Minimum recorded value (`+inf` when empty — never exposed raw).
    min: f64,
    /// Maximum recorded value (`0.0` when empty).
    max: f64,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum_fp: 0,
            min: f64::INFINITY,
            max: 0.0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

/// Bucket index for a value: 0 for `< 1` (and anything non-finite or
/// negative), otherwise `1 + floor(log2(v))`, clamped to the last bucket.
fn bucket_of(v: f64) -> usize {
    if !v.is_finite() || v < 1.0 {
        return 0;
    }
    // `as u64` saturates for out-of-range floats, so huge values land in
    // the last bucket rather than wrapping.
    let idx = 1 + (v as u64).ilog2() as usize;
    idx.min(HIST_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`+inf` for the last bucket).
pub fn bucket_bound(i: usize) -> f64 {
    if i + 1 >= HIST_BUCKETS {
        f64::INFINITY
    } else {
        (1u64 << i) as f64
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one measurement.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.buckets[bucket_of(v)] += 1;
        if v.is_finite() && v >= 0.0 {
            self.sum_fp += (v * SUM_SCALE).round() as u128;
            if v < self.min {
                self.min = v;
            }
            if v > self.max {
                self.max = v;
            }
        }
    }

    /// Merge another histogram into this one. Associative, commutative
    /// and deterministic: counts and the fixed-point sum add exactly;
    /// min/max take the extreme.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum_fp += other.sum_fp;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Number of recorded measurements.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of recorded values (exact to 1/1024 per sample).
    pub fn sum(&self) -> f64 {
        self.sum_fp as f64 / SUM_SCALE
    }

    /// Mean recorded value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum() / self.count as f64
        }
    }

    /// Smallest recorded value (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0.0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Approximate quantile (`0.0 ≤ q ≤ 1.0`) from the bucket bounds:
    /// the upper bound of the bucket containing the `q`-th sample, with
    /// the true min/max substituted at the extremes. 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let bound = bucket_bound(i);
                return bound.min(self.max()).max(self.min());
            }
        }
        self.max()
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs, in
    /// ascending bound order (deterministic).
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_bound(i), n))
            .collect()
    }

    /// Cumulative bucket counts as `(upper bound, cumulative count)` for
    /// every bucket up to and including the last non-empty one, plus the
    /// `+inf` bucket — the Prometheus `le` series shape.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let last = self
            .buckets
            .iter()
            .rposition(|&n| n > 0)
            .unwrap_or(0)
            .min(HIST_BUCKETS - 2);
        let mut out = Vec::with_capacity(last + 2);
        let mut cum = 0u64;
        for i in 0..=last {
            cum += self.buckets[i];
            out.push((bucket_bound(i), cum));
        }
        out.push((f64::INFINITY, self.count));
        out
    }

    /// One-line human-readable summary.
    pub fn render(&self) -> String {
        if self.count == 0 {
            return "n=0".to_string();
        }
        format!(
            "n={} sum={:.1} min={:.1} p50={:.0} p99={:.0} max={:.1}",
            self.count,
            self.sum(),
            self.min(),
            self.quantile(0.5),
            self.quantile(0.99),
            self.max()
        )
    }

    /// Machine-readable JSON object with stable, sorted key order:
    /// `{"buckets":[[le,n],…],"count":…,"max":…,"mean":…,"min":…,"sum":…}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"buckets\":[");
        for (i, (le, n)) in self.nonzero_buckets().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            if le.is_finite() {
                out.push_str(&format!("[{le},{n}]"));
            } else {
                out.push_str(&format!("[\"+Inf\",{n}]"));
            }
        }
        out.push_str(&format!(
            "],\"count\":{},\"max\":{},\"mean\":{},\"min\":{},\"sum\":{}}}",
            self.count,
            crate::escape::json_num(self.max()),
            crate::escape::json_num(self.mean()),
            crate::escape::json_num(self.min()),
            crate::escape::json_num(self.sum()),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(0.99), 0);
        assert_eq!(bucket_of(1.0), 1);
        assert_eq!(bucket_of(1.9), 1);
        assert_eq!(bucket_of(2.0), 2);
        assert_eq!(bucket_of(1024.0), 11);
        assert_eq!(bucket_of(f64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_of(-5.0), 0);
        assert_eq!(bucket_of(f64::NAN), 0);
        assert_eq!(bucket_bound(0), 1.0);
        assert_eq!(bucket_bound(11), 2048.0);
        assert!(bucket_bound(HIST_BUCKETS - 1).is_infinite());
    }

    #[test]
    fn record_and_stats() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 106.0).abs() < 1e-9);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 100.0);
        assert!((h.mean() - 26.5).abs() < 1e-9);
        assert!(h.quantile(0.5) <= 4.0);
        assert_eq!(h.quantile(1.0), 100.0);
    }

    #[test]
    fn empty_histogram_is_benign() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.render(), "n=0");
        assert_eq!(
            h.render_json(),
            "{\"buckets\":[],\"count\":0,\"max\":0,\"mean\":0,\"min\":0,\"sum\":0}"
        );
    }

    #[test]
    fn hostile_values_cannot_poison() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(-3.0);
        h.record(5.0);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 5.0);
        assert_eq!(h.min(), 5.0);
        assert_eq!(h.max(), 5.0);
        assert!(!h.render_json().contains("NaN"));
    }

    #[test]
    fn merge_is_order_invariant() {
        let mk = |vals: &[f64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (a, b, c) = (mk(&[1.0, 7.5]), mk(&[0.25, 900.0]), mk(&[64.0]));
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut c_ba = c.clone();
        c_ba.merge(&b);
        c_ba.merge(&a);
        assert_eq!(ab_c, c_ba);
        assert_eq!(ab_c.render_json(), c_ba.render_json());
        assert_eq!(ab_c.count(), 5);
    }

    #[test]
    fn cumulative_buckets_end_at_inf() {
        let mut h = Histogram::new();
        h.record(3.0);
        h.record(5.0);
        let cum = h.cumulative_buckets();
        assert_eq!(cum.last().unwrap().1, 2);
        assert!(cum.last().unwrap().0.is_infinite());
        // Monotone non-decreasing.
        for w in cum.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }
}
