//! Folded-stack ("collapsed") exporter — the `flamegraph.pl` / inferno
//! input format: one line per distinct stack, frames joined by `;`,
//! followed by a space and an integer value.
//!
//! Two producers share the format:
//!
//! * [`Obs::folded_stacks`] collapses recorded **span nesting**: within
//!   each (layer, lane) the spans form a time-interval tree, and each
//!   span contributes its *self* time (duration minus directly nested
//!   child durations, in µs) to the stack `perflow;<layer>;<path…>`.
//!   Lanes are aggregated, as a flamegraph aggregates threads.
//! * [`render_folded`] renders any pre-aggregated `stack → value` map —
//!   the collection pipeline uses it for the simulated application's
//!   sampled calling contexts.
//!
//! Output lines are sorted (BTreeMap order), so equal inputs always
//! serialize identically.

use std::collections::BTreeMap;

use crate::{Obs, SpanRec};

/// Synthetic root frame of all engine-span stacks.
pub const FOLDED_ROOT: &str = "perflow";

/// Make a frame name safe for the folded format: `;` separates frames
/// and the last space separates the value, so both (and control
/// characters) are replaced with `_`.
pub fn sanitize_frame(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c == ';' || c.is_whitespace() || (c as u32) < 0x20 {
                '_'
            } else {
                c
            }
        })
        .collect()
}

/// Render a `stack → value` map as folded lines (sorted, one `stack
/// value` line each, trailing newline when non-empty). Zero-valued
/// stacks are kept: a present-but-cheap frame is information.
pub fn render_folded(stacks: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (stack, value) in stacks {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    out
}

/// An open frame during interval-tree reconstruction.
struct Frame {
    end_us: f64,
    path: String,
    dur_us: f64,
    child_us: f64,
}

/// Collapse one lane's spans (already sorted by start) into self-time
/// stacks, accumulating into `acc`.
fn collapse_lane(layer: &str, spans: &[&SpanRec], acc: &mut BTreeMap<String, u64>) {
    let mut stack: Vec<Frame> = Vec::new();
    let close = |f: Frame, acc: &mut BTreeMap<String, u64>| {
        let self_us = (f.dur_us - f.child_us).max(0.0);
        *acc.entry(f.path).or_insert(0) += self_us.round() as u64;
    };
    for s in spans {
        while let Some(top) = stack.last() {
            if s.start_us >= top.end_us {
                let f = stack.pop().unwrap();
                close(f, acc);
            } else {
                break;
            }
        }
        if let Some(top) = stack.last_mut() {
            top.child_us += s.dur_us;
        }
        let parent_path = match stack.last() {
            Some(top) => top.path.clone(),
            None => format!("{FOLDED_ROOT};{layer}"),
        };
        stack.push(Frame {
            end_us: s.start_us + s.dur_us,
            path: format!("{parent_path};{}", sanitize_frame(&s.name)),
            dur_us: s.dur_us,
            child_us: 0.0,
        });
    }
    while let Some(f) = stack.pop() {
        close(f, acc);
    }
}

impl Obs {
    /// Export recorded spans as folded stacks (self time in µs per
    /// stack). Empty string when disabled or nothing was recorded.
    pub fn folded_stacks(&self) -> String {
        let spans = self.spans();
        let mut acc: BTreeMap<String, u64> = BTreeMap::new();
        // Group by (layer, lane); `spans()` is sorted by (start, layer,
        // lane, name), so a stable partition keeps start order per lane.
        let mut groups: BTreeMap<(u8, u32), Vec<&SpanRec>> = BTreeMap::new();
        for s in &spans {
            groups.entry((s.layer as u8, s.lane)).or_default().push(s);
        }
        for ((_, _), lane_spans) in groups {
            // Parents first when spans share a start time (longer spans
            // enclose shorter ones).
            let mut sorted = lane_spans;
            sorted.sort_by(|a, b| {
                a.start_us
                    .total_cmp(&b.start_us)
                    .then(b.dur_us.total_cmp(&a.dur_us))
                    .then(a.name.cmp(&b.name))
            });
            let layer = sorted[0].layer.name();
            collapse_lane(layer, &sorted, &mut acc);
        }
        render_folded(&acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Layer;

    /// Parse folded output back into (stack, value) pairs.
    fn parse(out: &str) -> Vec<(String, u64)> {
        out.lines()
            .map(|l| {
                let (stack, v) = l.rsplit_once(' ').unwrap();
                (stack.to_string(), v.parse().unwrap())
            })
            .collect()
    }

    #[test]
    fn nesting_roundtrip_self_times_sum_to_parent() {
        let obs = Obs::enabled();
        // parent [0, 100) with child [10, 40) holding grandchild
        // [15, 25), plus a second child [50, 80).
        obs.record_span(Layer::Core, "parent", 0, 0.0, 100.0, &[]);
        obs.record_span(Layer::Core, "child", 0, 10.0, 40.0, &[]);
        obs.record_span(Layer::Core, "grandchild", 0, 15.0, 25.0, &[]);
        obs.record_span(Layer::Core, "child2", 0, 50.0, 80.0, &[]);
        let folded = obs.folded_stacks();
        let lines = parse(&folded);
        let get = |stack: &str| {
            lines
                .iter()
                .find(|(s, _)| s == &format!("perflow;core;{stack}"))
                .unwrap_or_else(|| panic!("missing {stack} in:\n{folded}"))
                .1
        };
        assert_eq!(get("parent"), 40); // 100 - 30 - 30
        assert_eq!(get("parent;child"), 20); // 30 - 10
        assert_eq!(get("parent;child;grandchild"), 10);
        assert_eq!(get("parent;child2"), 30);
        // Round trip: self times under `parent` sum to its duration.
        let total: u64 = lines
            .iter()
            .filter(|(s, _)| s.starts_with("perflow;core;parent"))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn lanes_aggregate_and_layers_separate() {
        let obs = Obs::enabled();
        obs.record_span(Layer::Simrt, "phase", 0, 0.0, 10.0, &[]);
        obs.record_span(Layer::Simrt, "phase", 1, 0.0, 15.0, &[]);
        obs.record_span(Layer::Core, "phase", 0, 0.0, 7.0, &[]);
        let lines = parse(&obs.folded_stacks());
        assert_eq!(
            lines,
            vec![
                ("perflow;core;phase".to_string(), 7),
                ("perflow;simrt;phase".to_string(), 25),
            ]
        );
    }

    #[test]
    fn hostile_names_are_sanitized() {
        let obs = Obs::enabled();
        obs.record_span(Layer::App, "a;b c\nd", 0, 0.0, 5.0, &[]);
        let folded = obs.folded_stacks();
        assert_eq!(folded, "perflow;app;a_b_c_d 5\n");
    }

    #[test]
    fn disabled_or_empty_is_empty() {
        assert_eq!(Obs::disabled().folded_stacks(), "");
        assert_eq!(Obs::enabled().folded_stacks(), "");
    }

    #[test]
    fn siblings_do_not_nest() {
        let obs = Obs::enabled();
        obs.record_span(Layer::App, "a", 0, 0.0, 10.0, &[]);
        obs.record_span(Layer::App, "b", 0, 10.0, 30.0, &[]);
        let lines = parse(&obs.folded_stacks());
        assert_eq!(
            lines,
            vec![
                ("perflow;app;a".to_string(), 10),
                ("perflow;app;b".to_string(), 20),
            ]
        );
    }
}
