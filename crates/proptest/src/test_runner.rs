//! Deterministic case runner: configuration plus the RNG driving value
//! generation.

/// Runner configuration. Only `cases` is meaningful in this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Splitmix64 generator seeded from the test name, so every run of a
/// given property sees the identical case stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed directly.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seed from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = TestRng::from_name("t");
        let mut b = TestRng::from_name("t");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_bounds() {
        let mut r = TestRng::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn unit_in_range() {
        let mut r = TestRng::new(3);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
