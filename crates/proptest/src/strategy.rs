//! The [`Strategy`] trait, combinators, and built-in strategies for
//! primitives, ranges, tuples and regex-lite string patterns.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// How many times a `prop_filter`/`prop_filter_map` retries generation
/// before giving up. Generous: the filters in this workspace accept a
/// large fraction of inputs.
const FILTER_RETRIES: usize = 10_000;

/// A generator of test values.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Produce one value from the RNG stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    /// Keep only values the predicate accepts.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            source: self,
            reason: reason.into(),
            f,
        }
    }

    /// Transform values, dropping those mapped to `None`.
    fn prop_filter_map<O: Debug, F: Fn(Self::Value) -> Option<O>>(
        self,
        reason: impl Into<String>,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            source: self,
            reason: reason.into(),
            f,
        }
    }

    /// Type-erase the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    reason: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.source.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    source: S,
    reason: String,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..FILTER_RETRIES {
            if let Some(v) = (self.f)(self.source.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map exhausted retries: {}", self.reason);
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct OneOf<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> OneOf<T> {
    /// Build from a non-empty list of alternatives.
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { choices }
    }
}

impl<T: Debug> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.choices.len() as u64) as usize;
        self.choices[i].generate(rng)
    }
}

/// Values of a type with a canonical "arbitrary" distribution.
pub trait ArbitraryValue: Debug {
    /// Produce one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for any value of `T`; see [`any`].
pub struct Any<T>(PhantomData<T>);

/// The `any::<T>()` entry point.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.unit_f64() - 0.5) * 2e6
    }
}

impl ArbitraryValue for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        (b' ' + rng.below(95) as u8) as char
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                if self.start >= self.end {
                    return self.start;
                }
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = if span > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    rng.below(span as u64) as u128
                };
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                if start >= end {
                    return start;
                }
                let span = (end as i128 - start as i128 + 1) as u128;
                let off = if span > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    rng.below(span as u64) as u128
                };
                (start as i128 + off as i128) as $t
            }
        }
    )+};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// String patterns: a `&str` is itself a strategy over the regex-lite
/// subset `literal`, `\x` escapes, `[class]` (with `a-z` ranges), and a
/// trailing `{m}` / `{m,n}` quantifier per atom.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Atom: a character class or a single (possibly escaped) literal.
        let class: Vec<char> = if chars[i] == '[' {
            let mut cls = Vec::new();
            i += 1;
            while i < chars.len() && chars[i] != ']' {
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    let (lo, hi) = (chars[i], chars[i + 2]);
                    assert!(lo <= hi, "bad char range {lo}-{hi} in pattern {pattern}");
                    for c in lo..=hi {
                        cls.push(c);
                    }
                    i += 3;
                } else {
                    cls.push(chars[i]);
                    i += 1;
                }
            }
            assert!(i < chars.len(), "unterminated [class] in pattern {pattern}");
            i += 1; // skip ']'
            cls
        } else if chars[i] == '\\' && i + 1 < chars.len() {
            i += 2;
            vec![chars[i - 1]]
        } else {
            i += 1;
            vec![chars[i - 1]]
        };
        // Quantifier: {m} or {m,n}; default exactly once.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated {{quantifier}} in pattern {pattern}"));
            let inner: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match inner.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("bad quantifier"),
                    n.trim().parse::<usize>().expect("bad quantifier"),
                ),
                None => {
                    let m = inner.trim().parse::<usize>().expect("bad quantifier");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        let count = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..count {
            if !class.is_empty() {
                out.push(class[rng.below(class.len() as u64) as usize]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(42)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let x = (3u32..17).generate(&mut r);
            assert!((3..17).contains(&x));
            let y = (5i64..=9).generate(&mut r);
            assert!((5..=9).contains(&y));
            let z = (0.5..2.5f64).generate(&mut r);
            assert!((0.5..2.5).contains(&z));
        }
    }

    #[test]
    fn degenerate_range_yields_start() {
        let mut r = rng();
        assert_eq!((7usize..7).generate(&mut r), 7);
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = rng();
        let s = (1u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
        let nested = (2usize..5).prop_flat_map(|n| crate::collection::vec(0usize..n, n));
        for _ in 0..100 {
            let v = nested.generate(&mut r);
            assert!((2..5).contains(&v.len()));
            let n = v.len();
            assert!(v.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn filter_map_respects_predicate() {
        let mut r = rng();
        let s = (0usize..10, 0usize..10).prop_filter_map("distinct", |(a, b)| {
            if a != b {
                Some((a, b))
            } else {
                None
            }
        });
        for _ in 0..200 {
            let (a, b) = s.generate(&mut r);
            assert_ne!(a, b);
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut r = rng();
        let s = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn pattern_strategy_matches_classes() {
        let mut r = rng();
        let ident = "[a-zA-Z_][a-zA-Z0-9_.:]{0,12}";
        for _ in 0..200 {
            let s = ident.generate(&mut r);
            assert!(!s.is_empty() && s.len() <= 13);
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_');
        }
        for _ in 0..100 {
            let s = "[ab*]{0,6}".generate(&mut r);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| "ab*".contains(c)));
        }
        assert_eq!("abc".generate(&mut r), "abc");
        assert_eq!("a{3}".generate(&mut r), "aaa");
    }

    #[test]
    fn any_primitives() {
        let mut r = rng();
        let _ = any::<bool>().generate(&mut r);
        let b = any::<u8>().generate(&mut r);
        let _ = b;
        let f = any::<f64>().generate(&mut r);
        assert!(f.is_finite());
    }
}
