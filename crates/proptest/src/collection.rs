//! Collection strategies (`prop::collection::vec`).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive length bounds for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        // An empty range (end <= start) degenerates to exactly `start`.
        let hi = if r.end > r.start { r.end - 1 } else { r.start };
        SizeRange { lo: r.start, hi }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: (*r.end()).max(*r.start()),
        }
    }
}

/// Strategy for vectors whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_bounds() {
        let mut r = TestRng::new(1);
        let s = vec(0u32..5, 2..7);
        for _ in 0..300 {
            let v = s.generate(&mut r);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn exact_size_and_empty_range() {
        let mut r = TestRng::new(2);
        assert_eq!(vec(0u8..3, 4usize).generate(&mut r).len(), 4);
        assert!(vec(0u8..3, 0..0).generate(&mut r).is_empty());
    }
}
