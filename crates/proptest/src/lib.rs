//! A small, dependency-free property-testing harness exposing the subset
//! of the `proptest` crate API this workspace uses.
//!
//! The build environment is hermetic (no registry access), so the real
//! `proptest` crate cannot be resolved. This crate keeps the test suites
//! source-compatible: `proptest!` test blocks, `Strategy` combinators
//! (`prop_map`, `prop_flat_map`, `prop_filter_map`), `Just`,
//! `prop_oneof!`, numeric range strategies, tuple strategies, regex-lite
//! string strategies, `prop::collection::vec`, `prop::option::of` and
//! `any::<T>()`.
//!
//! Differences from the real crate, by design:
//! - generation is a fixed-seed deterministic stream (seeded from the
//!   test name), so failures reproduce exactly across runs;
//! - no shrinking — a failing case prints its inputs and re-panics;
//! - string strategies accept only the character-class/quantifier regex
//!   subset the tests use (`[a-z_]{0,12}`-style patterns).

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// What `use proptest::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    // The real prelude re-exports the crate root under the name `prop`
    // so tests can say `prop::collection::vec(..)`.
    pub use crate as prop;
}

/// Declare a block of property tests.
///
/// Supports an optional `#![proptest_config(..)]` header followed by any
/// number of `fn name(arg in strategy, ..) { body }` items, each carrying
/// its own attributes (`#[test]`, doc comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let describe = || {
                    let mut s = ::std::string::String::new();
                    $(
                        s.push_str("  ");
                        s.push_str(stringify!($arg));
                        s.push_str(" = ");
                        s.push_str(&::std::format!("{:?}\n", $arg));
                    )+
                    s
                };
                let described = describe();
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(payload) = outcome {
                    ::std::eprintln!(
                        "proptest `{}` failed on case {}/{} with inputs:\n{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        described,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Uniform choice between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Assert inside a property test (no shrinking: delegates to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { ::std::assert!($($t)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { ::std::assert_eq!($($t)*) };
}

/// Inequality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { ::std::assert_ne!($($t)*) };
}
