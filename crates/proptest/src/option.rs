//! Option strategies (`prop::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Option<T>`: `None` roughly one time in five.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(5) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let mut r = TestRng::new(9);
        let s = of(0u32..100);
        let vals: Vec<_> = (0..200).map(|_| s.generate(&mut r)).collect();
        assert!(vals.iter().any(Option::is_none));
        assert!(vals.iter().any(Option::is_some));
    }
}
