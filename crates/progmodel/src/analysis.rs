//! Static structure queries over a program model — the information
//! Dyninst-style binary analysis provides (§3.2): the call graph, recursion
//! detection, and the inventory of call sites whose targets cannot be
//! resolved statically.

use std::collections::{HashMap, HashSet};

use crate::program::{CallTarget, FuncId, Program, StmtKind};

/// Static call graph: for each function, the statically-known callees.
/// Indirect call sites contribute *all* candidates but are also reported
/// separately so the dynamic phase can refine them.
pub fn call_graph(p: &Program) -> HashMap<FuncId, Vec<FuncId>> {
    let mut cg: HashMap<FuncId, Vec<FuncId>> = HashMap::new();
    for f in &p.functions {
        cg.entry(f.id).or_default();
    }
    p.visit_stmts(|func, stmt| {
        if let StmtKind::Call { target } = &stmt.kind {
            let entry = cg.entry(func.id).or_default();
            match target {
                CallTarget::Static(callee) => entry.push(*callee),
                CallTarget::Indirect { candidates, .. } => entry.extend(candidates.iter().copied()),
            }
        }
    });
    for callees in cg.values_mut() {
        callees.sort();
        callees.dedup();
    }
    cg
}

/// Functions participating in call-graph cycles (directly or mutually
/// recursive). Their call sites get the `Recursive` call kind in the PAG.
pub fn recursive_functions(p: &Program) -> HashSet<FuncId> {
    let cg = call_graph(p);
    let mut recursive = HashSet::new();
    // A function is recursive iff it can reach itself in the call graph.
    for &start in cg.keys() {
        let mut stack = vec![start];
        let mut seen = HashSet::new();
        while let Some(f) = stack.pop() {
            for &callee in cg.get(&f).into_iter().flatten() {
                if callee == start {
                    recursive.insert(start);
                    stack.clear();
                    break;
                }
                if seen.insert(callee) {
                    stack.push(callee);
                }
            }
        }
    }
    recursive
}

/// Summary of what static analysis could and could not resolve.
#[derive(Debug, Clone)]
pub struct StaticSummary {
    /// Number of functions.
    pub functions: usize,
    /// Number of statements.
    pub statements: usize,
    /// Direct call sites.
    pub direct_calls: usize,
    /// Indirect call sites (resolved only at runtime).
    pub indirect_calls: usize,
    /// Communication call sites.
    pub comm_calls: usize,
    /// Lock sites.
    pub lock_sites: usize,
    /// Thread regions.
    pub thread_regions: usize,
    /// Functions reachable from the entry via the static call graph.
    pub reachable_functions: usize,
}

/// Compute the static summary of a program.
pub fn static_summary(p: &Program) -> StaticSummary {
    let mut s = StaticSummary {
        functions: p.functions.len(),
        statements: 0,
        direct_calls: 0,
        indirect_calls: 0,
        comm_calls: 0,
        lock_sites: 0,
        thread_regions: 0,
        reachable_functions: 0,
    };
    p.visit_stmts(|_, stmt| {
        s.statements += 1;
        match &stmt.kind {
            StmtKind::Call {
                target: CallTarget::Static(_),
            } => s.direct_calls += 1,
            StmtKind::Call {
                target: CallTarget::Indirect { .. },
            } => s.indirect_calls += 1,
            StmtKind::Comm(_) => s.comm_calls += 1,
            StmtKind::Lock { .. } => s.lock_sites += 1,
            StmtKind::ThreadRegion { .. } => s.thread_regions += 1,
            _ => {}
        }
    });
    // Reachability from entry.
    let cg = call_graph(p);
    let mut seen = HashSet::new();
    let mut stack = vec![p.entry];
    seen.insert(p.entry);
    while let Some(f) = stack.pop() {
        for &callee in cg.get(&f).into_iter().flatten() {
            if seen.insert(callee) {
                stack.push(callee);
            }
        }
    }
    s.reachable_functions = seen.len();
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::expr::{c, rank};

    fn sample() -> Program {
        let mut pb = ProgramBuilder::new("s");
        let main = pb.declare("main", "s.c");
        let foo = pb.declare("foo", "s.c");
        let bar = pb.declare("bar", "s.c");
        let baz = pb.declare("baz", "s.c");
        let dead = pb.declare("dead", "s.c");
        pb.define(main, |f| {
            f.call(foo);
            f.call_indirect(vec![bar, baz], rank().rem(2.0));
            f.allreduce(c(8.0));
        });
        pb.define(foo, |f| {
            f.compute("k", c(1.0));
            f.call(foo); // direct recursion
        });
        pb.define(bar, |f| f.call(baz));
        pb.define(baz, |f| f.call(bar)); // mutual recursion
        pb.define(dead, |f| f.compute("unused", c(1.0)));
        pb.build(main)
    }

    #[test]
    fn call_graph_includes_indirect_candidates() {
        let p = sample();
        let cg = call_graph(&p);
        let main_callees = &cg[&p.entry];
        assert_eq!(main_callees.len(), 3); // foo, bar, baz
    }

    #[test]
    fn recursion_detected() {
        let p = sample();
        let rec = recursive_functions(&p);
        let names: HashSet<&str> = rec.iter().map(|&f| p.function(f).name.as_ref()).collect();
        assert!(names.contains("foo"));
        assert!(names.contains("bar"));
        assert!(names.contains("baz"));
        assert!(!names.contains("main"));
        assert!(!names.contains("dead"));
    }

    #[test]
    fn summary_counts() {
        let p = sample();
        let s = static_summary(&p);
        assert_eq!(s.functions, 5);
        assert_eq!(s.direct_calls, 4); // main->foo, foo->foo, bar->baz, baz->bar
        assert_eq!(s.indirect_calls, 1);
        assert_eq!(s.comm_calls, 1);
        // dead is not reachable
        assert_eq!(s.reachable_functions, 4);
    }
}
