//! Static structure queries over a program model — the information
//! Dyninst-style binary analysis provides (§3.2): the call graph, recursion
//! detection, dead-code detection, and the inventory of call sites whose
//! targets cannot be resolved statically.

use std::collections::{BTreeMap, HashSet};

use crate::program::{CallTarget, FuncId, Program, StmtKind};

/// Static call graph: for each function, the statically-known callees.
/// Indirect call sites contribute *all* candidates but are also reported
/// separately so the dynamic phase can refine them. The result is a
/// `BTreeMap` with sorted, deduplicated callee lists, so iteration order
/// (and everything derived from it, e.g. lint output) is deterministic.
pub fn call_graph(p: &Program) -> BTreeMap<FuncId, Vec<FuncId>> {
    let mut cg: BTreeMap<FuncId, Vec<FuncId>> = BTreeMap::new();
    for f in &p.functions {
        cg.entry(f.id).or_default();
    }
    p.visit_stmts(|func, stmt| {
        if let StmtKind::Call { target } = &stmt.kind {
            let entry = cg.entry(func.id).or_default();
            match target {
                CallTarget::Static(callee) => entry.push(*callee),
                CallTarget::Indirect { candidates, .. } => entry.extend(candidates.iter().copied()),
            }
        }
    });
    for callees in cg.values_mut() {
        callees.sort();
        callees.dedup();
    }
    cg
}

/// Functions reachable from `entry` via the static call graph.
fn reachable_from(cg: &BTreeMap<FuncId, Vec<FuncId>>, entry: FuncId) -> HashSet<FuncId> {
    let mut seen = HashSet::new();
    let mut stack = vec![entry];
    seen.insert(entry);
    while let Some(f) = stack.pop() {
        for &callee in cg.get(&f).into_iter().flatten() {
            if seen.insert(callee) {
                stack.push(callee);
            }
        }
    }
    seen
}

/// Functions that can never execute: unreachable from the program entry
/// via the static call graph (including indirect-call candidates, so a
/// function is only "dead" if *no* call site could possibly target it).
/// Sorted by id for deterministic output.
pub fn dead_functions(p: &Program) -> Vec<FuncId> {
    let cg = call_graph(p);
    let live = reachable_from(&cg, p.entry);
    let mut dead: Vec<FuncId> = p
        .functions
        .iter()
        .map(|f| f.id)
        .filter(|id| !live.contains(id))
        .collect();
    dead.sort();
    dead
}

/// Functions participating in call-graph cycles (directly or mutually
/// recursive). Their call sites get the `Recursive` call kind in the PAG.
///
/// One Tarjan SCC pass over the call graph: a function is recursive iff
/// its SCC has more than one member, or it is a singleton with a
/// self-call.
pub fn recursive_functions(p: &Program) -> HashSet<FuncId> {
    let cg = call_graph(p);
    // Dense indexing for the SCC pass.
    let ids: Vec<FuncId> = cg.keys().copied().collect();
    let index_of: BTreeMap<FuncId, usize> = ids.iter().enumerate().map(|(i, &f)| (f, i)).collect();
    let succ: Vec<Vec<usize>> = ids
        .iter()
        .map(|f| {
            cg[f]
                .iter()
                .filter_map(|c| index_of.get(c).copied())
                .collect()
        })
        .collect();

    let mut recursive = HashSet::new();
    for scc in tarjan_sccs(&succ) {
        let cyclic = scc.len() > 1 || succ[scc[0]].contains(&scc[0]);
        if cyclic {
            recursive.extend(scc.into_iter().map(|i| ids[i]));
        }
    }
    recursive
}

/// Iterative Tarjan strongly-connected components over a dense adjacency
/// list (no recursion: deep call chains must not overflow the stack).
fn tarjan_sccs(succ: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = succ.len();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        frames.push((start, 0));
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child < succ[v].len() {
                let w = succ[v][*child];
                *child += 1;
                if index[w] == UNSET {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

/// Summary of what static analysis could and could not resolve.
#[derive(Debug, Clone)]
pub struct StaticSummary {
    /// Number of functions.
    pub functions: usize,
    /// Number of statements.
    pub statements: usize,
    /// Direct call sites.
    pub direct_calls: usize,
    /// Indirect call sites (resolved only at runtime).
    pub indirect_calls: usize,
    /// Communication call sites.
    pub comm_calls: usize,
    /// Lock sites.
    pub lock_sites: usize,
    /// Thread regions.
    pub thread_regions: usize,
    /// Functions reachable from the entry via the static call graph.
    pub reachable_functions: usize,
}

/// Compute the static summary of a program.
pub fn static_summary(p: &Program) -> StaticSummary {
    let mut s = StaticSummary {
        functions: p.functions.len(),
        statements: 0,
        direct_calls: 0,
        indirect_calls: 0,
        comm_calls: 0,
        lock_sites: 0,
        thread_regions: 0,
        reachable_functions: 0,
    };
    p.visit_stmts(|_, stmt| {
        s.statements += 1;
        match &stmt.kind {
            StmtKind::Call {
                target: CallTarget::Static(_),
            } => s.direct_calls += 1,
            StmtKind::Call {
                target: CallTarget::Indirect { .. },
            } => s.indirect_calls += 1,
            StmtKind::Comm(_) => s.comm_calls += 1,
            StmtKind::Lock { .. } => s.lock_sites += 1,
            StmtKind::ThreadRegion { .. } => s.thread_regions += 1,
            _ => {}
        }
    });
    let cg = call_graph(p);
    s.reachable_functions = reachable_from(&cg, p.entry).len();
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::expr::{c, rank};

    fn sample() -> Program {
        let mut pb = ProgramBuilder::new("s");
        let main = pb.declare("main", "s.c");
        let foo = pb.declare("foo", "s.c");
        let bar = pb.declare("bar", "s.c");
        let baz = pb.declare("baz", "s.c");
        let dead = pb.declare("dead", "s.c");
        pb.define(main, |f| {
            f.call(foo);
            f.call_indirect(vec![bar, baz], rank().rem(2.0));
            f.allreduce(c(8.0));
        });
        pb.define(foo, |f| {
            f.compute("k", c(1.0));
            f.call(foo); // direct recursion
        });
        pb.define(bar, |f| f.call(baz));
        pb.define(baz, |f| f.call(bar)); // mutual recursion
        pb.define(dead, |f| f.compute("unused", c(1.0)));
        pb.build(main)
    }

    #[test]
    fn call_graph_includes_indirect_candidates() {
        let p = sample();
        let cg = call_graph(&p);
        let main_callees = &cg[&p.entry];
        assert_eq!(main_callees.len(), 3); // foo, bar, baz
    }

    #[test]
    fn call_graph_iteration_is_deterministic() {
        let p = sample();
        let a: Vec<_> = call_graph(&p).into_iter().collect();
        let b: Vec<_> = call_graph(&p).into_iter().collect();
        assert_eq!(a, b);
        // Keys come out sorted by id.
        let keys: Vec<FuncId> = a.iter().map(|(f, _)| *f).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn recursion_detected() {
        let p = sample();
        let rec = recursive_functions(&p);
        let names: HashSet<&str> = rec.iter().map(|&f| p.function(f).name.as_ref()).collect();
        assert!(names.contains("foo"));
        assert!(names.contains("bar"));
        assert!(names.contains("baz"));
        assert!(!names.contains("main"));
        assert!(!names.contains("dead"));
    }

    #[test]
    fn dead_functions_reports_unreachable_only() {
        let p = sample();
        let dead = dead_functions(&p);
        let names: Vec<&str> = dead.iter().map(|&f| p.function(f).name.as_ref()).collect();
        assert_eq!(names, vec!["dead"]);
        // Indirect candidates count as live.
        assert!(!names.contains(&"bar"));
        assert!(!names.contains(&"baz"));
    }

    #[test]
    fn summary_counts() {
        let p = sample();
        let s = static_summary(&p);
        assert_eq!(s.functions, 5);
        assert_eq!(s.direct_calls, 4); // main->foo, foo->foo, bar->baz, baz->bar
        assert_eq!(s.indirect_calls, 1);
        assert_eq!(s.comm_calls, 1);
        // dead is not reachable
        assert_eq!(s.reachable_functions, 4);
    }
}
