//! Pseudo-code pretty-printer for program models.
//!
//! Renders a [`Program`] as readable pseudo-code — handy for debugging
//! workload models and for documenting what a synthetic program actually
//! does (the model is the "source code" of this reproduction's binaries).

use std::fmt::Write as _;

use crate::expr::Expr;
use crate::program::{CallTarget, CommOp, Program, Stmt, StmtKind};

/// Render a whole program as pseudo-code.
pub fn pretty(prog: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// program {} ({:.1} KLoC, {} B binary)",
        prog.name, prog.kloc, prog.binary_bytes
    );
    for f in &prog.functions {
        let entry = if f.id == prog.entry { " // entry" } else { "" };
        let _ = writeln!(out, "fn {}() {{ // {}:{}{}", f.name, f.file, f.line, entry);
        stmts(&mut out, &f.body, 1);
        let _ = writeln!(out, "}}");
    }
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn stmts(out: &mut String, body: &[Stmt], depth: usize) {
    for s in body {
        indent(out, depth);
        match &s.kind {
            StmtKind::Compute { name, cost_us, .. } => {
                let _ = writeln!(out, "compute {name} [{}us];", expr(cost_us));
            }
            StmtKind::Loop { name, trips, body } => {
                let _ = writeln!(out, "for {name} in 0..{} {{", expr(trips));
                stmts(out, body, depth + 1);
                indent(out, depth);
                out.push_str("}\n");
            }
            StmtKind::Branch {
                name,
                cond,
                then_body,
                else_body,
            } => {
                let _ = writeln!(out, "if {name}: {} {{", expr(cond));
                stmts(out, then_body, depth + 1);
                if !else_body.is_empty() {
                    indent(out, depth);
                    out.push_str("} else {\n");
                    stmts(out, else_body, depth + 1);
                }
                indent(out, depth);
                out.push_str("}\n");
            }
            StmtKind::Call { target } => match target {
                CallTarget::Static(f) => {
                    let _ = writeln!(out, "call f{};", f.0);
                }
                CallTarget::Indirect {
                    candidates,
                    selector,
                } => {
                    let names: Vec<String> =
                        candidates.iter().map(|f| format!("f{}", f.0)).collect();
                    let _ = writeln!(
                        out,
                        "call_indirect [{}] selected_by {};",
                        names.join(", "),
                        expr(selector)
                    );
                }
            },
            StmtKind::Comm(op) => {
                let _ = writeln!(out, "{};", comm(op));
            }
            StmtKind::ThreadRegion { threads, body } => {
                let _ = writeln!(out, "parallel({} threads) {{", expr(threads));
                stmts(out, body, depth + 1);
                indent(out, depth);
                out.push_str("}\n");
            }
            StmtKind::Lock { name, hold_us, .. } => {
                let _ = writeln!(out, "lock {name} hold [{}us];", expr(hold_us));
            }
        }
    }
}

fn comm(op: &CommOp) -> String {
    match op {
        CommOp::Send { peer, bytes, tag } => {
            format!("MPI_Send(to={}, {}B, tag={tag})", expr(peer), expr(bytes))
        }
        CommOp::Recv { peer, bytes, tag } => {
            format!("MPI_Recv(from={}, {}B, tag={tag})", expr(peer), expr(bytes))
        }
        CommOp::Isend { peer, bytes, tag } => {
            format!("MPI_Isend(to={}, {}B, tag={tag})", expr(peer), expr(bytes))
        }
        CommOp::Irecv { peer, bytes, tag } => {
            format!(
                "MPI_Irecv(from={}, {}B, tag={tag})",
                expr(peer),
                expr(bytes)
            )
        }
        CommOp::Wait { back } => format!("MPI_Wait(back={back})"),
        CommOp::Waitall => "MPI_Waitall()".to_string(),
        CommOp::Barrier => "MPI_Barrier()".to_string(),
        CommOp::Bcast { root, bytes } => {
            format!("MPI_Bcast(root={}, {}B)", expr(root), expr(bytes))
        }
        CommOp::Reduce { root, bytes } => {
            format!("MPI_Reduce(root={}, {}B)", expr(root), expr(bytes))
        }
        CommOp::Allreduce { bytes } => format!("MPI_Allreduce({}B)", expr(bytes)),
        CommOp::Alltoall { bytes } => format!("MPI_Alltoall({}B)", expr(bytes)),
    }
}

/// Render an expression compactly.
pub fn expr(e: &Expr) -> String {
    match e {
        Expr::Const(v) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                format!("{}", *v as i64)
            } else {
                format!("{v}")
            }
        }
        Expr::Rank => "rank".into(),
        Expr::NRanks => "P".into(),
        Expr::Thread => "tid".into(),
        Expr::NThreads => "T".into(),
        Expr::Iter => "i".into(),
        Expr::IterUp(n) => format!("i[-{n}]"),
        Expr::Param(p) => format!("${p}"),
        Expr::Add(a, b) => format!("({} + {})", expr(a), expr(b)),
        Expr::Sub(a, b) => format!("({} - {})", expr(a), expr(b)),
        Expr::Mul(a, b) => format!("({} * {})", expr(a), expr(b)),
        Expr::Div(a, b) => format!("({} / {})", expr(a), expr(b)),
        Expr::Rem(a, b) => format!("({} % {})", expr(a), expr(b)),
        Expr::Min(a, b) => format!("min({}, {})", expr(a), expr(b)),
        Expr::Max(a, b) => format!("max({}, {})", expr(a), expr(b)),
        Expr::Floor(a) => format!("floor({})", expr(a)),
        Expr::Sqrt(a) => format!("sqrt({})", expr(a)),
        Expr::Log2(a) => format!("log2({})", expr(a)),
        Expr::Lt(a, b) => format!("({} < {})", expr(a), expr(b)),
        Expr::Eq(a, b) => format!("({} == {})", expr(a), expr(b)),
        Expr::Select { cond, then, els } => {
            format!("({} ? {} : {})", expr(cond), expr(then), expr(els))
        }
        Expr::Noise { amp, salt } => format!("noise(±{amp}, #{salt})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::expr::{c, nranks, rank};

    #[test]
    fn renders_every_construct() {
        let mut pb = ProgramBuilder::new("pretty");
        let main = pb.declare("main", "p.c");
        let helper = pb.declare("helper", "p.c");
        pb.define(helper, |f| f.compute("k", c(5.0)));
        pb.define(main, |f| {
            f.loop_("it", c(3.0), |b| {
                b.branch(
                    "cond",
                    rank().lt(2.0),
                    |t| t.call(helper),
                    |e| e.alloc("buf", c(1.0)),
                );
                b.irecv((rank() + 1.0).rem(nranks()), c(64.0), 5);
                b.isend((rank() + 1.0).rem(nranks()), c(64.0), 5);
                b.waitall();
                b.allreduce(c(8.0));
            });
            f.thread_region(c(4.0), |t| t.compute("tw", c(2.0)));
        });
        let p = pb.build(main);
        let text = pretty(&p);
        for needle in [
            "fn main()",
            "fn helper()",
            "for it in 0..3",
            "if cond: (rank < 2)",
            "call f1;",
            "lock buf hold",
            "MPI_Irecv",
            "MPI_Isend",
            "MPI_Waitall()",
            "MPI_Allreduce(8B)",
            "parallel(4 threads)",
            "compute tw [2us];",
            "// entry",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn expr_rendering() {
        assert_eq!(expr(&(rank() + c(1.0))), "(rank + 1)");
        assert_eq!(expr(&(c(3.0) * nranks()).sqrt()), "sqrt((3 * P))");
        assert_eq!(
            expr(&rank().eq(0.0).select(c(1.0), c(2.0))),
            "((rank == 0) ? 1 : 2)"
        );
        assert_eq!(expr(&crate::expr::param("n")), "$n");
    }
}
