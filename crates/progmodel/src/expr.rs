//! Scalar expression language for costs, trip counts, peers and
//! predicates.
//!
//! A single program model must describe *every* run of a program: any
//! process count, any thread count, any input class, with realistic
//! rank-dependent load imbalance. Expressions are evaluated against an
//! [`EvalCtx`] carrying the executing rank/thread, the current loop
//! iteration stack, scale parameters and a run seed for deterministic
//! noise.

use std::collections::HashMap;
use std::sync::Arc;

/// Evaluation context for an [`Expr`].
#[derive(Debug, Clone)]
pub struct EvalCtx<'a> {
    /// Executing process (rank).
    pub rank: u32,
    /// Total processes in the run.
    pub nranks: u32,
    /// Executing thread within the process.
    pub thread: u32,
    /// Threads per process.
    pub nthreads: u32,
    /// Innermost-last stack of current loop iteration indices.
    pub iters: &'a [u64],
    /// Named scale parameters (problem size, class, …).
    pub params: &'a HashMap<String, f64>,
    /// Run seed; all noise is a pure function of (seed, salt, rank,
    /// thread, iters).
    pub seed: u64,
}

impl<'a> EvalCtx<'a> {
    /// Innermost loop iteration (0 outside any loop).
    pub fn iter(&self) -> u64 {
        self.iters.last().copied().unwrap_or(0)
    }
}

/// A scalar expression. Build with the helper constructors ([`c`],
/// [`rank`], [`param`], …) and std arithmetic operators.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Literal constant.
    Const(f64),
    /// Executing rank.
    Rank,
    /// Number of ranks.
    NRanks,
    /// Executing thread.
    Thread,
    /// Threads per process.
    NThreads,
    /// Innermost loop iteration index.
    Iter,
    /// Loop iteration index `levels` above the innermost (0 = innermost).
    IterUp(u32),
    /// Named scale parameter (0.0 if unset).
    Param(Arc<str>),
    /// Sum.
    Add(Box<Expr>, Box<Expr>),
    /// Difference.
    Sub(Box<Expr>, Box<Expr>),
    /// Product.
    Mul(Box<Expr>, Box<Expr>),
    /// Quotient (0 when the divisor is 0).
    Div(Box<Expr>, Box<Expr>),
    /// Euclidean remainder (0 when the divisor is 0).
    Rem(Box<Expr>, Box<Expr>),
    /// Minimum.
    Min(Box<Expr>, Box<Expr>),
    /// Maximum.
    Max(Box<Expr>, Box<Expr>),
    /// Floor.
    Floor(Box<Expr>),
    /// Square root (of max(x,0)).
    Sqrt(Box<Expr>),
    /// Base-2 logarithm (of max(x,1)).
    Log2(Box<Expr>),
    /// 1.0 if `a < b` else 0.0.
    Lt(Box<Expr>, Box<Expr>),
    /// 1.0 if `a == b` (exact) else 0.0.
    Eq(Box<Expr>, Box<Expr>),
    /// `cond != 0 ? then : els`.
    Select {
        /// Condition expression (non-zero = true).
        cond: Box<Expr>,
        /// Value when true.
        then: Box<Expr>,
        /// Value when false.
        els: Box<Expr>,
    },
    /// Deterministic multiplicative noise: uniform in `[1-amp, 1+amp]`,
    /// a pure function of (run seed, salt, rank, thread, iteration stack).
    Noise {
        /// Relative amplitude (0.05 = ±5 %).
        amp: f64,
        /// Salt distinguishing co-located noise sources.
        salt: u64,
    },
}

impl Expr {
    /// Evaluate the expression.
    pub fn eval(&self, ctx: &EvalCtx<'_>) -> f64 {
        match self {
            Expr::Const(v) => *v,
            Expr::Rank => ctx.rank as f64,
            Expr::NRanks => ctx.nranks as f64,
            Expr::Thread => ctx.thread as f64,
            Expr::NThreads => ctx.nthreads as f64,
            Expr::Iter => ctx.iter() as f64,
            Expr::IterUp(levels) => {
                let n = ctx.iters.len();
                let idx = n.checked_sub(1 + *levels as usize);
                idx.map(|i| ctx.iters[i] as f64).unwrap_or(0.0)
            }
            Expr::Param(name) => ctx.params.get(name.as_ref()).copied().unwrap_or(0.0),
            Expr::Add(a, b) => a.eval(ctx) + b.eval(ctx),
            Expr::Sub(a, b) => a.eval(ctx) - b.eval(ctx),
            Expr::Mul(a, b) => a.eval(ctx) * b.eval(ctx),
            Expr::Div(a, b) => {
                let d = b.eval(ctx);
                if d == 0.0 {
                    0.0
                } else {
                    a.eval(ctx) / d
                }
            }
            Expr::Rem(a, b) => {
                let d = b.eval(ctx);
                if d == 0.0 {
                    0.0
                } else {
                    a.eval(ctx).rem_euclid(d)
                }
            }
            Expr::Min(a, b) => a.eval(ctx).min(b.eval(ctx)),
            Expr::Max(a, b) => a.eval(ctx).max(b.eval(ctx)),
            Expr::Floor(a) => a.eval(ctx).floor(),
            Expr::Sqrt(a) => a.eval(ctx).max(0.0).sqrt(),
            Expr::Log2(a) => a.eval(ctx).max(1.0).log2(),
            Expr::Lt(a, b) => {
                if a.eval(ctx) < b.eval(ctx) {
                    1.0
                } else {
                    0.0
                }
            }
            Expr::Eq(a, b) => {
                if a.eval(ctx) == b.eval(ctx) {
                    1.0
                } else {
                    0.0
                }
            }
            Expr::Select { cond, then, els } => {
                if cond.eval(ctx) != 0.0 {
                    then.eval(ctx)
                } else {
                    els.eval(ctx)
                }
            }
            Expr::Noise { amp, salt } => {
                let mut h = splitmix64(ctx.seed ^ salt.wrapping_mul(0x9E3779B97F4A7C15));
                h = splitmix64(h ^ ctx.rank as u64);
                h = splitmix64(h ^ ((ctx.thread as u64) << 32));
                for &i in ctx.iters {
                    h = splitmix64(h ^ i);
                }
                // Map to [-1, 1), scale by amplitude, center at 1.0.
                let u = (h >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
                1.0 + amp * (2.0 * u - 1.0)
            }
        }
    }

    /// Evaluate and round to a non-negative integer (trip counts, peers).
    pub fn eval_u64(&self, ctx: &EvalCtx<'_>) -> u64 {
        self.eval(ctx).max(0.0).round() as u64
    }

    /// `self < other` as a 0/1 expression.
    pub fn lt(self, other: impl Into<Expr>) -> Expr {
        Expr::Lt(Box::new(self), Box::new(other.into()))
    }

    /// `self == other` as a 0/1 expression.
    pub fn eq(self, other: impl Into<Expr>) -> Expr {
        Expr::Eq(Box::new(self), Box::new(other.into()))
    }

    /// `self % other` (euclidean). The name mirrors the DSL's other
    /// combinators; `std::ops::Rem` is not implemented because the
    /// semantics (euclidean, zero-divisor-safe) differ from `%`.
    #[allow(clippy::should_implement_trait)]
    pub fn rem(self, other: impl Into<Expr>) -> Expr {
        Expr::Rem(Box::new(self), Box::new(other.into()))
    }

    /// Elementwise minimum.
    pub fn min(self, other: impl Into<Expr>) -> Expr {
        Expr::Min(Box::new(self), Box::new(other.into()))
    }

    /// Elementwise maximum.
    pub fn max(self, other: impl Into<Expr>) -> Expr {
        Expr::Max(Box::new(self), Box::new(other.into()))
    }

    /// Floor.
    pub fn floor(self) -> Expr {
        Expr::Floor(Box::new(self))
    }

    /// Square root of `max(self, 0)`.
    pub fn sqrt(self) -> Expr {
        Expr::Sqrt(Box::new(self))
    }

    /// Base-2 logarithm of `max(self, 1)`.
    pub fn log2(self) -> Expr {
        Expr::Log2(Box::new(self))
    }

    /// Conditional: `if self != 0 { then } else { els }`.
    pub fn select(self, then: impl Into<Expr>, els: impl Into<Expr>) -> Expr {
        Expr::Select {
            cond: Box::new(self),
            then: Box::new(then.into()),
            els: Box::new(els.into()),
        }
    }
}

/// SplitMix64 hash step (public-domain constant schedule).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Constant expression.
pub fn c(v: f64) -> Expr {
    Expr::Const(v)
}
/// The executing rank.
pub fn rank() -> Expr {
    Expr::Rank
}
/// The number of ranks.
pub fn nranks() -> Expr {
    Expr::NRanks
}
/// The executing thread.
pub fn thread() -> Expr {
    Expr::Thread
}
/// Threads per process.
pub fn nthreads() -> Expr {
    Expr::NThreads
}
/// Innermost loop iteration.
pub fn iter() -> Expr {
    Expr::Iter
}
/// Named scale parameter.
pub fn param(name: &str) -> Expr {
    Expr::Param(Arc::from(name))
}
/// Deterministic multiplicative noise of relative amplitude `amp`.
pub fn noise(amp: f64, salt: u64) -> Expr {
    Expr::Noise { amp, salt }
}

impl From<f64> for Expr {
    fn from(v: f64) -> Expr {
        Expr::Const(v)
    }
}
impl From<u32> for Expr {
    fn from(v: u32) -> Expr {
        Expr::Const(v as f64)
    }
}
impl From<i32> for Expr {
    fn from(v: i32) -> Expr {
        Expr::Const(v as f64)
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $variant:ident) => {
        impl<T: Into<Expr>> std::ops::$trait<T> for Expr {
            type Output = Expr;
            fn $method(self, rhs: T) -> Expr {
                Expr::$variant(Box::new(self), Box::new(rhs.into()))
            }
        }
    };
}
impl_binop!(Add, add, Add);
impl_binop!(Sub, sub, Sub);
impl_binop!(Mul, mul, Mul);
impl_binop!(Div, div, Div);

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(params: &'a HashMap<String, f64>, iters: &'a [u64]) -> EvalCtx<'a> {
        EvalCtx {
            rank: 3,
            nranks: 8,
            thread: 1,
            nthreads: 4,
            iters,
            params,
            seed: 42,
        }
    }

    #[test]
    fn basic_arithmetic() {
        let p = HashMap::new();
        let cx = ctx(&p, &[]);
        assert_eq!((c(2.0) + c(3.0)).eval(&cx), 5.0);
        assert_eq!((c(2.0) * c(3.0) - c(1.0)).eval(&cx), 5.0);
        assert_eq!((c(7.0) / c(2.0)).eval(&cx), 3.5);
        assert_eq!((c(7.0) / c(0.0)).eval(&cx), 0.0);
        assert_eq!(c(7.0).rem(3.0).eval(&cx), 1.0);
        assert_eq!(c(-1.0).rem(8.0).eval(&cx), 7.0); // euclidean for peers
    }

    #[test]
    fn context_variables() {
        let p = HashMap::new();
        let cx = ctx(&p, &[5, 9]);
        assert_eq!(rank().eval(&cx), 3.0);
        assert_eq!(nranks().eval(&cx), 8.0);
        assert_eq!(thread().eval(&cx), 1.0);
        assert_eq!(nthreads().eval(&cx), 4.0);
        assert_eq!(iter().eval(&cx), 9.0);
        assert_eq!(Expr::IterUp(1).eval(&cx), 5.0);
        assert_eq!(Expr::IterUp(2).eval(&cx), 0.0); // above the stack
    }

    #[test]
    fn params_default_zero() {
        let mut p = HashMap::new();
        p.insert("n".to_string(), 256.0);
        let cx = ctx(&p, &[]);
        assert_eq!(param("n").eval(&cx), 256.0);
        assert_eq!(param("missing").eval(&cx), 0.0);
    }

    #[test]
    fn comparisons_and_select() {
        let p = HashMap::new();
        let cx = ctx(&p, &[]);
        // rank = 3 < 4 → heavy branch
        let e = rank().lt(4.0).select(c(100.0), c(10.0));
        assert_eq!(e.eval(&cx), 100.0);
        let e2 = rank().eq(3.0).select(c(1.0), c(0.0));
        assert_eq!(e2.eval(&cx), 1.0);
        assert_eq!(rank().lt(2.0).eval(&cx), 0.0);
    }

    #[test]
    fn min_max_floor_log() {
        let p = HashMap::new();
        let cx = ctx(&p, &[]);
        assert_eq!(c(3.0).min(5.0).eval(&cx), 3.0);
        assert_eq!(c(3.0).max(5.0).eval(&cx), 5.0);
        assert_eq!(c(3.7).floor().eval(&cx), 3.0);
        assert_eq!(c(9.0).sqrt().eval(&cx), 3.0);
        assert_eq!(c(-4.0).sqrt().eval(&cx), 0.0);
        assert_eq!(c(8.0).log2().eval(&cx), 3.0);
        assert_eq!(c(0.0).log2().eval(&cx), 0.0); // clamped at 1
    }

    #[test]
    fn noise_is_deterministic_and_bounded() {
        let p = HashMap::new();
        let its = [2u64];
        let cx = ctx(&p, &its);
        let n = noise(0.1, 7);
        let a = n.eval(&cx);
        let b = n.eval(&cx);
        assert_eq!(a, b);
        assert!((0.9..=1.1).contains(&a), "noise {a} out of bounds");
    }

    #[test]
    fn noise_varies_with_rank_and_iter() {
        let p = HashMap::new();
        let n = noise(0.1, 7);
        let mut values = std::collections::HashSet::new();
        for r in 0..16u32 {
            for it in 0..4u64 {
                let its = [it];
                let cx = EvalCtx {
                    rank: r,
                    nranks: 16,
                    thread: 0,
                    nthreads: 1,
                    iters: &its,
                    params: &p,
                    seed: 1,
                };
                values.insert(n.eval(&cx).to_bits());
            }
        }
        assert!(
            values.len() > 48,
            "noise not varied: {} distinct",
            values.len()
        );
    }

    #[test]
    fn eval_u64_clamps_and_rounds() {
        let p = HashMap::new();
        let cx = ctx(&p, &[]);
        assert_eq!(c(3.6).eval_u64(&cx), 4);
        assert_eq!(c(-5.0).eval_u64(&cx), 0);
    }
}
