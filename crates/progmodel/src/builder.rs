//! Fluent builder for program models.
//!
//! ```
//! use progmodel::{ProgramBuilder, c, rank, nranks};
//!
//! let mut pb = ProgramBuilder::new("ping");
//! let main = pb.declare("main", "ping.c");
//! let work = pb.declare("work", "ping.c");
//! pb.define(work, |f| {
//!     f.compute("kernel", c(50.0) * (rank() + 1.0));
//! });
//! pb.define(main, |f| {
//!     f.loop_("loop_1", c(10.0), |b| {
//!         b.call(work);
//!         b.allreduce(c(8.0));
//!     });
//! });
//! let program = pb.build(main);
//! assert_eq!(program.functions.len(), 2);
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use crate::expr::Expr;
use crate::program::{
    CallTarget, CommOp, FuncId, Function, LockId, PmuSpec, Program, Stmt, StmtId, StmtKind,
};

/// Shared statement/line counters for a program under construction.
struct Counters {
    next_stmt: u32,
    next_line: u32,
}

/// Builds a [`Program`]: declare functions, define bodies, set metadata.
pub struct ProgramBuilder {
    name: String,
    functions: Vec<Function>,
    defined: Vec<bool>,
    counters: Counters,
    kloc: Option<f64>,
    binary_bytes: Option<u64>,
    params: HashMap<String, f64>,
}

impl ProgramBuilder {
    /// Start a new program model.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            functions: Vec::new(),
            defined: Vec::new(),
            counters: Counters {
                next_stmt: 0,
                next_line: 1,
            },
            kloc: None,
            binary_bytes: None,
            params: HashMap::new(),
        }
    }

    /// Declare a function (forward declaration; define later). Returns its
    /// id so bodies can call it before it is defined.
    pub fn declare(&mut self, name: &str, file: &str) -> FuncId {
        let id = FuncId(self.functions.len() as u32);
        let line = self.counters.next_line;
        self.counters.next_line += 1;
        self.functions.push(Function {
            id,
            name: Arc::from(name),
            file: Arc::from(file),
            line,
            body: Vec::new(),
        });
        self.defined.push(false);
        id
    }

    /// Define (or redefine) the body of a declared function.
    pub fn define(&mut self, id: FuncId, build: impl FnOnce(&mut FuncBuilder<'_>)) {
        let mut fb = FuncBuilder {
            stmts: Vec::new(),
            counters: &mut self.counters,
        };
        build(&mut fb);
        self.functions[id.0 as usize].body = fb.stmts;
        self.defined[id.0 as usize] = true;
    }

    /// Set a default scale parameter.
    pub fn param(&mut self, name: &str, value: f64) -> &mut Self {
        self.params.insert(name.to_string(), value);
        self
    }

    /// Override the reported source size (KLoC metadata).
    pub fn kloc(&mut self, kloc: f64) -> &mut Self {
        self.kloc = Some(kloc);
        self
    }

    /// Override the reported binary size.
    pub fn binary_bytes(&mut self, bytes: u64) -> &mut Self {
        self.binary_bytes = Some(bytes);
        self
    }

    /// Finalize the program with `entry` as its entry function.
    ///
    /// # Panics
    /// Panics if `entry` or any statically-called function was declared but
    /// never defined (mirrors a link error for an undefined symbol).
    pub fn build(self, entry: FuncId) -> Program {
        for (i, f) in self.functions.iter().enumerate() {
            assert!(
                self.defined[i] || f.body.is_empty(),
                "function {} declared but never defined",
                f.name
            );
        }
        assert!(
            self.defined[entry.0 as usize],
            "entry function must be defined"
        );
        let stmt_count = self.counters.next_stmt;
        // Crude but stable size model: ~55 source lines / KLoC accounting
        // and ~220 bytes of text per statement.
        let kloc = self.kloc.unwrap_or(stmt_count as f64 * 0.055);
        let binary_bytes = self.binary_bytes.unwrap_or(4096 + stmt_count as u64 * 220);
        Program {
            name: self.name,
            functions: self.functions,
            entry,
            kloc,
            binary_bytes,
            default_params: self.params,
            stmt_count,
        }
    }
}

/// Builds a statement list (function body, loop body, branch arm, …).
pub struct FuncBuilder<'a> {
    stmts: Vec<Stmt>,
    counters: &'a mut Counters,
}

impl<'a> FuncBuilder<'a> {
    fn push(&mut self, kind: StmtKind) {
        let id = StmtId(self.counters.next_stmt);
        self.counters.next_stmt += 1;
        let line = self.counters.next_line;
        self.counters.next_line += 1;
        self.stmts.push(Stmt { id, line, kind });
    }

    fn nested(&mut self, build: impl FnOnce(&mut FuncBuilder<'_>)) -> Vec<Stmt> {
        let mut fb = FuncBuilder {
            stmts: Vec::new(),
            counters: self.counters,
        };
        build(&mut fb);
        fb.stmts
    }

    /// Straight-line compute kernel with default PMU behaviour.
    pub fn compute(&mut self, name: &str, cost_us: Expr) {
        self.compute_pmu(name, cost_us, PmuSpec::default());
    }

    /// Compute kernel with explicit PMU behaviour.
    pub fn compute_pmu(&mut self, name: &str, cost_us: Expr, pmu: PmuSpec) {
        self.push(StmtKind::Compute {
            name: Arc::from(name),
            cost_us,
            pmu,
        });
    }

    /// Counted loop.
    pub fn loop_(&mut self, name: &str, trips: Expr, build: impl FnOnce(&mut FuncBuilder<'_>)) {
        let body = self.nested(build);
        self.push(StmtKind::Loop {
            name: Arc::from(name),
            trips,
            body,
        });
    }

    /// Two-armed branch (`cond != 0` takes the first arm).
    pub fn branch(
        &mut self,
        name: &str,
        cond: Expr,
        then_build: impl FnOnce(&mut FuncBuilder<'_>),
        else_build: impl FnOnce(&mut FuncBuilder<'_>),
    ) {
        let then_body = self.nested(then_build);
        let else_body = self.nested(else_build);
        self.push(StmtKind::Branch {
            name: Arc::from(name),
            cond,
            then_body,
            else_body,
        });
    }

    /// Direct call.
    pub fn call(&mut self, callee: FuncId) {
        self.push(StmtKind::Call {
            target: CallTarget::Static(callee),
        });
    }

    /// Indirect call resolved at runtime: `selector` evaluates to an index
    /// into `candidates`.
    pub fn call_indirect(&mut self, candidates: Vec<FuncId>, selector: Expr) {
        assert!(!candidates.is_empty());
        self.push(StmtKind::Call {
            target: CallTarget::Indirect {
                candidates,
                selector,
            },
        });
    }

    /// OpenMP-like fork-join region.
    pub fn thread_region(&mut self, threads: Expr, build: impl FnOnce(&mut FuncBuilder<'_>)) {
        let body = self.nested(build);
        self.push(StmtKind::ThreadRegion { threads, body });
    }

    /// Critical section on an explicit lock.
    pub fn lock(&mut self, name: &str, lock: LockId, hold_us: Expr) {
        self.push(StmtKind::Lock {
            name: Arc::from(name),
            lock,
            hold_us,
        });
    }

    /// Memory allocation through the (serializing) process allocator —
    /// the thread-unsafe `allocate`/`reallocate`/`deallocate` pattern of
    /// the Vite case study.
    pub fn alloc(&mut self, name: &str, hold_us: Expr) {
        self.push(StmtKind::Lock {
            name: Arc::from(name),
            lock: Program::alloc_lock(),
            hold_us,
        });
    }

    // ------------------------------------------------------------- comms

    /// Blocking send.
    pub fn send(&mut self, peer: Expr, bytes: Expr, tag: u32) {
        self.push(StmtKind::Comm(CommOp::Send { peer, bytes, tag }));
    }

    /// Blocking receive.
    pub fn recv(&mut self, peer: Expr, bytes: Expr, tag: u32) {
        self.push(StmtKind::Comm(CommOp::Recv { peer, bytes, tag }));
    }

    /// Non-blocking send.
    pub fn isend(&mut self, peer: Expr, bytes: Expr, tag: u32) {
        self.push(StmtKind::Comm(CommOp::Isend { peer, bytes, tag }));
    }

    /// Non-blocking receive.
    pub fn irecv(&mut self, peer: Expr, bytes: Expr, tag: u32) {
        self.push(StmtKind::Comm(CommOp::Irecv { peer, bytes, tag }));
    }

    /// `MPI_Sendrecv`-style exchange, desugared to
    /// `Irecv(from) ; Send(to) ; Wait(irecv)` — the deadlock-free combined
    /// exchange idiom.
    pub fn sendrecv(&mut self, to: Expr, from: Expr, bytes: Expr, tag: u32) {
        self.irecv(from, bytes.clone(), tag);
        self.send(to, bytes, tag);
        self.wait(0);
    }

    /// Wait for the most recent (`back = 0`) or an earlier outstanding
    /// request.
    pub fn wait(&mut self, back: u32) {
        self.push(StmtKind::Comm(CommOp::Wait { back }));
    }

    /// Wait for all outstanding requests.
    pub fn waitall(&mut self) {
        self.push(StmtKind::Comm(CommOp::Waitall));
    }

    /// Barrier.
    pub fn barrier(&mut self) {
        self.push(StmtKind::Comm(CommOp::Barrier));
    }

    /// Broadcast from `root`.
    pub fn bcast(&mut self, root: Expr, bytes: Expr) {
        self.push(StmtKind::Comm(CommOp::Bcast { root, bytes }));
    }

    /// Reduce to `root`.
    pub fn reduce(&mut self, root: Expr, bytes: Expr) {
        self.push(StmtKind::Comm(CommOp::Reduce { root, bytes }));
    }

    /// Allreduce.
    pub fn allreduce(&mut self, bytes: Expr) {
        self.push(StmtKind::Comm(CommOp::Allreduce { bytes }));
    }

    /// All-to-all.
    pub fn alltoall(&mut self, bytes: Expr) {
        self.push(StmtKind::Comm(CommOp::Alltoall { bytes }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{c, rank};

    #[test]
    fn stmt_ids_are_unique_and_dense() {
        let mut pb = ProgramBuilder::new("ids");
        let main = pb.declare("main", "m.c");
        pb.define(main, |f| {
            f.compute("a", c(1.0));
            f.loop_("l", c(2.0), |b| {
                b.compute("b", c(1.0));
                b.send(rank(), c(8.0), 0);
            });
            f.waitall();
        });
        let p = pb.build(main);
        let mut ids = Vec::new();
        p.visit_stmts(|_, s| ids.push(s.id.0));
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
        assert_eq!(p.stmt_count as usize, ids.len());
        assert_eq!(*sorted.last().unwrap() as usize, ids.len() - 1);
    }

    #[test]
    fn lines_are_monotone_within_file() {
        let mut pb = ProgramBuilder::new("lines");
        let main = pb.declare("main", "m.c");
        pb.define(main, |f| {
            f.compute("a", c(1.0));
            f.compute("b", c(1.0));
        });
        let p = pb.build(main);
        let f = p.find_function("main").unwrap();
        assert!(f.body[0].line < f.body[1].line);
        assert!(f.line < f.body[0].line);
    }

    #[test]
    #[should_panic(expected = "entry function must be defined")]
    fn undefined_entry_panics() {
        let mut pb = ProgramBuilder::new("bad");
        let main = pb.declare("main", "m.c");
        pb.build(main);
    }

    #[test]
    fn metadata_defaults_scale_with_size() {
        let mut pb = ProgramBuilder::new("meta");
        let main = pb.declare("main", "m.c");
        pb.define(main, |f| {
            for i in 0..100 {
                f.compute(&format!("k{i}"), c(1.0));
            }
        });
        let p = pb.build(main);
        assert!(p.kloc > 1.0);
        assert!(p.binary_bytes > 10_000);
    }

    #[test]
    fn metadata_overrides_win() {
        let mut pb = ProgramBuilder::new("meta2");
        let main = pb.declare("main", "m.c");
        pb.define(main, |f| f.compute("k", c(1.0)));
        pb.kloc(704.8);
        pb.binary_bytes(14_670_000);
        pb.param("atoms", 6_912_000.0);
        let p = pb.build(main);
        assert_eq!(p.kloc, 704.8);
        assert_eq!(p.binary_bytes, 14_670_000);
        assert_eq!(p.default_params["atoms"], 6_912_000.0);
    }

    #[test]
    #[should_panic]
    fn empty_indirect_candidates_panic() {
        let mut pb = ProgramBuilder::new("ind");
        let main = pb.declare("main", "m.c");
        pb.define(main, |f| f.call_indirect(vec![], c(0.0)));
        pb.build(main);
    }
}
