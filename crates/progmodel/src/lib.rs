//! # Program-model IR
//!
//! PerFlow's hybrid static-dynamic module consumes *executable binaries*
//! (via Dyninst) and runs them under MPI. This reproduction cannot
//! instrument real binaries, so the program model is the substitute
//! substrate (see DESIGN.md §2): a structured IR describing a parallel
//! program — functions, loops, branches, calls, compute kernels, MPI-like
//! communication, OpenMP-like thread regions, locks and allocator calls —
//! rich enough that
//!
//! * *static analysis* can extract exactly what Dyninst provides (control
//!   flow, call relations, loop nests, debug info, unresolved indirect
//!   calls), and
//! * the *simulator* (`simrt`) can execute it with per-rank virtual
//!   clocks, producing samples, PMU estimates and communication events.
//!
//! Costs and shapes are [`expr::Expr`] expressions over rank, thread,
//! iteration, scale parameters and deterministic noise, so one model
//! describes a whole family of runs (any process count, any input class).

pub mod analysis;
pub mod builder;
pub mod expr;
pub mod pretty;
pub mod program;

pub use analysis::{call_graph, dead_functions, recursive_functions, StaticSummary};
pub use builder::{FuncBuilder, ProgramBuilder};
pub use expr::{c, iter, noise, nranks, nthreads, param, rank, thread, EvalCtx, Expr};
pub use pretty::pretty;
pub use program::{
    CallTarget, CommOp, FuncId, Function, LockId, PmuSpec, Program, Stmt, StmtId, StmtKind,
};
