//! The program IR: functions, statements and communication operations.

use std::collections::HashMap;
use std::sync::Arc;

use crate::expr::Expr;

/// Identifier of a function within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Program-wide unique identifier of a statement (stable across runs; the
/// "address" the sampler reports and static analysis keys on).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub u32);

/// Identifier of a lock object shared across threads of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LockId(pub u32);

/// PMU behaviour of a compute kernel: the synthetic stand-in for PAPI
/// counters (DESIGN.md §2).
#[derive(Debug, Clone, Copy)]
pub struct PmuSpec {
    /// Instructions retired per simulated microsecond of kernel time.
    pub instr_per_us: f64,
    /// Cache misses per thousand instructions.
    pub miss_per_kinstr: f64,
}

impl Default for PmuSpec {
    fn default() -> Self {
        // ~2 GHz with IPC 1 → 2000 instructions/µs; moderate locality.
        PmuSpec {
            instr_per_us: 2000.0,
            miss_per_kinstr: 1.5,
        }
    }
}

/// Call target: static (resolved at "link time") or indirect (resolved
/// only when executed — the cases static analysis must mark for runtime
/// fill-in, §3.2).
#[derive(Debug, Clone)]
pub enum CallTarget {
    /// Direct call to a program function.
    Static(FuncId),
    /// Indirect call; `selector` evaluates to an index into `candidates`.
    Indirect {
        /// Possible targets.
        candidates: Vec<FuncId>,
        /// Expression choosing the target at runtime.
        selector: Expr,
    },
}

/// An MPI-like communication operation.
#[derive(Debug, Clone)]
pub enum CommOp {
    /// Blocking send (rendezvous above the eager threshold).
    Send {
        /// Destination rank.
        peer: Expr,
        /// Message size in bytes.
        bytes: Expr,
        /// Message tag.
        tag: u32,
    },
    /// Blocking receive.
    Recv {
        /// Source rank.
        peer: Expr,
        /// Message size in bytes.
        bytes: Expr,
        /// Message tag.
        tag: u32,
    },
    /// Non-blocking send; completion is observed by `Wait`/`Waitall`.
    Isend {
        /// Destination rank.
        peer: Expr,
        /// Message size in bytes.
        bytes: Expr,
        /// Message tag.
        tag: u32,
    },
    /// Non-blocking receive; completion is observed by `Wait`/`Waitall`.
    Irecv {
        /// Source rank.
        peer: Expr,
        /// Message size in bytes.
        bytes: Expr,
        /// Message tag.
        tag: u32,
    },
    /// Wait for the `n`-th most recent outstanding request (0 = most
    /// recent).
    Wait {
        /// Index into the outstanding-request stack.
        back: u32,
    },
    /// Wait for all outstanding requests of this rank.
    Waitall,
    /// Barrier across all ranks.
    Barrier,
    /// Broadcast from `root`.
    Bcast {
        /// Root rank.
        root: Expr,
        /// Payload bytes.
        bytes: Expr,
    },
    /// Reduce to `root`.
    Reduce {
        /// Root rank.
        root: Expr,
        /// Payload bytes.
        bytes: Expr,
    },
    /// Allreduce across all ranks.
    Allreduce {
        /// Payload bytes.
        bytes: Expr,
    },
    /// All-to-all personalized exchange.
    Alltoall {
        /// Per-peer payload bytes.
        bytes: Expr,
    },
}

impl CommOp {
    /// The MPI-style function name reported for this operation.
    pub fn mpi_name(&self) -> &'static str {
        match self {
            CommOp::Send { .. } => "MPI_Send",
            CommOp::Recv { .. } => "MPI_Recv",
            CommOp::Isend { .. } => "MPI_Isend",
            CommOp::Irecv { .. } => "MPI_Irecv",
            CommOp::Wait { .. } => "MPI_Wait",
            CommOp::Waitall => "MPI_Waitall",
            CommOp::Barrier => "MPI_Barrier",
            CommOp::Bcast { .. } => "MPI_Bcast",
            CommOp::Reduce { .. } => "MPI_Reduce",
            CommOp::Allreduce { .. } => "MPI_Allreduce",
            CommOp::Alltoall { .. } => "MPI_Alltoall",
        }
    }

    /// True for collective operations.
    pub fn is_collective(&self) -> bool {
        matches!(
            self,
            CommOp::Barrier
                | CommOp::Bcast { .. }
                | CommOp::Reduce { .. }
                | CommOp::Allreduce { .. }
                | CommOp::Alltoall { .. }
        )
    }
}

/// One statement in a function body.
#[derive(Debug, Clone)]
pub struct Stmt {
    /// Program-wide unique id.
    pub id: StmtId,
    /// Source line within the containing function's file.
    pub line: u32,
    /// Statement payload.
    pub kind: StmtKind,
}

/// The statement payload.
#[derive(Debug, Clone)]
pub enum StmtKind {
    /// Straight-line compute kernel costing `cost_us` simulated µs.
    Compute {
        /// Kernel name (appears as a PAG vertex).
        name: Arc<str>,
        /// Cost in simulated microseconds.
        cost_us: Expr,
        /// PMU behaviour.
        pmu: PmuSpec,
    },
    /// Counted loop.
    Loop {
        /// Loop name (`loop_1`, `loop_10.1`, …).
        name: Arc<str>,
        /// Trip count.
        trips: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Two-armed branch.
    Branch {
        /// Branch name.
        name: Arc<str>,
        /// Condition; non-zero takes `then_body`.
        cond: Expr,
        /// Taken arm.
        then_body: Vec<Stmt>,
        /// Fallthrough arm.
        else_body: Vec<Stmt>,
    },
    /// Function call.
    Call {
        /// Callee.
        target: CallTarget,
    },
    /// Communication operation.
    Comm(CommOp),
    /// OpenMP-like fork-join region with `threads` threads executing the
    /// body (thread index available as `thread()` in expressions).
    ThreadRegion {
        /// Thread count.
        threads: Expr,
        /// Per-thread body.
        body: Vec<Stmt>,
    },
    /// Acquire `lock`, hold it for `hold_us`, release. Models critical
    /// sections and (with [`Program::alloc_lock`]) allocator serialization.
    Lock {
        /// Display name (`allocate`, `critical`, …).
        name: Arc<str>,
        /// The contended lock object.
        lock: LockId,
        /// Hold time in simulated µs.
        hold_us: Expr,
    },
}

/// A function definition.
#[derive(Debug, Clone)]
pub struct Function {
    /// Function id (index into [`Program::functions`]).
    pub id: FuncId,
    /// Function name.
    pub name: Arc<str>,
    /// Source file (debug info).
    pub file: Arc<str>,
    /// First source line.
    pub line: u32,
    /// Statement body.
    pub body: Vec<Stmt>,
}

/// A complete program model — the substitute for an executable binary.
#[derive(Debug, Clone)]
pub struct Program {
    /// Program name.
    pub name: String,
    /// All functions; `FuncId` indexes this vector.
    pub functions: Vec<Function>,
    /// Entry function.
    pub entry: FuncId,
    /// Source size in thousands of lines (metadata reported in Table 2).
    pub kloc: f64,
    /// Simulated binary size in bytes (metadata reported in Table 2).
    pub binary_bytes: u64,
    /// Default scale parameters (overridable per run).
    pub default_params: HashMap<String, f64>,
    /// Number of statements (cached; `StmtId` space is `0..stmt_count`).
    pub stmt_count: u32,
}

impl Program {
    /// Look up a function.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.0 as usize]
    }

    /// Find a function by name.
    pub fn find_function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name.as_ref() == name)
    }

    /// The designated allocator lock: thread-unsafe memory allocation is
    /// modeled as a critical section on this lock (Vite case study, §5.5).
    pub fn alloc_lock() -> LockId {
        LockId(u32::MAX)
    }

    /// Visit every statement (depth-first, in source order) with its
    /// containing function.
    pub fn visit_stmts<'a>(&'a self, mut f: impl FnMut(&'a Function, &'a Stmt)) {
        fn walk<'a>(
            func: &'a Function,
            stmts: &'a [Stmt],
            f: &mut impl FnMut(&'a Function, &'a Stmt),
        ) {
            for s in stmts {
                f(func, s);
                match &s.kind {
                    StmtKind::Loop { body, .. } | StmtKind::ThreadRegion { body, .. } => {
                        walk(func, body, f)
                    }
                    StmtKind::Branch {
                        then_body,
                        else_body,
                        ..
                    } => {
                        walk(func, then_body, f);
                        walk(func, else_body, f);
                    }
                    _ => {}
                }
            }
        }
        for func in &self.functions {
            walk(func, &func.body, &mut f);
        }
    }

    /// Total number of statements of each coarse kind
    /// `(compute, loops, branches, calls, comms, locks, regions)`.
    pub fn stmt_histogram(&self) -> [usize; 7] {
        let mut h = [0usize; 7];
        self.visit_stmts(|_, s| match &s.kind {
            StmtKind::Compute { .. } => h[0] += 1,
            StmtKind::Loop { .. } => h[1] += 1,
            StmtKind::Branch { .. } => h[2] += 1,
            StmtKind::Call { .. } => h[3] += 1,
            StmtKind::Comm(_) => h[4] += 1,
            StmtKind::Lock { .. } => h[5] += 1,
            StmtKind::ThreadRegion { .. } => h[6] += 1,
        });
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::expr::c;

    #[test]
    fn comm_names() {
        assert_eq!(CommOp::Waitall.mpi_name(), "MPI_Waitall");
        assert_eq!(
            CommOp::Allreduce { bytes: c(8.0) }.mpi_name(),
            "MPI_Allreduce"
        );
        assert!(CommOp::Barrier.is_collective());
        assert!(!CommOp::Wait { back: 0 }.is_collective());
    }

    #[test]
    fn visit_walks_nested_structures() {
        let mut pb = ProgramBuilder::new("t");
        let main = pb.declare("main", "t.c");
        pb.define(main, |f| {
            f.compute("a", c(1.0));
            f.loop_("l", c(3.0), |b| {
                b.compute("inner", c(1.0));
                b.branch(
                    "br",
                    c(1.0),
                    |t| t.compute("then", c(1.0)),
                    |e| {
                        e.compute("else", c(1.0));
                    },
                );
            });
        });
        let p = pb.build(main);
        let mut names = Vec::new();
        p.visit_stmts(|_, s| {
            if let StmtKind::Compute { name, .. } = &s.kind {
                names.push(name.to_string());
            }
        });
        assert_eq!(names, vec!["a", "inner", "then", "else"]);
        let h = p.stmt_histogram();
        assert_eq!(h[0], 4); // computes
        assert_eq!(h[1], 1); // loop
        assert_eq!(h[2], 1); // branch
    }
}
