//! Compact binary serialization of a PAG.
//!
//! The paper's "space cost" (Table 1) is the storage size of PAGs on disk.
//! This module implements a self-describing length-prefixed binary format
//! (magic `PAG1`) with no external dependencies. Strings are deduplicated
//! through a string table so that parallel views — where every process
//! replicates the same vertex names — stay compact.

use std::collections::HashMap;
use std::sync::Arc;

use crate::graph::{EdgeData, Pag, VertexData};
use crate::ids::{EdgeId, VertexId};
use crate::label::{CallKind, CommKind, EdgeLabel, VertexLabel};
use crate::props::{PropMap, PropValue};
use crate::ViewKind;

const MAGIC: &[u8; 4] = b"PAG1";

/// Errors produced while decoding a serialized PAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input does not start with the `PAG1` magic.
    BadMagic,
    /// Input ended before the structure was complete.
    Truncated,
    /// An enum tag byte had no defined meaning.
    BadTag(u8),
    /// A string was not valid UTF-8.
    BadUtf8,
    /// A string-table or vertex index was out of range.
    BadIndex,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "bad magic (not a PAG file)"),
            DecodeError::Truncated => write!(f, "truncated input"),
            DecodeError::BadTag(t) => write!(f, "unknown tag byte {t}"),
            DecodeError::BadUtf8 => write!(f, "invalid UTF-8 string"),
            DecodeError::BadIndex => write!(f, "index out of range"),
        }
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------- encoding

struct Encoder {
    buf: Vec<u8>,
    strings: Vec<Arc<str>>,
    string_ids: HashMap<Arc<str>, u32>,
}

impl Encoder {
    fn new() -> Self {
        Encoder {
            buf: Vec::with_capacity(4096),
            strings: Vec::new(),
            string_ids: HashMap::new(),
        }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn intern(&mut self, s: &Arc<str>) -> u32 {
        if let Some(&id) = self.string_ids.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.strings.push(Arc::clone(s));
        self.string_ids.insert(Arc::clone(s), id);
        id
    }

    fn str_ref(&mut self, s: &Arc<str>) {
        let id = self.intern(s);
        self.u32(id);
    }

    fn props(&mut self, props: &PropMap) {
        self.u32(props.len() as u32);
        // Collect first to avoid borrowing issues with interning.
        let entries: Vec<(Arc<str>, PropValue)> = props
            .iter()
            .map(|(k, v)| (Arc::from(k), v.clone()))
            .collect();
        for (k, v) in entries {
            self.str_ref(&k);
            match v {
                PropValue::Int(i) => {
                    self.u8(0);
                    self.u64(i as u64);
                }
                PropValue::Float(f) => {
                    self.u8(1);
                    self.f64(f);
                }
                PropValue::Str(s) => {
                    self.u8(2);
                    self.str_ref(&s);
                }
                PropValue::VecF64(xs) => {
                    self.u8(3);
                    self.u32(xs.len() as u32);
                    for x in xs.iter() {
                        self.f64(*x);
                    }
                }
            }
        }
    }
}

fn vertex_label_tag(l: VertexLabel) -> u8 {
    match l {
        VertexLabel::Root => 0,
        VertexLabel::Function => 1,
        VertexLabel::Loop => 2,
        VertexLabel::Branch => 3,
        VertexLabel::Compute => 4,
        VertexLabel::Instruction => 5,
        VertexLabel::Call(CallKind::User) => 10,
        VertexLabel::Call(CallKind::Comm) => 11,
        VertexLabel::Call(CallKind::External) => 12,
        VertexLabel::Call(CallKind::Recursive) => 13,
        VertexLabel::Call(CallKind::Indirect) => 14,
        VertexLabel::Call(CallKind::ThreadSpawn) => 15,
        VertexLabel::Call(CallKind::Lock) => 16,
    }
}

fn vertex_label_from_tag(t: u8) -> Result<VertexLabel, DecodeError> {
    Ok(match t {
        0 => VertexLabel::Root,
        1 => VertexLabel::Function,
        2 => VertexLabel::Loop,
        3 => VertexLabel::Branch,
        4 => VertexLabel::Compute,
        5 => VertexLabel::Instruction,
        10 => VertexLabel::Call(CallKind::User),
        11 => VertexLabel::Call(CallKind::Comm),
        12 => VertexLabel::Call(CallKind::External),
        13 => VertexLabel::Call(CallKind::Recursive),
        14 => VertexLabel::Call(CallKind::Indirect),
        15 => VertexLabel::Call(CallKind::ThreadSpawn),
        16 => VertexLabel::Call(CallKind::Lock),
        t => return Err(DecodeError::BadTag(t)),
    })
}

fn edge_label_tag(l: EdgeLabel) -> u8 {
    match l {
        EdgeLabel::IntraProc => 0,
        EdgeLabel::InterProc => 1,
        EdgeLabel::InterThread => 2,
        EdgeLabel::InterProcess(CommKind::P2pSync) => 3,
        EdgeLabel::InterProcess(CommKind::P2pAsync) => 4,
        EdgeLabel::InterProcess(CommKind::Collective) => 5,
    }
}

fn edge_label_from_tag(t: u8) -> Result<EdgeLabel, DecodeError> {
    Ok(match t {
        0 => EdgeLabel::IntraProc,
        1 => EdgeLabel::InterProc,
        2 => EdgeLabel::InterThread,
        3 => EdgeLabel::InterProcess(CommKind::P2pSync),
        4 => EdgeLabel::InterProcess(CommKind::P2pAsync),
        5 => EdgeLabel::InterProcess(CommKind::Collective),
        t => return Err(DecodeError::BadTag(t)),
    })
}

/// Serialize a PAG into a byte buffer.
pub fn encode(pag: &Pag) -> Vec<u8> {
    let mut enc = Encoder::new();
    // Body (everything after header) is built first so the string table can
    // be emitted up front.
    enc.u8(match pag.view() {
        ViewKind::TopDown => 0,
        ViewKind::Parallel => 1,
    });
    let name: Arc<str> = Arc::from(pag.name());
    enc.str_ref(&name);
    enc.u32(pag.num_procs());
    enc.u32(pag.threads_per_proc());
    match pag.root() {
        Some(r) => {
            enc.u8(1);
            enc.u32(r.0);
        }
        None => enc.u8(0),
    }
    enc.u32(pag.num_vertices() as u32);
    for v in pag.vertex_ids() {
        let data: &VertexData = pag.vertex(v);
        enc.u8(vertex_label_tag(data.label));
        let n = Arc::clone(&data.name);
        enc.str_ref(&n);
        enc.props(&data.props);
    }
    enc.u32(pag.num_edges() as u32);
    for e in pag.edge_ids() {
        let data: &EdgeData = pag.edge(e);
        enc.u32(data.src.0);
        enc.u32(data.dst.0);
        enc.u8(edge_label_tag(data.label));
        enc.props(&data.props);
    }

    // Assemble: magic + string table + body.
    let mut out = Vec::with_capacity(enc.buf.len() + 1024);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(enc.strings.len() as u32).to_le_bytes());
    for s in &enc.strings {
        out.extend_from_slice(&(s.len() as u32).to_le_bytes());
        out.extend_from_slice(s.as_bytes());
    }
    out.extend_from_slice(&enc.buf);
    out
}

// ---------------------------------------------------------------- decoding

struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
    strings: Vec<Arc<str>>,
}

impl<'a> Decoder<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn str_ref(&mut self) -> Result<Arc<str>, DecodeError> {
        let id = self.u32()? as usize;
        self.strings.get(id).cloned().ok_or(DecodeError::BadIndex)
    }
    fn props(&mut self) -> Result<PropMap, DecodeError> {
        let n = self.u32()?;
        let mut map = PropMap::new();
        for _ in 0..n {
            let key = self.str_ref()?;
            let tag = self.u8()?;
            let value = match tag {
                0 => PropValue::Int(self.u64()? as i64),
                1 => PropValue::Float(self.f64()?),
                2 => PropValue::Str(self.str_ref()?),
                3 => {
                    let len = self.u32()? as usize;
                    let mut xs = Vec::with_capacity(len);
                    for _ in 0..len {
                        xs.push(self.f64()?);
                    }
                    PropValue::VecF64(Arc::from(xs.into_boxed_slice()))
                }
                t => return Err(DecodeError::BadTag(t)),
            };
            map.set(&key, value);
        }
        Ok(map)
    }
}

/// Deserialize a PAG from bytes produced by [`encode`].
pub fn decode(bytes: &[u8]) -> Result<Pag, DecodeError> {
    if bytes.len() < 4 || &bytes[..4] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let mut dec = Decoder {
        buf: bytes,
        pos: 4,
        strings: Vec::new(),
    };
    let nstrings = dec.u32()?;
    for _ in 0..nstrings {
        let len = dec.u32()? as usize;
        let raw = dec.take(len)?;
        let s = std::str::from_utf8(raw).map_err(|_| DecodeError::BadUtf8)?;
        dec.strings.push(Arc::from(s));
    }

    let view = match dec.u8()? {
        0 => ViewKind::TopDown,
        1 => ViewKind::Parallel,
        t => return Err(DecodeError::BadTag(t)),
    };
    let name = dec.str_ref()?;
    let num_procs = dec.u32()?;
    let threads = dec.u32()?;
    let root = match dec.u8()? {
        0 => None,
        1 => Some(VertexId(dec.u32()?)),
        t => return Err(DecodeError::BadTag(t)),
    };

    let nv = dec.u32()? as usize;
    let mut pag = Pag::with_capacity(view, name.as_ref(), nv, 0);
    pag.set_num_procs(num_procs);
    pag.set_threads_per_proc(threads);
    for _ in 0..nv {
        let label = vertex_label_from_tag(dec.u8()?)?;
        let vname = dec.str_ref()?;
        let v = pag.add_vertex(label, vname);
        pag.vertex_mut(v).props = dec.props()?;
    }
    let ne = dec.u32()? as usize;
    for _ in 0..ne {
        let src = VertexId(dec.u32()?);
        let dst = VertexId(dec.u32()?);
        if src.index() >= nv || dst.index() >= nv {
            return Err(DecodeError::BadIndex);
        }
        let label = edge_label_from_tag(dec.u8()?)?;
        let e: EdgeId = pag.add_edge(src, dst, label);
        pag.edge_mut(e).props = dec.props()?;
    }
    if let Some(r) = root {
        if r.index() >= nv {
            return Err(DecodeError::BadIndex);
        }
        pag.set_root(r);
    }
    Ok(pag)
}

/// Serialized size in bytes — the paper's "space cost" metric.
pub fn space_cost(pag: &Pag) -> usize {
    encode(pag).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::keys;

    fn sample() -> Pag {
        let mut g = Pag::new(ViewKind::Parallel, "ser-sample");
        g.set_num_procs(4);
        g.set_threads_per_proc(2);
        let a = g.add_vertex(VertexLabel::Function, "main");
        let b = g.add_vertex(VertexLabel::Call(CallKind::Comm), "MPI_Send");
        let e = g.add_edge(a, b, EdgeLabel::InterProcess(CommKind::P2pSync));
        g.set_root(a);
        g.set_vprop(a, keys::TIME, 3.25);
        g.set_vprop(a, keys::COUNT, 7i64);
        g.set_vprop(b, keys::DEBUG_INFO, "main.c:42");
        g.set_vprop(b, keys::TIME_PER_PROC, vec![1.0, 2.0, 3.0, 4.0]);
        g.edge_mut(e).props.set(keys::COMM_BYTES, 4096i64);
        g
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample();
        let bytes = encode(&g);
        let h = decode(&bytes).unwrap();
        assert_eq!(h.view(), ViewKind::Parallel);
        assert_eq!(h.name(), "ser-sample");
        assert_eq!(h.num_procs(), 4);
        assert_eq!(h.threads_per_proc(), 2);
        assert_eq!(h.root(), Some(VertexId(0)));
        assert_eq!(h.num_vertices(), 2);
        assert_eq!(h.num_edges(), 1);
        assert_eq!(h.vertex(VertexId(0)).label, VertexLabel::Function);
        assert_eq!(
            h.vertex(VertexId(1)).label,
            VertexLabel::Call(CallKind::Comm)
        );
        assert_eq!(h.vertex_time(VertexId(0)), 3.25);
        assert_eq!(h.vprop(VertexId(0), keys::COUNT).unwrap().as_i64(), Some(7));
        assert_eq!(
            h.vprop(VertexId(1), keys::DEBUG_INFO).unwrap().as_str(),
            Some("main.c:42")
        );
        assert_eq!(
            h.vprop(VertexId(1), keys::TIME_PER_PROC)
                .unwrap()
                .as_f64_slice(),
            Some(&[1.0, 2.0, 3.0, 4.0][..])
        );
        let e = h.edge(EdgeId(0));
        assert_eq!(e.label, EdgeLabel::InterProcess(CommKind::P2pSync));
        assert_eq!(e.props.get(keys::COMM_BYTES).unwrap().as_i64(), Some(4096));
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(decode(b"nope"), Err(DecodeError::BadMagic)));
        assert!(matches!(decode(b""), Err(DecodeError::BadMagic)));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = encode(&sample());
        for cut in [5, 10, bytes.len() / 2, bytes.len() - 1] {
            let err = decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, DecodeError::Truncated | DecodeError::BadIndex),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn string_dedup_keeps_replicas_compact() {
        // Two graphs: one with 100 distinct names, one with 100 copies of
        // the same name. The latter must serialize much smaller.
        let mut distinct = Pag::new(ViewKind::TopDown, "d");
        let mut repeated = Pag::new(ViewKind::TopDown, "r");
        for i in 0..100 {
            distinct.add_vertex(
                VertexLabel::Compute,
                format!("some_rather_long_vertex_name_{i}").as_str(),
            );
            repeated.add_vertex(VertexLabel::Compute, "some_rather_long_vertex_name_0");
        }
        assert!(space_cost(&repeated) < space_cost(&distinct) / 2);
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = Pag::new(ViewKind::TopDown, "empty");
        let h = decode(&encode(&g)).unwrap();
        assert_eq!(h.num_vertices(), 0);
        assert_eq!(h.num_edges(), 0);
        assert_eq!(h.root(), None);
    }
}
