//! Compact binary serialization of a PAG.
//!
//! The paper's "space cost" (Table 1) is the storage size of PAGs on disk.
//! This module implements a self-describing length-prefixed binary format
//! with no external dependencies. Strings are deduplicated through a string
//! table so that parallel views — where every process replicates the same
//! vertex names — stay compact.
//!
//! Two wire formats exist:
//!
//! * **`PAG2`** (current, written by [`encode`]): vertex/edge records carry
//!   only labels, names and string properties; numeric metrics are written
//!   as *columnar sections* mirroring the in-memory [`MetricColumns`]
//!   layout — per key: a presence bitmap plus the packed present values.
//!   Sparse metrics therefore cost one bit per absent row instead of a
//!   keyed entry per vertex.
//! * **`PAG1`** (legacy, written by [`encode_v1`]): every vertex/edge
//!   carries a full key→value property list. [`decode`] accepts both magics
//!   so snapshots written before the columnar storage landed keep loading.
//!
//! Both decode paths reject input with bytes left over after a well-formed
//! payload ([`DecodeError::TrailingBytes`]) so torn or concatenated
//! snapshots fail loudly instead of silently dropping data.

use std::collections::HashMap;
use std::sync::Arc;

use crate::graph::{EdgeData, Pag, VertexData};
use crate::ids::{EdgeId, VertexId};
use crate::label::{CallKind, CommKind, EdgeLabel, VertexLabel};
use crate::metric::{KeyId, MetricColumns};
use crate::props::{PropMap, PropValue};
use crate::ViewKind;

const MAGIC_V1: &[u8; 4] = b"PAG1";
const MAGIC_V2: &[u8; 4] = b"PAG2";

/// Errors produced while decoding a serialized PAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input does not start with the `PAG1`/`PAG2` magic.
    BadMagic,
    /// Input ended before the structure was complete.
    Truncated,
    /// An enum tag byte had no defined meaning.
    BadTag(u8),
    /// A string was not valid UTF-8.
    BadUtf8,
    /// A string-table, vertex or row index was out of range.
    BadIndex,
    /// Input continued after a well-formed payload (torn or concatenated
    /// snapshot).
    TrailingBytes,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "bad magic (not a PAG file)"),
            DecodeError::Truncated => write!(f, "truncated input"),
            DecodeError::BadTag(t) => write!(f, "unknown tag byte {t}"),
            DecodeError::BadUtf8 => write!(f, "invalid UTF-8 string"),
            DecodeError::BadIndex => write!(f, "index out of range"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after payload"),
        }
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------- encoding

struct Encoder {
    buf: Vec<u8>,
    strings: Vec<Arc<str>>,
    string_ids: HashMap<Arc<str>, u32>,
}

impl Encoder {
    fn new() -> Self {
        Encoder {
            buf: Vec::with_capacity(4096),
            strings: Vec::new(),
            string_ids: HashMap::new(),
        }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn intern(&mut self, s: &Arc<str>) -> u32 {
        if let Some(&id) = self.string_ids.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.strings.push(Arc::clone(s));
        self.string_ids.insert(Arc::clone(s), id);
        id
    }

    fn str_ref(&mut self, s: &Arc<str>) {
        let id = self.intern(s);
        self.u32(id);
    }

    fn props(&mut self, entries: &[(Arc<str>, PropValue)]) {
        self.u32(entries.len() as u32);
        for (k, v) in entries {
            self.str_ref(k);
            match v {
                PropValue::Int(i) => {
                    self.u8(0);
                    self.u64(*i as u64);
                }
                PropValue::Float(f) => {
                    self.u8(1);
                    self.f64(*f);
                }
                PropValue::Str(s) => {
                    self.u8(2);
                    self.str_ref(s);
                }
                PropValue::VecF64(xs) => {
                    self.u8(3);
                    self.u32(xs.len() as u32);
                    for x in xs.iter() {
                        self.f64(*x);
                    }
                }
            }
        }
    }

    /// One columnar metric section (vertex or edge metrics).
    fn columns(&mut self, pag: &Pag, cols: &MetricColumns) {
        // Group present values per key, in key order (for_each_* visit in
        // key-major, row-ascending order).
        type ScalarCol = (KeyId, bool, Vec<(u32, f64)>);
        let mut scalars: Vec<ScalarCol> = Vec::new();
        cols.for_each_scalar(|k, is_int, row, x| match scalars.last_mut() {
            Some((lk, _, vs)) if *lk == k => vs.push((row as u32, x)),
            _ => scalars.push((k, is_int, vec![(row as u32, x)])),
        });
        self.u32(scalars.len() as u32);
        for (k, is_int, vs) in scalars {
            let name: Arc<str> = Arc::from(pag.key_name(k));
            self.str_ref(&name);
            self.u8(is_int as u8);
            let rows_used = vs.last().map(|&(r, _)| r + 1).unwrap_or(0);
            self.u32(rows_used);
            let mut bitmap = vec![0u8; rows_used.div_ceil(8) as usize];
            for &(r, _) in &vs {
                bitmap[(r / 8) as usize] |= 1 << (r % 8);
            }
            self.buf.extend_from_slice(&bitmap);
            for &(_, x) in &vs {
                self.f64(x);
            }
        }
        type VecCol = (KeyId, Vec<(u32, Arc<[f64]>)>);
        let mut vecs: Vec<VecCol> = Vec::new();
        cols.for_each_vec(|k, row, xs| match vecs.last_mut() {
            Some((lk, vs)) if *lk == k => vs.push((row as u32, xs.clone())),
            _ => vecs.push((k, vec![(row as u32, xs.clone())])),
        });
        self.u32(vecs.len() as u32);
        for (k, vs) in vecs {
            let name: Arc<str> = Arc::from(pag.key_name(k));
            self.str_ref(&name);
            self.u32(vs.len() as u32);
            for (r, xs) in vs {
                self.u32(r);
                self.u32(xs.len() as u32);
                for x in xs.iter() {
                    self.f64(*x);
                }
            }
        }
    }

    fn assemble(self, magic: &[u8; 4]) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.buf.len() + 1024);
        out.extend_from_slice(magic);
        out.extend_from_slice(&(self.strings.len() as u32).to_le_bytes());
        for s in &self.strings {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        out.extend_from_slice(&self.buf);
        out
    }
}

fn propmap_entries(p: &PropMap) -> Vec<(Arc<str>, PropValue)> {
    p.iter().map(|(k, v)| (Arc::from(k), v.clone())).collect()
}

fn vertex_label_tag(l: VertexLabel) -> u8 {
    match l {
        VertexLabel::Root => 0,
        VertexLabel::Function => 1,
        VertexLabel::Loop => 2,
        VertexLabel::Branch => 3,
        VertexLabel::Compute => 4,
        VertexLabel::Instruction => 5,
        VertexLabel::Call(CallKind::User) => 10,
        VertexLabel::Call(CallKind::Comm) => 11,
        VertexLabel::Call(CallKind::External) => 12,
        VertexLabel::Call(CallKind::Recursive) => 13,
        VertexLabel::Call(CallKind::Indirect) => 14,
        VertexLabel::Call(CallKind::ThreadSpawn) => 15,
        VertexLabel::Call(CallKind::Lock) => 16,
    }
}

fn vertex_label_from_tag(t: u8) -> Result<VertexLabel, DecodeError> {
    Ok(match t {
        0 => VertexLabel::Root,
        1 => VertexLabel::Function,
        2 => VertexLabel::Loop,
        3 => VertexLabel::Branch,
        4 => VertexLabel::Compute,
        5 => VertexLabel::Instruction,
        10 => VertexLabel::Call(CallKind::User),
        11 => VertexLabel::Call(CallKind::Comm),
        12 => VertexLabel::Call(CallKind::External),
        13 => VertexLabel::Call(CallKind::Recursive),
        14 => VertexLabel::Call(CallKind::Indirect),
        15 => VertexLabel::Call(CallKind::ThreadSpawn),
        16 => VertexLabel::Call(CallKind::Lock),
        t => return Err(DecodeError::BadTag(t)),
    })
}

fn edge_label_tag(l: EdgeLabel) -> u8 {
    match l {
        EdgeLabel::IntraProc => 0,
        EdgeLabel::InterProc => 1,
        EdgeLabel::InterThread => 2,
        EdgeLabel::InterProcess(CommKind::P2pSync) => 3,
        EdgeLabel::InterProcess(CommKind::P2pAsync) => 4,
        EdgeLabel::InterProcess(CommKind::Collective) => 5,
    }
}

fn edge_label_from_tag(t: u8) -> Result<EdgeLabel, DecodeError> {
    Ok(match t {
        0 => EdgeLabel::IntraProc,
        1 => EdgeLabel::InterProc,
        2 => EdgeLabel::InterThread,
        3 => EdgeLabel::InterProcess(CommKind::P2pSync),
        4 => EdgeLabel::InterProcess(CommKind::P2pAsync),
        5 => EdgeLabel::InterProcess(CommKind::Collective),
        t => return Err(DecodeError::BadTag(t)),
    })
}

fn encode_header(enc: &mut Encoder, pag: &Pag) {
    enc.u8(match pag.view() {
        ViewKind::TopDown => 0,
        ViewKind::Parallel => 1,
    });
    let name: Arc<str> = Arc::from(pag.name());
    enc.str_ref(&name);
    enc.u32(pag.num_procs());
    enc.u32(pag.threads_per_proc());
    match pag.root() {
        Some(r) => {
            enc.u8(1);
            enc.u32(r.0);
        }
        None => enc.u8(0),
    }
}

/// Serialize a PAG into the current (`PAG2`, columnar) wire format.
pub fn encode(pag: &Pag) -> Vec<u8> {
    let mut enc = Encoder::new();
    encode_header(&mut enc, pag);
    enc.u32(pag.num_vertices() as u32);
    for v in pag.vertex_ids() {
        let data: &VertexData = pag.vertex(v);
        enc.u8(vertex_label_tag(data.label));
        let n = Arc::clone(&data.name);
        enc.str_ref(&n);
        enc.props(&propmap_entries(&data.sprops));
    }
    enc.u32(pag.num_edges() as u32);
    for e in pag.edge_ids() {
        let data: &EdgeData = pag.edge(e);
        enc.u32(data.src.0);
        enc.u32(data.dst.0);
        enc.u8(edge_label_tag(data.label));
        enc.props(&propmap_entries(&data.sprops));
    }
    enc.columns(pag, pag.vmetric_columns());
    enc.columns(pag, pag.emetric_columns());
    enc.assemble(MAGIC_V2)
}

/// Serialize a PAG into the legacy `PAG1` wire format (full per-vertex
/// property lists, metrics merged back in). Kept for compatibility tests
/// and for producing snapshots older readers can load; byte-identical to
/// what the pre-columnar encoder produced for the same logical graph.
pub fn encode_v1(pag: &Pag) -> Vec<u8> {
    let mut enc = Encoder::new();
    encode_header(&mut enc, pag);
    enc.u32(pag.num_vertices() as u32);
    for v in pag.vertex_ids() {
        let data: &VertexData = pag.vertex(v);
        enc.u8(vertex_label_tag(data.label));
        let n = Arc::clone(&data.name);
        enc.str_ref(&n);
        enc.props(&pag.prop_entries(v));
    }
    enc.u32(pag.num_edges() as u32);
    for e in pag.edge_ids() {
        let data: &EdgeData = pag.edge(e);
        enc.u32(data.src.0);
        enc.u32(data.dst.0);
        enc.u8(edge_label_tag(data.label));
        enc.props(&pag.eprop_entries(e));
    }
    enc.assemble(MAGIC_V1)
}

// ---------------------------------------------------------------- decoding

struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
    strings: Vec<Arc<str>>,
}

impl<'a> Decoder<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn str_ref(&mut self) -> Result<Arc<str>, DecodeError> {
        let id = self.u32()? as usize;
        self.strings.get(id).cloned().ok_or(DecodeError::BadIndex)
    }
    fn props(&mut self) -> Result<PropMap, DecodeError> {
        let n = self.u32()?;
        let mut map = PropMap::new();
        for _ in 0..n {
            let key = self.str_ref()?;
            let tag = self.u8()?;
            let value = match tag {
                0 => PropValue::Int(self.u64()? as i64),
                1 => PropValue::Float(self.f64()?),
                2 => PropValue::Str(self.str_ref()?),
                3 => {
                    let len = self.u32()? as usize;
                    let mut xs = Vec::with_capacity(len);
                    for _ in 0..len {
                        xs.push(self.f64()?);
                    }
                    PropValue::VecF64(Arc::from(xs.into_boxed_slice()))
                }
                t => return Err(DecodeError::BadTag(t)),
            };
            map.set(&key, value);
        }
        Ok(map)
    }

    fn string_table(&mut self) -> Result<(), DecodeError> {
        let nstrings = self.u32()?;
        for _ in 0..nstrings {
            let len = self.u32()? as usize;
            let raw = self.take(len)?;
            let s = std::str::from_utf8(raw).map_err(|_| DecodeError::BadUtf8)?;
            self.strings.push(Arc::from(s));
        }
        Ok(())
    }

    /// One columnar metric section; `edges` selects edge vs vertex columns.
    fn columns(&mut self, pag: &mut Pag, edges: bool, rows: usize) -> Result<(), DecodeError> {
        let nscalar = self.u32()?;
        for _ in 0..nscalar {
            let name = self.str_ref()?;
            let is_int = match self.u8()? {
                0 => false,
                1 => true,
                t => return Err(DecodeError::BadTag(t)),
            };
            let rows_used = self.u32()? as usize;
            if rows_used > rows {
                return Err(DecodeError::BadIndex);
            }
            let bitmap = self.take(rows_used.div_ceil(8))?.to_vec();
            let key = pag.intern_key(&name);
            for row in 0..rows_used {
                if bitmap[row / 8] & (1 << (row % 8)) != 0 {
                    let x = self.f64()?;
                    if edges {
                        pag.emetrics_mut().set(key, row, x, is_int);
                    } else {
                        pag.vmetrics_mut().set(key, row, x, is_int);
                    }
                }
            }
        }
        let nvec = self.u32()?;
        for _ in 0..nvec {
            let name = self.str_ref()?;
            let key = pag.intern_key(&name);
            let nentries = self.u32()?;
            for _ in 0..nentries {
                let row = self.u32()? as usize;
                if row >= rows {
                    return Err(DecodeError::BadIndex);
                }
                let len = self.u32()? as usize;
                let mut xs = Vec::with_capacity(len);
                for _ in 0..len {
                    xs.push(self.f64()?);
                }
                let xs: Arc<[f64]> = Arc::from(xs.into_boxed_slice());
                if edges {
                    pag.emetrics_mut().set_vec(key, row, xs);
                } else {
                    pag.vmetrics_mut().set_vec(key, row, xs);
                }
            }
        }
        Ok(())
    }
}

/// Deserialize a PAG from bytes produced by [`encode`] (`PAG2`) or by the
/// legacy [`encode_v1`] (`PAG1`). Rejects trailing bytes.
pub fn decode(bytes: &[u8]) -> Result<Pag, DecodeError> {
    let v2 = match bytes.get(..4) {
        Some(m) if m == MAGIC_V2 => true,
        Some(m) if m == MAGIC_V1 => false,
        _ => return Err(DecodeError::BadMagic),
    };
    let mut dec = Decoder {
        buf: bytes,
        pos: 4,
        strings: Vec::new(),
    };
    dec.string_table()?;

    let view = match dec.u8()? {
        0 => ViewKind::TopDown,
        1 => ViewKind::Parallel,
        t => return Err(DecodeError::BadTag(t)),
    };
    let name = dec.str_ref()?;
    let num_procs = dec.u32()?;
    let threads = dec.u32()?;
    let root = match dec.u8()? {
        0 => None,
        1 => Some(VertexId(dec.u32()?)),
        t => return Err(DecodeError::BadTag(t)),
    };

    let nv = dec.u32()? as usize;
    let mut pag = Pag::with_capacity(view, name.as_ref(), nv, 0);
    pag.set_num_procs(num_procs);
    pag.set_threads_per_proc(threads);
    for _ in 0..nv {
        let label = vertex_label_from_tag(dec.u8()?)?;
        let vname = dec.str_ref()?;
        let v = pag.add_vertex(label, vname);
        let props = dec.props()?;
        if v2 {
            pag.vertex_mut(v).sprops = props;
        } else {
            // Legacy payload: metrics live in the property list — route
            // them through the shim into the columns.
            for (k, value) in props.iter() {
                pag.set_vprop(v, k, value.clone());
            }
        }
    }
    let ne = dec.u32()? as usize;
    for _ in 0..ne {
        let src = VertexId(dec.u32()?);
        let dst = VertexId(dec.u32()?);
        if src.index() >= nv || dst.index() >= nv {
            return Err(DecodeError::BadIndex);
        }
        let label = edge_label_from_tag(dec.u8()?)?;
        let e: EdgeId = pag.add_edge(src, dst, label);
        let props = dec.props()?;
        if v2 {
            pag.edge_mut(e).sprops = props;
        } else {
            for (k, value) in props.iter() {
                pag.set_eprop(e, k, value.clone());
            }
        }
    }
    if v2 {
        dec.columns(&mut pag, false, nv)?;
        dec.columns(&mut pag, true, ne)?;
    }
    if let Some(r) = root {
        if r.index() >= nv {
            return Err(DecodeError::BadIndex);
        }
        pag.set_root(r);
    }
    if dec.pos != bytes.len() {
        return Err(DecodeError::TrailingBytes);
    }
    Ok(pag)
}

/// Serialized size in bytes — the paper's "space cost" metric.
pub fn space_cost(pag: &Pag) -> usize {
    encode(pag).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::keys;

    fn sample() -> Pag {
        let mut g = Pag::new(ViewKind::Parallel, "ser-sample");
        g.set_num_procs(4);
        g.set_threads_per_proc(2);
        let a = g.add_vertex(VertexLabel::Function, "main");
        let b = g.add_vertex(VertexLabel::Call(CallKind::Comm), "MPI_Send");
        let e = g.add_edge(a, b, EdgeLabel::InterProcess(CommKind::P2pSync));
        g.set_root(a);
        g.set_vprop(a, keys::TIME, 3.25);
        g.set_vprop(a, keys::COUNT, 7i64);
        g.set_vprop(b, keys::DEBUG_INFO, "main.c:42");
        g.set_vprop(b, keys::TIME_PER_PROC, vec![1.0, 2.0, 3.0, 4.0]);
        g.set_eprop(e, keys::COMM_BYTES, 4096i64);
        g
    }

    fn check_sample(h: &Pag) {
        assert_eq!(h.view(), ViewKind::Parallel);
        assert_eq!(h.name(), "ser-sample");
        assert_eq!(h.num_procs(), 4);
        assert_eq!(h.threads_per_proc(), 2);
        assert_eq!(h.root(), Some(VertexId(0)));
        assert_eq!(h.num_vertices(), 2);
        assert_eq!(h.num_edges(), 1);
        assert_eq!(h.vertex(VertexId(0)).label, VertexLabel::Function);
        assert_eq!(
            h.vertex(VertexId(1)).label,
            VertexLabel::Call(CallKind::Comm)
        );
        assert_eq!(h.vertex_time(VertexId(0)), 3.25);
        assert_eq!(h.vprop(VertexId(0), keys::COUNT).unwrap().as_i64(), Some(7));
        assert_eq!(
            h.vprop(VertexId(1), keys::DEBUG_INFO).unwrap().as_str(),
            Some("main.c:42")
        );
        assert_eq!(
            h.vprop(VertexId(1), keys::TIME_PER_PROC)
                .unwrap()
                .as_f64_slice(),
            Some(&[1.0, 2.0, 3.0, 4.0][..])
        );
        let e = h.edge(EdgeId(0));
        assert_eq!(e.label, EdgeLabel::InterProcess(CommKind::P2pSync));
        assert_eq!(
            h.eprop(EdgeId(0), keys::COMM_BYTES).unwrap().as_i64(),
            Some(4096)
        );
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample();
        let bytes = encode(&g);
        assert_eq!(&bytes[..4], MAGIC_V2);
        check_sample(&decode(&bytes).unwrap());
    }

    #[test]
    fn v1_roundtrip_preserves_everything() {
        let g = sample();
        let bytes = encode_v1(&g);
        assert_eq!(&bytes[..4], MAGIC_V1);
        check_sample(&decode(&bytes).unwrap());
    }

    #[test]
    fn v1_and_v2_decode_to_same_graph() {
        let g = sample();
        let via_v1 = decode(&encode_v1(&g)).unwrap();
        let via_v2 = decode(&encode(&g)).unwrap();
        // Same logical content → same canonical v1 bytes.
        assert_eq!(encode_v1(&via_v1), encode_v1(&via_v2));
    }

    #[test]
    fn nan_and_inf_survive_both_formats() {
        let mut g = Pag::new(ViewKind::TopDown, "nan");
        let v = g.add_vertex(VertexLabel::Compute, "k");
        g.set_vprop(v, keys::TIME, f64::NAN);
        g.set_vprop(v, keys::WAIT_TIME, f64::NEG_INFINITY);
        g.set_vprop(v, keys::TIME_PER_PROC, vec![f64::INFINITY, f64::NAN]);
        for bytes in [encode(&g), encode_v1(&g)] {
            let h = decode(&bytes).unwrap();
            assert!(h.vertex_time(VertexId(0)).is_nan());
            assert_eq!(
                h.vprop(VertexId(0), keys::WAIT_TIME).unwrap().as_f64(),
                Some(f64::NEG_INFINITY)
            );
            let xs = h.vprop(VertexId(0), keys::TIME_PER_PROC).unwrap();
            let xs = xs.as_f64_slice().unwrap();
            assert_eq!(xs[0], f64::INFINITY);
            assert!(xs[1].is_nan());
        }
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(decode(b"nope"), Err(DecodeError::BadMagic)));
        assert!(matches!(decode(b""), Err(DecodeError::BadMagic)));
    }

    #[test]
    fn truncation_rejected() {
        for bytes in [encode(&sample()), encode_v1(&sample())] {
            for cut in [5, 10, bytes.len() / 2, bytes.len() - 1] {
                let err = decode(&bytes[..cut]).unwrap_err();
                assert!(
                    matches!(err, DecodeError::Truncated | DecodeError::BadIndex),
                    "cut at {cut} gave {err:?}"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        for mut bytes in [encode(&sample()), encode_v1(&sample())] {
            bytes.push(0);
            assert!(matches!(decode(&bytes), Err(DecodeError::TrailingBytes)));
        }
        // Two concatenated snapshots are not one snapshot.
        let mut twice = encode(&sample());
        twice.extend_from_slice(&encode(&sample()));
        assert!(matches!(decode(&twice), Err(DecodeError::TrailingBytes)));
    }

    #[test]
    fn string_dedup_keeps_replicas_compact() {
        // Two graphs: one with 100 distinct names, one with 100 copies of
        // the same name. The latter must serialize much smaller.
        let mut distinct = Pag::new(ViewKind::TopDown, "d");
        let mut repeated = Pag::new(ViewKind::TopDown, "r");
        for i in 0..100 {
            distinct.add_vertex(
                VertexLabel::Compute,
                format!("some_rather_long_vertex_name_{i}").as_str(),
            );
            repeated.add_vertex(VertexLabel::Compute, "some_rather_long_vertex_name_0");
        }
        assert!(space_cost(&repeated) < space_cost(&distinct) / 2);
    }

    #[test]
    fn columnar_beats_v1_on_dense_metrics() {
        // A parallel-view-shaped graph where every vertex carries the same
        // four metrics: v2 stores four columns instead of 4N keyed entries.
        let mut g = Pag::new(ViewKind::Parallel, "dense");
        for i in 0..500 {
            let v = g.add_vertex(VertexLabel::Compute, "work");
            g.set_vprop(v, keys::TIME, i as f64);
            g.set_vprop(v, keys::SELF_TIME, i as f64 * 0.5);
            g.set_vprop(v, keys::COUNT, i as i64);
            g.set_vprop(v, keys::PROC, (i % 8) as i64);
        }
        let v2 = encode(&g).len();
        let v1 = encode_v1(&g).len();
        assert!(v2 < v1, "columnar {v2} >= row-wise {v1}");
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = Pag::new(ViewKind::TopDown, "empty");
        let h = decode(&encode(&g)).unwrap();
        assert_eq!(h.num_vertices(), 0);
        assert_eq!(h.num_edges(), 0);
        assert_eq!(h.root(), None);
        let h1 = decode(&encode_v1(&g)).unwrap();
        assert_eq!(h1.num_vertices(), 0);
    }
}
