//! Strongly-typed identifiers for PAG entities.
//!
//! All ids are thin wrappers over `u32` so that vertex/edge tables stay
//! dense and cache-friendly (a parallel-view PAG of a 128-rank run easily
//! reaches millions of vertices, cf. Table 2 of the paper).

/// Identifier of a vertex within one [`crate::Pag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId(pub u32);

/// Identifier of an edge within one [`crate::Pag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

/// MPI-like process (rank) identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub u32);

/// Thread identifier within a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u32);

impl VertexId {
    /// Index into dense vertex storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Index into dense edge storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ProcId {
    /// Index into per-process vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ThreadId {
    /// Index into per-thread vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for VertexId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl std::fmt::Display for EdgeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl std::fmt::Display for ProcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_indexable() {
        assert!(VertexId(1) < VertexId(2));
        assert_eq!(VertexId(7).index(), 7);
        assert_eq!(EdgeId(3).index(), 3);
        assert_eq!(ProcId(0).index(), 0);
        assert_eq!(ThreadId(9).index(), 9);
    }

    #[test]
    fn ids_display_compactly() {
        assert_eq!(VertexId(4).to_string(), "v4");
        assert_eq!(EdgeId(4).to_string(), "e4");
        assert_eq!(ProcId(4).to_string(), "p4");
        assert_eq!(ThreadId(4).to_string(), "t4");
    }
}
