//! Columnar (SoA) metric storage with interned keys.
//!
//! Every pass touches vertex metrics in its hot loop, so metrics no longer
//! live in per-vertex [`PropMap`](crate::PropMap) association lists keyed by
//! strings. Instead each numeric key is interned into a dense [`KeyId`] and
//! its values live in one *column* per key: a `Vec<f64>` plus a presence
//! bitmap for scalars, a `Vec<Option<Arc<[f64]>>>` for per-process vectors.
//! A metric read is then two array indexings — no string comparison, no
//! per-vertex binary search — and a whole-column scan (`sum`, hotspot
//! ranking, NaN audits) is a linear walk over contiguous `f64`s.
//!
//! Key space: the well-known numeric keys of [`crate::props::keys`] occupy a
//! fixed *global* table (stable `KeyId`s, see [`keys`]); user-defined keys
//! are interned per-PAG starting at [`GLOBAL_KEYS`]`.len()`. String-valued
//! properties (names, debug info) stay in the per-vertex string `PropMap`.

use std::collections::HashMap;
use std::sync::Arc;

/// Interned metric key: a dense index into a PAG's metric columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeyId(pub u32);

impl KeyId {
    /// The key's column index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True if this key is one of the well-known global keys (same id in
    /// every PAG); false for per-PAG user keys.
    #[inline]
    pub fn is_global(self) -> bool {
        (self.0 as usize) < GLOBAL_KEYS.len()
    }
}

impl std::fmt::Display for KeyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// Value shape of a metric key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Scalar floating-point measurement.
    F64,
    /// Scalar integer counter (stored as `f64`, surfaced as
    /// [`PropValue::Int`](crate::PropValue::Int) by the compat shim).
    I64,
    /// Dense per-process / per-sample vector.
    VecF64,
}

use crate::props::keys as skeys;

/// The global key table: wire name and kind per well-known numeric key.
/// Order defines the stable `KeyId` values in [`keys`] — append only.
pub const GLOBAL_KEYS: &[(&str, MetricKind)] = &[
    (skeys::TIME, MetricKind::F64),
    (skeys::SELF_TIME, MetricKind::F64),
    (skeys::COUNT, MetricKind::I64),
    (skeys::PMU_INSTRUCTIONS, MetricKind::F64),
    (skeys::PMU_CYCLES, MetricKind::F64),
    (skeys::PMU_CACHE_MISSES, MetricKind::F64),
    (skeys::COMM_BYTES, MetricKind::I64),
    (skeys::COMM_TIME, MetricKind::F64),
    (skeys::WAIT_TIME, MetricKind::F64),
    (skeys::PROC, MetricKind::I64),
    (skeys::THREAD, MetricKind::I64),
    (skeys::TOPDOWN_VERTEX, MetricKind::I64),
    (skeys::IMBALANCE, MetricKind::F64),
    (skeys::DIFF_TIME, MetricKind::F64),
    (skeys::DROPPED_SAMPLES, MetricKind::I64),
    (skeys::DROPPED_SPANS, MetricKind::I64),
    (skeys::COMPLETENESS, MetricKind::F64),
    (skeys::TIME_PER_PROC, MetricKind::VecF64),
    (skeys::BYTES_PER_PROC, MetricKind::VecF64),
    (skeys::WAIT_PER_PROC, MetricKind::VecF64),
    (skeys::COMPLETENESS_PER_PROC, MetricKind::VecF64),
];

/// Typed ids for the well-known metric keys. Same order as [`GLOBAL_KEYS`].
pub mod keys {
    use super::KeyId;

    /// Inclusive execution time in seconds.
    pub const TIME: KeyId = KeyId(0);
    /// Exclusive (self) execution time in seconds.
    pub const SELF_TIME: KeyId = KeyId(1);
    /// Number of times the snippet was entered.
    pub const COUNT: KeyId = KeyId(2);
    /// Estimated instruction count (PMU model).
    pub const PMU_INSTRUCTIONS: KeyId = KeyId(3);
    /// Estimated cycle count (PMU model).
    pub const PMU_CYCLES: KeyId = KeyId(4);
    /// Estimated cache misses (PMU model).
    pub const PMU_CACHE_MISSES: KeyId = KeyId(5);
    /// Total bytes communicated by a comm call vertex.
    pub const COMM_BYTES: KeyId = KeyId(6);
    /// Exact aggregate operation time of a comm call vertex.
    pub const COMM_TIME: KeyId = KeyId(7);
    /// Time spent waiting (blocked) inside a comm/lock call.
    pub const WAIT_TIME: KeyId = KeyId(8);
    /// Process (rank) a parallel-view vertex belongs to.
    pub const PROC: KeyId = KeyId(9);
    /// Thread a parallel-view vertex belongs to.
    pub const THREAD: KeyId = KeyId(10);
    /// Id of the corresponding top-down vertex (parallel view only).
    pub const TOPDOWN_VERTEX: KeyId = KeyId(11);
    /// Imbalance score attached by the imbalance-analysis pass.
    pub const IMBALANCE: KeyId = KeyId(12);
    /// Per-metric difference attached by the differential-analysis pass.
    pub const DIFF_TIME: KeyId = KeyId(13);
    /// Profiling samples lost at this vertex (degraded collection).
    pub const DROPPED_SAMPLES: KeyId = KeyId(14);
    /// Observation spans lost to the recorder's span cap.
    pub const DROPPED_SPANS: KeyId = KeyId(15);
    /// Fraction of fired samples actually recorded, in `[0, 1]`.
    pub const COMPLETENESS: KeyId = KeyId(16);
    /// Per-process inclusive time vector (top-down view only).
    pub const TIME_PER_PROC: KeyId = KeyId(17);
    /// Per-process communicated-bytes vector (comm vertices, top-down).
    pub const BYTES_PER_PROC: KeyId = KeyId(18);
    /// Per-process wait-time vector (comm vertices, top-down).
    pub const WAIT_PER_PROC: KeyId = KeyId(19);
    /// Per-process completeness vector (root vertex of a degraded run).
    pub const COMPLETENESS_PER_PROC: KeyId = KeyId(20);
}

fn global_index(name: &str) -> Option<u32> {
    static INDEX: std::sync::OnceLock<HashMap<&'static str, u32>> = std::sync::OnceLock::new();
    INDEX
        .get_or_init(|| {
            GLOBAL_KEYS
                .iter()
                .enumerate()
                .map(|(i, (n, _))| (*n, i as u32))
                .collect()
        })
        .get(name)
        .copied()
}

/// Per-PAG key interner: global keys plus user keys first-seen in this PAG.
#[derive(Debug, Clone, Default)]
pub struct KeyTable {
    user: Vec<Arc<str>>,
    index: HashMap<Arc<str>, u32>,
}

impl KeyTable {
    /// Empty table (global keys are always resolvable).
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of interned keys (global + user).
    pub fn len(&self) -> usize {
        GLOBAL_KEYS.len() + self.user.len()
    }

    /// True if no user keys have been interned.
    pub fn is_empty(&self) -> bool {
        self.user.is_empty()
    }

    /// Resolve a wire name to its `KeyId` without interning.
    pub fn resolve(&self, name: &str) -> Option<KeyId> {
        if let Some(i) = global_index(name) {
            return Some(KeyId(i));
        }
        self.index
            .get(name)
            .map(|&i| KeyId(GLOBAL_KEYS.len() as u32 + i))
    }

    /// Resolve a wire name, interning it as a user key if unknown.
    pub fn intern(&mut self, name: &str) -> KeyId {
        if let Some(k) = self.resolve(name) {
            return k;
        }
        let arc: Arc<str> = Arc::from(name);
        let i = self.user.len() as u32;
        self.user.push(arc.clone());
        self.index.insert(arc, i);
        KeyId(GLOBAL_KEYS.len() as u32 + i)
    }

    /// Wire name of a key.
    pub fn name(&self, k: KeyId) -> &str {
        let i = k.index();
        if i < GLOBAL_KEYS.len() {
            GLOBAL_KEYS[i].0
        } else {
            &self.user[i - GLOBAL_KEYS.len()]
        }
    }

    /// User keys in interning order (ids `GLOBAL_KEYS.len()..`).
    pub fn user_names(&self) -> impl Iterator<Item = &str> {
        self.user.iter().map(|s| s.as_ref())
    }
}

/// One scalar metric column: dense values plus a presence bitmap (NaN is a
/// legal value — absence is tracked explicitly, never by sentinel).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScalarCol {
    data: Vec<f64>,
    present: Vec<u64>,
    /// True if this column holds an integer-kinded metric; the compat shim
    /// then surfaces values as [`PropValue::Int`](crate::PropValue::Int).
    pub is_int: bool,
}

impl ScalarCol {
    #[inline]
    fn has(&self, row: usize) -> bool {
        // `get` rather than indexing: a presence bitmap shorter than the
        // value vector (audit fault `PresenceLen`) must read as "absent",
        // not panic — the checker still has to walk such a store to
        // report it.
        row < self.data.len()
            && self
                .present
                .get(row >> 6)
                .is_some_and(|w| w & (1u64 << (row & 63)) != 0)
    }

    #[inline]
    fn grow_to(&mut self, row: usize) {
        if row >= self.data.len() {
            self.data.resize(row + 1, 0.0);
            self.present.resize(row / 64 + 1, 0);
        }
    }

    /// Raw value slice (absent rows hold `0.0`; shorter than the row count
    /// when the column tail was never written).
    pub fn values(&self) -> &[f64] {
        &self.data
    }
}

/// One vector metric column.
#[derive(Debug, Clone, Default, PartialEq)]
struct VecCol {
    data: Vec<Option<Arc<[f64]>>>,
}

/// A structural fault in the columnar store, found by
/// [`MetricColumns::audit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnFault {
    /// A scalar column's presence bitmap has the wrong number of words
    /// for its value count (memory corruption or a buggy mutation path).
    PresenceLen {
        /// The affected column.
        key: KeyId,
        /// Number of stored values.
        data_len: usize,
        /// Number of 64-bit presence words actually held.
        present_words: usize,
    },
    /// A column exists at an index the owning key table never interned.
    UnknownKey {
        /// The orphaned column id.
        key: KeyId,
        /// `"scalar"` or `"vector"`.
        column: &'static str,
    },
}

/// Columnar metric storage for one id space (vertices or edges) of a PAG.
#[derive(Debug, Clone, Default)]
pub struct MetricColumns {
    rows: usize,
    scalars: Vec<Option<ScalarCol>>,
    vecs: Vec<Option<VecCol>>,
}

impl MetricColumns {
    /// Empty storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows (== vertices or edges of the owning PAG).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Append one all-absent row (called by `add_vertex`/`add_edge`).
    /// Columns grow lazily on write, so this is O(1).
    #[inline]
    pub fn push_row(&mut self) {
        self.rows += 1;
    }

    #[inline]
    fn scalar(&self, key: KeyId) -> Option<&ScalarCol> {
        self.scalars.get(key.index())?.as_ref()
    }

    fn scalar_mut(&mut self, key: KeyId, is_int: bool) -> &mut ScalarCol {
        let i = key.index();
        if i >= self.scalars.len() {
            self.scalars.resize(i + 1, None);
        }
        self.scalars[i].get_or_insert_with(|| ScalarCol {
            is_int,
            ..ScalarCol::default()
        })
    }

    /// Scalar read: `None` if the metric was never set on this row.
    #[inline]
    pub fn get(&self, key: KeyId, row: usize) -> Option<f64> {
        let col = self.scalar(key)?;
        col.has(row).then(|| col.data[row])
    }

    /// True if a scalar value is present on this row.
    #[inline]
    pub fn has(&self, key: KeyId, row: usize) -> bool {
        self.scalar(key).is_some_and(|c| c.has(row))
    }

    /// Scalar write (replaces any vector value under the same key).
    pub fn set(&mut self, key: KeyId, row: usize, value: f64, is_int: bool) {
        debug_assert!(row < self.rows, "metric row {row} out of range");
        if let Some(Some(vc)) = self.vecs.get_mut(key.index()) {
            if row < vc.data.len() {
                vc.data[row] = None;
            }
        }
        let col = self.scalar_mut(key, is_int);
        col.grow_to(row);
        col.data[row] = value;
        col.present[row >> 6] |= 1u64 << (row & 63);
        col.is_int = is_int;
    }

    /// Add `delta` to a scalar (absent counts as zero).
    pub fn add(&mut self, key: KeyId, row: usize, delta: f64, is_int: bool) {
        let cur = self.get(key, row).unwrap_or(0.0);
        self.set(key, row, cur + delta, is_int);
    }

    /// Vector read.
    #[inline]
    pub fn get_vec(&self, key: KeyId, row: usize) -> Option<&Arc<[f64]>> {
        self.vecs
            .get(key.index())?
            .as_ref()?
            .data
            .get(row)?
            .as_ref()
    }

    /// Vector write (replaces any scalar value under the same key).
    pub fn set_vec(&mut self, key: KeyId, row: usize, value: Arc<[f64]>) {
        debug_assert!(row < self.rows, "metric row {row} out of range");
        if let Some(Some(sc)) = self.scalars.get_mut(key.index()) {
            if row < sc.data.len() {
                sc.present[row >> 6] &= !(1u64 << (row & 63));
            }
        }
        let i = key.index();
        if i >= self.vecs.len() {
            self.vecs.resize(i + 1, None);
        }
        let vc = self.vecs[i].get_or_insert_with(VecCol::default);
        if row >= vc.data.len() {
            vc.data.resize(row + 1, None);
        }
        vc.data[row] = Some(value);
    }

    /// Remove any value (scalar or vector) under `key` on `row`; true if
    /// something was removed.
    pub fn remove(&mut self, key: KeyId, row: usize) -> bool {
        let mut removed = false;
        if let Some(Some(sc)) = self.scalars.get_mut(key.index()) {
            if sc.has(row) {
                sc.present[row >> 6] &= !(1u64 << (row & 63));
                sc.data[row] = 0.0;
                removed = true;
            }
        }
        if let Some(Some(vc)) = self.vecs.get_mut(key.index()) {
            if row < vc.data.len() && vc.data[row].take().is_some() {
                removed = true;
            }
        }
        removed
    }

    /// Sum of a scalar column over present rows (columnar fast path).
    pub fn sum(&self, key: KeyId) -> f64 {
        match self.scalar(key) {
            Some(col) => col
                .data
                .iter()
                .enumerate()
                .filter(|&(i, _)| col.present[i >> 6] & (1u64 << (i & 63)) != 0)
                .map(|(_, &x)| x)
                .sum(),
            None => 0.0,
        }
    }

    /// Direct access to a scalar column, if it exists.
    pub fn scalar_col(&self, key: KeyId) -> Option<&ScalarCol> {
        self.scalar(key)
    }

    /// Visit every present scalar value as `(key, is_int, row, value)`, in
    /// (key, row) order. Used by serialization and metric audits.
    pub fn for_each_scalar(&self, mut f: impl FnMut(KeyId, bool, usize, f64)) {
        for (ki, col) in self.scalars.iter().enumerate() {
            let Some(col) = col else { continue };
            for (row, &x) in col.data.iter().enumerate() {
                if col.present[row >> 6] & (1u64 << (row & 63)) != 0 {
                    f(KeyId(ki as u32), col.is_int, row, x);
                }
            }
        }
    }

    /// Visit every present vector value as `(key, row, values)`, in
    /// (key, row) order.
    pub fn for_each_vec(&self, mut f: impl FnMut(KeyId, usize, &Arc<[f64]>)) {
        for (ki, col) in self.vecs.iter().enumerate() {
            let Some(col) = col else { continue };
            for (row, v) in col.data.iter().enumerate() {
                if let Some(v) = v {
                    f(KeyId(ki as u32), row, v);
                }
            }
        }
    }

    /// Copy every metric of `src_row` in `src` (keyed by `src_keys`) onto
    /// `dst_row` of `self` (interning user keys into `dst_keys`). Global
    /// keys map 1:1; user keys are re-resolved by name.
    pub fn copy_row(
        &mut self,
        dst_keys: &mut KeyTable,
        dst_row: usize,
        src: &MetricColumns,
        src_keys: &KeyTable,
        src_row: usize,
    ) {
        for (ki, col) in src.scalars.iter().enumerate() {
            let Some(col) = col else { continue };
            let sk = KeyId(ki as u32);
            if col.has(src_row) {
                let dk = if sk.is_global() {
                    sk
                } else {
                    dst_keys.intern(src_keys.name(sk))
                };
                self.set(dk, dst_row, col.data[src_row], col.is_int);
            }
        }
        for (ki, col) in src.vecs.iter().enumerate() {
            let Some(col) = col else { continue };
            let sk = KeyId(ki as u32);
            if let Some(Some(v)) = col.data.get(src_row) {
                let dk = if sk.is_global() {
                    sk
                } else {
                    dst_keys.intern(src_keys.name(sk))
                };
                self.set_vec(dk, dst_row, v.clone());
            }
        }
    }

    /// Audit the store's structural invariants against a key table of
    /// `known_keys` entries. Returns every fault found; used by
    /// `verify::check_pag` (PF0111 / PF0112).
    pub fn audit(&self, known_keys: usize) -> Vec<ColumnFault> {
        let mut faults = Vec::new();
        for (ki, col) in self.scalars.iter().enumerate() {
            let Some(col) = col else { continue };
            let expected = col.data.len().div_ceil(64);
            if col.present.len() != expected {
                faults.push(ColumnFault::PresenceLen {
                    key: KeyId(ki as u32),
                    data_len: col.data.len(),
                    present_words: col.present.len(),
                });
            }
            if ki >= known_keys {
                faults.push(ColumnFault::UnknownKey {
                    key: KeyId(ki as u32),
                    column: "scalar",
                });
            }
        }
        for (ki, col) in self.vecs.iter().enumerate() {
            if col.is_some() && ki >= known_keys {
                faults.push(ColumnFault::UnknownKey {
                    key: KeyId(ki as u32),
                    column: "vector",
                });
            }
        }
        faults
    }

    /// Test-only hook: truncate a scalar column's presence bitmap so the
    /// PF0111 invariant check has something to fire on. Hidden because
    /// no real code path can produce this state.
    #[doc(hidden)]
    pub fn corrupt_presence_for_test(&mut self, key: KeyId) {
        if let Some(Some(col)) = self.scalars.get_mut(key.index()) {
            col.present.pop();
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn mem_footprint(&self) -> usize {
        use std::mem::size_of;
        let mut bytes = self.scalars.capacity() * size_of::<Option<ScalarCol>>()
            + self.vecs.capacity() * size_of::<Option<VecCol>>();
        for col in self.scalars.iter().flatten() {
            bytes += col.data.capacity() * size_of::<f64>();
            bytes += col.present.capacity() * size_of::<u64>();
        }
        for col in self.vecs.iter().flatten() {
            bytes += col.data.capacity() * size_of::<Option<Arc<[f64]>>>();
            bytes += col
                .data
                .iter()
                .flatten()
                .map(|v| v.len() * size_of::<f64>())
                .sum::<usize>();
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_constants_match_table() {
        // The typed constants in `keys` must agree with GLOBAL_KEYS order.
        let pairs = [
            (keys::TIME, skeys::TIME),
            (keys::SELF_TIME, skeys::SELF_TIME),
            (keys::COUNT, skeys::COUNT),
            (keys::PMU_INSTRUCTIONS, skeys::PMU_INSTRUCTIONS),
            (keys::PMU_CYCLES, skeys::PMU_CYCLES),
            (keys::PMU_CACHE_MISSES, skeys::PMU_CACHE_MISSES),
            (keys::COMM_BYTES, skeys::COMM_BYTES),
            (keys::COMM_TIME, skeys::COMM_TIME),
            (keys::WAIT_TIME, skeys::WAIT_TIME),
            (keys::PROC, skeys::PROC),
            (keys::THREAD, skeys::THREAD),
            (keys::TOPDOWN_VERTEX, skeys::TOPDOWN_VERTEX),
            (keys::IMBALANCE, skeys::IMBALANCE),
            (keys::DIFF_TIME, skeys::DIFF_TIME),
            (keys::DROPPED_SAMPLES, skeys::DROPPED_SAMPLES),
            (keys::DROPPED_SPANS, skeys::DROPPED_SPANS),
            (keys::COMPLETENESS, skeys::COMPLETENESS),
            (keys::TIME_PER_PROC, skeys::TIME_PER_PROC),
            (keys::BYTES_PER_PROC, skeys::BYTES_PER_PROC),
            (keys::WAIT_PER_PROC, skeys::WAIT_PER_PROC),
            (keys::COMPLETENESS_PER_PROC, skeys::COMPLETENESS_PER_PROC),
        ];
        assert_eq!(pairs.len(), GLOBAL_KEYS.len());
        for (id, name) in pairs {
            assert_eq!(GLOBAL_KEYS[id.index()].0, name, "key {id} out of order");
            assert!(id.is_global());
        }
    }

    #[test]
    fn intern_resolves_global_then_user() {
        let mut t = KeyTable::new();
        assert_eq!(t.resolve("time"), Some(keys::TIME));
        assert_eq!(t.resolve("custom"), None);
        let k = t.intern("custom");
        assert_eq!(k.index(), GLOBAL_KEYS.len());
        assert!(!k.is_global());
        assert_eq!(t.intern("custom"), k);
        assert_eq!(t.resolve("custom"), Some(k));
        assert_eq!(t.name(k), "custom");
        assert_eq!(t.name(keys::WAIT_TIME), "wait-time");
        assert_eq!(t.len(), GLOBAL_KEYS.len() + 1);
    }

    #[test]
    fn scalar_presence_and_nan() {
        let mut c = MetricColumns::new();
        for _ in 0..130 {
            c.push_row();
        }
        assert_eq!(c.get(keys::TIME, 0), None);
        c.set(keys::TIME, 129, f64::NAN, false);
        c.set(keys::TIME, 0, 1.5, false);
        assert!(c.get(keys::TIME, 129).unwrap().is_nan());
        assert_eq!(c.get(keys::TIME, 1), None); // 0.0-filled gap stays absent
        assert_eq!(c.get(keys::TIME, 0), Some(1.5));
        assert!(c.has(keys::TIME, 129));
        assert!(!c.has(keys::TIME, 64));
        c.add(keys::COUNT, 5, 2.0, true);
        c.add(keys::COUNT, 5, 3.0, true);
        assert_eq!(c.get(keys::COUNT, 5), Some(5.0));
        assert!(c.scalar_col(keys::COUNT).unwrap().is_int);
    }

    #[test]
    fn vec_and_scalar_replace_each_other() {
        let mut c = MetricColumns::new();
        c.push_row();
        c.set(keys::TIME, 0, 1.0, false);
        c.set_vec(keys::TIME, 0, Arc::from(vec![1.0, 2.0].into_boxed_slice()));
        assert_eq!(c.get(keys::TIME, 0), None);
        assert_eq!(c.get_vec(keys::TIME, 0).unwrap().as_ref(), &[1.0, 2.0]);
        c.set(keys::TIME, 0, 3.0, false);
        assert_eq!(c.get_vec(keys::TIME, 0), None);
        assert_eq!(c.get(keys::TIME, 0), Some(3.0));
        assert!(c.remove(keys::TIME, 0));
        assert!(!c.remove(keys::TIME, 0));
        assert_eq!(c.get(keys::TIME, 0), None);
    }

    #[test]
    fn sum_skips_absent_rows() {
        let mut c = MetricColumns::new();
        for _ in 0..100 {
            c.push_row();
        }
        c.set(keys::TIME, 3, 1.0, false);
        c.set(keys::TIME, 97, 2.5, false);
        assert_eq!(c.sum(keys::TIME), 3.5);
        assert_eq!(c.sum(keys::WAIT_TIME), 0.0);
    }

    #[test]
    fn copy_row_remaps_user_keys() {
        let mut src_keys = KeyTable::new();
        let mut src = MetricColumns::new();
        src.push_row();
        src.push_row();
        let uk = src_keys.intern("user-metric");
        src.set(keys::TIME, 1, 4.0, false);
        src.set(uk, 1, 7.0, false);
        src.set_vec(
            keys::TIME_PER_PROC,
            1,
            Arc::from(vec![1.0].into_boxed_slice()),
        );

        // Destination already interned a different user key, shifting ids.
        let mut dst_keys = KeyTable::new();
        dst_keys.intern("other");
        let mut dst = MetricColumns::new();
        dst.push_row();
        dst.copy_row(&mut dst_keys, 0, &src, &src_keys, 1);
        assert_eq!(dst.get(keys::TIME, 0), Some(4.0));
        let dk = dst_keys.resolve("user-metric").unwrap();
        assert_ne!(dk, uk);
        assert_eq!(dst.get(dk, 0), Some(7.0));
        assert_eq!(
            dst.get_vec(keys::TIME_PER_PROC, 0).unwrap().as_ref(),
            &[1.0]
        );
    }
}
