//! The Program Abstraction Graph data structure.

use std::sync::Arc;

use crate::ids::{EdgeId, VertexId};
use crate::label::{EdgeLabel, VertexLabel};
use crate::props::{keys, PropMap, PropValue};
use crate::ViewKind;

/// Data stored on one PAG vertex.
#[derive(Debug, Clone)]
pub struct VertexData {
    /// The kind of code snippet this vertex stands for.
    pub label: VertexLabel,
    /// Snippet name (function name, `loop_1.1`, `MPI_Send`, …). Shared so
    /// that parallel-view replicas do not duplicate the string.
    pub name: Arc<str>,
    /// Performance data and metadata.
    pub props: PropMap,
}

/// Data stored on one PAG edge.
#[derive(Debug, Clone)]
pub struct EdgeData {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// The relationship this edge encodes.
    pub label: EdgeLabel,
    /// Performance data (wait time, bytes, …).
    pub props: PropMap,
}

/// A Program Abstraction Graph: a directed property graph describing one
/// program execution (§3.1).
#[derive(Debug, Clone)]
pub struct Pag {
    view: ViewKind,
    name: String,
    num_procs: u32,
    threads_per_proc: u32,
    root: Option<VertexId>,
    vertices: Vec<VertexData>,
    edges: Vec<EdgeData>,
    out_adj: Vec<Vec<EdgeId>>,
    in_adj: Vec<Vec<EdgeId>>,
}

impl Pag {
    /// Create an empty PAG of the given view kind.
    pub fn new(view: ViewKind, name: impl Into<String>) -> Self {
        Pag {
            view,
            name: name.into(),
            num_procs: 1,
            threads_per_proc: 1,
            root: None,
            vertices: Vec::new(),
            edges: Vec::new(),
            out_adj: Vec::new(),
            in_adj: Vec::new(),
        }
    }

    /// Pre-allocate space for `v` vertices and `e` edges.
    pub fn with_capacity(view: ViewKind, name: impl Into<String>, v: usize, e: usize) -> Self {
        let mut g = Pag::new(view, name);
        g.vertices.reserve(v);
        g.out_adj.reserve(v);
        g.in_adj.reserve(v);
        g.edges.reserve(e);
        g
    }

    /// Which view this PAG represents.
    pub fn view(&self) -> ViewKind {
        self.view
    }

    /// Program / run identifier the PAG was built from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of processes (ranks) in the run this PAG describes.
    pub fn num_procs(&self) -> u32 {
        self.num_procs
    }

    /// Set the number of processes of the described run.
    pub fn set_num_procs(&mut self, n: u32) {
        self.num_procs = n;
    }

    /// Threads per process in the run this PAG describes.
    pub fn threads_per_proc(&self) -> u32 {
        self.threads_per_proc
    }

    /// Set the number of threads per process of the described run.
    pub fn set_threads_per_proc(&mut self, n: u32) {
        self.threads_per_proc = n;
    }

    /// The designated root vertex (program entry), if set.
    pub fn root(&self) -> Option<VertexId> {
        self.root
    }

    /// Designate `v` as the root vertex.
    pub fn set_root(&mut self, v: VertexId) {
        debug_assert!(v.index() < self.vertices.len());
        self.root = Some(v);
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add a vertex; returns its id.
    pub fn add_vertex(&mut self, label: VertexLabel, name: impl Into<Arc<str>>) -> VertexId {
        let id = VertexId(self.vertices.len() as u32);
        self.vertices.push(VertexData {
            label,
            name: name.into(),
            props: PropMap::new(),
        });
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Add an edge; returns its id.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId, label: EdgeLabel) -> EdgeId {
        debug_assert!(src.index() < self.vertices.len());
        debug_assert!(dst.index() < self.vertices.len());
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeData {
            src,
            dst,
            label,
            props: PropMap::new(),
        });
        self.out_adj[src.index()].push(id);
        self.in_adj[dst.index()].push(id);
        id
    }

    /// Immutable access to a vertex.
    #[inline]
    pub fn vertex(&self, v: VertexId) -> &VertexData {
        &self.vertices[v.index()]
    }

    /// Mutable access to a vertex.
    #[inline]
    pub fn vertex_mut(&mut self, v: VertexId) -> &mut VertexData {
        &mut self.vertices[v.index()]
    }

    /// Immutable access to an edge.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &EdgeData {
        &self.edges[e.index()]
    }

    /// Mutable access to an edge.
    #[inline]
    pub fn edge_mut(&mut self, e: EdgeId) -> &mut EdgeData {
        &mut self.edges[e.index()]
    }

    /// Iterate over all vertex ids.
    pub fn vertex_ids(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vertices.len() as u32).map(VertexId)
    }

    /// Iterate over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Outgoing edges of `v`.
    #[inline]
    pub fn out_edges(&self, v: VertexId) -> &[EdgeId] {
        &self.out_adj[v.index()]
    }

    /// Incoming edges of `v`.
    #[inline]
    pub fn in_edges(&self, v: VertexId) -> &[EdgeId] {
        &self.in_adj[v.index()]
    }

    /// Successor vertices of `v` (one entry per out-edge).
    pub fn out_neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.out_adj[v.index()]
            .iter()
            .map(move |&e| self.edges[e.index()].dst)
    }

    /// Predecessor vertices of `v` (one entry per in-edge).
    pub fn in_neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.in_adj[v.index()]
            .iter()
            .map(move |&e| self.edges[e.index()].src)
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_adj[v.index()].len()
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_adj[v.index()].len()
    }

    /// Convenience: the `name` property if set, otherwise the vertex name.
    pub fn vertex_name(&self, v: VertexId) -> &str {
        &self.vertex(v).name
    }

    /// Convenience: inclusive time of a vertex (0.0 if not recorded).
    pub fn vertex_time(&self, v: VertexId) -> f64 {
        self.vertex(v).props.get_f64(keys::TIME)
    }

    /// All vertices whose name matches a glob pattern (`*` wildcard),
    /// e.g. `MPI_*` selects communication calls.
    pub fn find_by_name(&self, pattern: &str) -> Vec<VertexId> {
        self.vertex_ids()
            .filter(|&v| glob_match(pattern, &self.vertex(v).name))
            .collect()
    }

    /// All vertices with a given label.
    pub fn find_by_label(&self, label: VertexLabel) -> Vec<VertexId> {
        self.vertex_ids()
            .filter(|&v| self.vertex(v).label == label)
            .collect()
    }

    /// Sum of inclusive `time` over vertices that carry it. On the top-down
    /// view this over-counts nested snippets; use the root time for total
    /// program time instead.
    pub fn sum_time(&self) -> f64 {
        self.vertices
            .iter()
            .map(|v| v.props.get_f64(keys::TIME))
            .sum()
    }

    /// Total program time: the root vertex's inclusive time.
    pub fn total_time(&self) -> f64 {
        self.root.map(|r| self.vertex_time(r)).unwrap_or(0.0)
    }

    /// Set a property on a vertex (builder-style helper).
    pub fn set_vprop(&mut self, v: VertexId, key: &str, value: impl Into<PropValue>) {
        self.vertex_mut(v).props.set(key, value);
    }

    /// Read a property from a vertex.
    pub fn vprop(&self, v: VertexId, key: &str) -> Option<&PropValue> {
        self.vertex(v).props.get(key)
    }

    /// Extract the subgraph induced by `vertices`: the selected vertices
    /// (with their labels and properties) plus every edge whose both
    /// endpoints are selected. Returns the new PAG and the old→new vertex
    /// id mapping. This is the PAG-transforming flavour of the low-level
    /// graph-operation API (§4.3.1) — e.g. cutting a suspicious region
    /// out of a parallel view for focused analysis or visualization.
    pub fn induced_subgraph(
        &self,
        vertices: &[VertexId],
    ) -> (Pag, std::collections::HashMap<VertexId, VertexId>) {
        let mut out = Pag::with_capacity(
            self.view,
            format!("{}:sub", self.name),
            vertices.len(),
            vertices.len(),
        );
        out.set_num_procs(self.num_procs);
        out.set_threads_per_proc(self.threads_per_proc);
        let mut map = std::collections::HashMap::with_capacity(vertices.len());
        for &v in vertices {
            if map.contains_key(&v) {
                continue;
            }
            let data = self.vertex(v);
            let nv = out.add_vertex(data.label, data.name.clone());
            out.vertex_mut(nv).props = data.props.clone();
            map.insert(v, nv);
        }
        for e in self.edge_ids() {
            let ed = self.edge(e);
            if let (Some(&ns), Some(&nd)) = (map.get(&ed.src), map.get(&ed.dst)) {
                let ne = out.add_edge(ns, nd, ed.label);
                out.edge_mut(ne).props = ed.props.clone();
            }
        }
        if let Some(r) = self.root {
            if let Some(&nr) = map.get(&r) {
                out.set_root(nr);
            }
        }
        (out, map)
    }

    /// Check internal consistency: every edge endpoint in range, the
    /// adjacency lists mirroring the edge table exactly, and the root (if
    /// set) in range. Returns a list of human-readable problems (empty =
    /// valid). Used after deserialization and in tests.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let nv = self.vertices.len();
        for e in self.edge_ids() {
            let ed = self.edge(e);
            if ed.src.index() >= nv || ed.dst.index() >= nv {
                problems.push(format!("edge {e} endpoint out of range"));
                continue;
            }
            if !self.out_adj[ed.src.index()].contains(&e) {
                problems.push(format!("edge {e} missing from out-adjacency of {}", ed.src));
            }
            if !self.in_adj[ed.dst.index()].contains(&e) {
                problems.push(format!("edge {e} missing from in-adjacency of {}", ed.dst));
            }
        }
        let adj_total: usize = self.out_adj.iter().map(Vec::len).sum();
        if adj_total != self.edges.len() {
            problems.push(format!(
                "out-adjacency holds {adj_total} entries for {} edges",
                self.edges.len()
            ));
        }
        let in_total: usize = self.in_adj.iter().map(Vec::len).sum();
        if in_total != self.edges.len() {
            problems.push(format!(
                "in-adjacency holds {in_total} entries for {} edges",
                self.edges.len()
            ));
        }
        if let Some(r) = self.root {
            if r.index() >= nv {
                problems.push(format!("root {r} out of range"));
            }
        }
        problems
    }

    /// Approximate in-memory footprint in bytes (used for space-cost
    /// reporting alongside the serialized size).
    pub fn mem_footprint(&self) -> usize {
        use std::mem::size_of;
        let mut bytes = size_of::<Self>();
        bytes += self.vertices.capacity() * size_of::<VertexData>();
        bytes += self.edges.capacity() * size_of::<EdgeData>();
        for adj in [&self.out_adj, &self.in_adj] {
            bytes += adj.capacity() * size_of::<Vec<EdgeId>>();
            bytes += adj
                .iter()
                .map(|v| v.capacity() * size_of::<EdgeId>())
                .sum::<usize>();
        }
        bytes
    }
}

/// Simple glob matcher supporting `*` (any substring) used by name filters.
pub fn glob_match(pattern: &str, text: &str) -> bool {
    // Dynamic-programming match over pattern segments split on '*'.
    if !pattern.contains('*') {
        return pattern == text;
    }
    let segments: Vec<&str> = pattern.split('*').collect();
    let mut pos = 0usize;
    for (i, seg) in segments.iter().enumerate() {
        if seg.is_empty() {
            continue;
        }
        if i == 0 {
            if !text.starts_with(seg) {
                return false;
            }
            pos = seg.len();
        } else if i == segments.len() - 1 {
            let tail = &text[pos.min(text.len())..];
            if !tail.ends_with(seg) {
                return false;
            }
            // Ensure the final segment does not overlap an earlier match.
            if text.len() < pos + seg.len() {
                return false;
            }
            pos = text.len();
        } else {
            match text[pos.min(text.len())..].find(seg) {
                Some(off) => pos = pos + off + seg.len(),
                None => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{CallKind, CommKind};

    fn tiny() -> Pag {
        let mut g = Pag::new(ViewKind::TopDown, "tiny");
        let main = g.add_vertex(VertexLabel::Function, "main");
        let l = g.add_vertex(VertexLabel::Loop, "loop_1");
        let c = g.add_vertex(VertexLabel::Call(CallKind::Comm), "MPI_Send");
        g.add_edge(main, l, EdgeLabel::IntraProc);
        g.add_edge(l, c, EdgeLabel::IntraProc);
        g.set_root(main);
        g
    }

    #[test]
    fn build_and_navigate() {
        let g = tiny();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        let main = VertexId(0);
        assert_eq!(g.out_degree(main), 1);
        assert_eq!(g.in_degree(main), 0);
        let succ: Vec<_> = g.out_neighbors(main).collect();
        assert_eq!(succ, vec![VertexId(1)]);
        let pred: Vec<_> = g.in_neighbors(VertexId(2)).collect();
        assert_eq!(pred, vec![VertexId(1)]);
        assert_eq!(g.vertex_name(VertexId(2)), "MPI_Send");
    }

    #[test]
    fn props_roundtrip_through_graph() {
        let mut g = tiny();
        g.set_vprop(VertexId(0), keys::TIME, 12.5);
        assert_eq!(g.vertex_time(VertexId(0)), 12.5);
        assert_eq!(g.total_time(), 12.5);
        assert!(g.vprop(VertexId(1), keys::TIME).is_none());
    }

    #[test]
    fn find_by_name_globs() {
        let g = tiny();
        assert_eq!(g.find_by_name("MPI_*"), vec![VertexId(2)]);
        assert_eq!(g.find_by_name("main"), vec![VertexId(0)]);
        assert_eq!(g.find_by_name("loop*"), vec![VertexId(1)]);
        assert!(g.find_by_name("nothing*").is_empty());
    }

    #[test]
    fn find_by_label_works() {
        let g = tiny();
        assert_eq!(g.find_by_label(VertexLabel::Loop), vec![VertexId(1)]);
        assert_eq!(
            g.find_by_label(VertexLabel::Call(CallKind::Comm)),
            vec![VertexId(2)]
        );
    }

    #[test]
    fn glob_edge_cases() {
        assert!(glob_match("*", "anything"));
        assert!(glob_match("*", ""));
        assert!(glob_match("MPI_*", "MPI_"));
        assert!(!glob_match("MPI_*", "MP"));
        assert!(glob_match("*_insert", "_M_realloc_insert"));
        assert!(glob_match("a*b*c", "aXXbYYc"));
        assert!(!glob_match("a*b*c", "aXXcYYb"));
        assert!(!glob_match("abc*abc", "abc")); // overlap must not match
        assert!(glob_match("exact", "exact"));
        assert!(!glob_match("exact", "exactly"));
    }

    #[test]
    fn edge_labels_recorded() {
        let mut g = tiny();
        let e = g.add_edge(
            VertexId(2),
            VertexId(2),
            EdgeLabel::InterProcess(CommKind::P2pAsync),
        );
        assert_eq!(g.edge(e).label, EdgeLabel::InterProcess(CommKind::P2pAsync));
        g.edge_mut(e).props.set(keys::COMM_BYTES, 1024i64);
        assert_eq!(
            g.edge(e).props.get(keys::COMM_BYTES).unwrap().as_i64(),
            Some(1024)
        );
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_and_props() {
        let mut g = tiny();
        g.set_vprop(VertexId(1), keys::TIME, 7.0);
        let (sub, map) = g.induced_subgraph(&[VertexId(1), VertexId(2)]);
        assert_eq!(sub.num_vertices(), 2);
        assert_eq!(sub.num_edges(), 1); // loop_1 → MPI_Send survives
        let nl = map[&VertexId(1)];
        assert_eq!(sub.vertex_name(nl), "loop_1");
        assert_eq!(sub.vertex_time(nl), 7.0);
        // Root (main) was not selected → absent.
        assert_eq!(sub.root(), None);
        assert!(sub.validate().is_empty());
    }

    #[test]
    fn induced_subgraph_dedups_and_keeps_root() {
        let g = tiny();
        let (sub, map) = g.induced_subgraph(&[VertexId(0), VertexId(0), VertexId(1)]);
        assert_eq!(sub.num_vertices(), 2);
        assert_eq!(sub.root(), Some(map[&VertexId(0)]));
        assert_eq!(sub.num_edges(), 1);
    }

    #[test]
    fn validate_accepts_well_formed_graphs() {
        assert!(tiny().validate().is_empty());
        assert!(Pag::new(ViewKind::TopDown, "empty").validate().is_empty());
    }

    #[test]
    fn mem_footprint_grows() {
        let g0 = Pag::new(ViewKind::TopDown, "empty");
        let g1 = tiny();
        assert!(g1.mem_footprint() > g0.mem_footprint());
    }
}
