//! The Program Abstraction Graph data structure.

use std::sync::Arc;

use crate::ids::{EdgeId, VertexId};
use crate::label::{EdgeLabel, VertexLabel};
use crate::metric::{self, KeyId, KeyTable, MetricColumns, MetricKind, GLOBAL_KEYS};
use crate::props::{PropMap, PropValue};
use crate::ViewKind;

/// Data stored on one PAG vertex. Numeric metrics live in the owning
/// [`Pag`]'s columnar storage — see [`Pag::metric`] — so this struct only
/// carries the label, the name, and string-valued properties.
#[derive(Debug, Clone)]
pub struct VertexData {
    /// The kind of code snippet this vertex stands for.
    pub label: VertexLabel,
    /// Snippet name (function name, `loop_1.1`, `MPI_Send`, …). Shared so
    /// that parallel-view replicas do not duplicate the string.
    pub name: Arc<str>,
    /// String-valued properties (debug info, comm info, rank status).
    pub(crate) sprops: PropMap,
}

/// Data stored on one PAG edge. Numeric metrics live in the owning
/// [`Pag`]'s columnar storage — see [`Pag::emetric`].
#[derive(Debug, Clone)]
pub struct EdgeData {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// The relationship this edge encodes.
    pub label: EdgeLabel,
    /// String-valued properties.
    pub(crate) sprops: PropMap,
}

/// A Program Abstraction Graph: a directed property graph describing one
/// program execution (§3.1).
///
/// Numeric vertex/edge metrics are stored column-wise ([`MetricColumns`])
/// keyed by interned [`KeyId`]s: read with the typed accessors
/// ([`Pag::metric`], [`Pag::metric_vec`], edge variants) in hot loops, or
/// through the string-keyed [`Pag::vprop`]/[`Pag::set_vprop`] compat shim
/// where convenience beats speed.
#[derive(Debug, Clone)]
pub struct Pag {
    view: ViewKind,
    name: String,
    num_procs: u32,
    threads_per_proc: u32,
    root: Option<VertexId>,
    vertices: Vec<VertexData>,
    edges: Vec<EdgeData>,
    out_adj: Vec<Vec<EdgeId>>,
    in_adj: Vec<Vec<EdgeId>>,
    keytab: KeyTable,
    vmetrics: MetricColumns,
    emetrics: MetricColumns,
}

impl Pag {
    /// Create an empty PAG of the given view kind.
    pub fn new(view: ViewKind, name: impl Into<String>) -> Self {
        Pag {
            view,
            name: name.into(),
            num_procs: 1,
            threads_per_proc: 1,
            root: None,
            vertices: Vec::new(),
            edges: Vec::new(),
            out_adj: Vec::new(),
            in_adj: Vec::new(),
            keytab: KeyTable::new(),
            vmetrics: MetricColumns::new(),
            emetrics: MetricColumns::new(),
        }
    }

    /// Pre-allocate space for `v` vertices and `e` edges.
    pub fn with_capacity(view: ViewKind, name: impl Into<String>, v: usize, e: usize) -> Self {
        let mut g = Pag::new(view, name);
        g.vertices.reserve(v);
        g.out_adj.reserve(v);
        g.in_adj.reserve(v);
        g.edges.reserve(e);
        g
    }

    /// Which view this PAG represents.
    pub fn view(&self) -> ViewKind {
        self.view
    }

    /// Program / run identifier the PAG was built from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of processes (ranks) in the run this PAG describes.
    pub fn num_procs(&self) -> u32 {
        self.num_procs
    }

    /// Set the number of processes of the described run.
    pub fn set_num_procs(&mut self, n: u32) {
        self.num_procs = n;
    }

    /// Threads per process in the run this PAG describes.
    pub fn threads_per_proc(&self) -> u32 {
        self.threads_per_proc
    }

    /// Set the number of threads per process of the described run.
    pub fn set_threads_per_proc(&mut self, n: u32) {
        self.threads_per_proc = n;
    }

    /// The designated root vertex (program entry), if set.
    pub fn root(&self) -> Option<VertexId> {
        self.root
    }

    /// Designate `v` as the root vertex.
    pub fn set_root(&mut self, v: VertexId) {
        debug_assert!(v.index() < self.vertices.len());
        self.root = Some(v);
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add a vertex; returns its id.
    pub fn add_vertex(&mut self, label: VertexLabel, name: impl Into<Arc<str>>) -> VertexId {
        let id = VertexId(self.vertices.len() as u32);
        self.vertices.push(VertexData {
            label,
            name: name.into(),
            sprops: PropMap::new(),
        });
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        self.vmetrics.push_row();
        id
    }

    /// Add an edge; returns its id.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId, label: EdgeLabel) -> EdgeId {
        debug_assert!(src.index() < self.vertices.len());
        debug_assert!(dst.index() < self.vertices.len());
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeData {
            src,
            dst,
            label,
            sprops: PropMap::new(),
        });
        self.out_adj[src.index()].push(id);
        self.in_adj[dst.index()].push(id);
        self.emetrics.push_row();
        id
    }

    /// Immutable access to a vertex.
    #[inline]
    pub fn vertex(&self, v: VertexId) -> &VertexData {
        &self.vertices[v.index()]
    }

    /// Mutable access to a vertex.
    #[inline]
    pub fn vertex_mut(&mut self, v: VertexId) -> &mut VertexData {
        &mut self.vertices[v.index()]
    }

    /// Immutable access to an edge.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &EdgeData {
        &self.edges[e.index()]
    }

    /// Mutable access to an edge.
    #[inline]
    pub fn edge_mut(&mut self, e: EdgeId) -> &mut EdgeData {
        &mut self.edges[e.index()]
    }

    /// Iterate over all vertex ids.
    pub fn vertex_ids(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vertices.len() as u32).map(VertexId)
    }

    /// Iterate over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Outgoing edges of `v`.
    #[inline]
    pub fn out_edges(&self, v: VertexId) -> &[EdgeId] {
        &self.out_adj[v.index()]
    }

    /// Incoming edges of `v`.
    #[inline]
    pub fn in_edges(&self, v: VertexId) -> &[EdgeId] {
        &self.in_adj[v.index()]
    }

    /// Successor vertices of `v` (one entry per out-edge).
    pub fn out_neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.out_adj[v.index()]
            .iter()
            .map(move |&e| self.edges[e.index()].dst)
    }

    /// Predecessor vertices of `v` (one entry per in-edge).
    pub fn in_neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.in_adj[v.index()]
            .iter()
            .map(move |&e| self.edges[e.index()].src)
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_adj[v.index()].len()
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_adj[v.index()].len()
    }

    /// Convenience: the `name` property if set, otherwise the vertex name.
    pub fn vertex_name(&self, v: VertexId) -> &str {
        &self.vertex(v).name
    }

    /// Convenience: inclusive time of a vertex (0.0 if not recorded).
    #[inline]
    pub fn vertex_time(&self, v: VertexId) -> f64 {
        self.metric_f64(v, metric::keys::TIME)
    }

    /// All vertices whose name matches a glob pattern (`*` wildcard),
    /// e.g. `MPI_*` selects communication calls.
    pub fn find_by_name(&self, pattern: &str) -> Vec<VertexId> {
        self.vertex_ids()
            .filter(|&v| glob_match(pattern, &self.vertex(v).name))
            .collect()
    }

    /// All vertices with a given label.
    pub fn find_by_label(&self, label: VertexLabel) -> Vec<VertexId> {
        self.vertex_ids()
            .filter(|&v| self.vertex(v).label == label)
            .collect()
    }

    /// Sum of inclusive `time` over vertices that carry it (a single
    /// columnar scan). On the top-down view this over-counts nested
    /// snippets; use the root time for total program time instead.
    pub fn sum_time(&self) -> f64 {
        self.vmetrics.sum(metric::keys::TIME)
    }

    /// Total program time: the root vertex's inclusive time.
    pub fn total_time(&self) -> f64 {
        self.root.map(|r| self.vertex_time(r)).unwrap_or(0.0)
    }

    // ----- typed metric accessors (columnar hot path) -----

    /// The key interner of this PAG (global keys + per-PAG user keys).
    pub fn key_table(&self) -> &KeyTable {
        &self.keytab
    }

    /// Resolve a wire name to a `KeyId` without interning. Resolve once
    /// outside a loop, then use the typed accessors inside it.
    #[inline]
    pub fn key_id(&self, name: &str) -> Option<KeyId> {
        self.keytab.resolve(name)
    }

    /// Resolve a wire name, interning it as a user key if unknown.
    pub fn intern_key(&mut self, name: &str) -> KeyId {
        self.keytab.intern(name)
    }

    /// Wire name of an interned key.
    pub fn key_name(&self, k: KeyId) -> &str {
        self.keytab.name(k)
    }

    /// Columnar vertex metrics (for whole-column scans).
    pub fn vmetric_columns(&self) -> &MetricColumns {
        &self.vmetrics
    }

    /// Columnar edge metrics.
    pub fn emetric_columns(&self) -> &MetricColumns {
        &self.emetrics
    }

    pub(crate) fn vmetrics_mut(&mut self) -> &mut MetricColumns {
        &mut self.vmetrics
    }

    /// Test-only escape hatch for corrupting the vertex metric store so
    /// verifier invariant checks (PF0111) have a firing fixture.
    #[doc(hidden)]
    pub fn vmetric_columns_for_test(&mut self) -> &mut MetricColumns {
        &mut self.vmetrics
    }

    pub(crate) fn emetrics_mut(&mut self) -> &mut MetricColumns {
        &mut self.emetrics
    }

    #[inline]
    fn int_kinded(k: KeyId, write_int: bool) -> bool {
        if k.is_global() {
            matches!(GLOBAL_KEYS[k.index()].1, MetricKind::I64)
        } else {
            write_int
        }
    }

    /// Scalar vertex metric; `None` if never set.
    #[inline]
    pub fn metric(&self, v: VertexId, k: KeyId) -> Option<f64> {
        self.vmetrics.get(k, v.index())
    }

    /// Scalar vertex metric, `0.0` if absent.
    #[inline]
    pub fn metric_f64(&self, v: VertexId, k: KeyId) -> f64 {
        self.vmetrics.get(k, v.index()).unwrap_or(0.0)
    }

    /// Integer vertex metric; `None` if absent or float-kinded.
    #[inline]
    pub fn metric_i64(&self, v: VertexId, k: KeyId) -> Option<i64> {
        let x = self.vmetrics.get(k, v.index())?;
        self.vmetrics
            .scalar_col(k)
            .is_some_and(|c| c.is_int)
            .then_some(x as i64)
    }

    /// Set a scalar (float) vertex metric.
    #[inline]
    pub fn set_metric(&mut self, v: VertexId, k: KeyId, value: f64) {
        self.vmetrics
            .set(k, v.index(), value, Self::int_kinded(k, false));
    }

    /// Set an integer vertex metric.
    #[inline]
    pub fn set_metric_i64(&mut self, v: VertexId, k: KeyId, value: i64) {
        self.vmetrics
            .set(k, v.index(), value as f64, Self::int_kinded(k, true));
    }

    /// Add `delta` to a scalar vertex metric (absent counts as zero).
    #[inline]
    pub fn add_metric(&mut self, v: VertexId, k: KeyId, delta: f64) {
        self.vmetrics
            .add(k, v.index(), delta, Self::int_kinded(k, false));
    }

    /// Add `delta` to an integer vertex metric (absent counts as zero).
    #[inline]
    pub fn add_metric_i64(&mut self, v: VertexId, k: KeyId, delta: i64) {
        self.vmetrics
            .add(k, v.index(), delta as f64, Self::int_kinded(k, true));
    }

    /// Vector vertex metric (per-process values).
    #[inline]
    pub fn metric_vec(&self, v: VertexId, k: KeyId) -> Option<&[f64]> {
        self.vmetrics.get_vec(k, v.index()).map(|a| a.as_ref())
    }

    /// Set a vector vertex metric.
    #[inline]
    pub fn set_metric_vec(&mut self, v: VertexId, k: KeyId, value: impl Into<Arc<[f64]>>) {
        self.vmetrics.set_vec(k, v.index(), value.into());
    }

    /// Scalar edge metric; `None` if never set.
    #[inline]
    pub fn emetric(&self, e: EdgeId, k: KeyId) -> Option<f64> {
        self.emetrics.get(k, e.index())
    }

    /// Scalar edge metric, `0.0` if absent.
    #[inline]
    pub fn emetric_f64(&self, e: EdgeId, k: KeyId) -> f64 {
        self.emetrics.get(k, e.index()).unwrap_or(0.0)
    }

    /// Integer edge metric; `None` if absent or float-kinded.
    #[inline]
    pub fn emetric_i64(&self, e: EdgeId, k: KeyId) -> Option<i64> {
        let x = self.emetrics.get(k, e.index())?;
        self.emetrics
            .scalar_col(k)
            .is_some_and(|c| c.is_int)
            .then_some(x as i64)
    }

    /// Set a scalar (float) edge metric.
    #[inline]
    pub fn set_emetric(&mut self, e: EdgeId, k: KeyId, value: f64) {
        self.emetrics
            .set(k, e.index(), value, Self::int_kinded(k, false));
    }

    /// Set an integer edge metric.
    #[inline]
    pub fn set_emetric_i64(&mut self, e: EdgeId, k: KeyId, value: i64) {
        self.emetrics
            .set(k, e.index(), value as f64, Self::int_kinded(k, true));
    }

    /// Add `delta` to a scalar edge metric (absent counts as zero).
    #[inline]
    pub fn add_emetric(&mut self, e: EdgeId, k: KeyId, delta: f64) {
        self.emetrics
            .add(k, e.index(), delta, Self::int_kinded(k, false));
    }

    /// Vector edge metric.
    #[inline]
    pub fn emetric_vec(&self, e: EdgeId, k: KeyId) -> Option<&[f64]> {
        self.emetrics.get_vec(k, e.index()).map(|a| a.as_ref())
    }

    /// Set a vector edge metric.
    #[inline]
    pub fn set_emetric_vec(&mut self, e: EdgeId, k: KeyId, value: impl Into<Arc<[f64]>>) {
        self.emetrics.set_vec(k, e.index(), value.into());
    }

    // ----- string properties -----

    /// String property of a vertex (debug info, comm info, …).
    pub fn vstr(&self, v: VertexId, key: &str) -> Option<&str> {
        self.vertex(v).sprops.get(key).and_then(|p| p.as_str())
    }

    /// Set a string property on a vertex.
    pub fn set_vstr(&mut self, v: VertexId, key: &str, value: impl Into<Arc<str>>) {
        self.vertex_mut(v).sprops.set(key, value.into());
    }

    /// String property of an edge.
    pub fn estr(&self, e: EdgeId, key: &str) -> Option<&str> {
        self.edge(e).sprops.get(key).and_then(|p| p.as_str())
    }

    /// Set a string property on an edge.
    pub fn set_estr(&mut self, e: EdgeId, key: &str, value: impl Into<Arc<str>>) {
        self.edge_mut(e).sprops.set(key, value.into());
    }

    // ----- string-keyed compat shim -----

    fn shim_get(
        &self,
        sprops: &PropMap,
        cols: &MetricColumns,
        row: usize,
        key: &str,
    ) -> Option<PropValue> {
        if let Some(k) = self.keytab.resolve(key) {
            if let Some(x) = cols.get(k, row) {
                let is_int = cols.scalar_col(k).is_some_and(|c| c.is_int);
                return Some(if is_int {
                    PropValue::Int(x as i64)
                } else {
                    PropValue::Float(x)
                });
            }
            if let Some(xs) = cols.get_vec(k, row) {
                return Some(PropValue::VecF64(xs.clone()));
            }
        }
        sprops.get(key).cloned()
    }

    /// Set a property on a vertex by wire name. Numeric values are routed
    /// into the metric columns (interning the key), strings into the
    /// per-vertex string map; the two stores never hold the same key at
    /// once. Prefer the typed setters in hot loops.
    pub fn set_vprop(&mut self, v: VertexId, key: &str, value: impl Into<PropValue>) {
        let row = v.index();
        match value.into() {
            PropValue::Int(i) => {
                let k = self.keytab.intern(key);
                self.vertices[row].sprops.remove(key);
                self.vmetrics
                    .set(k, row, i as f64, Self::int_kinded(k, true));
            }
            PropValue::Float(f) => {
                let k = self.keytab.intern(key);
                self.vertices[row].sprops.remove(key);
                self.vmetrics.set(k, row, f, Self::int_kinded(k, false));
            }
            PropValue::VecF64(xs) => {
                let k = self.keytab.intern(key);
                self.vertices[row].sprops.remove(key);
                self.vmetrics.set_vec(k, row, xs);
            }
            PropValue::Str(s) => {
                if let Some(k) = self.keytab.resolve(key) {
                    self.vmetrics.remove(k, row);
                }
                self.vertices[row].sprops.set(key, s);
            }
        }
    }

    /// Read a vertex property by wire name (metric columns first, then
    /// string properties). Returns an owned value; prefer the typed
    /// accessors in hot loops.
    pub fn vprop(&self, v: VertexId, key: &str) -> Option<PropValue> {
        self.shim_get(&self.vertex(v).sprops, &self.vmetrics, v.index(), key)
    }

    /// Remove a vertex property by wire name (either store); true if
    /// something was removed.
    pub fn remove_vprop(&mut self, v: VertexId, key: &str) -> bool {
        let row = v.index();
        let mut removed = false;
        if let Some(k) = self.keytab.resolve(key) {
            removed |= self.vmetrics.remove(k, row);
        }
        removed |= self.vertices[row].sprops.remove(key).is_some();
        removed
    }

    /// Set an edge property by wire name (shim; see [`Pag::set_vprop`]).
    pub fn set_eprop(&mut self, e: EdgeId, key: &str, value: impl Into<PropValue>) {
        let row = e.index();
        match value.into() {
            PropValue::Int(i) => {
                let k = self.keytab.intern(key);
                self.edges[row].sprops.remove(key);
                self.emetrics
                    .set(k, row, i as f64, Self::int_kinded(k, true));
            }
            PropValue::Float(f) => {
                let k = self.keytab.intern(key);
                self.edges[row].sprops.remove(key);
                self.emetrics.set(k, row, f, Self::int_kinded(k, false));
            }
            PropValue::VecF64(xs) => {
                let k = self.keytab.intern(key);
                self.edges[row].sprops.remove(key);
                self.emetrics.set_vec(k, row, xs);
            }
            PropValue::Str(s) => {
                if let Some(k) = self.keytab.resolve(key) {
                    self.emetrics.remove(k, row);
                }
                self.edges[row].sprops.set(key, s);
            }
        }
    }

    /// Read an edge property by wire name (shim; owned value).
    pub fn eprop(&self, e: EdgeId, key: &str) -> Option<PropValue> {
        self.shim_get(&self.edge(e).sprops, &self.emetrics, e.index(), key)
    }

    fn merged_entries(
        &self,
        sprops: &PropMap,
        cols: &MetricColumns,
        row: usize,
    ) -> Vec<(Arc<str>, PropValue)> {
        let mut out: Vec<(Arc<str>, PropValue)> = sprops
            .iter()
            .map(|(k, v)| (Arc::from(k), v.clone()))
            .collect();
        for ki in 0..self.keytab.len() {
            let k = KeyId(ki as u32);
            if let Some(x) = cols.get(k, row) {
                let is_int = cols.scalar_col(k).is_some_and(|c| c.is_int);
                out.push((
                    Arc::from(self.keytab.name(k)),
                    if is_int {
                        PropValue::Int(x as i64)
                    } else {
                        PropValue::Float(x)
                    },
                ));
            } else if let Some(xs) = cols.get_vec(k, row) {
                out.push((
                    Arc::from(self.keytab.name(k)),
                    PropValue::VecF64(xs.clone()),
                ));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// All properties of a vertex — string properties and metrics merged —
    /// as `(wire name, value)` pairs in key order. For rendering and
    /// serialization, not for hot loops.
    pub fn prop_entries(&self, v: VertexId) -> Vec<(Arc<str>, PropValue)> {
        self.merged_entries(&self.vertex(v).sprops, &self.vmetrics, v.index())
    }

    /// All properties of an edge in key order (see [`Pag::prop_entries`]).
    pub fn eprop_entries(&self, e: EdgeId) -> Vec<(Arc<str>, PropValue)> {
        self.merged_entries(&self.edge(e).sprops, &self.emetrics, e.index())
    }

    /// Extract the subgraph induced by `vertices`: the selected vertices
    /// (with their labels and properties) plus every edge whose both
    /// endpoints are selected. Returns the new PAG and the old→new vertex
    /// id mapping. This is the PAG-transforming flavour of the low-level
    /// graph-operation API (§4.3.1) — e.g. cutting a suspicious region
    /// out of a parallel view for focused analysis or visualization.
    pub fn induced_subgraph(
        &self,
        vertices: &[VertexId],
    ) -> (Pag, std::collections::HashMap<VertexId, VertexId>) {
        let mut out = Pag::with_capacity(
            self.view,
            format!("{}:sub", self.name),
            vertices.len(),
            vertices.len(),
        );
        out.set_num_procs(self.num_procs);
        out.set_threads_per_proc(self.threads_per_proc);
        let mut map = std::collections::HashMap::with_capacity(vertices.len());
        for &v in vertices {
            if map.contains_key(&v) {
                continue;
            }
            let data = self.vertex(v);
            let nv = out.add_vertex(data.label, data.name.clone());
            out.vertex_mut(nv).sprops = data.sprops.clone();
            out.vmetrics.copy_row(
                &mut out.keytab,
                nv.index(),
                &self.vmetrics,
                &self.keytab,
                v.index(),
            );
            map.insert(v, nv);
        }
        for e in self.edge_ids() {
            let ed = self.edge(e);
            if let (Some(&ns), Some(&nd)) = (map.get(&ed.src), map.get(&ed.dst)) {
                let ne = out.add_edge(ns, nd, ed.label);
                out.edge_mut(ne).sprops = ed.sprops.clone();
                out.emetrics.copy_row(
                    &mut out.keytab,
                    ne.index(),
                    &self.emetrics,
                    &self.keytab,
                    e.index(),
                );
            }
        }
        if let Some(r) = self.root {
            if let Some(&nr) = map.get(&r) {
                out.set_root(nr);
            }
        }
        (out, map)
    }

    /// Check internal consistency: every edge endpoint in range, the
    /// adjacency lists mirroring the edge table exactly, and the root (if
    /// set) in range. Returns a list of human-readable problems (empty =
    /// valid). Used after deserialization and in tests.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let nv = self.vertices.len();
        for e in self.edge_ids() {
            let ed = self.edge(e);
            if ed.src.index() >= nv || ed.dst.index() >= nv {
                problems.push(format!("edge {e} endpoint out of range"));
                continue;
            }
            if !self.out_adj[ed.src.index()].contains(&e) {
                problems.push(format!("edge {e} missing from out-adjacency of {}", ed.src));
            }
            if !self.in_adj[ed.dst.index()].contains(&e) {
                problems.push(format!("edge {e} missing from in-adjacency of {}", ed.dst));
            }
        }
        let adj_total: usize = self.out_adj.iter().map(Vec::len).sum();
        if adj_total != self.edges.len() {
            problems.push(format!(
                "out-adjacency holds {adj_total} entries for {} edges",
                self.edges.len()
            ));
        }
        let in_total: usize = self.in_adj.iter().map(Vec::len).sum();
        if in_total != self.edges.len() {
            problems.push(format!(
                "in-adjacency holds {in_total} entries for {} edges",
                self.edges.len()
            ));
        }
        if let Some(r) = self.root {
            if r.index() >= nv {
                problems.push(format!("root {r} out of range"));
            }
        }
        if self.vmetrics.rows() != nv {
            problems.push(format!(
                "vertex metric columns hold {} rows for {nv} vertices",
                self.vmetrics.rows()
            ));
        }
        if self.emetrics.rows() != self.edges.len() {
            problems.push(format!(
                "edge metric columns hold {} rows for {} edges",
                self.emetrics.rows(),
                self.edges.len()
            ));
        }
        problems
    }

    /// Approximate in-memory footprint in bytes (used for space-cost
    /// reporting alongside the serialized size).
    pub fn mem_footprint(&self) -> usize {
        use std::mem::size_of;
        let mut bytes = size_of::<Self>();
        bytes += self.vertices.capacity() * size_of::<VertexData>();
        bytes += self.edges.capacity() * size_of::<EdgeData>();
        for adj in [&self.out_adj, &self.in_adj] {
            bytes += adj.capacity() * size_of::<Vec<EdgeId>>();
            bytes += adj
                .iter()
                .map(|v| v.capacity() * size_of::<EdgeId>())
                .sum::<usize>();
        }
        bytes += self.vmetrics.mem_footprint();
        bytes += self.emetrics.mem_footprint();
        bytes
    }
}

/// Simple glob matcher supporting `*` (any substring) used by name filters.
pub fn glob_match(pattern: &str, text: &str) -> bool {
    // Dynamic-programming match over pattern segments split on '*'.
    if !pattern.contains('*') {
        return pattern == text;
    }
    let segments: Vec<&str> = pattern.split('*').collect();
    let mut pos = 0usize;
    for (i, seg) in segments.iter().enumerate() {
        if seg.is_empty() {
            continue;
        }
        if i == 0 {
            if !text.starts_with(seg) {
                return false;
            }
            pos = seg.len();
        } else if i == segments.len() - 1 {
            let tail = &text[pos.min(text.len())..];
            if !tail.ends_with(seg) {
                return false;
            }
            // Ensure the final segment does not overlap an earlier match.
            if text.len() < pos + seg.len() {
                return false;
            }
            pos = text.len();
        } else {
            match text[pos.min(text.len())..].find(seg) {
                Some(off) => pos = pos + off + seg.len(),
                None => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{CallKind, CommKind};
    use crate::props::keys;

    fn tiny() -> Pag {
        let mut g = Pag::new(ViewKind::TopDown, "tiny");
        let main = g.add_vertex(VertexLabel::Function, "main");
        let l = g.add_vertex(VertexLabel::Loop, "loop_1");
        let c = g.add_vertex(VertexLabel::Call(CallKind::Comm), "MPI_Send");
        g.add_edge(main, l, EdgeLabel::IntraProc);
        g.add_edge(l, c, EdgeLabel::IntraProc);
        g.set_root(main);
        g
    }

    #[test]
    fn build_and_navigate() {
        let g = tiny();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        let main = VertexId(0);
        assert_eq!(g.out_degree(main), 1);
        assert_eq!(g.in_degree(main), 0);
        let succ: Vec<_> = g.out_neighbors(main).collect();
        assert_eq!(succ, vec![VertexId(1)]);
        let pred: Vec<_> = g.in_neighbors(VertexId(2)).collect();
        assert_eq!(pred, vec![VertexId(1)]);
        assert_eq!(g.vertex_name(VertexId(2)), "MPI_Send");
    }

    #[test]
    fn props_roundtrip_through_graph() {
        let mut g = tiny();
        g.set_vprop(VertexId(0), keys::TIME, 12.5);
        assert_eq!(g.vertex_time(VertexId(0)), 12.5);
        assert_eq!(g.total_time(), 12.5);
        assert!(g.vprop(VertexId(1), keys::TIME).is_none());
    }

    #[test]
    fn find_by_name_globs() {
        let g = tiny();
        assert_eq!(g.find_by_name("MPI_*"), vec![VertexId(2)]);
        assert_eq!(g.find_by_name("main"), vec![VertexId(0)]);
        assert_eq!(g.find_by_name("loop*"), vec![VertexId(1)]);
        assert!(g.find_by_name("nothing*").is_empty());
    }

    #[test]
    fn find_by_label_works() {
        let g = tiny();
        assert_eq!(g.find_by_label(VertexLabel::Loop), vec![VertexId(1)]);
        assert_eq!(
            g.find_by_label(VertexLabel::Call(CallKind::Comm)),
            vec![VertexId(2)]
        );
    }

    #[test]
    fn glob_edge_cases() {
        assert!(glob_match("*", "anything"));
        assert!(glob_match("*", ""));
        assert!(glob_match("MPI_*", "MPI_"));
        assert!(!glob_match("MPI_*", "MP"));
        assert!(glob_match("*_insert", "_M_realloc_insert"));
        assert!(glob_match("a*b*c", "aXXbYYc"));
        assert!(!glob_match("a*b*c", "aXXcYYb"));
        assert!(!glob_match("abc*abc", "abc")); // overlap must not match
        assert!(glob_match("exact", "exact"));
        assert!(!glob_match("exact", "exactly"));
    }

    #[test]
    fn edge_labels_recorded() {
        let mut g = tiny();
        let e = g.add_edge(
            VertexId(2),
            VertexId(2),
            EdgeLabel::InterProcess(CommKind::P2pAsync),
        );
        assert_eq!(g.edge(e).label, EdgeLabel::InterProcess(CommKind::P2pAsync));
        g.set_eprop(e, keys::COMM_BYTES, 1024i64);
        assert_eq!(g.eprop(e, keys::COMM_BYTES).unwrap().as_i64(), Some(1024));
        assert_eq!(g.emetric_i64(e, metric::keys::COMM_BYTES), Some(1024));
    }

    #[test]
    fn typed_accessors_and_shim_agree() {
        let mut g = tiny();
        let v = VertexId(0);
        g.set_metric(v, metric::keys::TIME, 2.5);
        g.set_metric_i64(v, metric::keys::COUNT, 9);
        g.set_metric_vec(v, metric::keys::TIME_PER_PROC, vec![1.0, 1.5]);
        g.set_vstr(v, keys::DEBUG_INFO, "a.c:1");
        // Shim sees the columns.
        assert_eq!(g.vprop(v, keys::TIME), Some(PropValue::Float(2.5)));
        assert_eq!(g.vprop(v, keys::COUNT), Some(PropValue::Int(9)));
        assert_eq!(
            g.vprop(v, keys::TIME_PER_PROC)
                .unwrap()
                .as_f64_slice()
                .unwrap(),
            &[1.0, 1.5]
        );
        // Columns see shim writes.
        g.set_vprop(v, keys::WAIT_TIME, 0.25);
        assert_eq!(g.metric(v, metric::keys::WAIT_TIME), Some(0.25));
        // User keys intern on first shim write.
        g.set_vprop(v, "my-metric", 7.0);
        let k = g.key_id("my-metric").unwrap();
        assert!(!k.is_global());
        assert_eq!(g.metric(v, k), Some(7.0));
        assert_eq!(g.key_name(k), "my-metric");
        // Strings stay out of the columns.
        assert_eq!(g.vstr(v, keys::DEBUG_INFO), Some("a.c:1"));
        assert!(g.key_id(keys::DEBUG_INFO).is_none());
        // remove_vprop clears either store.
        assert!(g.remove_vprop(v, keys::COUNT));
        assert_eq!(g.metric(v, metric::keys::COUNT), None);
        // Merged entries are sorted and complete.
        let names: Vec<String> = g
            .prop_entries(v)
            .iter()
            .map(|(k, _)| k.to_string())
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert!(names.contains(&"debug-info".to_string()));
        assert!(names.contains(&"my-metric".to_string()));
        assert!(names.contains(&"time-per-proc".to_string()));
    }

    #[test]
    fn shim_replaces_across_stores() {
        let mut g = tiny();
        let v = VertexId(0);
        g.set_vprop(v, "x", 1.0);
        g.set_vprop(v, "x", "now a string");
        assert_eq!(g.vprop(v, "x"), Some(PropValue::from("now a string")));
        g.set_vprop(v, "x", 2i64);
        assert_eq!(g.vprop(v, "x"), Some(PropValue::Int(2)));
        assert_eq!(
            g.prop_entries(v)
                .iter()
                .filter(|(k, _)| k.as_ref() == "x")
                .count(),
            1
        );
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_and_props() {
        let mut g = tiny();
        g.set_vprop(VertexId(1), keys::TIME, 7.0);
        let (sub, map) = g.induced_subgraph(&[VertexId(1), VertexId(2)]);
        assert_eq!(sub.num_vertices(), 2);
        assert_eq!(sub.num_edges(), 1); // loop_1 → MPI_Send survives
        let nl = map[&VertexId(1)];
        assert_eq!(sub.vertex_name(nl), "loop_1");
        assert_eq!(sub.vertex_time(nl), 7.0);
        // Root (main) was not selected → absent.
        assert_eq!(sub.root(), None);
        assert!(sub.validate().is_empty());
    }

    #[test]
    fn induced_subgraph_dedups_and_keeps_root() {
        let g = tiny();
        let (sub, map) = g.induced_subgraph(&[VertexId(0), VertexId(0), VertexId(1)]);
        assert_eq!(sub.num_vertices(), 2);
        assert_eq!(sub.root(), Some(map[&VertexId(0)]));
        assert_eq!(sub.num_edges(), 1);
    }

    #[test]
    fn validate_accepts_well_formed_graphs() {
        assert!(tiny().validate().is_empty());
        assert!(Pag::new(ViewKind::TopDown, "empty").validate().is_empty());
    }

    #[test]
    fn mem_footprint_grows() {
        let g0 = Pag::new(ViewKind::TopDown, "empty");
        let g1 = tiny();
        assert!(g1.mem_footprint() > g0.mem_footprint());
    }
}
