//! Vertex and edge labels (§3.1 of the paper).

/// The kind of call a *call* vertex represents.
///
/// The paper subdivides call vertices into "user-defined function calls,
/// communication function calls, external function calls, recursive calls,
/// and indirect calls, etc.".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallKind {
    /// Call to a user-defined function that is part of the analyzed program.
    User,
    /// Call to a communication primitive (`MPI_*`-like).
    Comm,
    /// Call to an external library function (e.g. allocator, libstdc++).
    External,
    /// A (possibly mutually) recursive call.
    Recursive,
    /// An indirect call resolved only at runtime.
    Indirect,
    /// Thread creation / parallel-region entry (`pthread_create`-like).
    ThreadSpawn,
    /// Lock acquisition (`pthread_mutex_lock`-like).
    Lock,
}

/// The label of a PAG vertex: which kind of code snippet it stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VertexLabel {
    /// Synthetic root of the whole PAG (the program entry).
    Root,
    /// A function definition.
    Function,
    /// A loop construct; carries the loop nest structure underneath it.
    Loop,
    /// A conditional construct.
    Branch,
    /// A straight-line compute region (basic-block granularity).
    Compute,
    /// A call site, subdivided by [`CallKind`].
    Call(CallKind),
    /// A single instruction (finest granularity; rarely materialized).
    Instruction,
}

impl VertexLabel {
    /// True for any call-site vertex, regardless of its [`CallKind`].
    #[inline]
    pub fn is_call(self) -> bool {
        matches!(self, VertexLabel::Call(_))
    }

    /// True for communication call vertices.
    #[inline]
    pub fn is_comm(self) -> bool {
        matches!(self, VertexLabel::Call(CallKind::Comm))
    }

    /// Short lowercase name used in reports and DOT output.
    pub fn name(self) -> &'static str {
        match self {
            VertexLabel::Root => "root",
            VertexLabel::Function => "function",
            VertexLabel::Loop => "loop",
            VertexLabel::Branch => "branch",
            VertexLabel::Compute => "compute",
            VertexLabel::Call(CallKind::User) => "call",
            VertexLabel::Call(CallKind::Comm) => "comm-call",
            VertexLabel::Call(CallKind::External) => "ext-call",
            VertexLabel::Call(CallKind::Recursive) => "rec-call",
            VertexLabel::Call(CallKind::Indirect) => "ind-call",
            VertexLabel::Call(CallKind::ThreadSpawn) => "spawn-call",
            VertexLabel::Call(CallKind::Lock) => "lock-call",
            VertexLabel::Instruction => "instruction",
        }
    }
}

/// The kind of communication an inter-process edge represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommKind {
    /// Synchronous (blocking/rendezvous) point-to-point communication.
    P2pSync,
    /// Asynchronous (non-blocking) point-to-point communication.
    P2pAsync,
    /// Collective communication (allreduce, bcast, barrier, …).
    Collective,
}

/// The label of a PAG edge: which relationship it encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeLabel {
    /// Control flow within one function ("intra-procedural").
    IntraProc,
    /// Function-call relationship ("inter-procedural").
    InterProc,
    /// Data dependence across threads (lock waits, shared data).
    InterThread,
    /// Communication between processes, subdivided by [`CommKind`].
    InterProcess(CommKind),
}

impl EdgeLabel {
    /// True for inter-process (communication) edges of any kind.
    #[inline]
    pub fn is_inter_process(self) -> bool {
        matches!(self, EdgeLabel::InterProcess(_))
    }

    /// True for edges that cross a process or thread boundary.
    #[inline]
    pub fn is_cross_flow(self) -> bool {
        matches!(self, EdgeLabel::InterThread | EdgeLabel::InterProcess(_))
    }

    /// Short lowercase name used in reports and DOT output.
    pub fn name(self) -> &'static str {
        match self {
            EdgeLabel::IntraProc => "intra-proc",
            EdgeLabel::InterProc => "inter-proc",
            EdgeLabel::InterThread => "inter-thread",
            EdgeLabel::InterProcess(CommKind::P2pSync) => "p2p-sync",
            EdgeLabel::InterProcess(CommKind::P2pAsync) => "p2p-async",
            EdgeLabel::InterProcess(CommKind::Collective) => "collective",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_predicates() {
        assert!(VertexLabel::Call(CallKind::Comm).is_call());
        assert!(VertexLabel::Call(CallKind::Comm).is_comm());
        assert!(!VertexLabel::Call(CallKind::User).is_comm());
        assert!(!VertexLabel::Loop.is_call());
        assert!(!VertexLabel::Function.is_comm());
    }

    #[test]
    fn edge_predicates() {
        assert!(EdgeLabel::InterProcess(CommKind::P2pSync).is_inter_process());
        assert!(EdgeLabel::InterProcess(CommKind::Collective).is_cross_flow());
        assert!(EdgeLabel::InterThread.is_cross_flow());
        assert!(!EdgeLabel::IntraProc.is_cross_flow());
        assert!(!EdgeLabel::InterProc.is_inter_process());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(VertexLabel::Loop.name(), "loop");
        assert_eq!(VertexLabel::Call(CallKind::Comm).name(), "comm-call");
        assert_eq!(
            EdgeLabel::InterProcess(CommKind::P2pAsync).name(),
            "p2p-async"
        );
        assert_eq!(EdgeLabel::IntraProc.name(), "intra-proc");
    }
}
