//! Vertex/edge properties: the performance data recorded on the PAG.
//!
//! Properties are open-ended key/value pairs because "the properties of a
//! vertex are various performance data […] depending on the specific
//! requirement of analysis tasks and the view of the PAG" (§3.1). Well-known
//! keys used by the built-in collection module and pass library live in
//! [`keys`]; user-defined passes are free to attach their own.
//!
//! A [`PropMap`] is a small sorted association list: PAG vertices typically
//! carry fewer than ten properties, where a hash map would waste both space
//! and time. Shared strings are `Arc<str>` so that the parallel view (which
//! replicates the top-down structure once per process) shares names rather
//! than cloning them.

use std::sync::Arc;

/// Well-known property keys written by the collection module and read by
/// the built-in pass library.
pub mod keys {
    /// Human-readable name of the code snippet (function/loop/call name).
    pub const NAME: &str = "name";
    /// Inclusive execution time in seconds (aggregated over processes in
    /// the top-down view; per-flow in the parallel view).
    pub const TIME: &str = "time";
    /// Exclusive (self) execution time in seconds.
    pub const SELF_TIME: &str = "self-time";
    /// Per-process inclusive time vector (top-down view only).
    pub const TIME_PER_PROC: &str = "time-per-proc";
    /// Number of times the snippet was entered.
    pub const COUNT: &str = "count";
    /// Estimated instruction count (PMU model).
    pub const PMU_INSTRUCTIONS: &str = "pmu-instructions";
    /// Estimated cycle count (PMU model).
    pub const PMU_CYCLES: &str = "pmu-cycles";
    /// Estimated cache misses (PMU model).
    pub const PMU_CACHE_MISSES: &str = "pmu-cache-misses";
    /// Debug info "file:line".
    pub const DEBUG_INFO: &str = "debug-info";
    /// Communication info summary ("pattern peer bytes"), comm calls only.
    pub const COMM_INFO: &str = "comm-info";
    /// Total bytes communicated by a comm call vertex.
    pub const COMM_BYTES: &str = "comm-bytes";
    /// Exact aggregate operation time of a comm call vertex (sum of
    /// complete - post over all instances, from PMPI-style records).
    pub const COMM_TIME: &str = "comm-time";
    /// Time spent waiting (blocked) inside a comm/lock call.
    pub const WAIT_TIME: &str = "wait-time";
    /// Process (rank) a parallel-view vertex belongs to.
    pub const PROC: &str = "proc";
    /// Thread a parallel-view vertex belongs to.
    pub const THREAD: &str = "thread";
    /// Id of the corresponding top-down vertex (parallel view only).
    pub const TOPDOWN_VERTEX: &str = "topdown-vertex";
    /// Per-process communicated-bytes vector (comm vertices, top-down).
    pub const BYTES_PER_PROC: &str = "bytes-per-proc";
    /// Per-process wait-time vector (comm vertices, top-down).
    pub const WAIT_PER_PROC: &str = "wait-per-proc";
    /// Imbalance score attached by the imbalance-analysis pass.
    pub const IMBALANCE: &str = "imbalance";
    /// Per-metric difference attached by the differential-analysis pass.
    pub const DIFF_TIME: &str = "diff-time";
    /// Profiling samples lost at this vertex (degraded collection).
    pub const DROPPED_SAMPLES: &str = "dropped-samples";
    /// Observation spans lost because the recorder's span cap was hit
    /// (set on the root of a self-analysis PAG built from a truncated
    /// `obs` trace).
    pub const DROPPED_SPANS: &str = "dropped-spans";
    /// Fraction of fired samples actually recorded, in `[0, 1]`. Absent
    /// means 1.0 (complete data) — analyses treat it as a confidence
    /// weight.
    pub const COMPLETENESS: &str = "completeness";
    /// Per-process completeness vector (root vertex of a degraded run).
    pub const COMPLETENESS_PER_PROC: &str = "completeness-per-proc";
    /// Human-readable terminal rank status ("completed", "crashed@…µs",
    /// "hung@…µs") on flow vertices of degraded ranks and, summarized,
    /// on the top-down root.
    pub const RANK_STATUS: &str = "rank-status";
}

/// A single property value.
#[derive(Debug, Clone, PartialEq)]
pub enum PropValue {
    /// Integer counter.
    Int(i64),
    /// Floating-point measurement (seconds, ratios, …).
    Float(f64),
    /// Shared string (names, debug info).
    Str(Arc<str>),
    /// Dense per-process / per-sample vector.
    VecF64(Arc<[f64]>),
}

impl PropValue {
    /// Interpret the value as `f64` if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            PropValue::Int(i) => Some(*i as f64),
            PropValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Interpret the value as `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            PropValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Interpret the value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            PropValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Interpret the value as a float slice if it is a vector.
    pub fn as_f64_slice(&self) -> Option<&[f64]> {
        match self {
            PropValue::VecF64(v) => Some(v),
            _ => None,
        }
    }
}

impl From<i64> for PropValue {
    fn from(v: i64) -> Self {
        PropValue::Int(v)
    }
}
impl From<f64> for PropValue {
    fn from(v: f64) -> Self {
        PropValue::Float(v)
    }
}
impl From<&str> for PropValue {
    fn from(v: &str) -> Self {
        PropValue::Str(Arc::from(v))
    }
}
impl From<String> for PropValue {
    fn from(v: String) -> Self {
        PropValue::Str(Arc::from(v.as_str()))
    }
}
impl From<Arc<str>> for PropValue {
    fn from(v: Arc<str>) -> Self {
        PropValue::Str(v)
    }
}
impl From<Vec<f64>> for PropValue {
    fn from(v: Vec<f64>) -> Self {
        PropValue::VecF64(Arc::from(v.into_boxed_slice()))
    }
}

impl std::fmt::Display for PropValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PropValue::Int(i) => write!(f, "{i}"),
            PropValue::Float(x) => write!(f, "{x:.6}"),
            PropValue::Str(s) => write!(f, "{s}"),
            PropValue::VecF64(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x:.4}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// A small sorted key→value association list.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PropMap {
    entries: Vec<(Arc<str>, PropValue)>,
}

impl PropMap {
    /// Empty property map (does not allocate).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of properties.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no properties are set.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert or replace a property.
    pub fn set(&mut self, key: &str, value: impl Into<PropValue>) {
        let value = value.into();
        match self.entries.binary_search_by(|(k, _)| k.as_ref().cmp(key)) {
            Ok(i) => self.entries[i].1 = value,
            Err(i) => self.entries.insert(i, (Arc::from(key), value)),
        }
    }

    /// Look up a property.
    pub fn get(&self, key: &str) -> Option<&PropValue> {
        self.entries
            .binary_search_by(|(k, _)| k.as_ref().cmp(key))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Remove a property, returning it if present.
    pub fn remove(&mut self, key: &str) -> Option<PropValue> {
        self.entries
            .binary_search_by(|(k, _)| k.as_ref().cmp(key))
            .ok()
            .map(|i| self.entries.remove(i).1)
    }

    /// Numeric lookup: `0.0` if absent or non-numeric.
    pub fn get_f64(&self, key: &str) -> f64 {
        self.get(key).and_then(PropValue::as_f64).unwrap_or(0.0)
    }

    /// Add `delta` to a float property (creating it if absent).
    pub fn add_f64(&mut self, key: &str, delta: f64) {
        let cur = self.get_f64(key);
        self.set(key, cur + delta);
    }

    /// Add `delta` to an integer property (creating it if absent).
    pub fn add_i64(&mut self, key: &str, delta: i64) {
        let cur = self.get(key).and_then(PropValue::as_i64).unwrap_or(0);
        self.set(key, cur + delta);
    }

    /// Iterate over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &PropValue)> {
        self.entries.iter().map(|(k, v)| (k.as_ref(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_replace() {
        let mut p = PropMap::new();
        assert!(p.is_empty());
        p.set(keys::TIME, 1.5);
        p.set(keys::NAME, "foo");
        p.set(keys::COUNT, 3i64);
        assert_eq!(p.len(), 3);
        assert_eq!(p.get_f64(keys::TIME), 1.5);
        assert_eq!(p.get(keys::NAME).unwrap().as_str(), Some("foo"));
        p.set(keys::TIME, 2.0);
        assert_eq!(p.len(), 3);
        assert_eq!(p.get_f64(keys::TIME), 2.0);
    }

    #[test]
    fn accumulate_helpers() {
        let mut p = PropMap::new();
        p.add_f64(keys::TIME, 0.5);
        p.add_f64(keys::TIME, 0.25);
        assert!((p.get_f64(keys::TIME) - 0.75).abs() < 1e-12);
        p.add_i64(keys::COUNT, 1);
        p.add_i64(keys::COUNT, 2);
        assert_eq!(p.get(keys::COUNT).unwrap().as_i64(), Some(3));
    }

    #[test]
    fn remove_and_missing() {
        let mut p = PropMap::new();
        p.set("x", 1.0);
        assert!(p.remove("x").is_some());
        assert!(p.remove("x").is_none());
        assert_eq!(p.get_f64("x"), 0.0);
        assert!(p.get("nope").is_none());
    }

    #[test]
    fn vector_values_roundtrip() {
        let mut p = PropMap::new();
        p.set(keys::TIME_PER_PROC, vec![1.0, 2.0, 3.0]);
        let v = p.get(keys::TIME_PER_PROC).unwrap().as_f64_slice().unwrap();
        assert_eq!(v, &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn keys_stay_sorted() {
        let mut p = PropMap::new();
        for k in ["zebra", "alpha", "mid", "beta"] {
            p.set(k, 1.0);
        }
        let order: Vec<&str> = p.iter().map(|(k, _)| k).collect();
        assert_eq!(order, vec!["alpha", "beta", "mid", "zebra"]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(PropValue::Int(5).to_string(), "5");
        assert_eq!(PropValue::from("hi").to_string(), "hi");
        assert!(PropValue::Float(0.5).to_string().starts_with("0.5"));
        assert_eq!(
            PropValue::from(vec![1.0, 2.0]).to_string(),
            "[1.0000, 2.0000]"
        );
    }
}
