//! NaN-tolerant total orderings for metric values.
//!
//! Performance metrics flowing out of degraded runs (PMU corruption,
//! sample loss, 0/0 derived metrics) can be NaN; sorting passes must not
//! panic on them and must stay deterministic. These comparators define a
//! total order in which **every NaN compares below every number**
//! (including −∞), so a descending hotspot sort always pushes NaN
//! entries to the end — regardless of NaN sign/payload bits, which is
//! why this is not a plain [`f64::total_cmp`] (there `+NaN` sorts
//! *above* `+∞` and would win a descending sort).

use std::cmp::Ordering;

/// Total order on `f64` with NaN smallest: `NaN < -∞ < … < +∞`.
/// Non-NaN values compare by [`f64::total_cmp`] (so `-0.0 < +0.0`,
/// deterministically).
pub fn nan_smallest(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => a.total_cmp(&b),
    }
}

/// Descending comparator for hotspot-style sorts: larger values first,
/// NaN always last. `slice.sort_by(|a, b| desc_nan_last(*a, *b))` yields
/// `[+∞, …, -∞, NaN, NaN]`.
pub fn desc_nan_last(a: f64, b: f64) -> Ordering {
    nan_smallest(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nan_sorts_below_everything() {
        assert_eq!(nan_smallest(f64::NAN, f64::NEG_INFINITY), Ordering::Less);
        assert_eq!(nan_smallest(f64::NEG_INFINITY, f64::NAN), Ordering::Greater);
        assert_eq!(nan_smallest(f64::NAN, f64::NAN), Ordering::Equal);
        assert_eq!(nan_smallest(-f64::NAN, 0.0), Ordering::Less);
        assert_eq!(nan_smallest(1.0, 2.0), Ordering::Less);
    }

    #[test]
    fn descending_puts_nan_last() {
        let mut v = [
            1.0,
            f64::NAN,
            f64::INFINITY,
            -3.0,
            f64::NEG_INFINITY,
            -f64::NAN,
        ];
        v.sort_by(|a, b| desc_nan_last(*a, *b));
        assert_eq!(v[0], f64::INFINITY);
        assert_eq!(v[1], 1.0);
        assert_eq!(v[2], -3.0);
        assert_eq!(v[3], f64::NEG_INFINITY);
        assert!(v[4].is_nan() && v[5].is_nan());
    }

    #[test]
    fn total_and_antisymmetric_on_specials() {
        let vals = [
            f64::NAN,
            -f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.0,
            -0.0,
            1.5,
        ];
        for &a in &vals {
            for &b in &vals {
                let ab = nan_smallest(a, b);
                let ba = nan_smallest(b, a);
                assert_eq!(ab, ba.reverse());
            }
        }
    }
}
