//! # Program Abstraction Graph (PAG)
//!
//! A PAG is a weighted directed property graph representing the performance
//! of one execution of a parallel program (PerFlow, PPoPP'22, §3).
//!
//! * **Vertices** represent code snippets or control structures — functions,
//!   calls, loops, branches, compute regions — and carry *labels* (their
//!   kind) and *properties* (performance data: execution time, PMU counters,
//!   communication info, debug info, per-process time vectors, …).
//! * **Edges** represent relationships between snippets and carry labels:
//!   *intra-procedural* (control flow), *inter-procedural* (call
//!   relationships), *inter-thread* (lock/data dependence across threads)
//!   and *inter-process* (communication between ranks).
//!
//! Two views are supported (§3.4):
//!
//! * the **top-down view** contains only intra- and inter-procedural edges
//!   and aggregates performance data over all processes;
//! * the **parallel view** replicates the executed structure as one *flow*
//!   per process/thread and adds inter-process and inter-thread edges.
//!
//! The crate is self-contained: storage is adjacency lists over dense
//! vectors, properties are small sorted-key maps, and a compact hand-rolled
//! binary serialization measures the storage footprint of a PAG (the paper's
//! "space cost", Table 1).

pub mod dot;
pub mod graph;
pub mod ids;
pub mod label;
pub mod metric;
pub mod ord;
pub mod props;
pub mod serialize;
pub mod stats;

pub use dot::escape_dot;
pub use graph::{EdgeData, Pag, VertexData};
pub use ids::{EdgeId, ProcId, ThreadId, VertexId};
pub use label::{CallKind, CommKind, EdgeLabel, VertexLabel};
pub use metric::{ColumnFault, KeyId, KeyTable, MetricColumns, MetricKind, GLOBAL_KEYS};
pub use ord::{desc_nan_last, nan_smallest};
pub use props::{keys, PropMap, PropValue};
pub use stats::VertexStats;

/// Typed ids for the well-known metric keys (columnar hot path); the
/// matching wire names live in [`props::keys`].
pub use metric::keys as mkeys;

/// Which view of the program a PAG instance represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViewKind {
    /// Structure-only view: intra-/inter-procedural edges, aggregated data.
    TopDown,
    /// Per-process/thread flows with inter-process and inter-thread edges.
    Parallel,
}

impl std::fmt::Display for ViewKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViewKind::TopDown => write!(f, "top-down"),
            ViewKind::Parallel => write!(f, "parallel"),
        }
    }
}
