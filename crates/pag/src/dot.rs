//! Graphviz DOT export of a PAG.
//!
//! The paper's report module "provides both human-readable texts and
//! visualized graphs" (§2.2); DOT output is the visualization half. Vertex
//! fill saturation encodes hotspot severity exactly as in Figures 4, 5, 7,
//! 9 and 15 ("the color saturation of vertices represents the severity of
//! hotspots").

use std::fmt::Write as _;

use crate::graph::Pag;
use crate::ids::VertexId;
use crate::label::EdgeLabel;
use crate::props::keys;

/// Options controlling DOT rendering.
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Include property tables in vertex labels.
    pub show_props: bool,
    /// Color vertices by relative `time` (hotspot saturation).
    pub heat_by_time: bool,
    /// Only emit vertices from this set (and edges between them); `None`
    /// renders the full graph.
    pub restrict_to: Option<Vec<VertexId>>,
    /// Maximum number of vertices to emit (guards against huge parallel
    /// views); further vertices are elided with a note.
    pub max_vertices: usize,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            show_props: false,
            heat_by_time: true,
            restrict_to: None,
            max_vertices: 2000,
        }
    }
}

/// Render a PAG to DOT.
pub fn to_dot(pag: &Pag, opts: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape_dot(pag.name()));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(
        out,
        "  node [shape=box, style=filled, fontname=\"Helvetica\"];"
    );

    let max_time = if opts.heat_by_time {
        pag.vertex_ids()
            .map(|v| pag.vertex_time(v))
            .fold(0.0f64, f64::max)
    } else {
        0.0
    };

    let selected: Vec<VertexId> = match &opts.restrict_to {
        Some(set) => set.clone(),
        None => pag.vertex_ids().collect(),
    };
    let mut in_set = vec![false; pag.num_vertices()];
    let emitted = selected.len().min(opts.max_vertices);
    for &v in selected.iter().take(opts.max_vertices) {
        in_set[v.index()] = true;
    }

    for &v in selected.iter().take(opts.max_vertices) {
        let data = pag.vertex(v);
        let mut label = format!("{}\\n[{}]", escape_dot(&data.name), data.label.name());
        if opts.show_props {
            for (k, val) in pag.prop_entries(v) {
                if k.as_ref() == keys::NAME {
                    continue;
                }
                let _ = write!(label, "\\n{k}={val}");
            }
        }
        let fill = if opts.heat_by_time && max_time > 0.0 {
            heat_color(pag.vertex_time(v) / max_time)
        } else {
            "\"#eeeeee\"".to_string()
        };
        let _ = writeln!(out, "  {} [label=\"{}\", fillcolor={}];", v.0, label, fill);
    }
    if selected.len() > opts.max_vertices {
        let _ = writeln!(
            out,
            "  elided [label=\"… {} more vertices elided\", fillcolor=\"#ffffff\"];",
            selected.len() - emitted
        );
    }

    for e in pag.edge_ids() {
        let ed = pag.edge(e);
        if !in_set[ed.src.index()] || !in_set[ed.dst.index()] {
            continue;
        }
        let style = match ed.label {
            EdgeLabel::IntraProc => "[color=black]",
            EdgeLabel::InterProc => "[color=gray50, style=dashed]",
            EdgeLabel::InterThread => "[color=blue, style=dotted, constraint=false]",
            EdgeLabel::InterProcess(_) => "[color=red, penwidth=1.5, constraint=false]",
        };
        let _ = writeln!(out, "  {} -> {} {};", ed.src.0, ed.dst.0, style);
    }
    out.push_str("}\n");
    out
}

/// Map a `[0,1]` heat value to an HSV saturation ramp (white → deep red).
fn heat_color(h: f64) -> String {
    let h = h.clamp(0.0, 1.0);
    // Keep hue at red, scale saturation; DOT accepts "H,S,V" strings.
    format!("\"0.0,{:.3},1.0\"", h)
}

/// Escape a string for use inside a DOT double-quoted string: backslashes
/// and quotes are escaped, newlines become literal `\n` line breaks. The
/// content round-trips — unlike a lossy replacement, a name containing
/// `"` or `\` renders exactly as written. Shared by every DOT emitter in
/// the workspace (re-exported as `pag::escape_dot`).
pub fn escape_dot(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{CallKind, CommKind, VertexLabel};
    use crate::ViewKind;

    fn sample() -> Pag {
        let mut g = Pag::new(ViewKind::TopDown, "dot-sample");
        let a = g.add_vertex(VertexLabel::Function, "main");
        let b = g.add_vertex(VertexLabel::Loop, "loop_1");
        let c = g.add_vertex(VertexLabel::Call(CallKind::Comm), "MPI_Allreduce");
        g.add_edge(a, b, EdgeLabel::IntraProc);
        g.add_edge(b, c, EdgeLabel::IntraProc);
        g.add_edge(c, c, EdgeLabel::InterProcess(CommKind::Collective));
        g.set_vprop(a, keys::TIME, 10.0);
        g.set_vprop(c, keys::TIME, 4.0);
        g
    }

    #[test]
    fn dot_contains_all_parts() {
        let g = sample();
        let dot = to_dot(&g, &DotOptions::default());
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("main"));
        assert!(dot.contains("MPI_Allreduce"));
        assert!(dot.contains("->"));
        assert!(dot.contains("color=red")); // inter-process edge styling
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn restriction_drops_vertices_and_their_edges() {
        let g = sample();
        let opts = DotOptions {
            restrict_to: Some(vec![crate::VertexId(0), crate::VertexId(1)]),
            ..DotOptions::default()
        };
        let dot = to_dot(&g, &opts);
        assert!(dot.contains("main"));
        assert!(!dot.contains("MPI_Allreduce"));
        assert!(!dot.contains("color=red"));
    }

    #[test]
    fn max_vertices_elides() {
        let mut g = Pag::new(ViewKind::TopDown, "big");
        for i in 0..10 {
            g.add_vertex(VertexLabel::Compute, format!("v{i}").as_str());
        }
        let opts = DotOptions {
            max_vertices: 3,
            ..DotOptions::default()
        };
        let dot = to_dot(&g, &opts);
        assert!(dot.contains("7 more vertices elided"));
    }

    #[test]
    fn props_shown_when_requested() {
        let g = sample();
        let opts = DotOptions {
            show_props: true,
            ..DotOptions::default()
        };
        let dot = to_dot(&g, &opts);
        assert!(dot.contains("time="));
    }

    #[test]
    fn heat_color_bounds() {
        assert_eq!(heat_color(-1.0), "\"0.0,0.000,1.0\"");
        assert_eq!(heat_color(2.0), "\"0.0,1.000,1.0\"");
    }

    #[test]
    fn escape_preserves_content() {
        assert_eq!(escape_dot(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape_dot("x\ny"), "x\\ny");
        assert_eq!(escape_dot("plain"), "plain");
    }

    #[test]
    fn dot_escapes_quotes_backslashes_newlines() {
        let mut g = Pag::new(ViewKind::TopDown, "ti\"tle\\x");
        g.add_vertex(VertexLabel::Compute, "evil \"name\"\nwith\\slash");
        let dot = to_dot(&g, &DotOptions::default());
        assert!(dot.contains("digraph \"ti\\\"tle\\\\x\""), "{dot}");
        assert!(dot.contains("evil \\\"name\\\"\\nwith\\\\slash"), "{dot}");
        // The old lossy mangling ("→', \→/) must be gone.
        assert!(!dot.contains("evil 'name'"));
        assert!(!dot.contains("with/slash"));
        // No raw newline survives inside any emitted line.
        for line in dot.lines() {
            assert!(!line.contains("evil \"name\""), "unescaped: {line}");
        }
    }
}
