//! Per-vertex cross-process statistics.
//!
//! Imbalance-style passes reason about the distribution of a metric across
//! processes (the `time-per-proc` vector embedded on top-down vertices).
//! [`VertexStats`] condenses such a vector into the statistics those passes
//! use: mean, extrema, standard deviation and the classic *imbalance factor*
//! `max/mean - 1` (0 for perfectly balanced work).

/// Summary statistics of a per-process metric vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VertexStats {
    /// Number of processes contributing a value.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Index of the process holding the maximum.
    pub argmax: usize,
    /// Index of the process holding the minimum.
    pub argmin: usize,
}

impl VertexStats {
    /// Compute statistics over a per-process vector. Returns `None` for an
    /// empty slice.
    pub fn from_slice(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let n = values.len();
        let mut sum = 0.0;
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut argmin, mut argmax) = (0usize, 0usize);
        for (i, &v) in values.iter().enumerate() {
            sum += v;
            if v < min {
                min = v;
                argmin = i;
            }
            if v > max {
                max = v;
                argmax = i;
            }
        }
        let mean = sum / n as f64;
        let var = values.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        Some(VertexStats {
            n,
            mean,
            min,
            max,
            stddev: var.sqrt(),
            argmax,
            argmin,
        })
    }

    /// Imbalance factor `max/mean - 1`; 0 for perfectly balanced values,
    /// 0 as well when the mean is 0 (no work anywhere).
    pub fn imbalance(&self) -> f64 {
        if self.mean <= f64::EPSILON {
            0.0
        } else {
            self.max / self.mean - 1.0
        }
    }

    /// Coefficient of variation `stddev/mean` (0 when mean is 0).
    pub fn cv(&self) -> f64 {
        if self.mean <= f64::EPSILON {
            0.0
        } else {
            self.stddev / self.mean
        }
    }

    /// Percentage of aggregate time lost to imbalance: `(max-mean)/max`
    /// (the fraction of the critical process's time other processes idle).
    pub fn imbalance_loss(&self) -> f64 {
        if self.max <= f64::EPSILON {
            0.0
        } else {
            (self.max - self.mean) / self.max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert!(VertexStats::from_slice(&[]).is_none());
    }

    #[test]
    fn balanced_vector() {
        let s = VertexStats::from_slice(&[2.0, 2.0, 2.0, 2.0]).unwrap();
        assert_eq!(s.n, 4);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.imbalance(), 0.0);
        assert_eq!(s.cv(), 0.0);
        assert_eq!(s.imbalance_loss(), 0.0);
    }

    #[test]
    fn imbalanced_vector() {
        let s = VertexStats::from_slice(&[1.0, 1.0, 1.0, 5.0]).unwrap();
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.argmax, 3);
        assert_eq!(s.argmin, 0);
        assert!((s.imbalance() - 1.5).abs() < 1e-12);
        assert!((s.imbalance_loss() - 0.6).abs() < 1e-12);
        assert!(s.stddev > 0.0);
    }

    #[test]
    fn zero_mean_does_not_divide() {
        let s = VertexStats::from_slice(&[0.0, 0.0]).unwrap();
        assert_eq!(s.imbalance(), 0.0);
        assert_eq!(s.cv(), 0.0);
        assert_eq!(s.imbalance_loss(), 0.0);
    }

    #[test]
    fn single_value() {
        let s = VertexStats::from_slice(&[3.5]).unwrap();
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.imbalance(), 0.0);
    }
}
