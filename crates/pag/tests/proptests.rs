//! Property-based tests of the PAG: serialization roundtrips for
//! arbitrary graphs, glob matching against a reference implementation,
//! and statistics invariants.

use proptest::prelude::*;

use pag::{
    graph::glob_match, keys, CallKind, CommKind, EdgeLabel, Pag, VertexId, VertexLabel,
    VertexStats, ViewKind,
};

fn arb_vertex_label() -> impl Strategy<Value = VertexLabel> {
    prop_oneof![
        Just(VertexLabel::Function),
        Just(VertexLabel::Loop),
        Just(VertexLabel::Branch),
        Just(VertexLabel::Compute),
        Just(VertexLabel::Instruction),
        Just(VertexLabel::Call(CallKind::User)),
        Just(VertexLabel::Call(CallKind::Comm)),
        Just(VertexLabel::Call(CallKind::External)),
        Just(VertexLabel::Call(CallKind::Recursive)),
        Just(VertexLabel::Call(CallKind::Indirect)),
        Just(VertexLabel::Call(CallKind::ThreadSpawn)),
        Just(VertexLabel::Call(CallKind::Lock)),
    ]
}

fn arb_edge_label() -> impl Strategy<Value = EdgeLabel> {
    prop_oneof![
        Just(EdgeLabel::IntraProc),
        Just(EdgeLabel::InterProc),
        Just(EdgeLabel::InterThread),
        Just(EdgeLabel::InterProcess(CommKind::P2pSync)),
        Just(EdgeLabel::InterProcess(CommKind::P2pAsync)),
        Just(EdgeLabel::InterProcess(CommKind::Collective)),
    ]
}

#[derive(Debug, Clone)]
struct GraphSpec {
    vertices: Vec<(VertexLabel, String, f64, Option<Vec<f64>>)>,
    edges: Vec<(usize, usize, EdgeLabel, i64)>,
}

fn arb_graph() -> impl Strategy<Value = GraphSpec> {
    let vertex = (
        arb_vertex_label(),
        "[a-zA-Z_][a-zA-Z0-9_.:]{0,12}",
        0.0..1e7f64,
        prop::option::of(prop::collection::vec(0.0..1e5f64, 1..5)),
    );
    prop::collection::vec(vertex, 1..20).prop_flat_map(|vertices| {
        let n = vertices.len();
        let edge = (0..n, 0..n, arb_edge_label(), 0i64..1_000_000);
        (Just(vertices), prop::collection::vec(edge, 0..40))
            .prop_map(|(vertices, edges)| GraphSpec { vertices, edges })
    })
}

fn build(spec: &GraphSpec) -> Pag {
    let mut g = Pag::new(ViewKind::Parallel, "prop-graph");
    for (label, name, time, vec) in &spec.vertices {
        let v = g.add_vertex(*label, name.as_str());
        g.set_vprop(v, keys::TIME, *time);
        if let Some(vec) = vec {
            g.set_vprop(v, keys::TIME_PER_PROC, vec.clone());
        }
    }
    for (a, b, label, bytes) in &spec.edges {
        let e = g.add_edge(VertexId(*a as u32), VertexId(*b as u32), *label);
        g.set_eprop(e, keys::COMM_BYTES, *bytes);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → decode is the identity on structure, labels and props.
    #[test]
    fn serialization_roundtrip(spec in arb_graph()) {
        let g = build(&spec);
        let bytes = pag::serialize::encode(&g);
        let h = pag::serialize::decode(&bytes).unwrap();
        prop_assert_eq!(h.num_vertices(), g.num_vertices());
        prop_assert_eq!(h.num_edges(), g.num_edges());
        prop_assert_eq!(h.view(), g.view());
        for v in g.vertex_ids() {
            prop_assert_eq!(h.vertex(v).label, g.vertex(v).label);
            prop_assert_eq!(h.vertex_name(v), g.vertex_name(v));
            prop_assert_eq!(h.vertex_time(v), g.vertex_time(v));
            let a = g.metric_vec(v, pag::mkeys::TIME_PER_PROC);
            let b = h.metric_vec(v, pag::mkeys::TIME_PER_PROC);
            prop_assert_eq!(a, b);
        }
        for e in g.edge_ids() {
            prop_assert_eq!(h.edge(e).src, g.edge(e).src);
            prop_assert_eq!(h.edge(e).dst, g.edge(e).dst);
            prop_assert_eq!(h.edge(e).label, g.edge(e).label);
        }
        // Encoding is deterministic.
        prop_assert_eq!(pag::serialize::encode(&h), bytes);
    }

    /// Decoding arbitrary bytes never panics (it may error).
    #[test]
    fn decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = pag::serialize::decode(&bytes);
    }

    /// Truncating a valid encoding never yields a *larger* graph and never
    /// panics.
    #[test]
    fn truncated_decode_never_panics(spec in arb_graph(), cut in 0usize..1000) {
        let g = build(&spec);
        let bytes = pag::serialize::encode(&g);
        let cut = cut.min(bytes.len());
        let _ = pag::serialize::decode(&bytes[..cut]);
    }

    /// Glob matching agrees with a simple reference matcher.
    #[test]
    fn glob_matches_reference(
        pattern in "[ab*]{0,6}",
        text in "[ab]{0,6}",
    ) {
        prop_assert_eq!(
            glob_match(&pattern, &text),
            reference_glob(pattern.as_bytes(), text.as_bytes()),
            "pattern={} text={}", pattern, text
        );
    }

    /// Full wildcards and exact patterns behave canonically.
    #[test]
    fn glob_canonical_cases(text in "[a-z]{0,10}") {
        prop_assert!(glob_match("*", &text));
        prop_assert!(glob_match(&text, &text));
        let prefix = format!("{text}*");
        let suffix = format!("*{text}");
        prop_assert!(glob_match(&prefix, &text));
        prop_assert!(glob_match(&suffix, &text));
    }

    /// VertexStats invariants: min ≤ mean ≤ max; imbalance ≥ 0; the
    /// argmax really is a maximum.
    #[test]
    fn stats_invariants(values in prop::collection::vec(0.0..1e6f64, 1..32)) {
        let s = VertexStats::from_slice(&values).unwrap();
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.imbalance() >= 0.0);
        prop_assert!(s.imbalance_loss() >= 0.0 && s.imbalance_loss() <= 1.0);
        prop_assert_eq!(values[s.argmax], s.max);
        prop_assert_eq!(values[s.argmin], s.min);
        prop_assert!(s.stddev >= 0.0);
    }
}

/// O(2^n) reference glob matcher (correct by construction).
fn reference_glob(pattern: &[u8], text: &[u8]) -> bool {
    match (pattern.first(), text.first()) {
        (None, None) => true,
        (Some(b'*'), _) => {
            reference_glob(&pattern[1..], text)
                || (!text.is_empty() && reference_glob(pattern, &text[1..]))
        }
        (Some(&p), Some(&t)) if p == t => reference_glob(&pattern[1..], &text[1..]),
        _ => false,
    }
}
