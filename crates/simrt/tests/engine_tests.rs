//! Behavioural tests of the discrete-event engine: timing, matching,
//! collectives, wait propagation, locks, tracing, determinism and failure
//! injection.

use progmodel::{c, nranks, nthreads, rank, thread, ProgramBuilder};
use simrt::{simulate, CollectionConfig, CommKindTag, RunConfig, SimError};

/// Two ranks: rank 0 computes 100 µs then sends; rank 1 receives.
fn pingpong(bytes: f64) -> progmodel::Program {
    let mut pb = ProgramBuilder::new("pingpong");
    let main = pb.declare("main", "pp.c");
    pb.define(main, |f| {
        f.branch(
            "role",
            rank().eq(0.0),
            |s| {
                s.compute("work0", c(100.0));
                s.send(c(1.0), c(bytes), 7);
            },
            |r| {
                r.recv(c(0.0), c(bytes), 7);
            },
        );
    });
    pb.build(main)
}

#[test]
fn receiver_waits_for_late_sender() {
    let prog = pingpong(64.0); // eager
    let data = simulate(&prog, &RunConfig::new(2)).unwrap();
    // Rank 1 posted recv at ~0 and must wait ≥ 100 µs for rank 0's send.
    let recv = data
        .comm_records
        .iter()
        .find(|r| r.kind == CommKindTag::Recv)
        .expect("recv record");
    assert_eq!(recv.rank, 1);
    assert!(recv.wait >= 100.0, "recv wait = {}", recv.wait);
    assert!(data.elapsed[1] >= 100.0);
    // The dependence edge points from the send statement to the recv.
    let edge = data
        .msg_edges
        .iter()
        .find(|e| e.kind == CommKindTag::Recv)
        .expect("recv edge");
    assert_eq!(edge.src_rank, 0);
    assert_eq!(edge.dst_rank, 1);
    assert!(edge.wait >= 100.0);
}

#[test]
fn rendezvous_send_blocks_until_receiver_arrives() {
    // Large message: sender must rendezvous with the receiver, who is busy
    // for 500 µs first.
    let mut pb = ProgramBuilder::new("rdv");
    let main = pb.declare("main", "r.c");
    pb.define(main, |f| {
        f.branch(
            "role",
            rank().eq(0.0),
            |s| {
                s.send(c(1.0), c(1e6), 0); // 1 MB >> eager threshold
            },
            |r| {
                r.compute("busy", c(500.0));
                r.recv(c(0.0), c(1e6), 0);
            },
        );
    });
    let prog = pb.build(main);
    let data = simulate(&prog, &RunConfig::new(2)).unwrap();
    let send = data
        .comm_records
        .iter()
        .find(|r| r.kind == CommKindTag::Send)
        .unwrap();
    assert!(send.wait >= 500.0, "send wait = {}", send.wait);
    // Late-receiver dependence edge: receiver side → sender side.
    let edge = data
        .msg_edges
        .iter()
        .find(|e| e.kind == CommKindTag::Send)
        .expect("late-receiver edge");
    assert_eq!(edge.src_rank, 1);
    assert_eq!(edge.dst_rank, 0);
}

#[test]
fn eager_send_does_not_block() {
    let prog = pingpong(64.0);
    let data = simulate(&prog, &RunConfig::new(2)).unwrap();
    let send = data
        .comm_records
        .iter()
        .find(|r| r.kind == CommKindTag::Send)
        .unwrap();
    assert_eq!(send.wait, 0.0);
    assert!(data.elapsed[0] < 105.0, "sender should finish right away");
}

#[test]
fn allreduce_serializes_on_slowest_rank() {
    let mut pb = ProgramBuilder::new("ar");
    let main = pb.declare("main", "a.c");
    pb.define(main, |f| {
        // Rank 3 is 10× slower before the allreduce.
        f.compute("work", rank().eq(3.0).select(c(1000.0), c(100.0)));
        f.allreduce(c(8.0));
    });
    let prog = pb.build(main);
    let data = simulate(&prog, &RunConfig::new(4)).unwrap();
    for r in 0..4usize {
        assert!(data.elapsed[r] >= 1000.0, "rank {r}: {}", data.elapsed[r]);
    }
    // Fast ranks waited ~900 µs in the allreduce.
    let waits: Vec<f64> = data
        .comm_records
        .iter()
        .filter(|r| r.kind == CommKindTag::Allreduce && r.rank != 3)
        .map(|r| r.wait)
        .collect();
    assert_eq!(waits.len(), 3);
    assert!(waits.iter().all(|&w| w >= 900.0), "waits {waits:?}");
    // The rank-3 record has (almost) no wait beyond the collective cost.
    let slow = data
        .comm_records
        .iter()
        .find(|r| r.kind == CommKindTag::Allreduce && r.rank == 3)
        .unwrap();
    assert!(slow.wait < 100.0);
    // Dependence edges from the late rank's collective to the waiters.
    let late_edges: Vec<_> = data
        .msg_edges
        .iter()
        .filter(|e| e.kind == CommKindTag::Allreduce)
        .collect();
    assert_eq!(late_edges.len(), 3);
    assert!(late_edges.iter().all(|e| e.src_rank == 3));
}

#[test]
fn waitall_accumulates_nonblocking_requests() {
    // Ring: every rank irecvs from left, isends to right, waitall.
    let mut pb = ProgramBuilder::new("ring");
    let main = pb.declare("main", "ring.c");
    pb.define(main, |f| {
        f.irecv((rank() + nranks() - 1.0).rem(nranks()), c(1024.0), 0);
        f.compute("work", (rank() + 1.0) * c(100.0));
        f.isend((rank() + 1.0).rem(nranks()), c(1024.0), 0);
        f.waitall();
    });
    let prog = pb.build(main);
    let data = simulate(&prog, &RunConfig::new(4)).unwrap();
    let waits: Vec<&simrt::CommRecord> = data
        .comm_records
        .iter()
        .filter(|r| r.kind == CommKindTag::Waitall)
        .collect();
    assert_eq!(waits.len(), 4);
    // Rank 0 finishes its own work first (100 µs) but waits for rank 3's
    // send posted at ~400 µs.
    let w0 = waits.iter().find(|r| r.rank == 0).unwrap();
    assert!(w0.wait >= 250.0, "rank0 waitall wait = {}", w0.wait);
    // Rank 3 is the last poster; its requests completed long ago.
    let w3 = waits.iter().find(|r| r.rank == 3).unwrap();
    assert!(w3.wait <= 50.0, "rank3 waitall wait = {}", w3.wait);
    // Waitall edges attribute the delay to the late sender's Isend.
    assert!(data
        .msg_edges
        .iter()
        .any(|e| e.kind == CommKindTag::Waitall && e.dst_rank == 0 && e.src_rank == 3));
}

#[test]
fn wait_by_back_index() {
    let mut pb = ProgramBuilder::new("wait");
    let main = pb.declare("main", "w.c");
    pb.define(main, |f| {
        f.branch(
            "role",
            rank().eq(0.0),
            |s| {
                s.isend(c(1.0), c(64.0), 1);
                s.isend(c(1.0), c(64.0), 2);
                s.wait(1); // wait the first isend
                s.wait(0); // then the second
            },
            |r| {
                r.irecv(c(0.0), c(64.0), 1);
                r.irecv(c(0.0), c(64.0), 2);
                r.waitall();
            },
        );
    });
    let prog = pb.build(main);
    let data = simulate(&prog, &RunConfig::new(2)).unwrap();
    let wait_count = data
        .comm_records
        .iter()
        .filter(|r| r.kind == CommKindTag::Wait)
        .count();
    assert_eq!(wait_count, 2);
}

#[test]
fn bad_wait_index_is_reported() {
    let mut pb = ProgramBuilder::new("badwait");
    let main = pb.declare("main", "w.c");
    pb.define(main, |f| {
        f.wait(0); // nothing outstanding
    });
    let prog = pb.build(main);
    match simulate(&prog, &RunConfig::new(1)) {
        Err(SimError::BadWait { outstanding: 0, .. }) => {}
        other => panic!("expected BadWait, got {other:?}"),
    }
}

#[test]
fn deadlock_detected() {
    // Both ranks recv first: classic deadlock.
    let mut pb = ProgramBuilder::new("dl");
    let main = pb.declare("main", "d.c");
    pb.define(main, |f| {
        f.recv((rank() + 1.0).rem(nranks()), c(8.0), 0);
        f.send((rank() + 1.0).rem(nranks()), c(8.0), 0);
    });
    let prog = pb.build(main);
    match simulate(&prog, &RunConfig::new(2)) {
        Err(SimError::Deadlock { blocked }) => assert_eq!(blocked.len(), 2),
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn bad_peer_is_reported() {
    let mut pb = ProgramBuilder::new("peer");
    let main = pb.declare("main", "p.c");
    pb.define(main, |f| {
        f.send(nranks() + c(5.0), c(8.0), 0);
    });
    let prog = pb.build(main);
    match simulate(&prog, &RunConfig::new(2)) {
        Err(SimError::BadPeer { peer: 7, .. }) => {}
        other => panic!("expected BadPeer, got {other:?}"),
    }
}

#[test]
fn lock_contention_serializes_threads() {
    // 4 threads, each: 10 µs compute + lock hold 100 µs. With a single
    // lock the region takes ≈ 10 + 4×100 µs, not 110 µs.
    let mut pb = ProgramBuilder::new("locks");
    let main = pb.declare("main", "l.c");
    pb.define(main, |f| {
        f.thread_region(nthreads(), |b| {
            b.compute("pre", c(10.0));
            b.alloc("allocate", c(100.0));
        });
    });
    let prog = pb.build(main);
    let cfg = RunConfig::new(1).with_threads(4);
    let data = simulate(&prog, &cfg).unwrap();
    assert!(
        data.elapsed[0] >= 10.0 + 400.0 - 1e-9,
        "region too fast: {}",
        data.elapsed[0]
    );
    assert_eq!(data.lock_records.len(), 4);
    let waits: Vec<f64> = data.lock_records.iter().map(|l| l.wait()).collect();
    let blocked: Vec<bool> = data
        .lock_records
        .iter()
        .map(|l| l.blocked_by.is_some())
        .collect();
    // Exactly one thread acquires immediately; the rest wait on a holder.
    assert_eq!(blocked.iter().filter(|&&b| !b).count(), 1);
    assert!(waits.iter().cloned().fold(0.0, f64::max) >= 299.0);
}

#[test]
fn threads_without_shared_locks_run_parallel() {
    let mut pb = ProgramBuilder::new("par");
    let main = pb.declare("main", "p.c");
    pb.define(main, |f| {
        f.thread_region(c(8.0), |b| {
            b.compute("work", c(100.0));
        });
    });
    let prog = pb.build(main);
    let data = simulate(&prog, &RunConfig::new(1)).unwrap();
    assert!(
        (data.elapsed[0] - 100.0).abs() < 1e-6,
        "fork-join should cost max, got {}",
        data.elapsed[0]
    );
}

#[test]
fn comm_inside_thread_region_rejected() {
    let mut pb = ProgramBuilder::new("bad");
    let main = pb.declare("main", "b.c");
    pb.define(main, |f| {
        f.thread_region(c(2.0), |b| {
            b.barrier();
        });
    });
    let prog = pb.build(main);
    assert!(matches!(
        simulate(&prog, &RunConfig::new(1)),
        Err(SimError::CommInThreadRegion { .. })
    ));
}

#[test]
fn thread_imbalance_costs_join() {
    // Thread 0 does 10× work: region ends when it ends.
    let mut pb = ProgramBuilder::new("imb");
    let main = pb.declare("main", "i.c");
    pb.define(main, |f| {
        f.thread_region(c(4.0), |b| {
            b.compute("work", thread().eq(0.0).select(c(1000.0), c(100.0)));
        });
    });
    let prog = pb.build(main);
    let data = simulate(&prog, &RunConfig::new(1)).unwrap();
    assert!((data.elapsed[0] - 1000.0).abs() < 1e-6);
}

#[test]
fn sampling_approximates_time_distribution() {
    // One rank, two kernels 3:1; sample counts should be ≈ 3:1.
    let mut pb = ProgramBuilder::new("sampling");
    let main = pb.declare("main", "s.c");
    pb.define(main, |f| {
        f.loop_("outer", c(1000.0), |b| {
            // Noise decorrelates kernel durations from the sampling period
            // (otherwise deterministic aliasing skews the counts).
            b.compute("hot", c(300.0) * progmodel::noise(0.3, 1));
            b.compute("cold", c(100.0) * progmodel::noise(0.3, 2));
        });
    });
    let prog = pb.build(main);
    let cfg = RunConfig::new(1);
    let data = simulate(&prog, &cfg).unwrap();
    // The two sampled contexts are the two kernels; their counts should be
    // in roughly 3:1 proportion.
    let mut counts: Vec<u64> = data.samples.values().copied().collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    assert!(
        counts.len() >= 2,
        "expected two sampled contexts: {counts:?}"
    );
    let (hot, cold) = (counts[0], counts[1]);
    assert!(hot > 0 && cold > 0);
    let ratio = hot as f64 / cold as f64;
    assert!((2.5..3.5).contains(&ratio), "ratio {ratio} ({counts:?})");
    // Total sampled time approximates total run time.
    let sampled_us: f64 = counts.iter().sum::<u64>() as f64 * 5000.0;
    assert!((sampled_us - data.total_time).abs() / data.total_time < 0.05);
}

#[test]
fn pmu_estimates_follow_cost_model() {
    let mut pb = ProgramBuilder::new("pmu");
    let main = pb.declare("main", "p.c");
    pb.define(main, |f| {
        f.compute("k", c(1000.0));
    });
    let prog = pb.build(main);
    let data = simulate(&prog, &RunConfig::new(2)).unwrap();
    let total_instr: f64 = data.pmu.values().map(|p| p.instructions).sum();
    // Two ranks × 1000 µs × 2000 instr/µs.
    assert!((total_instr - 4_000_000.0).abs() < 1.0);
}

#[test]
fn tracing_records_events_and_estimates_bytes() {
    let mut pb = ProgramBuilder::new("trace");
    let main = pb.declare("main", "t.c");
    pb.define(main, |f| {
        f.loop_("l", c(50.0), |b| {
            b.compute("k", c(1.0));
        });
        f.barrier();
    });
    let prog = pb.build(main);
    let cfg = RunConfig::new(2).with_collection(CollectionConfig::tracing());
    let data = simulate(&prog, &cfg).unwrap();
    // 2 ranks × (50 computes + 1 barrier) = 102 events.
    assert_eq!(data.trace.total_events, 102);
    assert_eq!(data.trace.est_bytes, 102 * 24);
    let off = simulate(&prog, &RunConfig::new(2)).unwrap();
    assert_eq!(off.trace.total_events, 0);
}

#[test]
fn indirect_calls_resolved_at_runtime() {
    let mut pb = ProgramBuilder::new("ind");
    let main = pb.declare("main", "i.c");
    let fa = pb.declare("fa", "i.c");
    let fb = pb.declare("fb", "i.c");
    pb.define(fa, |f| f.compute("ka", c(1.0)));
    pb.define(fb, |f| f.compute("kb", c(2.0)));
    pb.define(main, |f| {
        f.call_indirect(vec![fa, fb], rank().rem(2.0));
    });
    let prog = pb.build(main);
    let data = simulate(&prog, &RunConfig::new(4)).unwrap();
    let targets = data.indirect_targets.values().next().unwrap();
    assert_eq!(targets.len(), 2, "both candidates observed");
}

#[test]
fn simulation_is_deterministic() {
    let prog = {
        let mut pb = ProgramBuilder::new("det");
        let main = pb.declare("main", "d.c");
        pb.define(main, |f| {
            f.loop_("l", c(20.0), |b| {
                b.compute("k", c(100.0) * progmodel::noise(0.2, 1));
                b.allreduce(c(64.0));
            });
        });
        pb.build(main)
    };
    let cfg = RunConfig::new(8).with_seed(99);
    let a = simulate(&prog, &cfg).unwrap();
    let b = simulate(&prog, &cfg).unwrap();
    assert_eq!(a.total_time, b.total_time);
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.comm_records.len(), b.comm_records.len());
    // Different seed → different timings (noise has effect).
    let c2 = simulate(&prog, &RunConfig::new(8).with_seed(100)).unwrap();
    assert_ne!(a.total_time, c2.total_time);
}

#[test]
fn nested_loops_iterate_fully() {
    let mut pb = ProgramBuilder::new("nest");
    let main = pb.declare("main", "n.c");
    pb.define(main, |f| {
        f.loop_("outer", c(3.0), |o| {
            o.loop_("inner", c(4.0), |i| {
                i.compute("k", c(1.0));
            });
        });
    });
    let prog = pb.build(main);
    let data = simulate(&prog, &RunConfig::new(1)).unwrap();
    assert!((data.elapsed[0] - 12.0).abs() < 1e-9);
}

#[test]
fn recursion_guard_trips() {
    let mut pb = ProgramBuilder::new("rec");
    let main = pb.declare("main", "r.c");
    pb.define(main, |f| f.call(main));
    let prog = pb.build(main);
    assert!(matches!(
        simulate(&prog, &RunConfig::new(1)),
        Err(SimError::StackOverflow { .. })
    ));
}

#[test]
fn barrier_synchronizes_clocks() {
    let mut pb = ProgramBuilder::new("bar");
    let main = pb.declare("main", "b.c");
    pb.define(main, |f| {
        f.compute("work", (rank() + 1.0) * c(100.0));
        f.barrier();
        f.compute("after", c(10.0));
    });
    let prog = pb.build(main);
    let data = simulate(&prog, &RunConfig::new(4)).unwrap();
    // All ranks finish together up to per-rank instrumentation costs.
    let min = data.elapsed.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = data.elapsed.iter().cloned().fold(0.0, f64::max);
    assert!(max - min < 20.0, "clocks diverged: {:?}", data.elapsed);
    assert!(min >= 410.0);
}

#[test]
fn injected_slow_rank_becomes_the_straggler() {
    let mut pb = ProgramBuilder::new("inject");
    let main = pb.declare("main", "i.c");
    pb.define(main, |f| {
        f.loop_("it", c(50.0), |b| {
            b.compute("work", c(200.0));
            b.allreduce(c(8.0));
        });
    });
    let prog = pb.build(main);
    let healthy = simulate(&prog, &RunConfig::new(4)).unwrap();
    let degraded = simulate(&prog, &RunConfig::new(4).with_slow_rank(2, 3.0)).unwrap();
    // The degraded node slows the whole collective-synchronized run ~3×.
    assert!(degraded.total_time > 2.5 * healthy.total_time);
    // Everyone else accumulates allreduce waits; rank 2 does not.
    let wait_of = |data: &simrt::RunData, rank: u32| {
        data.comm_records
            .iter()
            .filter(|r| r.kind == CommKindTag::Allreduce && r.rank == rank)
            .map(|r| r.wait)
            .sum::<f64>()
    };
    assert!(wait_of(&degraded, 0) > 10.0 * wait_of(&degraded, 2).max(1.0));
}

#[test]
fn slow_rank_affects_thread_regions_too() {
    let mut pb = ProgramBuilder::new("inject-thr");
    let main = pb.declare("main", "i.c");
    pb.define(main, |f| {
        f.thread_region(c(4.0), |b| {
            b.compute("twork", c(100.0));
        });
    });
    let prog = pb.build(main);
    let data = simulate(&prog, &RunConfig::new(2).with_slow_rank(1, 2.0)).unwrap();
    assert!((data.elapsed[0] - 100.0).abs() < 5.0);
    assert!((data.elapsed[1] - 200.0).abs() < 5.0);
}

#[test]
fn sendrecv_exchanges_without_deadlock() {
    // Every rank sendrecvs with both neighbours using large (rendezvous)
    // messages — the idiom that deadlocks with naive Send/Recv ordering.
    let mut pb = ProgramBuilder::new("sr");
    let main = pb.declare("main", "sr.c");
    pb.define(main, |f| {
        f.loop_("it", c(20.0), |b| {
            b.sendrecv(
                (rank() + 1.0).rem(nranks()),
                (rank() + nranks() - 1.0).rem(nranks()),
                c(100_000.0),
                9,
            );
        });
    });
    let prog = pb.build(main);
    let data = simulate(&prog, &RunConfig::new(4)).unwrap();
    assert!(data.total_time > 0.0);
    // 20 iters × 4 ranks of each op kind.
    let count = |k: CommKindTag| data.comm_records.iter().filter(|r| r.kind == k).count();
    assert_eq!(count(CommKindTag::Irecv), 80);
    assert_eq!(count(CommKindTag::Send), 80);
    assert_eq!(count(CommKindTag::Wait), 80);
}

#[test]
fn network_presets_differ() {
    let mut pb = ProgramBuilder::new("np");
    let main = pb.declare("main", "n.c");
    pb.define(main, |f| {
        f.loop_("it", c(200.0), |b| {
            b.sendrecv(
                (rank() + 1.0).rem(nranks()),
                (rank() + nranks() - 1.0).rem(nranks()),
                c(64_000.0),
                3,
            );
        });
    });
    let prog = pb.build(main);
    let mut gorgon = RunConfig::new(4);
    gorgon.network = simrt::NetworkModel::gorgon();
    let mut tianhe = RunConfig::new(4);
    tianhe.network = simrt::NetworkModel::tianhe2a();
    let tg = simulate(&prog, &gorgon).unwrap().total_time;
    let tt = simulate(&prog, &tianhe).unwrap().total_time;
    assert_ne!(tg, tt);
    assert!(tt < tg, "Tianhe-2A model is faster: {tt} vs {tg}");
}

#[test]
fn run_summary_aggregates_consistently() {
    let mut pb = ProgramBuilder::new("sum");
    let main = pb.declare("main", "s.c");
    pb.define(main, |f| {
        f.loop_("it", c(60.0), |b| {
            b.compute("work", (rank() + 1.0) * c(150.0));
            b.allreduce(c(16.0));
        });
    });
    let prog = pb.build(main);
    let data = simulate(&prog, &RunConfig::new(4)).unwrap();
    let s = data.summary();
    assert_eq!(s.makespan_us, data.total_time);
    assert!((s.aggregate_us - data.elapsed.iter().sum::<f64>()).abs() < 1e-9);
    assert!(s.comm_us >= s.comm_wait_us);
    assert!(s.comm_wait_us > 0.0, "imbalance must produce waits");
    assert!(s.efficiency > 0.0 && s.efficiency < 1.0);
    // One kind present: the allreduce.
    assert_eq!(s.per_kind.len(), 1);
    assert_eq!(s.per_kind[0].0, CommKindTag::Allreduce);
    assert_eq!(s.per_kind[0].1, 240); // 60 iters × 4 ranks
    assert!(s.render().contains("MPI_Allreduce"));
}

/// A zeusmp-style mixed workload: noisy compute, a nonblocking halo ring,
/// a rendezvous exchange and collectives — enough machinery to exercise
/// every matcher path.
fn mixed_workload() -> progmodel::Program {
    let mut pb = ProgramBuilder::new("mixed");
    let main = pb.declare("main", "m.c");
    pb.define(main, |f| {
        f.loop_("step", c(12.0), |b| {
            b.compute("stencil", c(400.0) * progmodel::noise(0.3, 1));
            b.irecv((rank() + nranks() - 1.0).rem(nranks()), c(2048.0), 0);
            b.isend((rank() + 1.0).rem(nranks()), c(2048.0), 0);
            b.waitall();
            b.branch(
                "exchange",
                rank().rem(2.0).eq(0.0),
                |s| {
                    s.send((rank() + 1.0).rem(nranks()), c(65536.0), 1);
                },
                |r| {
                    r.recv((rank() + nranks() - 1.0).rem(nranks()), c(65536.0), 1);
                },
            );
            b.allreduce(c(64.0));
        });
    });
    pb.build(main)
}

#[test]
fn parallel_simulation_is_bit_identical_to_serial() {
    let prog = mixed_workload();
    let base = RunConfig::new(8).with_seed(42).with_slow_rank(3, 1.7);
    let serial = simulate(&prog, &base.clone().serial_sim()).unwrap();
    for workers in [2, 4, 8] {
        let par = simulate(&prog, &base.clone().with_sim_workers(workers)).unwrap();
        assert_eq!(
            serial.digest(),
            par.digest(),
            "serial vs {workers}-worker RunData diverged"
        );
        assert_eq!(serial.elapsed, par.elapsed);
        assert_eq!(serial.total_time, par.total_time);
        assert_eq!(serial.comm_records.len(), par.comm_records.len());
        assert_eq!(serial.msg_edges.len(), par.msg_edges.len());
        assert_eq!(serial.samples, par.samples);
    }
}

#[test]
fn parallel_bit_identity_survives_fault_injection() {
    // Crash + message drops + sample loss + PMU corruption all at once:
    // every fault stream must replay identically on the worker pool.
    let prog = mixed_workload();
    let base = RunConfig::new(8).with_seed(7).with_faults(
        simrt::FaultPlan::new()
            .crash_rank(5, 2000.0)
            .with_message_drop(0.1, 500.0)
            .with_sample_loss(0.2)
            .with_pmu_corruption(0.1),
    );
    let serial = simulate(&prog, &base.clone().serial_sim()).unwrap();
    let par = simulate(&prog, &base.clone().with_sim_workers(4)).unwrap();
    assert_eq!(serial.digest(), par.digest(), "faulted run diverged");
    assert_eq!(serial.rank_status, par.rank_status);
    assert_eq!(serial.retransmits, par.retransmits);
    assert_eq!(serial.dropped_samples, par.dropped_samples);
    assert_eq!(serial.pmu_corrupted, par.pmu_corrupted);
    assert!(serial.retransmits > 0, "drop rate must actually fire");
    assert!(
        matches!(serial.rank_status[5], simrt::RankStatus::Crashed { .. }),
        "rank 5 must be recorded as crashed"
    );
}

#[test]
fn digest_distinguishes_different_runs() {
    let prog = mixed_workload();
    let a = simulate(&prog, &RunConfig::new(4).with_seed(1)).unwrap();
    let b = simulate(&prog, &RunConfig::new(4).with_seed(2)).unwrap();
    assert_ne!(a.digest(), b.digest(), "different seeds, same digest");
    let again = simulate(&prog, &RunConfig::new(4).with_seed(1)).unwrap();
    assert_eq!(a.digest(), again.digest(), "same run must re-digest equal");
}
