//! # Deterministic discrete-event parallel runtime
//!
//! The execution substrate of the PerFlow reproduction: it plays the role
//! of `mpirun` on a cluster plus the PMPI/PAPI/libunwind collection stack
//! (DESIGN.md §2). A [`progmodel::Program`] is interpreted once per rank
//! with a per-rank *virtual clock*; MPI-like operations are matched by a
//! central engine (eager/rendezvous point-to-point, log-tree collectives),
//! OpenMP-like thread regions are simulated fork-join with exact FIFO lock
//! contention, and a seeded noise model provides realistic run-to-run and
//! rank-to-rank variation.
//!
//! What the paper's analyses need — wait times that *propagate* from late
//! senders, collectives that serialize on their slowest participant, lock
//! holders that delay their peers — emerges from the event-level causality
//! here, so graph analyses built on top behave as they do on real systems.
//!
//! Collection is part of the runtime (as with a PMPI wrapper): depending on
//! [`CollectionConfig`], the engine produces calling-context *samples* at a
//! fixed virtual period, PMU estimates, per-instance communication and lock
//! records, and (optionally) a full event trace whose cost is the basis of
//! the Scalasca comparison.

pub mod cct;
pub mod collector;
pub mod config;
pub mod engine;
pub mod error;
pub mod faults;
pub mod net;
pub mod record;
pub mod threads;

pub use cct::{Cct, CtxFrame, CtxId};
pub use config::{CollectionConfig, NetworkModel, RunConfig};
pub use engine::{simulate, SimError};
pub use faults::{fault_roll, FaultPlan, FaultStream};
pub use record::{
    CommKindTag, CommRecord, LockRecord, MsgEdge, PmuAgg, RankStatus, RunData, RunSummary,
    TraceData,
};
