//! Collective cost models.
//!
//! Log-tree models in the LogP tradition: a collective over `p` ranks costs
//! `O(log p)` latency terms plus a bandwidth term. The constants are not
//! calibrated to any specific fabric — the analyses only need collectives
//! to (a) serialize on their slowest participant and (b) grow with scale,
//! which these shapes provide.

use crate::config::NetworkModel;
use crate::record::CommKindTag;

/// Cost in µs of the collective itself, once all participants arrived.
pub fn collective_cost(net: &NetworkModel, kind: CommKindTag, bytes: u64, nranks: u32) -> f64 {
    let p = nranks.max(1) as f64;
    let logp = p.log2().ceil().max(1.0);
    let bw = bytes as f64 / net.bw_bytes_per_us;
    match kind {
        CommKindTag::Barrier => net.latency_us * logp,
        CommKindTag::Bcast | CommKindTag::Reduce => net.latency_us * logp + bw * logp.min(2.0),
        // Ring/recursive-doubling allreduce: 2 log p latency, 2x bandwidth.
        CommKindTag::Allreduce => 2.0 * net.latency_us * logp + 2.0 * bw,
        // Pairwise exchange: p-1 rounds.
        CommKindTag::Alltoall => (p - 1.0) * (net.latency_us + bw),
        // Point-to-point kinds never reach here.
        _ => net.transfer_us(bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collectives_grow_with_scale() {
        let net = NetworkModel::default();
        for kind in [
            CommKindTag::Barrier,
            CommKindTag::Bcast,
            CommKindTag::Reduce,
            CommKindTag::Allreduce,
            CommKindTag::Alltoall,
        ] {
            let small = collective_cost(&net, kind, 1024, 4);
            let large = collective_cost(&net, kind, 1024, 1024);
            assert!(large > small, "{kind:?} did not grow with scale");
        }
    }

    #[test]
    fn costs_grow_with_bytes() {
        let net = NetworkModel::default();
        for kind in [
            CommKindTag::Bcast,
            CommKindTag::Allreduce,
            CommKindTag::Alltoall,
        ] {
            assert!(collective_cost(&net, kind, 1 << 20, 64) > collective_cost(&net, kind, 64, 64));
        }
    }

    #[test]
    fn barrier_is_bytes_independent() {
        let net = NetworkModel::default();
        assert_eq!(
            collective_cost(&net, CommKindTag::Barrier, 0, 64),
            collective_cost(&net, CommKindTag::Barrier, 1 << 20, 64)
        );
    }

    #[test]
    fn single_rank_collective_is_cheap() {
        let net = NetworkModel::default();
        let c = collective_cost(&net, CommKindTag::Allreduce, 8, 1);
        assert!(c < 10.0 * net.latency_us);
    }
}
