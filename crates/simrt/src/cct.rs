//! Calling context tree (CCT).
//!
//! The sampler reports *calling contexts* — the libunwind stack-walk
//! equivalent. A context is a path of frames: function entries and
//! structural statements (loops, branches, call sites, compute kernels,
//! comm ops). Contexts are interned so a sample is a single `u32`;
//! performance-data embedding (§3.3) later resolves a context to the PAG
//! vertices along its path.

use std::collections::HashMap;

use progmodel::{FuncId, StmtId};

/// Interned calling-context id. `CtxId(0)` is the root (program entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CtxId(pub u32);

/// One frame of a calling context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CtxFrame {
    /// A function body was entered.
    Func(FuncId),
    /// A structural statement (loop, branch, call site, compute, comm,
    /// lock) was entered.
    Stmt(StmtId),
}

#[derive(Debug, Clone)]
struct Node {
    parent: CtxId,
    frame: CtxFrame,
    depth: u32,
}

/// The calling context tree for one run.
#[derive(Debug, Clone)]
pub struct Cct {
    nodes: Vec<Node>,
    intern: HashMap<(CtxId, CtxFrame), CtxId>,
}

impl Cct {
    /// New CCT rooted at the entry function.
    pub fn new(entry: FuncId) -> Self {
        Cct {
            nodes: vec![Node {
                parent: CtxId(0),
                frame: CtxFrame::Func(entry),
                depth: 0,
            }],
            intern: HashMap::new(),
        }
    }

    /// The root context (program entry).
    pub fn root(&self) -> CtxId {
        CtxId(0)
    }

    /// Number of distinct contexts.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Intern (or find) the child of `parent` for `frame`.
    pub fn child(&mut self, parent: CtxId, frame: CtxFrame) -> CtxId {
        if let Some(&id) = self.intern.get(&(parent, frame)) {
            return id;
        }
        let id = CtxId(self.nodes.len() as u32);
        self.nodes.push(Node {
            parent,
            frame,
            depth: self.nodes[parent.0 as usize].depth + 1,
        });
        self.intern.insert((parent, frame), id);
        id
    }

    /// The frame of a context node.
    pub fn frame(&self, ctx: CtxId) -> CtxFrame {
        self.nodes[ctx.0 as usize].frame
    }

    /// The parent of a context node (root's parent is itself).
    pub fn parent(&self, ctx: CtxId) -> CtxId {
        self.nodes[ctx.0 as usize].parent
    }

    /// Depth of a context node (root = 0).
    pub fn depth(&self, ctx: CtxId) -> u32 {
        self.nodes[ctx.0 as usize].depth
    }

    /// Full path of frames from the root to `ctx` (root first).
    pub fn path(&self, ctx: CtxId) -> Vec<CtxFrame> {
        let mut frames = Vec::with_capacity(self.depth(ctx) as usize + 1);
        let mut cur = ctx;
        loop {
            frames.push(self.frame(cur));
            if cur == self.root() {
                break;
            }
            cur = self.parent(cur);
        }
        frames.reverse();
        frames
    }

    /// Merge every context of `other` into `self`, returning the remap
    /// table `other CtxId index → self CtxId`.
    ///
    /// Relies on the construction invariant that a node's parent always
    /// has a smaller index than the node itself, so a single forward walk
    /// re-interns each node under its already-remapped parent. Merging
    /// per-rank CCT shards in rank order therefore produces one
    /// deterministic tree regardless of how the shards were built.
    pub fn merge_from(&mut self, other: &Cct) -> Vec<CtxId> {
        debug_assert_eq!(
            self.nodes[0].frame, other.nodes[0].frame,
            "shards must share the entry function"
        );
        let mut remap = Vec::with_capacity(other.nodes.len());
        remap.push(self.root());
        for node in &other.nodes[1..] {
            let parent = remap[node.parent.0 as usize];
            remap.push(self.child(parent, node.frame));
        }
        remap
    }

    /// Iterate over a context's chain of ids from `ctx` up to the root.
    pub fn ancestors(&self, ctx: CtxId) -> impl Iterator<Item = CtxId> + '_ {
        let mut cur = Some(ctx);
        std::iter::from_fn(move || {
            let c = cur?;
            cur = if c == self.root() {
                None
            } else {
                Some(self.parent(c))
            };
            Some(c)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut cct = Cct::new(FuncId(0));
        let a = cct.child(cct.root(), CtxFrame::Stmt(StmtId(1)));
        let b = cct.child(cct.root(), CtxFrame::Stmt(StmtId(1)));
        assert_eq!(a, b);
        let c = cct.child(a, CtxFrame::Func(FuncId(2)));
        assert_ne!(a, c);
        assert_eq!(cct.len(), 3);
    }

    #[test]
    fn paths_and_depths() {
        let mut cct = Cct::new(FuncId(0));
        let l = cct.child(cct.root(), CtxFrame::Stmt(StmtId(5)));
        let f = cct.child(l, CtxFrame::Func(FuncId(1)));
        let k = cct.child(f, CtxFrame::Stmt(StmtId(9)));
        assert_eq!(cct.depth(k), 3);
        assert_eq!(
            cct.path(k),
            vec![
                CtxFrame::Func(FuncId(0)),
                CtxFrame::Stmt(StmtId(5)),
                CtxFrame::Func(FuncId(1)),
                CtxFrame::Stmt(StmtId(9)),
            ]
        );
        let up: Vec<CtxId> = cct.ancestors(k).collect();
        assert_eq!(up, vec![k, f, l, cct.root()]);
    }

    #[test]
    fn merge_from_reinterns_under_remapped_parents() {
        // Shard A: root → s1 → f2; shard B: root → s1 → s3 (overlapping
        // prefix, divergent leaf).
        let mut a = Cct::new(FuncId(0));
        let a1 = a.child(a.root(), CtxFrame::Stmt(StmtId(1)));
        let a2 = a.child(a1, CtxFrame::Func(FuncId(2)));
        let mut b = Cct::new(FuncId(0));
        let b1 = b.child(b.root(), CtxFrame::Stmt(StmtId(1)));
        let b2 = b.child(b1, CtxFrame::Stmt(StmtId(3)));
        let remap = a.merge_from(&b);
        // Shared prefix dedups onto the existing nodes…
        assert_eq!(remap[b.root().0 as usize], a.root());
        assert_eq!(remap[b1.0 as usize], a1);
        // …and the divergent leaf is a fresh node.
        let merged_leaf = remap[b2.0 as usize];
        assert_ne!(merged_leaf, a2);
        assert_eq!(a.frame(merged_leaf), CtxFrame::Stmt(StmtId(3)));
        assert_eq!(a.parent(merged_leaf), a1);
        assert_eq!(a.len(), 4);
        // Merging is idempotent on identical shards.
        let again = a.merge_from(&b);
        assert_eq!(again, remap);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn root_path_is_entry_only() {
        let cct = Cct::new(FuncId(7));
        assert_eq!(cct.path(cct.root()), vec![CtxFrame::Func(FuncId(7))]);
        assert!(cct.is_empty());
    }
}
