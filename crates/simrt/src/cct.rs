//! Calling context tree (CCT).
//!
//! The sampler reports *calling contexts* — the libunwind stack-walk
//! equivalent. A context is a path of frames: function entries and
//! structural statements (loops, branches, call sites, compute kernels,
//! comm ops). Contexts are interned so a sample is a single `u32`;
//! performance-data embedding (§3.3) later resolves a context to the PAG
//! vertices along its path.

use std::collections::HashMap;

use progmodel::{FuncId, StmtId};

/// Interned calling-context id. `CtxId(0)` is the root (program entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CtxId(pub u32);

/// One frame of a calling context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CtxFrame {
    /// A function body was entered.
    Func(FuncId),
    /// A structural statement (loop, branch, call site, compute, comm,
    /// lock) was entered.
    Stmt(StmtId),
}

#[derive(Debug, Clone)]
struct Node {
    parent: CtxId,
    frame: CtxFrame,
    depth: u32,
}

/// The calling context tree for one run.
#[derive(Debug, Clone)]
pub struct Cct {
    nodes: Vec<Node>,
    intern: HashMap<(CtxId, CtxFrame), CtxId>,
}

impl Cct {
    /// New CCT rooted at the entry function.
    pub fn new(entry: FuncId) -> Self {
        Cct {
            nodes: vec![Node {
                parent: CtxId(0),
                frame: CtxFrame::Func(entry),
                depth: 0,
            }],
            intern: HashMap::new(),
        }
    }

    /// The root context (program entry).
    pub fn root(&self) -> CtxId {
        CtxId(0)
    }

    /// Number of distinct contexts.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Intern (or find) the child of `parent` for `frame`.
    pub fn child(&mut self, parent: CtxId, frame: CtxFrame) -> CtxId {
        if let Some(&id) = self.intern.get(&(parent, frame)) {
            return id;
        }
        let id = CtxId(self.nodes.len() as u32);
        self.nodes.push(Node {
            parent,
            frame,
            depth: self.nodes[parent.0 as usize].depth + 1,
        });
        self.intern.insert((parent, frame), id);
        id
    }

    /// The frame of a context node.
    pub fn frame(&self, ctx: CtxId) -> CtxFrame {
        self.nodes[ctx.0 as usize].frame
    }

    /// The parent of a context node (root's parent is itself).
    pub fn parent(&self, ctx: CtxId) -> CtxId {
        self.nodes[ctx.0 as usize].parent
    }

    /// Depth of a context node (root = 0).
    pub fn depth(&self, ctx: CtxId) -> u32 {
        self.nodes[ctx.0 as usize].depth
    }

    /// Full path of frames from the root to `ctx` (root first).
    pub fn path(&self, ctx: CtxId) -> Vec<CtxFrame> {
        let mut frames = Vec::with_capacity(self.depth(ctx) as usize + 1);
        let mut cur = ctx;
        loop {
            frames.push(self.frame(cur));
            if cur == self.root() {
                break;
            }
            cur = self.parent(cur);
        }
        frames.reverse();
        frames
    }

    /// Iterate over a context's chain of ids from `ctx` up to the root.
    pub fn ancestors(&self, ctx: CtxId) -> impl Iterator<Item = CtxId> + '_ {
        let mut cur = Some(ctx);
        std::iter::from_fn(move || {
            let c = cur?;
            cur = if c == self.root() {
                None
            } else {
                Some(self.parent(c))
            };
            Some(c)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut cct = Cct::new(FuncId(0));
        let a = cct.child(cct.root(), CtxFrame::Stmt(StmtId(1)));
        let b = cct.child(cct.root(), CtxFrame::Stmt(StmtId(1)));
        assert_eq!(a, b);
        let c = cct.child(a, CtxFrame::Func(FuncId(2)));
        assert_ne!(a, c);
        assert_eq!(cct.len(), 3);
    }

    #[test]
    fn paths_and_depths() {
        let mut cct = Cct::new(FuncId(0));
        let l = cct.child(cct.root(), CtxFrame::Stmt(StmtId(5)));
        let f = cct.child(l, CtxFrame::Func(FuncId(1)));
        let k = cct.child(f, CtxFrame::Stmt(StmtId(9)));
        assert_eq!(cct.depth(k), 3);
        assert_eq!(
            cct.path(k),
            vec![
                CtxFrame::Func(FuncId(0)),
                CtxFrame::Stmt(StmtId(5)),
                CtxFrame::Func(FuncId(1)),
                CtxFrame::Stmt(StmtId(9)),
            ]
        );
        let up: Vec<CtxId> = cct.ancestors(k).collect();
        assert_eq!(up, vec![k, f, l, cct.root()]);
    }

    #[test]
    fn root_path_is_entry_only() {
        let cct = Cct::new(FuncId(7));
        assert_eq!(cct.path(cct.root()), vec![CtxFrame::Func(FuncId(7))]);
        assert!(cct.is_empty());
    }
}
