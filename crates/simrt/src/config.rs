//! Run and collection configuration.

use std::collections::HashMap;

use crate::faults::FaultPlan;

/// Network performance model (latency/bandwidth with an eager threshold),
/// standing in for the clusters of §5.1.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    /// One-way point-to-point latency in µs.
    pub latency_us: f64,
    /// Bandwidth in bytes per µs (e.g. 12500 B/µs = 100 Gb/s).
    pub bw_bytes_per_us: f64,
    /// Messages larger than this use rendezvous (blocking) semantics.
    pub eager_threshold: u64,
    /// Local software overhead per posted operation in µs.
    pub op_overhead_us: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        // Roughly EDR InfiniBand: ~1.5 µs latency, 100 Gb/s.
        NetworkModel {
            latency_us: 1.5,
            bw_bytes_per_us: 12_500.0,
            eager_threshold: 8192,
            op_overhead_us: 0.3,
        }
    }
}

impl NetworkModel {
    /// Pure transfer time of a message.
    pub fn transfer_us(&self, bytes: u64) -> f64 {
        self.latency_us + bytes as f64 / self.bw_bytes_per_us
    }

    /// The paper's *Gorgon* cluster: 100 Gb/s 4xEDR InfiniBand.
    pub fn gorgon() -> Self {
        NetworkModel::default()
    }

    /// The paper's *Tianhe-2A* custom interconnect: similar bandwidth,
    /// slightly lower latency, larger eager window.
    pub fn tianhe2a() -> Self {
        NetworkModel {
            latency_us: 1.0,
            bw_bytes_per_us: 14_000.0,
            eager_threshold: 16_384,
            op_overhead_us: 0.25,
        }
    }
}

/// What the built-in runtime collection module records.
#[derive(Debug, Clone)]
pub struct CollectionConfig {
    /// Sampling period in virtual µs (`None` disables sampling). The
    /// paper's 200 Hz corresponds to 5000 µs.
    pub sampling_period_us: Option<f64>,
    /// Collect PMU estimates per calling context.
    pub collect_pmu: bool,
    /// Record per-instance communication events and message edges.
    pub collect_comm: bool,
    /// Record per-instance lock events.
    pub collect_locks: bool,
    /// Record a full event trace (Scalasca-style; expensive).
    pub trace_events: bool,
    /// Cap on stored trace events; further events are counted (and their
    /// storage estimated) but not stored.
    pub trace_store_cap: usize,
    /// Virtual cost charged to the application per fired sample
    /// (signal handler + stack unwind), µs.
    pub sample_cost_us: f64,
    /// Virtual cost charged per intercepted communication call (PMPI
    /// wrapper), µs.
    pub comm_wrapper_cost_us: f64,
    /// Virtual cost charged per recorded trace event (Scalasca-style
    /// event writing), µs.
    pub trace_event_cost_us: f64,
}

impl Default for CollectionConfig {
    fn default() -> Self {
        CollectionConfig {
            sampling_period_us: Some(5000.0),
            collect_pmu: true,
            collect_comm: true,
            collect_locks: true,
            trace_events: false,
            trace_store_cap: 1_000_000,
            sample_cost_us: 8.0,
            comm_wrapper_cost_us: 1.2,
            trace_event_cost_us: 2.5,
        }
    }
}

impl CollectionConfig {
    /// Collection fully disabled (baseline for overhead measurements).
    pub fn off() -> Self {
        CollectionConfig {
            sampling_period_us: None,
            collect_pmu: false,
            collect_comm: false,
            collect_locks: false,
            trace_events: false,
            trace_store_cap: 0,
            sample_cost_us: 0.0,
            comm_wrapper_cost_us: 0.0,
            trace_event_cost_us: 0.0,
        }
    }

    /// The paper's PerFlow setting: 200 Hz sampling + comm/lock records.
    pub fn sampling() -> Self {
        Self::default()
    }

    /// Full tracing (the Scalasca comparison point).
    pub fn tracing() -> Self {
        CollectionConfig {
            trace_events: true,
            ..Self::default()
        }
    }
}

/// A complete run configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Number of processes.
    pub nranks: u32,
    /// Threads per process used by thread regions that ask for
    /// `nthreads()`.
    pub nthreads: u32,
    /// Scale-parameter overrides (merged over the program defaults).
    pub params: HashMap<String, f64>,
    /// Run seed (drives all noise).
    pub seed: u64,
    /// Network model.
    pub network: NetworkModel,
    /// Collection settings.
    pub collection: CollectionConfig,
    /// Per-rank compute slowdown factors (fault injection: a rank listed
    /// here runs its compute `factor`× slower — a degraded node, thermal
    /// throttling, OS noise). Ranks not listed run at factor 1.0.
    pub rank_slowdown: HashMap<u32, f64>,
    /// Hard-fault injection plan (crashes, hangs, message drops, sample
    /// loss, stack truncation, PMU corruption). Inert by default.
    pub faults: FaultPlan,
    /// Worker threads simulating ranks. `None` (the default) sizes the
    /// pool to `min(nranks, available_parallelism)`; `Some(1)` forces a
    /// fully serial simulation. Results are bit-identical either way —
    /// the engine runs the same phase algorithm and merges per-rank
    /// shards in rank order — so this is purely a wall-clock knob.
    pub sim_workers: Option<usize>,
    /// Observability handle. Disabled by default: the engine then takes
    /// no timestamps and records no spans, and simulation results are
    /// byte-identical to an unobserved run either way (spans measure the
    /// *host* clock, never virtual time).
    pub obs: obs::Obs,
}

impl RunConfig {
    /// A run with `nranks` processes and defaults everywhere else.
    pub fn new(nranks: u32) -> Self {
        RunConfig {
            nranks,
            nthreads: 1,
            params: HashMap::new(),
            seed: 0x5EED,
            network: NetworkModel::default(),
            collection: CollectionConfig::default(),
            rank_slowdown: HashMap::new(),
            faults: FaultPlan::default(),
            sim_workers: None,
            obs: obs::Obs::disabled(),
        }
    }

    /// Attach an observability handle; the engine records phase,
    /// per-rank-segment and merge spans on it (host wall-clock).
    pub fn with_obs(mut self, obs: obs::Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Pin the simulation worker-pool size (`1` = serial).
    pub fn with_sim_workers(mut self, workers: usize) -> Self {
        self.sim_workers = Some(workers.max(1));
        self
    }

    /// Force a fully serial simulation (one rank at a time).
    pub fn serial_sim(self) -> Self {
        self.with_sim_workers(1)
    }

    /// Set threads per process.
    pub fn with_threads(mut self, nthreads: u32) -> Self {
        self.nthreads = nthreads;
        self
    }

    /// Override a scale parameter.
    pub fn with_param(mut self, name: &str, value: f64) -> Self {
        self.params.insert(name.to_string(), value);
        self
    }

    /// Set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the collection configuration.
    pub fn with_collection(mut self, collection: CollectionConfig) -> Self {
        self.collection = collection;
        self
    }

    /// Inject a degraded node: rank `rank` computes `factor`× slower.
    pub fn with_slow_rank(mut self, rank: u32, factor: f64) -> Self {
        self.rank_slowdown.insert(rank, factor);
        self
    }

    /// Install a hard-fault injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_monotone_in_size() {
        let net = NetworkModel::default();
        assert!(net.transfer_us(1 << 20) > net.transfer_us(64));
        assert!(net.transfer_us(0) >= net.latency_us);
    }

    #[test]
    fn builder_chain() {
        let cfg = RunConfig::new(64)
            .with_threads(4)
            .with_param("n", 256.0)
            .with_seed(7)
            .with_collection(CollectionConfig::off());
        assert_eq!(cfg.nranks, 64);
        assert_eq!(cfg.nthreads, 4);
        assert_eq!(cfg.params["n"], 256.0);
        assert_eq!(cfg.seed, 7);
        assert!(cfg.collection.sampling_period_us.is_none());
    }

    #[test]
    fn sim_worker_knob() {
        assert_eq!(RunConfig::new(4).sim_workers, None);
        assert_eq!(RunConfig::new(4).serial_sim().sim_workers, Some(1));
        assert_eq!(RunConfig::new(4).with_sim_workers(3).sim_workers, Some(3));
        // Zero is clamped: a pool always has at least one worker.
        assert_eq!(RunConfig::new(4).with_sim_workers(0).sim_workers, Some(1));
    }

    #[test]
    fn presets() {
        assert!(CollectionConfig::off().sampling_period_us.is_none());
        assert!(!CollectionConfig::sampling().trace_events);
        assert!(CollectionConfig::tracing().trace_events);
        assert_eq!(
            CollectionConfig::sampling().sampling_period_us,
            Some(5000.0) // 200 Hz
        );
    }
}
