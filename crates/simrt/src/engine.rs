//! The discrete-event engine: per-rank interpreters plus a central
//! communication matcher.
//!
//! Each rank interprets the program with an explicit frame stack and a
//! virtual clock. Ranks run independently until they *block* — on a
//! blocking receive, a rendezvous send, an `MPI_Wait(all)` whose request
//! is unmatched, or a collective. A matching engine pairs point-to-point
//! operations per `(src, dst, tag)` channel (eager below the threshold,
//! rendezvous above) and completes collectives when every rank arrived,
//! computing completion times from the network model. The scheduler
//! alternates "run all runnable ranks" and "resolve blocked ranks" phases
//! until every rank finishes; if neither phase makes progress the program
//! has deadlocked and the engine reports which ranks block where.
//!
//! Everything observable — samples, comm/lock records, message edges,
//! traces — flows through the [`Collector`].

use std::collections::{HashMap, VecDeque};

use progmodel::{CallTarget, CommOp, EvalCtx, Program, Stmt, StmtId, StmtKind};

use crate::cct::{CtxFrame, CtxId};
use crate::collector::Collector;
use crate::config::RunConfig;
use crate::faults::{fault_roll, FaultStream};
use crate::net::collective_cost;
use crate::record::{CommKindTag, CommRecord, MsgEdge, RankStatus, RunData};
use crate::threads::run_thread_region;

pub use crate::error::SimError;

const MAX_CALL_DEPTH: usize = 256;

/// Simulate one run of `prog` under `cfg`.
///
/// With an injected crash in `cfg.faults` the run still returns `Ok`:
/// surviving ranks complete (fail-fast notified of dead peers, collectives
/// shrunk to the survivors) and [`RunData::rank_status`] records who died
/// when. An injected hang instead returns [`SimError::Hang`] with the
/// hung ranks, the ranks blocked behind them and the virtual time — the
/// quiescence watchdog's triage of an otherwise silent stall.
pub fn simulate(prog: &Program, cfg: &RunConfig) -> Result<RunData, SimError> {
    let mut params = prog.default_params.clone();
    params.extend(cfg.params.iter().map(|(k, v)| (k.clone(), *v)));
    let mut engine = Engine::new(prog, cfg, params);
    engine.run()?;
    let elapsed: Vec<f64> = engine.ranks.iter().map(|r| r.clock).collect();
    let status = engine.statuses();
    Ok(engine.collector.finish(elapsed, status))
}

// ------------------------------------------------------------------ state

/// A posted, not-yet-consumed request (Isend/Irecv).
#[derive(Debug, Clone)]
struct Req {
    kind: CommKindTag,
    peer: u32,
    bytes: u64,
    #[allow(dead_code)]
    post: f64,
    completion: Option<f64>,
    /// Matched remote side (rank, stmt, ctx) once known.
    matched: Option<(u32, StmtId, CtxId)>,
    /// Still listed in `outstanding`.
    live: bool,
}

#[derive(Debug)]
enum FrameKind {
    Body,
    Loop { trips: u64, cur: u64 },
}

#[derive(Debug)]
struct Frame<'p> {
    stmts: &'p [Stmt],
    idx: usize,
    ctx: CtxId,
    kind: FrameKind,
}

#[derive(Debug, Clone)]
enum BlockInfo {
    /// Blocking send or recv; the matcher fills `resume`.
    P2p {
        kind: CommKindTag,
        ctx: CtxId,
        stmt: StmtId,
        peer: u32,
        bytes: u64,
        post: f64,
        /// Remote (rank, stmt, ctx) filled by the matcher.
        matched: Option<(u32, StmtId, CtxId)>,
    },
    /// Waiting for one request slot.
    Wait {
        slot: usize,
        ctx: CtxId,
        stmt: StmtId,
        post: f64,
    },
    /// Waiting for all outstanding requests.
    Waitall { ctx: CtxId, stmt: StmtId, post: f64 },
    /// Waiting for a collective instance.
    Coll {
        inst: u64,
        ctx: CtxId,
        stmt: StmtId,
        post: f64,
        kind: CommKindTag,
        bytes: u64,
    },
}

impl BlockInfo {
    fn stmt(&self) -> StmtId {
        match self {
            BlockInfo::P2p { stmt, .. }
            | BlockInfo::Wait { stmt, .. }
            | BlockInfo::Waitall { stmt, .. }
            | BlockInfo::Coll { stmt, .. } => *stmt,
        }
    }
}

#[derive(Debug)]
struct Blocked {
    resume: Option<f64>,
    info: BlockInfo,
}

/// Fault-injection health of one rank.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Health {
    /// Running normally.
    Ok,
    /// Crashed (injected) at the given virtual time.
    Crashed(f64),
    /// Stopped progressing at the given virtual time: an injected hang,
    /// or (`injected: false`) a survivor stuck forever behind a crash.
    Hung {
        at: f64,
        stmt: Option<StmtId>,
        injected: bool,
    },
}

impl Health {
    fn is_ok(self) -> bool {
        matches!(self, Health::Ok)
    }
}

struct RankState<'p> {
    rank: u32,
    clock: f64,
    frames: Vec<Frame<'p>>,
    iters: Vec<u64>,
    reqs: Vec<Req>,
    outstanding: Vec<usize>,
    coll_seq: u64,
    blocked: Option<Blocked>,
    done: bool,
    call_depth: usize,
    health: Health,
}

#[derive(Debug, Clone)]
struct SendInst {
    rank: u32,
    stmt: StmtId,
    ctx: CtxId,
    post: f64,
    bytes: u64,
    eager: bool,
    /// Sender request slot (`None` for a blocking send).
    req_slot: Option<usize>,
}

#[derive(Debug, Clone)]
struct RecvInst {
    rank: u32,
    stmt: StmtId,
    ctx: CtxId,
    post: f64,
    /// Receiver request slot (`None` for a blocking recv).
    req_slot: Option<usize>,
}

#[derive(Default)]
struct Channel {
    sends: VecDeque<SendInst>,
    recvs: VecDeque<RecvInst>,
}

struct CollInst {
    kind: CommKindTag,
    bytes: u64,
    posts: Vec<(u32, f64, CtxId, StmtId)>,
    completion: Option<f64>,
}

struct Engine<'p> {
    prog: &'p Program,
    cfg: &'p RunConfig,
    params: HashMap<String, f64>,
    ranks: Vec<RankState<'p>>,
    channels: HashMap<(u32, u32, u32), Channel>,
    collectives: HashMap<u64, CollInst>,
    collector: Collector,
    /// Monotone counter identifying message-drop rolls.
    match_count: u64,
}

enum StepOutcome {
    Progress,
    Blocked,
    Done,
}

impl<'p> Engine<'p> {
    fn new(prog: &'p Program, cfg: &'p RunConfig, params: HashMap<String, f64>) -> Self {
        let collector = Collector::new(
            cfg.collection.clone(),
            cfg.faults.clone(),
            cfg.seed,
            cfg.nranks,
            cfg.nthreads,
            prog.entry,
        );
        let root = collector.data.cct.root();
        let ranks = (0..cfg.nranks)
            .map(|rank| RankState {
                rank,
                clock: 0.0,
                frames: vec![Frame {
                    stmts: &prog.function(prog.entry).body,
                    idx: 0,
                    ctx: root,
                    kind: FrameKind::Body,
                }],
                iters: Vec::new(),
                reqs: Vec::new(),
                outstanding: Vec::new(),
                coll_seq: 0,
                blocked: None,
                done: false,
                call_depth: 0,
                health: Health::Ok,
            })
            .collect();
        Engine {
            prog,
            cfg,
            params,
            ranks,
            channels: HashMap::new(),
            collectives: HashMap::new(),
            collector,
            match_count: 0,
        }
    }

    fn run(&mut self) -> Result<(), SimError> {
        loop {
            let mut progressed = false;
            for r in 0..self.ranks.len() {
                if self.ranks[r].done
                    || self.ranks[r].blocked.is_some()
                    || !self.ranks[r].health.is_ok()
                {
                    continue;
                }
                progressed = true;
                loop {
                    // A scheduled crash/hang fires at the first event
                    // boundary at or after its virtual time.
                    if self.apply_rank_fault(r, false) {
                        break;
                    }
                    match self.step(r)? {
                        StepOutcome::Progress => continue,
                        StepOutcome::Blocked | StepOutcome::Done => break,
                    }
                }
            }
            let resolved = self.resolve_blocked();
            if self.ranks.iter().all(|r| r.done || !r.health.is_ok()) {
                return self.check_injected_hangs();
            }
            if !progressed && !resolved {
                // Quiescence watchdog. First, force any still-pending
                // scheduled fault onto its (blocked) rank: a rank whose
                // clock stopped short of its fault time would otherwise
                // never reach it.
                if self.apply_scheduled_faults_to_blocked() {
                    continue;
                }
                let blocked: Vec<(u32, StmtId)> = self
                    .ranks
                    .iter()
                    .filter(|r| r.health.is_ok())
                    .filter_map(|r| r.blocked.as_ref().map(|b| (r.rank, b.info.stmt())))
                    .collect();
                if self
                    .ranks
                    .iter()
                    .any(|r| matches!(r.health, Health::Hung { injected: true, .. }))
                {
                    return Err(self.hang_error(blocked));
                }
                if self
                    .ranks
                    .iter()
                    .any(|r| matches!(r.health, Health::Crashed(_)))
                {
                    // Survivors stuck forever behind the crash (e.g. a
                    // dependence the fail-fast notification cannot break):
                    // mark them hung and degrade gracefully to a partial
                    // run instead of failing the whole simulation.
                    for r in 0..self.ranks.len() {
                        if self.ranks[r].health.is_ok() && self.ranks[r].blocked.is_some() {
                            let at = self.ranks[r].clock;
                            self.stall_rank(r, at, false);
                        }
                    }
                    continue;
                }
                return Err(SimError::Deadlock { blocked });
            }
        }
    }

    // ------------------------------------------------------ fault injection

    /// Apply a scheduled crash/hang to rank `r` if due (its clock reached
    /// the fault time) or if `force` (the rank is stalled short of it).
    /// Returns whether a fault was applied.
    fn apply_rank_fault(&mut self, r: usize, force: bool) -> bool {
        if self.ranks[r].done || !self.ranks[r].health.is_ok() {
            return false;
        }
        let rank = self.ranks[r].rank;
        if let Some(&t) = self.cfg.faults.crash.get(&rank) {
            if self.ranks[r].clock >= t || force {
                self.crash_rank(r, self.ranks[r].clock.max(t));
                return true;
            }
        }
        if let Some(&t) = self.cfg.faults.hang.get(&rank) {
            if self.ranks[r].clock >= t || force {
                let at = self.ranks[r].clock.max(t);
                self.stall_rank(r, at, true);
                return true;
            }
        }
        false
    }

    /// Force pending scheduled faults onto blocked ranks (quiescence
    /// watchdog path). Returns whether anything fired.
    fn apply_scheduled_faults_to_blocked(&mut self) -> bool {
        let mut any = false;
        for r in 0..self.ranks.len() {
            if self.ranks[r].blocked.is_some() {
                any |= self.apply_rank_fault(r, true);
            }
        }
        any
    }

    /// Kill rank `r` at virtual time `at`: fail-fast notify peers blocked
    /// on it (an ULFM-style revoke) and shrink pending collectives to the
    /// survivors.
    fn crash_rank(&mut self, r: usize, at: f64) {
        let dead = self.ranks[r].rank;
        self.ranks[r].health = Health::Crashed(at);
        self.ranks[r].clock = at;
        self.ranks[r].blocked = None;
        self.ranks[r].frames.clear();
        // Peer notification: operations already targeting the dead rank
        // complete as failed no earlier than the crash.
        for p in 0..self.ranks.len() {
            if p == r {
                continue;
            }
            for req in &mut self.ranks[p].reqs {
                if req.live && req.peer == dead && req.completion.is_none() {
                    req.completion = Some(req.post.max(at));
                }
            }
            if let Some(b) = self.ranks[p].blocked.as_mut() {
                if let BlockInfo::P2p {
                    peer,
                    post,
                    matched: None,
                    ..
                } = &b.info
                {
                    if *peer == dead && b.resume.is_none() {
                        b.resume = Some(post.max(at));
                    }
                }
            }
        }
        self.recheck_collectives();
    }

    /// Stop rank `r` from progressing at virtual time `at` without
    /// killing it ([`Health::Hung`]). `injected` distinguishes a planned
    /// hang from a survivor derived-stalled behind a crash.
    fn stall_rank(&mut self, r: usize, at: f64, injected: bool) {
        let stmt = self.ranks[r]
            .blocked
            .as_ref()
            .map(|b| b.info.stmt())
            .or_else(|| {
                self.ranks[r]
                    .frames
                    .last()
                    .and_then(|f| f.stmts.get(f.idx))
                    .map(|s| s.id)
            });
        self.ranks[r].health = Health::Hung { at, stmt, injected };
        self.ranks[r].clock = self.ranks[r].clock.max(at);
        self.ranks[r].blocked = None;
    }

    /// `Err(SimError::Hang)` describing every injected-hung rank plus the
    /// healthy ranks blocked behind them.
    fn hang_error(&self, blocked: Vec<(u32, StmtId)>) -> SimError {
        let hung = self
            .ranks
            .iter()
            .filter_map(|r| match r.health {
                Health::Hung {
                    at,
                    stmt,
                    injected: true,
                } => Some((r.rank, stmt, at)),
                _ => None,
            })
            .collect();
        let virtual_time_us = self.ranks.iter().map(|r| r.clock).fold(0.0, f64::max);
        SimError::Hang {
            hung,
            blocked,
            virtual_time_us,
        }
    }

    /// At termination: an injected hang is an error even when no other
    /// rank was blocked behind it — a silently missing rank must never
    /// look like a clean run.
    fn check_injected_hangs(&self) -> Result<(), SimError> {
        if self
            .ranks
            .iter()
            .any(|r| matches!(r.health, Health::Hung { injected: true, .. }))
        {
            return Err(self.hang_error(Vec::new()));
        }
        Ok(())
    }

    /// Terminal per-rank statuses (valid once `run` returned `Ok`).
    fn statuses(&self) -> Vec<RankStatus> {
        self.ranks
            .iter()
            .map(|r| match r.health {
                Health::Ok => RankStatus::Completed,
                Health::Crashed(at) => RankStatus::Crashed { at_us: at },
                Health::Hung { at, .. } => RankStatus::Hung { at_us: at },
            })
            .collect()
    }

    /// True when `rank` has crashed.
    fn is_crashed(&self, rank: u32) -> bool {
        matches!(self.ranks[rank as usize].health, Health::Crashed(_))
    }

    /// A collective completes when every *live* (non-crashed) rank has
    /// posted; crashed ranks are dropped from the membership (the
    /// shrunken communicator), while hung ranks still count — a hang
    /// blocks collectives, which is how it propagates.
    fn collective_ready(&self, inst: &CollInst) -> bool {
        (0..self.cfg.nranks)
            .filter(|&x| !self.is_crashed(x))
            .all(|x| inst.posts.iter().any(|&(pr, _, _, _)| pr == x))
    }

    /// Complete collective `inst` if every live rank has posted.
    fn complete_collective_if_ready(&mut self, inst: u64) {
        let Some(c) = self.collectives.get(&inst) else {
            return;
        };
        if c.completion.is_some() || !self.collective_ready(c) {
            return;
        }
        let cost = collective_cost(&self.cfg.network, c.kind, c.bytes, self.cfg.nranks);
        let entry = self
            .collectives
            .get_mut(&inst)
            .expect("instance exists: fetched above");
        let max_post = entry
            .posts
            .iter()
            .map(|&(_, p, _, _)| p)
            .fold(f64::NEG_INFINITY, f64::max);
        entry.completion = Some(max_post + cost);
    }

    /// Re-evaluate pending collectives after a crash shrank the
    /// membership: instances now complete over the survivors.
    fn recheck_collectives(&mut self) {
        let insts: Vec<u64> = self
            .collectives
            .iter()
            .filter(|(_, c)| c.completion.is_none())
            .map(|(&i, _)| i)
            .collect();
        for i in insts {
            self.complete_collective_if_ready(i);
        }
    }

    /// Complete a point-to-point operation addressed to a crashed peer
    /// immediately as failed (fail-fast notification): the survivor must
    /// not block on a rank that can never answer.
    #[allow(clippy::too_many_arguments)]
    fn fail_fast_p2p(
        &mut self,
        r: usize,
        kind: CommKindTag,
        ctx: CtxId,
        stmt: StmtId,
        peer: u32,
        bytes: u64,
        nonblocking: bool,
    ) {
        let overhead = self.cfg.network.op_overhead_us;
        let post = self.ranks[r].clock;
        if nonblocking {
            let slot = self.push_req(r, kind, peer, bytes, post);
            self.ranks[r].reqs[slot].completion = Some(post + overhead);
        }
        let rank = self.ranks[r].rank;
        self.advance(r, overhead, ctx);
        self.collector.comm(CommRecord {
            rank,
            ctx,
            stmt,
            kind,
            peer,
            bytes,
            post,
            complete: post + overhead,
            wait: 0.0,
        });
        self.collector.trace(rank, stmt, post, post + overhead);
        self.ranks[r].frames.last_mut().unwrap().idx += 1;
    }

    // --------------------------------------------------------- interpreter

    fn eval_ctx<'a>(&'a self, r: usize) -> EvalCtx<'a> {
        let rs = &self.ranks[r];
        EvalCtx {
            rank: rs.rank,
            nranks: self.cfg.nranks,
            thread: 0,
            nthreads: self.cfg.nthreads,
            iters: &rs.iters,
            params: &self.params,
            seed: self.cfg.seed,
        }
    }

    /// Advance rank `r`'s clock by `dt`, attributing the interval to
    /// `ctx`. Fired samples charge their handler cost to the clock — the
    /// observer effect the Table-1 overhead experiment measures.
    fn advance(&mut self, r: usize, dt: f64, ctx: CtxId) {
        debug_assert!(dt >= 0.0);
        let t0 = self.ranks[r].clock;
        let t1 = t0 + dt;
        let fired = self.collector.account(self.ranks[r].rank, 0, ctx, t0, t1);
        self.ranks[r].clock = t1 + fired as f64 * self.collector.sample_cost_us();
    }

    /// Execute one step of rank `r`. Must only be called when unblocked.
    fn step(&mut self, r: usize) -> Result<StepOutcome, SimError> {
        // Handle frame exhaustion / loop iteration.
        loop {
            let frame = match self.ranks[r].frames.last() {
                Some(f) => f,
                None => {
                    self.ranks[r].done = true;
                    return Ok(StepOutcome::Done);
                }
            };
            if frame.idx < frame.stmts.len() {
                break;
            }
            let frame = self.ranks[r].frames.last_mut().unwrap();
            match &mut frame.kind {
                FrameKind::Loop { trips, cur } if *cur + 1 < *trips => {
                    *cur += 1;
                    frame.idx = 0;
                    let cur = *cur;
                    *self.ranks[r].iters.last_mut().unwrap() = cur;
                }
                FrameKind::Loop { .. } => {
                    self.ranks[r].iters.pop();
                    self.ranks[r].frames.pop();
                }
                FrameKind::Body => {
                    self.ranks[r].frames.pop();
                    if self.ranks[r].call_depth > 0 {
                        self.ranks[r].call_depth -= 1;
                    }
                }
            }
            if self.ranks[r].frames.is_empty() {
                self.ranks[r].done = true;
                return Ok(StepOutcome::Done);
            }
        }

        let frame = self.ranks[r].frames.last().unwrap();
        let stmt: &'p Stmt = &frame.stmts[frame.idx];
        let parent_ctx = frame.ctx;
        let ctx = self
            .collector
            .data
            .cct
            .child(parent_ctx, CtxFrame::Stmt(stmt.id));

        match &stmt.kind {
            StmtKind::Compute { cost_us, pmu, .. } => {
                let slow = self
                    .cfg
                    .rank_slowdown
                    .get(&self.ranks[r].rank)
                    .copied()
                    .unwrap_or(1.0);
                let dt = cost_us.eval(&self.eval_ctx(r)).max(0.0) * slow;
                let t0 = self.ranks[r].clock;
                self.advance(r, dt, ctx);
                self.collector.pmu(ctx, dt, pmu);
                self.collector
                    .trace(self.ranks[r].rank, stmt.id, t0, t0 + dt);
                self.ranks[r].clock += self.collector.trace_probe_cost_us();
                self.ranks[r].frames.last_mut().unwrap().idx += 1;
                Ok(StepOutcome::Progress)
            }
            StmtKind::Loop { trips, body, .. } => {
                let n = trips.eval_u64(&self.eval_ctx(r));
                self.ranks[r].frames.last_mut().unwrap().idx += 1;
                if n > 0 {
                    self.ranks[r].iters.push(0);
                    self.ranks[r].frames.push(Frame {
                        stmts: body,
                        idx: 0,
                        ctx,
                        kind: FrameKind::Loop { trips: n, cur: 0 },
                    });
                }
                Ok(StepOutcome::Progress)
            }
            StmtKind::Branch {
                cond,
                then_body,
                else_body,
                ..
            } => {
                let taken = cond.eval(&self.eval_ctx(r)) != 0.0;
                self.ranks[r].frames.last_mut().unwrap().idx += 1;
                let body = if taken { then_body } else { else_body };
                if !body.is_empty() {
                    self.ranks[r].frames.push(Frame {
                        stmts: body,
                        idx: 0,
                        ctx,
                        kind: FrameKind::Body,
                    });
                }
                Ok(StepOutcome::Progress)
            }
            StmtKind::Call { target } => {
                if self.ranks[r].call_depth >= MAX_CALL_DEPTH {
                    return Err(SimError::StackOverflow { stmt: stmt.id });
                }
                let fid = match target {
                    CallTarget::Static(f) => *f,
                    CallTarget::Indirect {
                        candidates,
                        selector,
                    } => {
                        let idx = selector.eval_u64(&self.eval_ctx(r)) as usize % candidates.len();
                        let fid = candidates[idx];
                        self.collector.indirect(stmt.id, fid);
                        fid
                    }
                };
                let fctx = self.collector.data.cct.child(ctx, CtxFrame::Func(fid));
                self.ranks[r].frames.last_mut().unwrap().idx += 1;
                self.ranks[r].call_depth += 1;
                self.ranks[r].frames.push(Frame {
                    stmts: &self.prog.function(fid).body,
                    idx: 0,
                    ctx: fctx,
                    kind: FrameKind::Body,
                });
                Ok(StepOutcome::Progress)
            }
            StmtKind::ThreadRegion { threads, body } => {
                let t = threads.eval_u64(&self.eval_ctx(r)).max(1) as u32;
                let start = self.ranks[r].clock;
                let iters = self.ranks[r].iters.clone();
                let slow = self
                    .cfg
                    .rank_slowdown
                    .get(&self.ranks[r].rank)
                    .copied()
                    .unwrap_or(1.0);
                let end = run_thread_region(
                    self.prog,
                    body,
                    ctx,
                    start,
                    self.ranks[r].rank,
                    self.cfg.nranks,
                    t,
                    &self.params,
                    self.cfg.seed,
                    &iters,
                    slow,
                    &mut self.collector,
                )?;
                self.ranks[r].clock = end;
                self.ranks[r].frames.last_mut().unwrap().idx += 1;
                Ok(StepOutcome::Progress)
            }
            StmtKind::Lock { lock, hold_us, .. } => {
                // Rank-level lock: no intra-process contention (single
                // thread), but still recorded for completeness.
                let hold = hold_us.eval(&self.eval_ctx(r)).max(0.0);
                let t0 = self.ranks[r].clock;
                self.advance(r, hold, ctx);
                self.collector.lock(crate::record::LockRecord {
                    rank: self.ranks[r].rank,
                    thread: 0,
                    ctx,
                    stmt: stmt.id,
                    lock: lock.0,
                    request: t0,
                    acquire: t0,
                    release: t0 + hold,
                    blocked_by: None,
                });
                self.collector
                    .trace(self.ranks[r].rank, stmt.id, t0, t0 + hold);
                self.ranks[r].frames.last_mut().unwrap().idx += 1;
                Ok(StepOutcome::Progress)
            }
            StmtKind::Comm(op) => self.step_comm(r, stmt, ctx, op),
        }
    }

    // ------------------------------------------------------ communication

    fn eval_peer(&self, r: usize, e: &progmodel::Expr, stmt: StmtId) -> Result<u32, SimError> {
        let v = e.eval(&self.eval_ctx(r)).round() as i64;
        if v < 0 || v >= self.cfg.nranks as i64 {
            return Err(SimError::BadPeer {
                stmt,
                peer: v,
                nranks: self.cfg.nranks,
            });
        }
        Ok(v as u32)
    }

    fn step_comm(
        &mut self,
        r: usize,
        stmt: &'p Stmt,
        ctx: CtxId,
        op: &'p CommOp,
    ) -> Result<StepOutcome, SimError> {
        let rank = self.ranks[r].rank;
        // PMPI wrapper / trace-event cost of intercepting this call.
        self.ranks[r].clock += self.collector.comm_call_cost_us();
        let net = &self.cfg.network;
        let overhead = net.op_overhead_us;
        match op {
            CommOp::Isend { peer, bytes, tag } => {
                let peer = self.eval_peer(r, peer, stmt.id)?;
                let bytes = bytes.eval_u64(&self.eval_ctx(r));
                if self.is_crashed(peer) {
                    self.fail_fast_p2p(r, CommKindTag::Isend, ctx, stmt.id, peer, bytes, true);
                    return Ok(StepOutcome::Progress);
                }
                let post = self.ranks[r].clock;
                let eager = bytes <= net.eager_threshold;
                let slot = self.push_req(r, CommKindTag::Isend, peer, bytes, post);
                if eager {
                    self.ranks[r].reqs[slot].completion = Some(post + overhead);
                }
                self.channels
                    .entry((rank, peer, *tag))
                    .or_default()
                    .sends
                    .push_back(SendInst {
                        rank,
                        stmt: stmt.id,
                        ctx,
                        post,
                        bytes,
                        eager,
                        req_slot: Some(slot),
                    });
                self.advance(r, overhead, ctx);
                self.collector.comm(CommRecord {
                    rank,
                    ctx,
                    stmt: stmt.id,
                    kind: CommKindTag::Isend,
                    peer,
                    bytes,
                    post,
                    complete: post + overhead,
                    wait: 0.0,
                });
                self.collector.trace(rank, stmt.id, post, post + overhead);
                self.try_match((rank, peer, *tag));
                self.ranks[r].frames.last_mut().unwrap().idx += 1;
                Ok(StepOutcome::Progress)
            }
            CommOp::Irecv { peer, bytes, tag } => {
                let peer = self.eval_peer(r, peer, stmt.id)?;
                let bytes = bytes.eval_u64(&self.eval_ctx(r));
                if self.is_crashed(peer) {
                    self.fail_fast_p2p(r, CommKindTag::Irecv, ctx, stmt.id, peer, bytes, true);
                    return Ok(StepOutcome::Progress);
                }
                let post = self.ranks[r].clock;
                let slot = self.push_req(r, CommKindTag::Irecv, peer, bytes, post);
                self.channels
                    .entry((peer, rank, *tag))
                    .or_default()
                    .recvs
                    .push_back(RecvInst {
                        rank,
                        stmt: stmt.id,
                        ctx,
                        post,
                        req_slot: Some(slot),
                    });
                self.advance(r, overhead, ctx);
                self.collector.comm(CommRecord {
                    rank,
                    ctx,
                    stmt: stmt.id,
                    kind: CommKindTag::Irecv,
                    peer,
                    bytes,
                    post,
                    complete: post + overhead,
                    wait: 0.0,
                });
                self.collector.trace(rank, stmt.id, post, post + overhead);
                self.try_match((peer, rank, *tag));
                self.ranks[r].frames.last_mut().unwrap().idx += 1;
                Ok(StepOutcome::Progress)
            }
            CommOp::Send { peer, bytes, tag } => {
                let peer = self.eval_peer(r, peer, stmt.id)?;
                let bytes = bytes.eval_u64(&self.eval_ctx(r));
                if self.is_crashed(peer) {
                    self.fail_fast_p2p(r, CommKindTag::Send, ctx, stmt.id, peer, bytes, false);
                    return Ok(StepOutcome::Progress);
                }
                let post = self.ranks[r].clock;
                let eager = bytes <= net.eager_threshold;
                self.channels
                    .entry((rank, peer, *tag))
                    .or_default()
                    .sends
                    .push_back(SendInst {
                        rank,
                        stmt: stmt.id,
                        ctx,
                        post,
                        bytes,
                        eager,
                        req_slot: None,
                    });
                if eager {
                    // Eager send completes locally; receiver matches later.
                    self.advance(r, overhead, ctx);
                    self.collector.comm(CommRecord {
                        rank,
                        ctx,
                        stmt: stmt.id,
                        kind: CommKindTag::Send,
                        peer,
                        bytes,
                        post,
                        complete: post + overhead,
                        wait: 0.0,
                    });
                    self.collector.trace(rank, stmt.id, post, post + overhead);
                    self.try_match((rank, peer, *tag));
                    self.ranks[r].frames.last_mut().unwrap().idx += 1;
                    Ok(StepOutcome::Progress)
                } else {
                    self.ranks[r].blocked = Some(Blocked {
                        resume: None,
                        info: BlockInfo::P2p {
                            kind: CommKindTag::Send,
                            ctx,
                            stmt: stmt.id,
                            peer,
                            bytes,
                            post,
                            matched: None,
                        },
                    });
                    self.try_match((rank, peer, *tag));
                    Ok(StepOutcome::Blocked)
                }
            }
            CommOp::Recv { peer, bytes, tag } => {
                let peer = self.eval_peer(r, peer, stmt.id)?;
                let bytes = bytes.eval_u64(&self.eval_ctx(r));
                if self.is_crashed(peer) {
                    self.fail_fast_p2p(r, CommKindTag::Recv, ctx, stmt.id, peer, bytes, false);
                    return Ok(StepOutcome::Progress);
                }
                let post = self.ranks[r].clock;
                self.channels
                    .entry((peer, rank, *tag))
                    .or_default()
                    .recvs
                    .push_back(RecvInst {
                        rank,
                        stmt: stmt.id,
                        ctx,
                        post,
                        req_slot: None,
                    });
                self.ranks[r].blocked = Some(Blocked {
                    resume: None,
                    info: BlockInfo::P2p {
                        kind: CommKindTag::Recv,
                        ctx,
                        stmt: stmt.id,
                        peer,
                        bytes,
                        post,
                        matched: None,
                    },
                });
                self.try_match((peer, rank, *tag));
                Ok(StepOutcome::Blocked)
            }
            CommOp::Wait { back } => {
                let outstanding = self.ranks[r].outstanding.len();
                let Some(i) = outstanding.checked_sub(1 + *back as usize) else {
                    return Err(SimError::BadWait {
                        stmt: stmt.id,
                        back: *back,
                        outstanding,
                    });
                };
                let slot = self.ranks[r].outstanding[i];
                let post = self.ranks[r].clock;
                self.ranks[r].blocked = Some(Blocked {
                    resume: None,
                    info: BlockInfo::Wait {
                        slot,
                        ctx,
                        stmt: stmt.id,
                        post,
                    },
                });
                Ok(StepOutcome::Blocked)
            }
            CommOp::Waitall => {
                let post = self.ranks[r].clock;
                self.ranks[r].blocked = Some(Blocked {
                    resume: None,
                    info: BlockInfo::Waitall {
                        ctx,
                        stmt: stmt.id,
                        post,
                    },
                });
                Ok(StepOutcome::Blocked)
            }
            CommOp::Barrier
            | CommOp::Bcast { .. }
            | CommOp::Reduce { .. }
            | CommOp::Allreduce { .. }
            | CommOp::Alltoall { .. } => {
                let (kind, bytes) = match op {
                    CommOp::Barrier => (CommKindTag::Barrier, 0),
                    CommOp::Bcast { bytes, .. } => {
                        (CommKindTag::Bcast, bytes.eval_u64(&self.eval_ctx(r)))
                    }
                    CommOp::Reduce { bytes, .. } => {
                        (CommKindTag::Reduce, bytes.eval_u64(&self.eval_ctx(r)))
                    }
                    CommOp::Allreduce { bytes } => {
                        (CommKindTag::Allreduce, bytes.eval_u64(&self.eval_ctx(r)))
                    }
                    CommOp::Alltoall { bytes } => {
                        (CommKindTag::Alltoall, bytes.eval_u64(&self.eval_ctx(r)))
                    }
                    _ => unreachable!(),
                };
                let inst = self.ranks[r].coll_seq;
                self.ranks[r].coll_seq += 1;
                let post = self.ranks[r].clock;
                {
                    let entry = self.collectives.entry(inst).or_insert_with(|| CollInst {
                        kind,
                        bytes: 0,
                        posts: Vec::new(),
                        completion: None,
                    });
                    debug_assert_eq!(
                        entry.kind, kind,
                        "ranks disagree on collective {inst}: {:?} vs {kind:?}",
                        entry.kind
                    );
                    entry.bytes = entry.bytes.max(bytes);
                    entry.posts.push((rank, post, ctx, stmt.id));
                }
                self.complete_collective_if_ready(inst);
                self.ranks[r].blocked = Some(Blocked {
                    resume: None,
                    info: BlockInfo::Coll {
                        inst,
                        ctx,
                        stmt: stmt.id,
                        post,
                        kind,
                        bytes,
                    },
                });
                Ok(StepOutcome::Blocked)
            }
        }
    }

    fn push_req(&mut self, r: usize, kind: CommKindTag, peer: u32, bytes: u64, post: f64) -> usize {
        let slot = self.ranks[r].reqs.len();
        self.ranks[r].reqs.push(Req {
            kind,
            peer,
            bytes,
            post,
            completion: None,
            matched: None,
            live: true,
        });
        self.ranks[r].outstanding.push(slot);
        slot
    }

    /// Match pending sends/recvs on one channel, computing completions.
    fn try_match(&mut self, key: (u32, u32, u32)) {
        loop {
            let Some(chan) = self.channels.get_mut(&key) else {
                return;
            };
            if chan.sends.is_empty() || chan.recvs.is_empty() {
                return;
            }
            let send = chan.sends.pop_front().unwrap();
            let recv = chan.recvs.pop_front().unwrap();
            let overhead = self.cfg.network.op_overhead_us;
            let mut transfer = self.cfg.network.transfer_us(send.bytes);
            // Injected network fault: this message is dropped and
            // retransmitted after a timeout, stretching its transfer.
            // Each match has a stable identity (arrival order is
            // deterministic), so the drop pattern replays under a seed.
            if self.cfg.faults.msg_drop_rate > 0.0 {
                let id = self.match_count;
                self.match_count += 1;
                if fault_roll(self.cfg.seed, FaultStream::MsgDrop, id, 0)
                    < self.cfg.faults.msg_drop_rate
                {
                    transfer += self.cfg.faults.msg_delay_us;
                    self.collector.retransmit();
                }
            }
            let (send_complete, xfer_end) = if send.eager {
                (send.post + overhead, send.post + overhead + transfer)
            } else {
                let end = send.post.max(recv.post) + transfer;
                (end, end)
            };
            let recv_complete = recv.post.max(xfer_end);

            // Sender side.
            match send.req_slot {
                Some(slot) => {
                    let req = &mut self.ranks[send.rank as usize].reqs[slot];
                    req.completion = Some(send_complete);
                    req.matched = Some((recv.rank, recv.stmt, recv.ctx));
                }
                None if send.eager => {
                    // Eager blocking send: completed locally at post time;
                    // nothing to resolve on the sender side.
                }
                None => {
                    // Blocking rendezvous send: unblock.
                    let rs = &mut self.ranks[send.rank as usize];
                    if let Some(b) = rs.blocked.as_mut() {
                        debug_assert!(
                            matches!(
                                b.info,
                                BlockInfo::P2p {
                                    kind: CommKindTag::Send,
                                    ..
                                }
                            ),
                            "rendezvous sender must be blocked on its send"
                        );
                        b.resume = Some(send_complete);
                        if let BlockInfo::P2p { matched, .. } = &mut b.info {
                            *matched = Some((recv.rank, recv.stmt, recv.ctx));
                        }
                    }
                    // Late receiver delayed the sender: dependence edge
                    // receiver → sender.
                    if recv.post > send.post {
                        self.collector.msg_edge(MsgEdge {
                            src_rank: recv.rank,
                            src_stmt: recv.stmt,
                            src_ctx: recv.ctx,
                            dst_rank: send.rank,
                            dst_stmt: send.stmt,
                            dst_ctx: send.ctx,
                            bytes: send.bytes,
                            kind: CommKindTag::Send,
                            wait: recv.post - send.post,
                        });
                    }
                }
            }
            // Receiver side.
            match recv.req_slot {
                Some(slot) => {
                    let req = &mut self.ranks[recv.rank as usize].reqs[slot];
                    req.completion = Some(recv_complete);
                    req.matched = Some((send.rank, send.stmt, send.ctx));
                }
                None => {
                    let rs = &mut self.ranks[recv.rank as usize];
                    if let Some(b) = rs.blocked.as_mut() {
                        b.resume = Some(recv_complete);
                        if let BlockInfo::P2p { matched, .. } = &mut b.info {
                            *matched = Some((send.rank, send.stmt, send.ctx));
                        }
                    }
                }
            }
        }
    }

    // ---------------------------------------------------------- resolution

    /// Resolve blocked ranks whose completion is now computable. Returns
    /// whether any rank was unblocked.
    fn resolve_blocked(&mut self) -> bool {
        let mut any = false;
        for r in 0..self.ranks.len() {
            let Some(blocked) = self.ranks[r].blocked.take() else {
                continue;
            };
            match self.try_finish(r, &blocked) {
                true => {
                    any = true;
                }
                false => {
                    self.ranks[r].blocked = Some(blocked);
                }
            }
        }
        any
    }

    /// Attempt to complete a blocked operation; true if the rank resumed.
    fn try_finish(&mut self, r: usize, blocked: &Blocked) -> bool {
        let rank = self.ranks[r].rank;
        match &blocked.info {
            BlockInfo::P2p {
                kind,
                ctx,
                stmt,
                peer,
                bytes,
                post,
                matched,
            } => {
                let Some(resume) = blocked.resume else {
                    return false;
                };
                let wait = (resume - post).max(0.0);
                let fired = self.collector.account(rank, 0, *ctx, *post, resume);
                let resume = resume + fired as f64 * self.collector.sample_cost_us();
                self.collector.comm(CommRecord {
                    rank,
                    ctx: *ctx,
                    stmt: *stmt,
                    kind: *kind,
                    peer: *peer,
                    bytes: *bytes,
                    post: *post,
                    complete: resume,
                    wait,
                });
                self.collector.trace(rank, *stmt, *post, resume);
                if *kind == CommKindTag::Recv && wait > 0.0 {
                    if let Some((src_rank, src_stmt, src_ctx)) = matched {
                        self.collector.msg_edge(MsgEdge {
                            src_rank: *src_rank,
                            src_stmt: *src_stmt,
                            src_ctx: *src_ctx,
                            dst_rank: rank,
                            dst_stmt: *stmt,
                            dst_ctx: *ctx,
                            bytes: *bytes,
                            kind: CommKindTag::Recv,
                            wait,
                        });
                    }
                }
                self.ranks[r].clock = resume.max(self.ranks[r].clock);
                self.ranks[r].frames.last_mut().unwrap().idx += 1;
                self.ranks[r].blocked = None;
                true
            }
            BlockInfo::Wait {
                slot,
                ctx,
                stmt,
                post,
            } => {
                let Some(completion) = self.ranks[r].reqs[*slot].completion else {
                    return false;
                };
                let resume = completion.max(*post);
                self.finish_requests(r, &[*slot], *ctx, *stmt, *post, resume, CommKindTag::Wait);
                true
            }
            BlockInfo::Waitall { ctx, stmt, post } => {
                let slots: Vec<usize> = self.ranks[r].outstanding.clone();
                let mut resume = *post;
                for &s in &slots {
                    match self.ranks[r].reqs[s].completion {
                        Some(c) => resume = resume.max(c),
                        None => return false,
                    }
                }
                self.finish_requests(r, &slots, *ctx, *stmt, *post, resume, CommKindTag::Waitall);
                true
            }
            BlockInfo::Coll {
                inst,
                ctx,
                stmt,
                post,
                kind,
                bytes,
            } => {
                let Some(completion) = self.collectives.get(inst).and_then(|c| c.completion) else {
                    return false;
                };
                let resume = completion.max(*post);
                let wait = resume - post;
                let fired = self.collector.account(rank, 0, *ctx, *post, resume);
                let resume = resume + fired as f64 * self.collector.sample_cost_us();
                self.collector.comm(CommRecord {
                    rank,
                    ctx: *ctx,
                    stmt: *stmt,
                    kind: *kind,
                    peer: u32::MAX,
                    bytes: *bytes,
                    post: *post,
                    complete: resume,
                    wait,
                });
                self.collector.trace(rank, *stmt, *post, resume);
                // Dependence edge from the last arriver to this rank.
                if let Some(ci) = self.collectives.get(inst) {
                    if let Some(&(late_rank, late_post, late_ctx, late_stmt)) =
                        ci.posts.iter().max_by(|a, b| a.1.total_cmp(&b.1))
                    {
                        if late_rank != rank && wait > 0.0 && late_post > *post {
                            self.collector.msg_edge(MsgEdge {
                                src_rank: late_rank,
                                src_stmt: late_stmt,
                                src_ctx: late_ctx,
                                dst_rank: rank,
                                dst_stmt: *stmt,
                                dst_ctx: *ctx,
                                bytes: *bytes,
                                kind: *kind,
                                wait,
                            });
                        }
                    }
                }
                self.ranks[r].clock = resume;
                self.ranks[r].frames.last_mut().unwrap().idx += 1;
                self.ranks[r].blocked = None;
                true
            }
        }
    }

    /// Complete a Wait/Waitall: retire request slots, record, resume.
    #[allow(clippy::too_many_arguments)]
    fn finish_requests(
        &mut self,
        r: usize,
        slots: &[usize],
        ctx: CtxId,
        stmt: StmtId,
        post: f64,
        resume: f64,
        kind: CommKindTag,
    ) {
        let rank = self.ranks[r].rank;
        let wait = (resume - post).max(0.0);
        let fired = self.collector.account(rank, 0, ctx, post, resume);
        let resume = resume + fired as f64 * self.collector.sample_cost_us();
        // A single-request wait reports its request's peer; Waitall has no
        // single peer.
        let peer = if slots.len() == 1 {
            self.ranks[r].reqs[slots[0]].peer
        } else {
            u32::MAX
        };
        let mut bytes_total = 0;
        for &s in slots {
            let req = self.ranks[r].reqs[s].clone();
            bytes_total += req.bytes;
            self.ranks[r].reqs[s].live = false;
            // A matched remote operation that delayed this wait produces a
            // dependence edge onto the wait statement.
            if let (Some((src_rank, src_stmt, src_ctx)), Some(c)) = (req.matched, req.completion) {
                if req.kind == CommKindTag::Irecv && c > post {
                    self.collector.msg_edge(MsgEdge {
                        src_rank,
                        src_stmt,
                        src_ctx,
                        dst_rank: rank,
                        dst_stmt: stmt,
                        dst_ctx: ctx,
                        bytes: req.bytes,
                        kind,
                        wait: c - post,
                    });
                }
            }
        }
        self.ranks[r].outstanding.retain(|s| !slots.contains(s));
        self.collector.comm(CommRecord {
            rank,
            ctx,
            stmt,
            kind,
            peer,
            bytes: bytes_total,
            post,
            complete: resume,
            wait,
        });
        self.collector.trace(rank, stmt, post, resume);
        self.ranks[r].clock = resume;
        self.ranks[r].frames.last_mut().unwrap().idx += 1;
        self.ranks[r].blocked = None;
    }
}
