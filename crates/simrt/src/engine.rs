//! The discrete-event engine: per-rank interpreters plus a central
//! communication matcher, organised as a *phase-based* scheduler so the
//! ranks can be simulated on a worker pool.
//!
//! Each rank interprets the program with an explicit frame stack and a
//! virtual clock. A *segment* runs one rank until it blocks — on a
//! blocking receive, a rendezvous send, an `MPI_Wait(all)` whose request
//! is unmatched, or a collective. Segments touch only rank-local state:
//! the rank's [`RankState`], its own [`Collector`] shard (with its own
//! CCT), and a buffer of *effects* (channel posts, collective arrivals)
//! to be published later. Between phases the scheduler — always a single
//! thread — applies the buffered effects in rank order, pairs
//! point-to-point operations per `(src, dst, tag)` channel (eager below
//! the threshold, rendezvous above), completes collectives when every
//! live rank arrived, and resolves blocked ranks. Because segments are
//! independent and every cross-rank step is serial and rank-ordered, the
//! result is bit-identical whether the segments of a phase run one at a
//! time or concurrently on the pool ([`RunConfig::sim_workers`]).
//!
//! If neither the segment phase nor resolution makes progress the program
//! has deadlocked and the engine reports which ranks block where (after
//! the quiescence watchdog gives pending injected faults a last chance to
//! fire).
//!
//! Everything observable — samples, comm/lock records, message edges,
//! traces — flows through the per-rank [`Collector`] shards, which
//! [`merge_shards`] folds back into one [`RunData`] in rank order.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

use progmodel::{CallTarget, CommOp, EvalCtx, Program, Stmt, StmtId, StmtKind};

use crate::cct::{CtxFrame, CtxId};
use crate::collector::{merge_shards, Collector};
use crate::config::RunConfig;
use crate::faults::{fault_roll, FaultStream};
use crate::net::collective_cost;
use crate::record::{CommKindTag, CommRecord, LockRecord, MsgEdge, RankStatus, RunData};
use crate::threads::run_thread_region;

pub use crate::error::SimError;

const MAX_CALL_DEPTH: usize = 256;

/// Simulate one run of `prog` under `cfg`.
///
/// With an injected crash in `cfg.faults` the run still returns `Ok`:
/// surviving ranks complete (fail-fast notified of dead peers, collectives
/// shrunk to the survivors) and [`RunData::rank_status`] records who died
/// when. An injected hang instead returns [`SimError::Hang`] with the
/// hung ranks, the ranks blocked behind them and the virtual time — the
/// quiescence watchdog's triage of an otherwise silent stall.
pub fn simulate(prog: &Program, cfg: &RunConfig) -> Result<RunData, SimError> {
    // Span measures host wall-clock only; the simulation's virtual clocks
    // and all collected data are unaffected by observation.
    let _span = cfg.obs.span(obs::Layer::Simrt, "simulate", 0);
    let mut params = prog.default_params.clone();
    params.extend(cfg.params.iter().map(|(k, v)| (k.clone(), *v)));
    let mut engine = Engine::new(prog, cfg, params);
    engine.run()?;
    Ok(engine.finish())
}

// ------------------------------------------------------------------ state

/// A posted, not-yet-consumed request (Isend/Irecv).
#[derive(Debug, Clone)]
struct Req {
    kind: CommKindTag,
    peer: u32,
    bytes: u64,
    post: f64,
    completion: Option<f64>,
    /// Matched remote side (rank, stmt, ctx) once known.
    matched: Option<(u32, StmtId, CtxId)>,
    /// Still listed in `outstanding`.
    live: bool,
}

#[derive(Debug)]
enum FrameKind {
    Body,
    Loop { trips: u64, cur: u64 },
}

#[derive(Debug)]
struct Frame<'p> {
    stmts: &'p [Stmt],
    idx: usize,
    ctx: CtxId,
    kind: FrameKind,
}

#[derive(Debug, Clone)]
enum BlockInfo {
    /// Blocking send or recv; the matcher fills `resume`.
    P2p {
        kind: CommKindTag,
        ctx: CtxId,
        stmt: StmtId,
        peer: u32,
        bytes: u64,
        post: f64,
        /// Remote (rank, stmt, ctx) filled by the matcher.
        matched: Option<(u32, StmtId, CtxId)>,
    },
    /// Waiting for one request slot.
    Wait {
        slot: usize,
        ctx: CtxId,
        stmt: StmtId,
        post: f64,
    },
    /// Waiting for all outstanding requests.
    Waitall { ctx: CtxId, stmt: StmtId, post: f64 },
    /// Waiting for a collective instance.
    Coll {
        inst: u64,
        ctx: CtxId,
        stmt: StmtId,
        post: f64,
        kind: CommKindTag,
        bytes: u64,
    },
}

impl BlockInfo {
    fn stmt(&self) -> StmtId {
        match self {
            BlockInfo::P2p { stmt, .. }
            | BlockInfo::Wait { stmt, .. }
            | BlockInfo::Waitall { stmt, .. }
            | BlockInfo::Coll { stmt, .. } => *stmt,
        }
    }
}

#[derive(Debug)]
struct Blocked {
    resume: Option<f64>,
    info: BlockInfo,
}

/// Fault-injection health of one rank.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Health {
    /// Running normally.
    Ok,
    /// Crashed (injected) at the given virtual time.
    Crashed(f64),
    /// Stopped progressing at the given virtual time: an injected hang,
    /// or (`injected: false`) a survivor stuck forever behind a crash.
    Hung {
        at: f64,
        stmt: Option<StmtId>,
        injected: bool,
    },
}

impl Health {
    fn is_ok(self) -> bool {
        matches!(self, Health::Ok)
    }
}

struct RankState<'p> {
    rank: u32,
    clock: f64,
    frames: Vec<Frame<'p>>,
    iters: Vec<u64>,
    reqs: Vec<Req>,
    outstanding: Vec<usize>,
    coll_seq: u64,
    blocked: Option<Blocked>,
    done: bool,
    call_depth: usize,
    health: Health,
}

#[derive(Debug, Clone)]
struct SendInst {
    rank: u32,
    stmt: StmtId,
    ctx: CtxId,
    post: f64,
    bytes: u64,
    eager: bool,
    /// Sender request slot (`None` for a blocking send).
    req_slot: Option<usize>,
}

#[derive(Debug, Clone)]
struct RecvInst {
    rank: u32,
    stmt: StmtId,
    ctx: CtxId,
    post: f64,
    /// Receiver request slot (`None` for a blocking recv).
    req_slot: Option<usize>,
}

#[derive(Default)]
struct Channel {
    sends: VecDeque<SendInst>,
    recvs: VecDeque<RecvInst>,
}

struct CollInst {
    kind: CommKindTag,
    bytes: u64,
    posts: Vec<(u32, f64, CtxId, StmtId)>,
    completion: Option<f64>,
}

/// A cross-rank action buffered during a segment and published by the
/// scheduler between phases, in rank order — so the channel/collective
/// state evolves identically no matter how segments were scheduled.
enum Effect {
    Send {
        key: (u32, u32, u32),
        inst: SendInst,
    },
    Recv {
        key: (u32, u32, u32),
        inst: RecvInst,
    },
    Coll {
        inst: u64,
        kind: CommKindTag,
        bytes: u64,
        rank: u32,
        post: f64,
        ctx: CtxId,
        stmt: StmtId,
    },
}

/// Everything one rank's segment may touch: its interpreter state, its
/// collector shard, its buffered effects and a deferred error slot.
struct RankCtx<'p> {
    state: RankState<'p>,
    shard: Collector,
    effects: Vec<Effect>,
    error: Option<SimError>,
}

/// Matcher state owned by the (single-threaded) inter-phase scheduler.
#[derive(Default)]
struct Shared {
    channels: HashMap<(u32, u32, u32), Channel>,
    /// Per-channel match counters keying the message-drop fault stream
    /// (the match sequence *within* a channel is deterministic; the
    /// global interleaving across channels is not).
    chan_matches: HashMap<(u32, u32, u32), u64>,
    collectives: HashMap<u64, CollInst>,
    /// Cross-rank dependence edges; each endpoint's context lives in
    /// that endpoint rank's shard until the final merge remaps them.
    msg_edges: Vec<MsgEdge>,
    retransmits: u64,
}

struct Engine<'p> {
    prog: &'p Program,
    cfg: &'p RunConfig,
    params: HashMap<String, f64>,
    rankctxs: Vec<Mutex<RankCtx<'p>>>,
    shared: Shared,
}

enum StepOutcome {
    Progress,
    Blocked,
    Done,
}

// ------------------------------------------------------- rank-local ops

/// Kill a rank at virtual time `at` (rank-local part; the scheduler's
/// crash sweep handles peer notification).
fn crash_state(state: &mut RankState<'_>, at: f64) {
    state.health = Health::Crashed(at);
    state.clock = at;
    state.blocked = None;
    state.frames.clear();
}

/// Stop a rank from progressing at virtual time `at` without killing it
/// ([`Health::Hung`]). `injected` distinguishes a planned hang from a
/// survivor derived-stalled behind a crash.
fn stall_state(state: &mut RankState<'_>, at: f64, injected: bool) {
    let stmt = state.blocked.as_ref().map(|b| b.info.stmt()).or_else(|| {
        state
            .frames
            .last()
            .and_then(|f| f.stmts.get(f.idx))
            .map(|s| s.id)
    });
    state.health = Health::Hung { at, stmt, injected };
    state.clock = state.clock.max(at);
    state.blocked = None;
}

fn push_req(
    state: &mut RankState<'_>,
    kind: CommKindTag,
    peer: u32,
    bytes: u64,
    post: f64,
) -> usize {
    let slot = state.reqs.len();
    state.reqs.push(Req {
        kind,
        peer,
        bytes,
        post,
        completion: None,
        matched: None,
        live: true,
    });
    state.outstanding.push(slot);
    slot
}

// ------------------------------------------------------------- segments

/// Read-only context for running one rank's segment. Holds the phase's
/// crash *snapshot*: a rank crashing mid-phase becomes visible to its
/// peers only at the next phase boundary, which keeps segments
/// order-independent.
struct SegCtx<'a, 'p> {
    prog: &'p Program,
    cfg: &'a RunConfig,
    params: &'a HashMap<String, f64>,
    crashed: &'a [bool],
}

impl<'a, 'p> SegCtx<'a, 'p> {
    /// Run one rank until it blocks, finishes, faults or errors.
    fn run_segment(&self, rc: &mut RankCtx<'p>) {
        let t0 = self.cfg.obs.now_us();
        loop {
            // A scheduled crash/hang fires at the first event boundary at
            // or after its virtual time.
            if self.apply_rank_fault(rc) {
                break;
            }
            match self.step(rc) {
                Ok(StepOutcome::Progress) => continue,
                Ok(StepOutcome::Blocked | StepOutcome::Done) => break,
                Err(e) => {
                    rc.error = Some(e);
                    break;
                }
            }
        }
        if self.cfg.obs.is_enabled() {
            self.cfg.obs.record_span(
                obs::Layer::Simrt,
                "segment",
                rc.state.rank,
                t0,
                self.cfg.obs.now_us(),
                &[("vclock_us", rc.state.clock)],
            );
            self.cfg.obs.count("simrt.segments", 1);
        }
    }

    /// Apply a scheduled crash/hang if the rank's clock reached the fault
    /// time. Returns whether a fault was applied.
    fn apply_rank_fault(&self, rc: &mut RankCtx<'p>) -> bool {
        if rc.state.done || !rc.state.health.is_ok() {
            return false;
        }
        let rank = rc.state.rank;
        if let Some(&t) = self.cfg.faults.crash.get(&rank) {
            if rc.state.clock >= t {
                let at = rc.state.clock.max(t);
                crash_state(&mut rc.state, at);
                return true;
            }
        }
        if let Some(&t) = self.cfg.faults.hang.get(&rank) {
            if rc.state.clock >= t {
                let at = rc.state.clock.max(t);
                stall_state(&mut rc.state, at, true);
                return true;
            }
        }
        false
    }

    /// True when `rank` was crashed as of the start of this phase.
    fn is_crashed(&self, rank: u32) -> bool {
        self.crashed[rank as usize]
    }

    fn ectx<'s>(&'s self, state: &'s RankState<'p>) -> EvalCtx<'s> {
        EvalCtx {
            rank: state.rank,
            nranks: self.cfg.nranks,
            thread: 0,
            nthreads: self.cfg.nthreads,
            iters: &state.iters,
            params: self.params,
            seed: self.cfg.seed,
        }
    }

    /// Advance the rank's clock by `dt`, attributing the interval to
    /// `ctx`. Fired samples charge their handler cost to the clock — the
    /// observer effect the Table-1 overhead experiment measures.
    fn advance(&self, rc: &mut RankCtx<'p>, dt: f64, ctx: CtxId) {
        debug_assert!(dt >= 0.0);
        let t0 = rc.state.clock;
        let t1 = t0 + dt;
        let fired = rc.shard.account(rc.state.rank, 0, ctx, t0, t1);
        rc.state.clock = t1 + fired as f64 * rc.shard.sample_cost_us();
    }

    /// Execute one step of the rank. Must only be called when unblocked.
    fn step(&self, rc: &mut RankCtx<'p>) -> Result<StepOutcome, SimError> {
        // Handle frame exhaustion / loop iteration.
        loop {
            let frame = match rc.state.frames.last() {
                Some(f) => f,
                None => {
                    rc.state.done = true;
                    return Ok(StepOutcome::Done);
                }
            };
            if frame.idx < frame.stmts.len() {
                break;
            }
            let frame = rc.state.frames.last_mut().unwrap();
            match &mut frame.kind {
                FrameKind::Loop { trips, cur } if *cur + 1 < *trips => {
                    *cur += 1;
                    frame.idx = 0;
                    let cur = *cur;
                    *rc.state.iters.last_mut().unwrap() = cur;
                }
                FrameKind::Loop { .. } => {
                    rc.state.iters.pop();
                    rc.state.frames.pop();
                }
                FrameKind::Body => {
                    rc.state.frames.pop();
                    if rc.state.call_depth > 0 {
                        rc.state.call_depth -= 1;
                    }
                }
            }
            if rc.state.frames.is_empty() {
                rc.state.done = true;
                return Ok(StepOutcome::Done);
            }
        }

        let frame = rc.state.frames.last().unwrap();
        let stmt: &'p Stmt = &frame.stmts[frame.idx];
        let parent_ctx = frame.ctx;
        let ctx = rc.shard.data.cct.child(parent_ctx, CtxFrame::Stmt(stmt.id));

        match &stmt.kind {
            StmtKind::Compute { cost_us, pmu, .. } => {
                let slow = self
                    .cfg
                    .rank_slowdown
                    .get(&rc.state.rank)
                    .copied()
                    .unwrap_or(1.0);
                let dt = cost_us.eval(&self.ectx(&rc.state)).max(0.0) * slow;
                let t0 = rc.state.clock;
                self.advance(rc, dt, ctx);
                rc.shard.pmu(ctx, dt, pmu);
                let rank = rc.state.rank;
                rc.shard.trace(rank, stmt.id, t0, t0 + dt);
                rc.state.clock += rc.shard.trace_probe_cost_us();
                rc.state.frames.last_mut().unwrap().idx += 1;
                Ok(StepOutcome::Progress)
            }
            StmtKind::Loop { trips, body, .. } => {
                let n = trips.eval_u64(&self.ectx(&rc.state));
                rc.state.frames.last_mut().unwrap().idx += 1;
                if n > 0 {
                    rc.state.iters.push(0);
                    rc.state.frames.push(Frame {
                        stmts: body,
                        idx: 0,
                        ctx,
                        kind: FrameKind::Loop { trips: n, cur: 0 },
                    });
                }
                Ok(StepOutcome::Progress)
            }
            StmtKind::Branch {
                cond,
                then_body,
                else_body,
                ..
            } => {
                let taken = cond.eval(&self.ectx(&rc.state)) != 0.0;
                rc.state.frames.last_mut().unwrap().idx += 1;
                let body = if taken { then_body } else { else_body };
                if !body.is_empty() {
                    rc.state.frames.push(Frame {
                        stmts: body,
                        idx: 0,
                        ctx,
                        kind: FrameKind::Body,
                    });
                }
                Ok(StepOutcome::Progress)
            }
            StmtKind::Call { target } => {
                if rc.state.call_depth >= MAX_CALL_DEPTH {
                    return Err(SimError::StackOverflow { stmt: stmt.id });
                }
                let fid = match target {
                    CallTarget::Static(f) => *f,
                    CallTarget::Indirect {
                        candidates,
                        selector,
                    } => {
                        let idx =
                            selector.eval_u64(&self.ectx(&rc.state)) as usize % candidates.len();
                        let fid = candidates[idx];
                        rc.shard.indirect(stmt.id, fid);
                        fid
                    }
                };
                let fctx = rc.shard.data.cct.child(ctx, CtxFrame::Func(fid));
                rc.state.frames.last_mut().unwrap().idx += 1;
                rc.state.call_depth += 1;
                rc.state.frames.push(Frame {
                    stmts: &self.prog.function(fid).body,
                    idx: 0,
                    ctx: fctx,
                    kind: FrameKind::Body,
                });
                Ok(StepOutcome::Progress)
            }
            StmtKind::ThreadRegion { threads, body } => {
                let t = threads.eval_u64(&self.ectx(&rc.state)).max(1) as u32;
                let start = rc.state.clock;
                let iters = rc.state.iters.clone();
                let slow = self
                    .cfg
                    .rank_slowdown
                    .get(&rc.state.rank)
                    .copied()
                    .unwrap_or(1.0);
                let end = run_thread_region(
                    self.prog,
                    body,
                    ctx,
                    start,
                    rc.state.rank,
                    self.cfg.nranks,
                    t,
                    self.params,
                    self.cfg.seed,
                    &iters,
                    slow,
                    &mut rc.shard,
                )?;
                rc.state.clock = end;
                rc.state.frames.last_mut().unwrap().idx += 1;
                Ok(StepOutcome::Progress)
            }
            StmtKind::Lock { lock, hold_us, .. } => {
                // Rank-level lock: no intra-process contention (single
                // thread), but still recorded for completeness.
                let hold = hold_us.eval(&self.ectx(&rc.state)).max(0.0);
                let t0 = rc.state.clock;
                self.advance(rc, hold, ctx);
                let rank = rc.state.rank;
                rc.shard.lock(LockRecord {
                    rank,
                    thread: 0,
                    ctx,
                    stmt: stmt.id,
                    lock: lock.0,
                    request: t0,
                    acquire: t0,
                    release: t0 + hold,
                    blocked_by: None,
                });
                rc.shard.trace(rank, stmt.id, t0, t0 + hold);
                rc.state.frames.last_mut().unwrap().idx += 1;
                Ok(StepOutcome::Progress)
            }
            StmtKind::Comm(op) => self.step_comm(rc, stmt, ctx, op),
        }
    }

    // ---------------------------------------------------- communication

    fn eval_peer(
        &self,
        rc: &RankCtx<'p>,
        e: &progmodel::Expr,
        stmt: StmtId,
    ) -> Result<u32, SimError> {
        let v = e.eval(&self.ectx(&rc.state)).round() as i64;
        if v < 0 || v >= self.cfg.nranks as i64 {
            return Err(SimError::BadPeer {
                stmt,
                peer: v,
                nranks: self.cfg.nranks,
            });
        }
        Ok(v as u32)
    }

    /// Complete a point-to-point operation addressed to a crashed peer
    /// immediately as failed (fail-fast notification): the survivor must
    /// not block on a rank that can never answer.
    #[allow(clippy::too_many_arguments)]
    fn fail_fast_p2p(
        &self,
        rc: &mut RankCtx<'p>,
        kind: CommKindTag,
        ctx: CtxId,
        stmt: StmtId,
        peer: u32,
        bytes: u64,
        nonblocking: bool,
    ) {
        let overhead = self.cfg.network.op_overhead_us;
        let post = rc.state.clock;
        if nonblocking {
            let slot = push_req(&mut rc.state, kind, peer, bytes, post);
            rc.state.reqs[slot].completion = Some(post + overhead);
        }
        let rank = rc.state.rank;
        self.advance(rc, overhead, ctx);
        rc.shard.comm(CommRecord {
            rank,
            ctx,
            stmt,
            kind,
            peer,
            bytes,
            post,
            complete: post + overhead,
            wait: 0.0,
        });
        rc.shard.trace(rank, stmt, post, post + overhead);
        rc.state.frames.last_mut().unwrap().idx += 1;
    }

    fn step_comm(
        &self,
        rc: &mut RankCtx<'p>,
        stmt: &'p Stmt,
        ctx: CtxId,
        op: &'p CommOp,
    ) -> Result<StepOutcome, SimError> {
        let rank = rc.state.rank;
        // PMPI wrapper / trace-event cost of intercepting this call.
        rc.state.clock += rc.shard.comm_call_cost_us();
        let net = &self.cfg.network;
        let overhead = net.op_overhead_us;
        match op {
            CommOp::Isend { peer, bytes, tag } => {
                let peer = self.eval_peer(rc, peer, stmt.id)?;
                let bytes = bytes.eval_u64(&self.ectx(&rc.state));
                if self.is_crashed(peer) {
                    self.fail_fast_p2p(rc, CommKindTag::Isend, ctx, stmt.id, peer, bytes, true);
                    return Ok(StepOutcome::Progress);
                }
                let post = rc.state.clock;
                let eager = bytes <= net.eager_threshold;
                let slot = push_req(&mut rc.state, CommKindTag::Isend, peer, bytes, post);
                if eager {
                    rc.state.reqs[slot].completion = Some(post + overhead);
                }
                rc.effects.push(Effect::Send {
                    key: (rank, peer, *tag),
                    inst: SendInst {
                        rank,
                        stmt: stmt.id,
                        ctx,
                        post,
                        bytes,
                        eager,
                        req_slot: Some(slot),
                    },
                });
                self.advance(rc, overhead, ctx);
                rc.shard.comm(CommRecord {
                    rank,
                    ctx,
                    stmt: stmt.id,
                    kind: CommKindTag::Isend,
                    peer,
                    bytes,
                    post,
                    complete: post + overhead,
                    wait: 0.0,
                });
                rc.shard.trace(rank, stmt.id, post, post + overhead);
                rc.state.frames.last_mut().unwrap().idx += 1;
                Ok(StepOutcome::Progress)
            }
            CommOp::Irecv { peer, bytes, tag } => {
                let peer = self.eval_peer(rc, peer, stmt.id)?;
                let bytes = bytes.eval_u64(&self.ectx(&rc.state));
                if self.is_crashed(peer) {
                    self.fail_fast_p2p(rc, CommKindTag::Irecv, ctx, stmt.id, peer, bytes, true);
                    return Ok(StepOutcome::Progress);
                }
                let post = rc.state.clock;
                let slot = push_req(&mut rc.state, CommKindTag::Irecv, peer, bytes, post);
                rc.effects.push(Effect::Recv {
                    key: (peer, rank, *tag),
                    inst: RecvInst {
                        rank,
                        stmt: stmt.id,
                        ctx,
                        post,
                        req_slot: Some(slot),
                    },
                });
                self.advance(rc, overhead, ctx);
                rc.shard.comm(CommRecord {
                    rank,
                    ctx,
                    stmt: stmt.id,
                    kind: CommKindTag::Irecv,
                    peer,
                    bytes,
                    post,
                    complete: post + overhead,
                    wait: 0.0,
                });
                rc.shard.trace(rank, stmt.id, post, post + overhead);
                rc.state.frames.last_mut().unwrap().idx += 1;
                Ok(StepOutcome::Progress)
            }
            CommOp::Send { peer, bytes, tag } => {
                let peer = self.eval_peer(rc, peer, stmt.id)?;
                let bytes = bytes.eval_u64(&self.ectx(&rc.state));
                if self.is_crashed(peer) {
                    self.fail_fast_p2p(rc, CommKindTag::Send, ctx, stmt.id, peer, bytes, false);
                    return Ok(StepOutcome::Progress);
                }
                let post = rc.state.clock;
                let eager = bytes <= net.eager_threshold;
                rc.effects.push(Effect::Send {
                    key: (rank, peer, *tag),
                    inst: SendInst {
                        rank,
                        stmt: stmt.id,
                        ctx,
                        post,
                        bytes,
                        eager,
                        req_slot: None,
                    },
                });
                if eager {
                    // Eager send completes locally; receiver matches later.
                    self.advance(rc, overhead, ctx);
                    rc.shard.comm(CommRecord {
                        rank,
                        ctx,
                        stmt: stmt.id,
                        kind: CommKindTag::Send,
                        peer,
                        bytes,
                        post,
                        complete: post + overhead,
                        wait: 0.0,
                    });
                    rc.shard.trace(rank, stmt.id, post, post + overhead);
                    rc.state.frames.last_mut().unwrap().idx += 1;
                    Ok(StepOutcome::Progress)
                } else {
                    rc.state.blocked = Some(Blocked {
                        resume: None,
                        info: BlockInfo::P2p {
                            kind: CommKindTag::Send,
                            ctx,
                            stmt: stmt.id,
                            peer,
                            bytes,
                            post,
                            matched: None,
                        },
                    });
                    Ok(StepOutcome::Blocked)
                }
            }
            CommOp::Recv { peer, bytes, tag } => {
                let peer = self.eval_peer(rc, peer, stmt.id)?;
                let bytes = bytes.eval_u64(&self.ectx(&rc.state));
                if self.is_crashed(peer) {
                    self.fail_fast_p2p(rc, CommKindTag::Recv, ctx, stmt.id, peer, bytes, false);
                    return Ok(StepOutcome::Progress);
                }
                let post = rc.state.clock;
                rc.effects.push(Effect::Recv {
                    key: (peer, rank, *tag),
                    inst: RecvInst {
                        rank,
                        stmt: stmt.id,
                        ctx,
                        post,
                        req_slot: None,
                    },
                });
                rc.state.blocked = Some(Blocked {
                    resume: None,
                    info: BlockInfo::P2p {
                        kind: CommKindTag::Recv,
                        ctx,
                        stmt: stmt.id,
                        peer,
                        bytes,
                        post,
                        matched: None,
                    },
                });
                Ok(StepOutcome::Blocked)
            }
            CommOp::Wait { back } => {
                let outstanding = rc.state.outstanding.len();
                let Some(i) = outstanding.checked_sub(1 + *back as usize) else {
                    return Err(SimError::BadWait {
                        stmt: stmt.id,
                        back: *back,
                        outstanding,
                    });
                };
                let slot = rc.state.outstanding[i];
                let post = rc.state.clock;
                rc.state.blocked = Some(Blocked {
                    resume: None,
                    info: BlockInfo::Wait {
                        slot,
                        ctx,
                        stmt: stmt.id,
                        post,
                    },
                });
                Ok(StepOutcome::Blocked)
            }
            CommOp::Waitall => {
                let post = rc.state.clock;
                rc.state.blocked = Some(Blocked {
                    resume: None,
                    info: BlockInfo::Waitall {
                        ctx,
                        stmt: stmt.id,
                        post,
                    },
                });
                Ok(StepOutcome::Blocked)
            }
            CommOp::Barrier
            | CommOp::Bcast { .. }
            | CommOp::Reduce { .. }
            | CommOp::Allreduce { .. }
            | CommOp::Alltoall { .. } => {
                let (kind, bytes) = match op {
                    CommOp::Barrier => (CommKindTag::Barrier, 0),
                    CommOp::Bcast { bytes, .. } => {
                        (CommKindTag::Bcast, bytes.eval_u64(&self.ectx(&rc.state)))
                    }
                    CommOp::Reduce { bytes, .. } => {
                        (CommKindTag::Reduce, bytes.eval_u64(&self.ectx(&rc.state)))
                    }
                    CommOp::Allreduce { bytes } => (
                        CommKindTag::Allreduce,
                        bytes.eval_u64(&self.ectx(&rc.state)),
                    ),
                    CommOp::Alltoall { bytes } => {
                        (CommKindTag::Alltoall, bytes.eval_u64(&self.ectx(&rc.state)))
                    }
                    _ => unreachable!(),
                };
                let inst = rc.state.coll_seq;
                rc.state.coll_seq += 1;
                let post = rc.state.clock;
                rc.effects.push(Effect::Coll {
                    inst,
                    kind,
                    bytes,
                    rank,
                    post,
                    ctx,
                    stmt: stmt.id,
                });
                rc.state.blocked = Some(Blocked {
                    resume: None,
                    info: BlockInfo::Coll {
                        inst,
                        ctx,
                        stmt: stmt.id,
                        post,
                        kind,
                        bytes,
                    },
                });
                Ok(StepOutcome::Blocked)
            }
        }
    }
}

// ------------------------------------------------------------ scheduler

/// The inter-phase scheduler: runs on one thread, owns the matcher state,
/// and performs every cross-rank step in rank order.
struct Sched<'a, 'p> {
    prog: &'p Program,
    cfg: &'a RunConfig,
    params: &'a HashMap<String, f64>,
    rankctxs: &'a [Mutex<RankCtx<'p>>],
    shared: &'a mut Shared,
    /// Live crashed set (updated as crashes are discovered; snapshotted
    /// once per phase for the segments).
    crashed: Vec<bool>,
}

impl<'a, 'p> Sched<'a, 'p> {
    fn drive(&mut self, pool: Option<(&PoolCtrl, usize)>) -> Result<(), SimError> {
        let n = self.rankctxs.len();
        let mut runnable = vec![false; n];
        let mut phase_idx: u64 = 0;
        loop {
            // Phase start: snapshot who can run and who is (already) dead.
            let mut progressed = false;
            for (r, flag) in runnable.iter_mut().enumerate() {
                let rc = self.rankctxs[r].lock().unwrap();
                *flag = !rc.state.done && rc.state.blocked.is_none() && rc.state.health.is_ok();
                progressed |= *flag;
            }
            // Segments: the identical per-rank code runs either inline
            // (serial) or strided across the pool — bit-identical by
            // construction since segments touch only rank-local state.
            if progressed {
                let t0 = self.cfg.obs.now_us();
                match pool {
                    Some((ctrl, nworkers)) => ctrl.run_phase(nworkers, &runnable, &self.crashed),
                    None => {
                        let seg = SegCtx {
                            prog: self.prog,
                            cfg: self.cfg,
                            params: self.params,
                            crashed: &self.crashed,
                        };
                        for (r, &run) in runnable.iter().enumerate() {
                            if run {
                                seg.run_segment(&mut self.rankctxs[r].lock().unwrap());
                            }
                        }
                    }
                }
                if self.cfg.obs.is_enabled() {
                    let nrun = runnable.iter().filter(|&&x| x).count();
                    self.cfg.obs.record_span(
                        obs::Layer::Simrt,
                        "phase",
                        0,
                        t0,
                        self.cfg.obs.now_us(),
                        &[("phase", phase_idx as f64), ("runnable", nrun as f64)],
                    );
                    self.cfg.obs.count("simrt.phases", 1);
                }
                phase_idx += 1;
            }
            // Errors surface in rank order, independent of scheduling.
            for m in self.rankctxs {
                if let Some(e) = m.lock().unwrap().error.take() {
                    return Err(e);
                }
            }
            // Publish buffered effects in rank order.
            let mut touched_chans: Vec<(u32, u32, u32)> = Vec::new();
            let mut touched_colls: Vec<u64> = Vec::new();
            for m in self.rankctxs {
                let effects = std::mem::take(&mut m.lock().unwrap().effects);
                for eff in effects {
                    match eff {
                        Effect::Send { key, inst } => {
                            if !touched_chans.contains(&key) {
                                touched_chans.push(key);
                            }
                            self.shared
                                .channels
                                .entry(key)
                                .or_default()
                                .sends
                                .push_back(inst);
                        }
                        Effect::Recv { key, inst } => {
                            if !touched_chans.contains(&key) {
                                touched_chans.push(key);
                            }
                            self.shared
                                .channels
                                .entry(key)
                                .or_default()
                                .recvs
                                .push_back(inst);
                        }
                        Effect::Coll {
                            inst,
                            kind,
                            bytes,
                            rank,
                            post,
                            ctx,
                            stmt,
                        } => {
                            if !touched_colls.contains(&inst) {
                                touched_colls.push(inst);
                            }
                            let entry =
                                self.shared
                                    .collectives
                                    .entry(inst)
                                    .or_insert_with(|| CollInst {
                                        kind,
                                        bytes: 0,
                                        posts: Vec::new(),
                                        completion: None,
                                    });
                            debug_assert_eq!(
                                entry.kind, kind,
                                "ranks disagree on collective {inst}: {:?} vs {kind:?}",
                                entry.kind
                            );
                            entry.bytes = entry.bytes.max(bytes);
                            entry.posts.push((rank, post, ctx, stmt));
                        }
                    }
                }
            }
            for key in &touched_chans {
                self.try_match(*key);
            }
            // Crash sweep: notify peers of ranks that died this phase.
            let mut any_crash = false;
            for r in 0..n {
                let newly = {
                    let rc = self.rankctxs[r].lock().unwrap();
                    match rc.state.health {
                        Health::Crashed(at) if !self.crashed[r] => Some(at),
                        _ => None,
                    }
                };
                if let Some(at) = newly {
                    self.crashed[r] = true;
                    self.notify_crash(r as u32, at);
                    any_crash = true;
                }
            }
            for inst in &touched_colls {
                self.complete_collective_if_ready(*inst);
            }
            if any_crash {
                self.recheck_collectives();
            }
            let resolved = self.resolve_blocked();
            let all_done = self.rankctxs.iter().all(|m| {
                let rc = m.lock().unwrap();
                rc.state.done || !rc.state.health.is_ok()
            });
            if all_done {
                return self.check_injected_hangs();
            }
            if !progressed && !resolved {
                // Quiescence watchdog. First, force any still-pending
                // scheduled fault onto its (blocked) rank: a rank whose
                // clock stopped short of its fault time would otherwise
                // never reach it.
                if self.apply_scheduled_faults_to_blocked() {
                    continue;
                }
                let blocked = self.blocked_ranks();
                if self.any_injected_hang() {
                    return Err(self.hang_error(blocked));
                }
                if self.crashed.iter().any(|&c| c) {
                    // Survivors stuck forever behind the crash (e.g. a
                    // dependence the fail-fast notification cannot break):
                    // mark them hung and degrade gracefully to a partial
                    // run instead of failing the whole simulation.
                    for m in self.rankctxs {
                        let mut rc = m.lock().unwrap();
                        if rc.state.health.is_ok() && rc.state.blocked.is_some() {
                            let at = rc.state.clock;
                            stall_state(&mut rc.state, at, false);
                        }
                    }
                    continue;
                }
                return Err(SimError::Deadlock { blocked });
            }
        }
    }

    // -------------------------------------------------- fault machinery

    /// Force pending scheduled faults onto blocked ranks (quiescence
    /// watchdog path). Returns whether anything fired.
    fn apply_scheduled_faults_to_blocked(&mut self) -> bool {
        let mut any = false;
        for r in 0..self.rankctxs.len() {
            let rank = r as u32;
            let crash_t = self.cfg.faults.crash.get(&rank).copied();
            let hang_t = self.cfg.faults.hang.get(&rank).copied();
            if crash_t.is_none() && hang_t.is_none() {
                continue;
            }
            let mut fired_crash: Option<f64> = None;
            {
                let mut rc = self.rankctxs[r].lock().unwrap();
                if rc.state.done || !rc.state.health.is_ok() || rc.state.blocked.is_none() {
                    continue;
                }
                if let Some(t) = crash_t {
                    let at = rc.state.clock.max(t);
                    crash_state(&mut rc.state, at);
                    fired_crash = Some(at);
                    any = true;
                } else if let Some(t) = hang_t {
                    let at = rc.state.clock.max(t);
                    stall_state(&mut rc.state, at, true);
                    any = true;
                }
            }
            if let Some(at) = fired_crash {
                self.crashed[r] = true;
                self.notify_crash(rank, at);
                self.recheck_collectives();
            }
        }
        any
    }

    /// Peer notification after rank `dead` crashed at `at`: operations
    /// already targeting the dead rank complete as failed no earlier than
    /// the crash (an ULFM-style revoke).
    fn notify_crash(&mut self, dead: u32, at: f64) {
        for (p, m) in self.rankctxs.iter().enumerate() {
            if p == dead as usize {
                continue;
            }
            let mut rc = m.lock().unwrap();
            for req in &mut rc.state.reqs {
                if req.live && req.peer == dead && req.completion.is_none() {
                    req.completion = Some(req.post.max(at));
                }
            }
            if let Some(b) = rc.state.blocked.as_mut() {
                if let BlockInfo::P2p {
                    peer,
                    post,
                    matched: None,
                    ..
                } = &b.info
                {
                    if *peer == dead && b.resume.is_none() {
                        b.resume = Some(post.max(at));
                    }
                }
            }
        }
    }

    /// `Err(SimError::Hang)` describing every injected-hung rank plus the
    /// healthy ranks blocked behind them.
    fn hang_error(&self, blocked: Vec<(u32, StmtId)>) -> SimError {
        let mut hung = Vec::new();
        let mut virtual_time_us = 0.0f64;
        for m in self.rankctxs {
            let rc = m.lock().unwrap();
            virtual_time_us = virtual_time_us.max(rc.state.clock);
            if let Health::Hung {
                at,
                stmt,
                injected: true,
            } = rc.state.health
            {
                hung.push((rc.state.rank, stmt, at));
            }
        }
        SimError::Hang {
            hung,
            blocked,
            virtual_time_us,
        }
    }

    /// At termination: an injected hang is an error even when no other
    /// rank was blocked behind it — a silently missing rank must never
    /// look like a clean run.
    fn check_injected_hangs(&self) -> Result<(), SimError> {
        if self.any_injected_hang() {
            return Err(self.hang_error(Vec::new()));
        }
        Ok(())
    }

    fn any_injected_hang(&self) -> bool {
        self.rankctxs.iter().any(|m| {
            matches!(
                m.lock().unwrap().state.health,
                Health::Hung { injected: true, .. }
            )
        })
    }

    fn blocked_ranks(&self) -> Vec<(u32, StmtId)> {
        self.rankctxs
            .iter()
            .filter_map(|m| {
                let rc = m.lock().unwrap();
                if rc.state.health.is_ok() {
                    rc.state
                        .blocked
                        .as_ref()
                        .map(|b| (rc.state.rank, b.info.stmt()))
                } else {
                    None
                }
            })
            .collect()
    }

    // ----------------------------------------------------------- matcher

    fn msg_edge(&mut self, edge: MsgEdge) {
        if self.cfg.collection.collect_comm {
            self.shared.msg_edges.push(edge);
        }
    }

    /// Match pending sends/recvs on one channel, computing completions.
    fn try_match(&mut self, key: (u32, u32, u32)) {
        let rankctxs = self.rankctxs;
        loop {
            let (send, recv) = {
                let Some(chan) = self.shared.channels.get_mut(&key) else {
                    return;
                };
                if chan.sends.is_empty() || chan.recvs.is_empty() {
                    return;
                }
                (
                    chan.sends.pop_front().unwrap(),
                    chan.recvs.pop_front().unwrap(),
                )
            };
            let overhead = self.cfg.network.op_overhead_us;
            let mut transfer = self.cfg.network.transfer_us(send.bytes);
            // Injected network fault: this message is dropped and
            // retransmitted after a timeout, stretching its transfer.
            // Each match is keyed by its channel and its index in that
            // channel's (deterministic, FIFO) match sequence, so the drop
            // pattern replays under a seed no matter how matching work
            // interleaves across channels.
            if self.cfg.faults.msg_drop_rate > 0.0 {
                let ctr = self.shared.chan_matches.entry(key).or_insert(0);
                let id = *ctr;
                *ctr += 1;
                let chan_id = ((key.0 as u64) << 42) ^ ((key.1 as u64) << 21) ^ key.2 as u64;
                if fault_roll(self.cfg.seed, FaultStream::MsgDrop, chan_id, id)
                    < self.cfg.faults.msg_drop_rate
                {
                    transfer += self.cfg.faults.msg_delay_us;
                    self.shared.retransmits += 1;
                }
            }
            let (send_complete, xfer_end) = if send.eager {
                (send.post + overhead, send.post + overhead + transfer)
            } else {
                let end = send.post.max(recv.post) + transfer;
                (end, end)
            };
            let recv_complete = recv.post.max(xfer_end);

            // Sender side.
            match send.req_slot {
                Some(slot) => {
                    let mut rc = rankctxs[send.rank as usize].lock().unwrap();
                    let req = &mut rc.state.reqs[slot];
                    req.completion = Some(send_complete);
                    req.matched = Some((recv.rank, recv.stmt, recv.ctx));
                }
                None if send.eager => {
                    // Eager blocking send: completed locally at post time;
                    // nothing to resolve on the sender side.
                }
                None => {
                    // Blocking rendezvous send: unblock.
                    {
                        let mut rc = rankctxs[send.rank as usize].lock().unwrap();
                        if let Some(b) = rc.state.blocked.as_mut() {
                            debug_assert!(
                                matches!(
                                    b.info,
                                    BlockInfo::P2p {
                                        kind: CommKindTag::Send,
                                        ..
                                    }
                                ),
                                "rendezvous sender must be blocked on its send"
                            );
                            b.resume = Some(send_complete);
                            if let BlockInfo::P2p { matched, .. } = &mut b.info {
                                *matched = Some((recv.rank, recv.stmt, recv.ctx));
                            }
                        }
                    }
                    // Late receiver delayed the sender: dependence edge
                    // receiver → sender.
                    if recv.post > send.post {
                        self.msg_edge(MsgEdge {
                            src_rank: recv.rank,
                            src_stmt: recv.stmt,
                            src_ctx: recv.ctx,
                            dst_rank: send.rank,
                            dst_stmt: send.stmt,
                            dst_ctx: send.ctx,
                            bytes: send.bytes,
                            kind: CommKindTag::Send,
                            wait: recv.post - send.post,
                        });
                    }
                }
            }
            // Receiver side.
            match recv.req_slot {
                Some(slot) => {
                    let mut rc = rankctxs[recv.rank as usize].lock().unwrap();
                    let req = &mut rc.state.reqs[slot];
                    req.completion = Some(recv_complete);
                    req.matched = Some((send.rank, send.stmt, send.ctx));
                }
                None => {
                    let mut rc = rankctxs[recv.rank as usize].lock().unwrap();
                    if let Some(b) = rc.state.blocked.as_mut() {
                        b.resume = Some(recv_complete);
                        if let BlockInfo::P2p { matched, .. } = &mut b.info {
                            *matched = Some((send.rank, send.stmt, send.ctx));
                        }
                    }
                }
            }
        }
    }

    /// A collective completes when every *live* (non-crashed) rank has
    /// posted; crashed ranks are dropped from the membership (the
    /// shrunken communicator), while hung ranks still count — a hang
    /// blocks collectives, which is how it propagates.
    fn collective_ready(&self, inst: &CollInst) -> bool {
        (0..self.cfg.nranks)
            .filter(|&x| !self.crashed[x as usize])
            .all(|x| inst.posts.iter().any(|&(pr, _, _, _)| pr == x))
    }

    /// Complete collective `inst` if every live rank has posted.
    fn complete_collective_if_ready(&mut self, inst: u64) {
        let Some(c) = self.shared.collectives.get(&inst) else {
            return;
        };
        if c.completion.is_some() || !self.collective_ready(c) {
            return;
        }
        let cost = collective_cost(&self.cfg.network, c.kind, c.bytes, self.cfg.nranks);
        let entry = self
            .shared
            .collectives
            .get_mut(&inst)
            .expect("instance exists: fetched above");
        let max_post = entry
            .posts
            .iter()
            .map(|&(_, p, _, _)| p)
            .fold(f64::NEG_INFINITY, f64::max);
        entry.completion = Some(max_post + cost);
    }

    /// Re-evaluate pending collectives after a crash shrank the
    /// membership: instances now complete over the survivors.
    fn recheck_collectives(&mut self) {
        let insts: Vec<u64> = self
            .shared
            .collectives
            .iter()
            .filter(|(_, c)| c.completion.is_none())
            .map(|(&i, _)| i)
            .collect();
        for i in insts {
            self.complete_collective_if_ready(i);
        }
    }

    // -------------------------------------------------------- resolution

    /// Resolve blocked ranks whose completion is now computable, in rank
    /// order. Returns whether any rank was unblocked.
    fn resolve_blocked(&mut self) -> bool {
        let mut any = false;
        let rankctxs = self.rankctxs;
        for (r, cell) in rankctxs.iter().enumerate() {
            let blocked = cell.lock().unwrap().state.blocked.take();
            let Some(blocked) = blocked else {
                continue;
            };
            if self.try_finish(r, &blocked) {
                any = true;
            } else {
                cell.lock().unwrap().state.blocked = Some(blocked);
            }
        }
        any
    }

    /// Attempt to complete a blocked operation; true if the rank resumed.
    fn try_finish(&mut self, r: usize, blocked: &Blocked) -> bool {
        let rankctxs = self.rankctxs;
        match &blocked.info {
            BlockInfo::P2p {
                kind,
                ctx,
                stmt,
                peer,
                bytes,
                post,
                matched,
            } => {
                let Some(resume) = blocked.resume else {
                    return false;
                };
                let mut rc = rankctxs[r].lock().unwrap();
                let rank = rc.state.rank;
                let wait = (resume - post).max(0.0);
                let fired = rc.shard.account(rank, 0, *ctx, *post, resume);
                let resume = resume + fired as f64 * rc.shard.sample_cost_us();
                rc.shard.comm(CommRecord {
                    rank,
                    ctx: *ctx,
                    stmt: *stmt,
                    kind: *kind,
                    peer: *peer,
                    bytes: *bytes,
                    post: *post,
                    complete: resume,
                    wait,
                });
                rc.shard.trace(rank, *stmt, *post, resume);
                if *kind == CommKindTag::Recv && wait > 0.0 {
                    if let Some((src_rank, src_stmt, src_ctx)) = matched {
                        self.msg_edge(MsgEdge {
                            src_rank: *src_rank,
                            src_stmt: *src_stmt,
                            src_ctx: *src_ctx,
                            dst_rank: rank,
                            dst_stmt: *stmt,
                            dst_ctx: *ctx,
                            bytes: *bytes,
                            kind: CommKindTag::Recv,
                            wait,
                        });
                    }
                }
                rc.state.clock = resume.max(rc.state.clock);
                rc.state.frames.last_mut().unwrap().idx += 1;
                rc.state.blocked = None;
                true
            }
            BlockInfo::Wait {
                slot,
                ctx,
                stmt,
                post,
            } => {
                let completion = rankctxs[r].lock().unwrap().state.reqs[*slot].completion;
                let Some(completion) = completion else {
                    return false;
                };
                let resume = completion.max(*post);
                self.finish_requests(r, &[*slot], *ctx, *stmt, *post, resume, CommKindTag::Wait);
                true
            }
            BlockInfo::Waitall { ctx, stmt, post } => {
                let (slots, resume) = {
                    let rc = rankctxs[r].lock().unwrap();
                    let slots: Vec<usize> = rc.state.outstanding.clone();
                    let mut resume = *post;
                    for &s in &slots {
                        match rc.state.reqs[s].completion {
                            Some(c) => resume = resume.max(c),
                            None => return false,
                        }
                    }
                    (slots, resume)
                };
                self.finish_requests(r, &slots, *ctx, *stmt, *post, resume, CommKindTag::Waitall);
                true
            }
            BlockInfo::Coll {
                inst,
                ctx,
                stmt,
                post,
                kind,
                bytes,
            } => {
                let Some(completion) = self.shared.collectives.get(inst).and_then(|c| c.completion)
                else {
                    return false;
                };
                // Dependence edge from the last arriver to this rank.
                let late = self
                    .shared
                    .collectives
                    .get(inst)
                    .and_then(|ci| ci.posts.iter().max_by(|a, b| a.1.total_cmp(&b.1)).copied());
                let mut rc = rankctxs[r].lock().unwrap();
                let rank = rc.state.rank;
                let resume = completion.max(*post);
                let wait = resume - post;
                let fired = rc.shard.account(rank, 0, *ctx, *post, resume);
                let resume = resume + fired as f64 * rc.shard.sample_cost_us();
                rc.shard.comm(CommRecord {
                    rank,
                    ctx: *ctx,
                    stmt: *stmt,
                    kind: *kind,
                    peer: u32::MAX,
                    bytes: *bytes,
                    post: *post,
                    complete: resume,
                    wait,
                });
                rc.shard.trace(rank, *stmt, *post, resume);
                if let Some((late_rank, late_post, late_ctx, late_stmt)) = late {
                    if late_rank != rank && wait > 0.0 && late_post > *post {
                        self.msg_edge(MsgEdge {
                            src_rank: late_rank,
                            src_stmt: late_stmt,
                            src_ctx: late_ctx,
                            dst_rank: rank,
                            dst_stmt: *stmt,
                            dst_ctx: *ctx,
                            bytes: *bytes,
                            kind: *kind,
                            wait,
                        });
                    }
                }
                rc.state.clock = resume;
                rc.state.frames.last_mut().unwrap().idx += 1;
                rc.state.blocked = None;
                true
            }
        }
    }

    /// Complete a Wait/Waitall: retire request slots, record, resume.
    #[allow(clippy::too_many_arguments)]
    fn finish_requests(
        &mut self,
        r: usize,
        slots: &[usize],
        ctx: CtxId,
        stmt: StmtId,
        post: f64,
        resume: f64,
        kind: CommKindTag,
    ) {
        let rankctxs = self.rankctxs;
        let mut rc = rankctxs[r].lock().unwrap();
        let rank = rc.state.rank;
        let wait = (resume - post).max(0.0);
        let fired = rc.shard.account(rank, 0, ctx, post, resume);
        let resume = resume + fired as f64 * rc.shard.sample_cost_us();
        // A single-request wait reports its request's peer; Waitall has no
        // single peer.
        let peer = if slots.len() == 1 {
            rc.state.reqs[slots[0]].peer
        } else {
            u32::MAX
        };
        let mut bytes_total = 0;
        for &s in slots {
            let req = rc.state.reqs[s].clone();
            bytes_total += req.bytes;
            rc.state.reqs[s].live = false;
            // A matched remote operation that delayed this wait produces a
            // dependence edge onto the wait statement.
            if let (Some((src_rank, src_stmt, src_ctx)), Some(c)) = (req.matched, req.completion) {
                if req.kind == CommKindTag::Irecv && c > post {
                    self.msg_edge(MsgEdge {
                        src_rank,
                        src_stmt,
                        src_ctx,
                        dst_rank: rank,
                        dst_stmt: stmt,
                        dst_ctx: ctx,
                        bytes: req.bytes,
                        kind,
                        wait: c - post,
                    });
                }
            }
        }
        rc.state.outstanding.retain(|s| !slots.contains(s));
        rc.shard.comm(CommRecord {
            rank,
            ctx,
            stmt,
            kind,
            peer,
            bytes: bytes_total,
            post,
            complete: resume,
            wait,
        });
        rc.shard.trace(rank, stmt, post, resume);
        rc.state.clock = resume;
        rc.state.frames.last_mut().unwrap().idx += 1;
        rc.state.blocked = None;
    }
}

// ---------------------------------------------------------- worker pool

struct PoolState {
    generation: u64,
    shutdown: bool,
    done_count: usize,
    runnable: Vec<bool>,
    crashed: Vec<bool>,
}

/// Generation-barrier protocol for the persistent worker pool: the
/// scheduler publishes a phase (runnable set + crash snapshot) by bumping
/// `generation`; each worker runs its strided share of the runnable ranks
/// and increments `done_count`; the scheduler waits for all workers.
struct PoolCtrl {
    state: Mutex<PoolState>,
    start: Condvar,
    done: Condvar,
}

impl PoolCtrl {
    fn new(nranks: usize) -> Self {
        PoolCtrl {
            state: Mutex::new(PoolState {
                generation: 0,
                shutdown: false,
                done_count: 0,
                runnable: vec![false; nranks],
                crashed: vec![false; nranks],
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        }
    }

    /// Run one phase on the pool; blocks until every worker finished.
    fn run_phase(&self, nworkers: usize, runnable: &[bool], crashed: &[bool]) {
        let mut st = self.state.lock().unwrap();
        st.runnable.copy_from_slice(runnable);
        st.crashed.copy_from_slice(crashed);
        st.done_count = 0;
        st.generation += 1;
        self.start.notify_all();
        while st.done_count < nworkers {
            st = self.done.wait(st).unwrap();
        }
    }

    fn shutdown(&self) {
        self.state.lock().unwrap().shutdown = true;
        self.start.notify_all();
    }
}

fn worker_loop<'p>(
    w: usize,
    nworkers: usize,
    rankctxs: &[Mutex<RankCtx<'p>>],
    ctrl: &PoolCtrl,
    prog: &'p Program,
    cfg: &RunConfig,
    params: &HashMap<String, f64>,
) {
    let mut generation = 0u64;
    loop {
        let (runnable, crashed) = {
            let mut st = ctrl.state.lock().unwrap();
            while !st.shutdown && st.generation == generation {
                st = ctrl.start.wait(st).unwrap();
            }
            if st.shutdown {
                return;
            }
            generation = st.generation;
            (st.runnable.clone(), st.crashed.clone())
        };
        let seg = SegCtx {
            prog,
            cfg,
            params,
            crashed: &crashed,
        };
        let mut r = w;
        while r < rankctxs.len() {
            if runnable[r] {
                seg.run_segment(&mut rankctxs[r].lock().unwrap());
            }
            r += nworkers;
        }
        let mut st = ctrl.state.lock().unwrap();
        st.done_count += 1;
        if st.done_count == nworkers {
            ctrl.done.notify_all();
        }
    }
}

// --------------------------------------------------------------- engine

impl<'p> Engine<'p> {
    fn new(prog: &'p Program, cfg: &'p RunConfig, params: HashMap<String, f64>) -> Self {
        let rankctxs = (0..cfg.nranks)
            .map(|rank| {
                let shard = Collector::new(
                    cfg.collection.clone(),
                    cfg.faults.clone(),
                    cfg.seed,
                    cfg.nranks,
                    cfg.nthreads,
                    prog.entry,
                )
                .for_rank(rank);
                let root = shard.data.cct.root();
                Mutex::new(RankCtx {
                    state: RankState {
                        rank,
                        clock: 0.0,
                        frames: vec![Frame {
                            stmts: &prog.function(prog.entry).body,
                            idx: 0,
                            ctx: root,
                            kind: FrameKind::Body,
                        }],
                        iters: Vec::new(),
                        reqs: Vec::new(),
                        outstanding: Vec::new(),
                        coll_seq: 0,
                        blocked: None,
                        done: false,
                        call_depth: 0,
                        health: Health::Ok,
                    },
                    shard,
                    effects: Vec::new(),
                    error: None,
                })
            })
            .collect();
        Engine {
            prog,
            cfg,
            params,
            rankctxs,
            shared: Shared::default(),
        }
    }

    fn run(&mut self) -> Result<(), SimError> {
        let nranks = self.cfg.nranks as usize;
        let workers = match self.cfg.sim_workers {
            Some(n) => n.max(1),
            None => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
        .min(nranks.max(1));
        let prog = self.prog;
        let cfg = self.cfg;
        let params = &self.params;
        let rankctxs: &[Mutex<RankCtx<'p>>] = &self.rankctxs;
        let mut sched = Sched {
            prog,
            cfg,
            params,
            rankctxs,
            shared: &mut self.shared,
            crashed: vec![false; nranks],
        };
        if workers <= 1 {
            return sched.drive(None);
        }
        // The pool control block must outlive the scope's spawned threads,
        // so it lives here, not inside the scope closure.
        let ctrl = PoolCtrl::new(nranks);
        std::thread::scope(|s| {
            for w in 0..workers {
                let ctrl = &ctrl;
                s.spawn(move || worker_loop(w, workers, rankctxs, ctrl, prog, cfg, params));
            }
            let out = sched.drive(Some((&ctrl, workers)));
            ctrl.shutdown();
            out
        })
    }

    /// Fold the per-rank shards into one [`RunData`], in rank order.
    fn finish(self) -> RunData {
        let cfg = self.cfg;
        let _span = cfg.obs.span(obs::Layer::Simrt, "merge_shards", 0);
        if self.rankctxs.is_empty() {
            return Collector::new(
                self.cfg.collection.clone(),
                self.cfg.faults.clone(),
                self.cfg.seed,
                0,
                self.cfg.nthreads,
                self.prog.entry,
            )
            .finish(Vec::new(), Vec::new());
        }
        let mut shards = Vec::with_capacity(self.rankctxs.len());
        let mut elapsed = Vec::with_capacity(self.rankctxs.len());
        let mut statuses = Vec::with_capacity(self.rankctxs.len());
        for m in self.rankctxs {
            let rc = m.into_inner().unwrap();
            elapsed.push(rc.state.clock);
            statuses.push(match rc.state.health {
                Health::Ok => RankStatus::Completed,
                Health::Crashed(at) => RankStatus::Crashed { at_us: at },
                Health::Hung { at, .. } => RankStatus::Hung { at_us: at },
            });
            shards.push(rc.shard);
        }
        merge_shards(
            shards,
            self.shared.msg_edges,
            self.shared.retransmits,
            elapsed,
            statuses,
        )
    }
}
